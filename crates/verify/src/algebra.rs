//! Algebraic observations about tnum arithmetic (§III-A of the paper):
//!
//! 1. tnum addition is **not associative**;
//! 2. tnum addition and subtraction are **not inverse** operations;
//! 3. tnum multiplication is **not commutative**.
//!
//! This module finds concrete witnesses exhaustively at small widths and
//! counts how frequently each phenomenon occurs.

use tnum::enumerate::tnums;
use tnum::Tnum;

/// A witness that `(a + b) + c ≠ a + (b + c)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssocWitness {
    /// Operands.
    pub a: Tnum,
    /// Operands.
    pub b: Tnum,
    /// Operands.
    pub c: Tnum,
    /// `(a + b) + c`.
    pub left: Tnum,
    /// `a + (b + c)`.
    pub right: Tnum,
}

/// Counts non-associative triples of tnum addition at `width`, returning
/// the count and the first witness (if any).
///
/// # Panics
///
/// Panics if `width > 5` (the sweep is cubic in `3^width`).
#[must_use]
pub fn addition_non_associativity(width: u32) -> (u64, Option<AssocWitness>) {
    assert!(width <= 5, "cubic sweep limited to width 5");
    let all: Vec<Tnum> = tnums(width).collect();
    let mut count = 0u64;
    let mut witness = None;
    for &a in &all {
        for &b in &all {
            let ab = a.add(b).truncate(width);
            for &c in &all {
                let left = ab.add(c).truncate(width);
                let right = a.add(b.add(c).truncate(width)).truncate(width);
                if left != right {
                    count += 1;
                    witness.get_or_insert(AssocWitness {
                        a,
                        b,
                        c,
                        left,
                        right,
                    });
                }
            }
        }
    }
    (count, witness)
}

/// A witness that `(a + b) - b ≠ a`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InverseWitness {
    /// First operand.
    pub a: Tnum,
    /// Second operand.
    pub b: Tnum,
    /// `(a + b) - b`.
    pub round_trip: Tnum,
}

/// Counts pairs where subtracting `b` back after adding it does not
/// return `a` (observation 2), with the first witness.
#[must_use]
pub fn add_sub_non_inverse(width: u32) -> (u64, Option<InverseWitness>) {
    assert!(width <= 8, "quadratic sweep limited to width 8");
    let all: Vec<Tnum> = tnums(width).collect();
    let mut count = 0u64;
    let mut witness = None;
    for &a in &all {
        for &b in &all {
            let round_trip = a.add(b).truncate(width).sub(b).truncate(width);
            if round_trip != a {
                count += 1;
                witness.get_or_insert(InverseWitness { a, b, round_trip });
            }
        }
    }
    (count, witness)
}

/// A witness that `a * b ≠ b * a` for `our_mul`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommWitness {
    /// First operand.
    pub a: Tnum,
    /// Second operand.
    pub b: Tnum,
    /// `a * b`.
    pub ab: Tnum,
    /// `b * a`.
    pub ba: Tnum,
}

/// Counts non-commutative pairs of the given multiplication at `width`,
/// with the first witness.
#[must_use]
pub fn mul_non_commutativity(
    mul: fn(Tnum, Tnum) -> Tnum,
    width: u32,
) -> (u64, Option<CommWitness>) {
    assert!(width <= 8, "quadratic sweep limited to width 8");
    let all: Vec<Tnum> = tnums(width).collect();
    let mut count = 0u64;
    let mut witness = None;
    for &a in &all {
        for &b in &all {
            let ab = mul(a, b).truncate(width);
            let ba = mul(b, a).truncate(width);
            if ab != ba {
                count += 1;
                witness.get_or_insert(CommWitness { a, b, ab, ba });
            }
        }
    }
    (count, witness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_not_associative() {
        let (count, witness) = addition_non_associativity(3);
        assert!(count > 0, "observation (1) of §III-A");
        let w = witness.unwrap();
        // Both orders remain sound: each contains all concrete sums.
        for x in w.a.concretize() {
            for y in w.b.concretize() {
                for z in w.c.concretize() {
                    let sum = x.wrapping_add(y).wrapping_add(z) & 0b111;
                    assert!(w.left.contains(sum));
                    assert!(w.right.contains(sum));
                }
            }
        }
    }

    #[test]
    fn add_sub_do_not_invert() {
        let (count, witness) = add_sub_non_inverse(3);
        assert!(count > 0, "observation (2) of §III-A");
        let w = witness.unwrap();
        // The round trip must still over-approximate a (soundness).
        assert!(w.a.is_subset_of(w.round_trip) || !w.round_trip.is_subset_of(w.a));
    }

    #[test]
    fn our_mul_is_not_commutative() {
        // Width 6 is the smallest width at which *truncated* products
        // differ by operand order (2 pairs for our_mul, 20 for kern_mul —
        // found exhaustively; the 64-bit operators already disagree at
        // width 4, see the core crate's tests).
        let (count, witness) = mul_non_commutativity(|a, b| a.mul(b), 6);
        assert_eq!(count, 2, "observation (3) of §III-A");
        let w = witness.unwrap();
        // Both orders contain every concrete product.
        for x in w.a.concretize() {
            for y in w.b.concretize() {
                let prod = x.wrapping_mul(y) & 0x3f;
                assert!(w.ab.contains(prod));
                assert!(w.ba.contains(prod));
            }
        }
    }

    #[test]
    fn kern_mul_is_also_not_commutative() {
        let (count, _) = mul_non_commutativity(|a, b| a.mul_kernel_legacy(b), 6);
        assert_eq!(count, 20);
    }

    #[test]
    fn constants_are_well_behaved() {
        // Over constants, all three properties hold, so witnesses always
        // involve unknown bits.
        let (_, w1) = addition_non_associativity(3);
        let w1 = w1.unwrap();
        assert!(w1.a.unknown_bits() + w1.b.unknown_bits() + w1.c.unknown_bits() > 0);
        let (_, w2) = add_sub_non_inverse(3);
        let w2 = w2.unwrap();
        assert!(w2.a.unknown_bits() + w2.b.unknown_bits() > 0);
    }
}
