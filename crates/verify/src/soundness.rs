//! Exhaustive bounded verification of operator soundness — the
//! enumeration analogue of the paper's SMT query (Eqn. 11), generic over
//! the abstract domain.

use domain::AbstractDomain;

use crate::ops::Op2;
use crate::parallel::{default_threads, par_chunks};

/// A concrete counterexample to soundness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation<D> {
    /// First abstract operand.
    pub p: D,
    /// Second abstract operand.
    pub q: D,
    /// Concrete member of `γ(p)`.
    pub x: u64,
    /// Concrete member of `γ(q)`.
    pub y: u64,
    /// The concrete result `opC(x, y)` that escaped the abstraction.
    pub z: u64,
    /// The abstract result that failed to contain `z`.
    pub r: D,
}

/// Outcome of an exhaustive soundness check at one width.
#[derive(Clone, Debug)]
pub struct SoundnessReport<D> {
    /// Operator name.
    pub name: &'static str,
    /// Bit width checked.
    pub width: u32,
    /// Number of abstract input pairs enumerated (`9^width` for tnums).
    pub pairs: u64,
    /// Number of concrete membership checks performed (`16^width` for
    /// tnums).
    pub member_checks: u64,
    /// All violations found (empty ⇔ the operator is sound at `width`).
    pub violations: Vec<Violation<D>>,
    /// Wall-clock seconds the sweep took — the analogue of the paper's
    /// SMT solving times (§III-A).
    pub seconds: f64,
}

impl<D> SoundnessReport<D> {
    /// Whether the operator was verified sound at this width.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively verifies the soundness predicate
/// `∀P,Q, x∈γ(P), y∈γ(Q): opC(x,y) ∈ γ(opT(P,Q))` at `width` bits, for
/// any [`AbstractDomain`].
///
/// The quantification space is [`AbstractDomain::enumerate_at_width`];
/// work is partitioned over the first operand across threads via
/// [`par_chunks`]. For tnums at width 8 this is 16⁸ ≈ 4.3 × 10⁹
/// membership checks; widths ≤ 6 run in milliseconds and are suitable for
/// unit tests.
///
/// # Panics
///
/// Panics if `width > 10` (the sweep would not terminate in reasonable
/// time).
#[must_use]
pub fn check_soundness<D: AbstractDomain>(op: Op2<D>, width: u32) -> SoundnessReport<D> {
    assert!(
        width <= 10,
        "exhaustive soundness sweeps are limited to width 10"
    );
    let start = std::time::Instant::now();
    let elems = D::enumerate_at_width(width);
    let members: Vec<Vec<u64>> = elems.iter().map(|d| d.members(width)).collect();
    let n = elems.len() as u64;
    let per_thread = par_chunks(n, default_threads(), |lo, hi| {
        let mut violations = Vec::new();
        let mut checks = 0u64;
        for pi in lo..hi {
            let p = elems[pi as usize];
            for (qi, &q) in elems.iter().enumerate() {
                let r = (op.abstract_op)(p, q, width);
                for &x in &members[pi as usize] {
                    for &y in &members[qi] {
                        checks += 1;
                        let z = (op.concrete_op)(x, y, width);
                        if !r.contains(z) {
                            violations.push(Violation { p, q, x, y, z, r });
                        }
                    }
                }
            }
        }
        (violations, checks)
    });
    let mut violations = Vec::new();
    let mut member_checks = 0;
    for (v, c) in per_thread {
        violations.extend(v);
        member_checks += c;
    }
    SoundnessReport {
        name: op.name,
        width,
        pairs: n * n,
        member_checks,
        violations,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCatalog;
    use bitwise_domain::KnownBits;
    use interval_domain::Bounds;
    use tnum::Tnum;

    #[test]
    fn whole_paper_suite_sound_at_width_4() {
        // The enumeration analogue of the paper's "verification succeeded
        // for all operators" (§III-A), at a test-friendly width.
        for op in OpCatalog::<Tnum>::paper_suite() {
            let report = check_soundness(op, 4);
            assert!(
                report.is_sound(),
                "{} unsound: {:?}",
                op.name,
                report.violations[0]
            );
            assert_eq!(report.pairs, 81 * 81);
            assert_eq!(report.member_checks, 16u64.pow(4));
        }
    }

    #[test]
    fn arithmetic_sound_at_width_5() {
        for op in [
            OpCatalog::<Tnum>::add(),
            OpCatalog::<Tnum>::sub(),
            OpCatalog::<Tnum>::mul(),
        ] {
            let report = check_soundness(op, 5);
            assert!(report.is_sound(), "{} unsound at width 5", op.name);
        }
    }

    #[test]
    fn knownbits_suite_sound_at_width_4() {
        // The same campaign, same code path, for the LLVM encoding.
        for op in OpCatalog::<KnownBits>::domain_suite() {
            let report = check_soundness(op, 4);
            assert!(
                report.is_sound(),
                "knownbits {} unsound: {:?}",
                op.name,
                report.violations[0]
            );
            // The bijection preserves the quantification space exactly.
            assert_eq!(report.pairs, 81 * 81);
            assert_eq!(report.member_checks, 16u64.pow(4));
        }
    }

    #[test]
    fn bounds_suite_sound_at_width_4() {
        // And for the kernel's range domain, whose quantification space is
        // the 2^w(2^w+1)/2 canonical intervals.
        for op in OpCatalog::<Bounds>::domain_suite() {
            let report = check_soundness(op, 4);
            assert!(
                report.is_sound(),
                "bounds {} unsound: {:?}",
                op.name,
                report.violations[0]
            );
            assert_eq!(report.pairs, 136 * 136);
        }
    }

    #[test]
    fn broken_operator_is_caught() {
        // An intentionally wrong "addition" that claims the result is
        // always the constant sum of the minimum members.
        let broken = Op2 {
            name: "broken_add",
            abstract_op: |a: Tnum, b: Tnum, w| {
                Tnum::constant(a.value().wrapping_add(b.value())).truncate(w)
            },
            concrete_op: |x, y, w| x.wrapping_add(y) & tnum::low_bits(w),
        };
        let report = check_soundness(broken, 3);
        assert!(!report.is_sound());
        let v = report.violations[0];
        // The recorded counterexample must actually violate membership.
        assert!(!v.r.contains(v.z));
        assert!(v.p.contains(v.x) && v.q.contains(v.y));
    }

    #[test]
    fn report_metadata() {
        let report = check_soundness(OpCatalog::<Tnum>::and(), 3);
        assert_eq!(report.name, "and");
        assert_eq!(report.width, 3);
        assert!(report.seconds >= 0.0);
        assert!(report.is_sound());
    }
}
