//! # tnum-verify — bounded verification and precision measurement
//!
//! The paper (§III-A) performs *automated bounded verification* of the
//! kernel's tnum operators by encoding the soundness predicate (Eqn. 11)
//! in first-order logic and discharging it to Z3. No SMT solver is
//! available in this environment, so this crate checks the **same logical
//! formula by exhaustive enumeration** — exact and complete at a given
//! bitwidth, which is precisely what bounded verification provides
//! (see `DESIGN.md`, substitution 1):
//!
//! * [`soundness`] — ∀ well-formed `P, Q`, ∀ `x ∈ γ(P), y ∈ γ(Q)`:
//!   `opC(x, y) ∈ γ(opT(P, Q))`, enumerated over all `3ⁿ` tnums and all
//!   member pairs (`16ⁿ` checks);
//! * [`optimality`] — comparison against the brute-forced best abstract
//!   transformer `α ∘ f ∘ γ` (maximal precision, §II-A);
//! * [`precision`] — the Fig. 4 / Table I machinery: relative precision of
//!   two multiplication algorithms over all input pairs at width *n*;
//! * [`spotcheck`] — the randomized 64-bit testing harness of §VII-D,
//!   checking soundness on sampled members of random tnum pairs;
//! * [`algebra`] — witnesses for the paper's algebraic observations
//!   (tnum addition is not associative, add/sub are not inverses, tnum
//!   multiplication is not commutative);
//! * [`ops`] — the catalog of abstract/concrete operator pairs under test,
//!   shared by all of the above and by the `bench` experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod ops;
pub mod optimality;
pub mod parallel;
pub mod precision;
pub mod soundness;
pub mod spotcheck;

pub use ops::{Op2, OpCatalog};
pub use optimality::{check_optimality, OptimalityReport};
pub use precision::{
    compare_precision, compare_precision_sampled, compare_precision_unordered, ratio_histogram,
    PrecisionReport,
};
pub use soundness::{check_soundness, SoundnessReport, Violation};
pub use spotcheck::{spot_check, SpotCheckReport};
