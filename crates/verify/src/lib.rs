//! # tnum-verify — bounded verification and precision measurement
//!
//! The paper (§III-A) performs *automated bounded verification* of the
//! kernel's tnum operators by encoding the soundness predicate (Eqn. 11)
//! in first-order logic and discharging it to Z3. No SMT solver is
//! available in this environment, so this crate checks the **same logical
//! formula by exhaustive enumeration** — exact and complete at a given
//! bitwidth, which is precisely what bounded verification provides
//! (see `DESIGN.md`, substitution 1).
//!
//! Every checker is **generic over the abstract domain**: the
//! quantification space comes from
//! [`AbstractDomain::enumerate_at_width`](domain::AbstractDomain::enumerate_at_width)
//! and the operator pairs from the [`Op2`] catalog built on the
//! [`ArithDomain`](domain::ArithDomain) /
//! [`BitwiseDomain`](domain::BitwiseDomain) transformer traits, so the
//! same campaign validates the kernel's tnums, LLVM's known-bits
//! encoding, and the kernel's range bounds:
//!
//! * [`soundness`] — ∀ well-formed `P, Q`, ∀ `x ∈ γ(P), y ∈ γ(Q)`:
//!   `opC(x, y) ∈ γ(opT(P, Q))`, enumerated over all `3ⁿ` tnums (or the
//!   domain's canonical elements) and all member pairs (`16ⁿ` checks for
//!   tnums);
//! * [`campaign`] — soundness + optimality over a whole operator suite
//!   from one code path, for any domain;
//! * [`optimality`] — comparison against the brute-forced best abstract
//!   transformer `α ∘ f ∘ γ` (maximal precision, §II-A);
//! * [`precision`] — the Fig. 4 / Table I machinery: relative precision of
//!   two multiplication algorithms over all input pairs at width *n*;
//! * [`spotcheck`] — the randomized 64-bit testing harness of §VII-D,
//!   checking soundness on sampled members of random tnum pairs;
//! * [`algebra`] — witnesses for the paper's algebraic observations
//!   (tnum addition is not associative, add/sub are not inverses, tnum
//!   multiplication is not commutative);
//! * [`ops`] — the catalog of abstract/concrete operator pairs under test,
//!   shared by all of the above and by the `bench` experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::manual_checked_ops)]

pub mod algebra;
pub mod campaign;
pub mod ops;
pub mod optimality;
pub mod parallel;
pub mod precision;
pub mod soundness;
pub mod spotcheck;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use ops::{Op2, OpCatalog};
pub use optimality::{check_optimality, OptimalityReport};
pub use precision::{
    compare_precision, compare_precision_sampled, compare_precision_unordered, ratio_histogram,
    PrecisionReport,
};
pub use soundness::{check_soundness, SoundnessReport, Violation};
pub use spotcheck::{spot_check, SpotCheckReport};
