//! Relative precision measurement between two abstract operators — the
//! machinery behind Fig. 4 and Table I of the paper — generic over the
//! abstract domain.

use domain::AbstractDomain;
use tnum::Tnum;

use crate::ops::Op2;
use crate::parallel::{default_threads, par_chunks};

/// Table-I-style comparison of two operators at one width.
///
/// Counts follow the paper's columns exactly: for every input pair the
/// outputs either agree, or differ; differing outputs are either
/// comparable under ⊑ or not; comparable differing outputs have a
/// strictly more precise side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrecisionReport {
    /// Name of the first operator (the paper's `kern_mul` column).
    pub name_a: &'static str,
    /// Name of the second operator (the paper's `our_mul` column).
    pub name_b: &'static str,
    /// Bit width.
    pub width: u32,
    /// Total input pairs (`9^width` for tnums when exhaustive).
    pub total: u64,
    /// Pairs with identical outputs.
    pub equal: u64,
    /// Pairs with differing outputs.
    pub different: u64,
    /// Differing pairs whose outputs are comparable under ⊑.
    pub comparable: u64,
    /// Comparable pairs where the first operator is strictly more precise.
    pub a_more_precise: u64,
    /// Comparable pairs where the second operator is strictly more precise.
    pub b_more_precise: u64,
}

impl PrecisionReport {
    /// Percentage helper: `part / total * 100`.
    #[must_use]
    pub fn pct(part: u64, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64 * 100.0
        }
    }
}

/// Classifies one output pair into the accumulator columns
/// `[equal, different, comparable, a_wins, b_wins]`.
fn classify<D: AbstractDomain>(ra: D, rb: D, acc: &mut [u64; 5]) {
    if ra == rb {
        acc[0] += 1;
        return;
    }
    acc[1] += 1;
    if ra.le(rb) {
        acc[2] += 1;
        acc[3] += 1;
    } else if rb.le(ra) {
        acc[2] += 1;
        acc[4] += 1;
    }
}

fn merge(partials: Vec<[u64; 5]>) -> [u64; 5] {
    let mut acc = [0u64; 5];
    for partial in partials {
        for (slot, v) in acc.iter_mut().zip(partial) {
            *slot += v;
        }
    }
    acc
}

/// Exhaustively compares two abstract operators over all input pairs of
/// the domain's bounded enumeration (Table I / §VII-E).
///
/// # Panics
///
/// Panics if `width > 10`.
#[must_use]
pub fn compare_precision<D: AbstractDomain>(a: Op2<D>, b: Op2<D>, width: u32) -> PrecisionReport {
    assert!(
        width <= 10,
        "exhaustive precision sweeps are limited to width 10"
    );
    let elems = D::enumerate_at_width(width);
    let n = elems.len() as u64;
    let partials = par_chunks(n, default_threads(), |lo, hi| {
        let mut acc = [0u64; 5];
        for pi in lo..hi {
            let p = elems[pi as usize];
            for &q in &elems {
                classify(
                    (a.abstract_op)(p, q, width),
                    (b.abstract_op)(p, q, width),
                    &mut acc,
                );
            }
        }
        acc
    });
    let acc = merge(partials);
    PrecisionReport {
        name_a: a.name,
        name_b: b.name,
        width,
        total: n * n,
        equal: acc[0],
        different: acc[1],
        comparable: acc[2],
        a_more_precise: acc[3],
        b_more_precise: acc[4],
    }
}

/// [`compare_precision`] over *unordered* input pairs (`P ≤ Q` in
/// enumeration order) — the convention the paper's artifact uses for the
/// differing-pair statistics of Table I. With this enumeration the counts
/// reproduce the paper exactly (width 5: 8 differing, 2 vs 6; width 6:
/// 180 differing, 41 vs 139). `total` reports the number of unordered
/// pairs, `n (n + 1) / 2` over the enumeration size `n`.
///
/// # Panics
///
/// Panics if `width > 10`.
#[must_use]
pub fn compare_precision_unordered<D: AbstractDomain>(
    a: Op2<D>,
    b: Op2<D>,
    width: u32,
) -> PrecisionReport {
    assert!(
        width <= 10,
        "exhaustive precision sweeps are limited to width 10"
    );
    let elems = D::enumerate_at_width(width);
    let n = elems.len() as u64;
    let partials = par_chunks(n, default_threads(), |lo, hi| {
        let mut acc = [0u64; 5];
        for pi in lo..hi {
            let p = elems[pi as usize];
            for &q in &elems[pi as usize..] {
                classify(
                    (a.abstract_op)(p, q, width),
                    (b.abstract_op)(p, q, width),
                    &mut acc,
                );
            }
        }
        acc
    });
    let acc = merge(partials);
    PrecisionReport {
        name_a: a.name,
        name_b: b.name,
        width,
        total: n * (n + 1) / 2,
        equal: acc[0],
        different: acc[1],
        comparable: acc[2],
        a_more_precise: acc[3],
        b_more_precise: acc[4],
    }
}

/// Sampled variant of [`compare_precision`] for widths where the full
/// enumeration is impractical: draws `samples` input pairs uniformly
/// (with a fixed seed for reproducibility).
#[must_use]
pub fn compare_precision_sampled<D: AbstractDomain>(
    a: Op2<D>,
    b: Op2<D>,
    width: u32,
    samples: u64,
) -> PrecisionReport {
    let elems = D::enumerate_at_width(width);
    let n = elems.len() as u64;
    let partials = par_chunks(samples, default_threads(), |lo, hi| {
        let mut acc = [0u64; 5];
        // Per-thread SplitMix64 stream, deterministic in `lo`.
        let mut rng = domain::rng::SplitMix64::new(0x9e37_79b9_7f4a_7c15u64.wrapping_add(lo));
        for _ in lo..hi {
            let p = elems[rng.below(n) as usize];
            let q = elems[rng.below(n) as usize];
            classify(
                (a.abstract_op)(p, q, width),
                (b.abstract_op)(p, q, width),
                &mut acc,
            );
        }
        acc
    });
    let acc = merge(partials);
    PrecisionReport {
        name_a: a.name,
        name_b: b.name,
        width,
        total: samples,
        equal: acc[0],
        different: acc[1],
        comparable: acc[2],
        a_more_precise: acc[3],
        b_more_precise: acc[4],
    }
}

/// The Fig. 4 histogram: for every input pair where the two operators
/// disagree, the log₂ of the ratio `|γ(a)| / |γ(b)|`.
///
/// Because `|γ(t)| = 2^popcount(mask)`, the log-ratio is the integer
/// difference in unknown-bit counts; the histogram maps that difference
/// to its number of occurrences. Positive entries mean operator `b`
/// (the paper's `our_mul`) was more precise. Tnum-specific: the measure
/// relies on the cardinality structure of the value/mask encoding.
#[must_use]
pub fn ratio_histogram(
    a: Op2<Tnum>,
    b: Op2<Tnum>,
    width: u32,
) -> std::collections::BTreeMap<i32, u64> {
    assert!(width <= 10, "exhaustive sweeps are limited to width 10");
    let n = tnum::enumerate::count(width);
    let partials = par_chunks(n, default_threads(), |lo, hi| {
        let mut hist = std::collections::BTreeMap::new();
        for pi in lo..hi {
            let p = tnum::enumerate::nth(width, pi);
            for qi in 0..n {
                let q = tnum::enumerate::nth(width, qi);
                let ra = (a.abstract_op)(p, q, width);
                let rb = (b.abstract_op)(p, q, width);
                if ra == rb {
                    continue;
                }
                let diff = ra.unknown_bits() as i32 - rb.unknown_bits() as i32;
                *hist.entry(diff).or_insert(0u64) += 1;
            }
        }
        hist
    });
    let mut out = std::collections::BTreeMap::new();
    for partial in partials {
        for (k, v) in partial {
            *out.entry(k).or_insert(0) += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCatalog;
    use bitwise_domain::KnownBits;

    #[test]
    fn table1_row_width_5_reproduced_exactly() {
        // Table I, row n=5 (unordered-pair convention): 8 differing pairs,
        // all comparable, our_mul more precise in 6 (75%), kern_mul in 2.
        let r = compare_precision_unordered(
            OpCatalog::<Tnum>::mul_kernel(),
            OpCatalog::<Tnum>::mul(),
            5,
        );
        assert_eq!(r.equal + r.different, r.total);
        assert_eq!(r.different, 8);
        assert_eq!(r.comparable, 8);
        assert_eq!(r.b_more_precise, 6);
        assert_eq!(r.a_more_precise, 2);
    }

    #[test]
    fn ordered_counts_are_the_mirrored_doubling() {
        // Over ordered pairs every off-diagonal difference appears twice;
        // at width 5 all 8 unordered differences are off-diagonal.
        let r = compare_precision(OpCatalog::<Tnum>::mul_kernel(), OpCatalog::<Tnum>::mul(), 5);
        assert_eq!(r.total, 243u64 * 243);
        assert_eq!(r.different, 16);
        assert_eq!(r.b_more_precise, 12);
        assert_eq!(r.a_more_precise, 4);
    }

    #[test]
    fn identical_operators_report_all_equal() {
        let r = compare_precision(
            OpCatalog::<Tnum>::mul(),
            OpCatalog::<Tnum>::mul_simplified(),
            4,
        );
        assert_eq!(r.equal, r.total);
        assert_eq!(r.different, 0);
    }

    #[test]
    fn cross_domain_precision_through_the_bijection() {
        // The knownbits mul *is* bitwise_mul through the encoding, so the
        // generic comparison against the kernel mul must reproduce the
        // tnum-level comparison exactly.
        let kb = compare_precision(
            OpCatalog::<KnownBits>::mul(),
            OpCatalog::<KnownBits>::add(),
            3,
        );
        let tn = compare_precision(
            OpCatalog::<Tnum>::mul_bitwise(),
            OpCatalog::<Tnum>::add(),
            3,
        );
        assert_eq!(kb.equal, tn.equal);
        assert_eq!(kb.different, tn.different);
        assert_eq!(kb.comparable, tn.comparable);
    }

    #[test]
    fn histogram_counts_match_difference_counts() {
        let r = compare_precision(OpCatalog::<Tnum>::mul_kernel(), OpCatalog::<Tnum>::mul(), 5);
        let hist = ratio_histogram(OpCatalog::<Tnum>::mul_kernel(), OpCatalog::<Tnum>::mul(), 5);
        let hist_total: u64 = hist.values().sum();
        assert_eq!(hist_total, r.different);
        // Positive diffs are cases where our_mul was more precise.
        let positive: u64 = hist.iter().filter(|(k, _)| **k > 0).map(|(_, v)| *v).sum();
        assert_eq!(positive, r.b_more_precise);
    }

    #[test]
    fn sampled_comparison_is_deterministic_and_consistent() {
        let a = compare_precision_sampled(
            OpCatalog::<Tnum>::mul_kernel(),
            OpCatalog::<Tnum>::mul(),
            6,
            20_000,
        );
        let b = compare_precision_sampled(
            OpCatalog::<Tnum>::mul_kernel(),
            OpCatalog::<Tnum>::mul(),
            6,
            20_000,
        );
        assert_eq!(a, b, "fixed seed ⇒ reproducible");
        assert_eq!(a.total, 20_000);
        assert_eq!(a.equal + a.different, a.total);
        // Differences are rare (Table I: ~0.034% at width 6).
        assert!(a.different < 100);
    }

    #[test]
    fn pct_helper() {
        assert!((PrecisionReport::pct(1, 8) - 12.5).abs() < 1e-12);
        assert_eq!(PrecisionReport::pct(1, 0), 0.0);
    }
}
