//! Minimal scoped-thread fan-out for exhaustive sweeps.

/// Splits `0..total` into contiguous chunks, runs `work` on each chunk in
/// its own thread, and returns the per-chunk results in order.
///
/// `work` receives the chunk range as `(start, end)`.
///
/// # Examples
///
/// ```
/// use tnum_verify::parallel::par_chunks;
/// let partials = par_chunks(1000, 4, |start, end| (start..end).sum::<u64>());
/// assert_eq!(partials.into_iter().sum::<u64>(), (0..1000).sum());
/// ```
pub fn par_chunks<R: Send>(
    total: u64,
    threads: usize,
    work: impl Fn(u64, u64) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(total.max(1) as usize);
    let chunk = total.div_ceil(threads as u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(total);
                let work = &work;
                scope.spawn(move || work(start, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    })
}

/// A sensible default thread count for this machine.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_exactly_once() {
        for threads in [1, 2, 3, 7] {
            let counts = par_chunks(100, threads, |s, e| e - s);
            assert_eq!(counts.iter().sum::<u64>(), 100);
        }
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_chunks(0, 4, |s, e| e - s).iter().sum::<u64>(), 0);
        assert_eq!(par_chunks(1, 8, |s, e| e - s).iter().sum::<u64>(), 1);
        assert_eq!(par_chunks(3, 8, |s, e| e - s).iter().sum::<u64>(), 3);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
