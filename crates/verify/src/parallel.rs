//! Minimal scoped-thread fan-out for exhaustive sweeps.
//!
//! The implementation lives in [`domain::parallel`] so the batched
//! program verifier (`verifier::batch`) can share the same thread-count
//! defaults (including the `TNUM_THREADS` override) and scheduling
//! helpers; this module re-exports the sweep-facing subset under its
//! historical path.

pub use domain::parallel::{default_threads, par_chunks};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_par_chunks_covers_all_items() {
        let partials = par_chunks(1000, 4, |start, end| (start..end).sum::<u64>());
        assert_eq!(partials.into_iter().sum::<u64>(), (0..1000).sum());
    }

    #[test]
    fn reexported_default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
