//! The catalog of abstract/concrete operator pairs under verification.
//!
//! Each [`Op2`] couples a binary abstract operator over tnums with the
//! concrete `u64` operation it abstracts, both parameterized by a bit
//! width `w`: abstract results are truncated to `w` bits and concrete
//! results are reduced mod `2^w`, which is exact for all operators in the
//! catalog (carries/borrows/partial products only propagate upward;
//! shift amounts are reduced before use).

use tnum::{low_bits, Tnum};

/// A verifiable pair of abstract and concrete binary operators.
#[derive(Clone, Copy)]
pub struct Op2 {
    /// Human-readable operator name (matches the paper's terminology).
    pub name: &'static str,
    /// The abstract operator, width-adjusted.
    pub abstract_op: fn(Tnum, Tnum, u32) -> Tnum,
    /// The concrete operator, width-adjusted.
    pub concrete_op: fn(u64, u64, u32) -> u64,
}

impl core::fmt::Debug for Op2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Op2({})", self.name)
    }
}

/// The operators verified by the paper's bounded-verification campaign
/// (§III-A), plus the three multiplication algorithms compared in §IV.
pub struct OpCatalog;

impl OpCatalog {
    /// Kernel `tnum_add` vs wrapping addition.
    #[must_use]
    pub fn add() -> Op2 {
        Op2 {
            name: "add",
            abstract_op: |a, b, w| a.add(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_add(y) & low_bits(w),
        }
    }

    /// Kernel `tnum_sub` vs wrapping subtraction.
    #[must_use]
    pub fn sub() -> Op2 {
        Op2 {
            name: "sub",
            abstract_op: |a, b, w| a.sub(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_sub(y) & low_bits(w),
        }
    }

    /// The paper's `our_mul` (now the kernel's `tnum_mul`).
    #[must_use]
    pub fn mul() -> Op2 {
        Op2 {
            name: "our_mul",
            abstract_op: |a, b, w| a.mul(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// The legacy kernel multiplication (`kern_mul`, Listing 2).
    #[must_use]
    pub fn mul_kernel() -> Op2 {
        Op2 {
            name: "kern_mul",
            abstract_op: |a, b, w| a.mul_kernel_legacy(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// The Regehr–Duongsaa `bitwise_mul` (Listing 5, optimized form).
    #[must_use]
    pub fn mul_bitwise() -> Op2 {
        Op2 {
            name: "bitwise_mul",
            abstract_op: |a, b, w| bitwise_domain::bitwise_mul(a, b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// `our_mul_simplified` (Listing 3) — the proof-friendly form.
    #[must_use]
    pub fn mul_simplified() -> Op2 {
        Op2 {
            name: "our_mul_simplified",
            abstract_op: |a, b, w| tnum::mul::our_mul_simplified(a, b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// Kernel `tnum_and`.
    #[must_use]
    pub fn and() -> Op2 {
        Op2 {
            name: "and",
            abstract_op: |a, b, w| a.and(b).truncate(w),
            concrete_op: |x, y, w| (x & y) & low_bits(w),
        }
    }

    /// Kernel `tnum_or`.
    #[must_use]
    pub fn or() -> Op2 {
        Op2 {
            name: "or",
            abstract_op: |a, b, w| a.or(b).truncate(w),
            concrete_op: |x, y, w| (x | y) & low_bits(w),
        }
    }

    /// Kernel `tnum_xor`.
    #[must_use]
    pub fn xor() -> Op2 {
        Op2 {
            name: "xor",
            abstract_op: |a, b, w| a.xor(b).truncate(w),
            concrete_op: |x, y, w| (x ^ y) & low_bits(w),
        }
    }

    /// Left shift by a tnum amount. Shift counts follow the 64-bit BPF
    /// instruction semantics (`amount & 63`) at every verification width;
    /// the width only truncates the *value*.
    #[must_use]
    pub fn lshift() -> Op2 {
        Op2 {
            name: "lshift",
            abstract_op: |a, b, w| a.lshift_tnum(b.and(Tnum::constant(63))).truncate(w),
            concrete_op: |x, y, w| (x << (y & 63)) & low_bits(w),
        }
    }

    /// Logical right shift by a tnum amount (count masked to `& 63`).
    #[must_use]
    pub fn rshift() -> Op2 {
        Op2 {
            name: "rshift",
            abstract_op: |a, b, w| a.rshift_tnum(b.and(Tnum::constant(63))).truncate(w),
            concrete_op: |x, y, w| (x >> (y & 63)) & low_bits(w),
        }
    }

    /// Arithmetic right shift (width-aware sign) by a tnum amount
    /// (count masked to `& 63`).
    #[must_use]
    pub fn arshift() -> Op2 {
        Op2 {
            name: "arshift",
            abstract_op: |a, b, w| {
                a.sign_extend_from(w)
                    .arshift_tnum(b.and(Tnum::constant(63)))
                    .truncate(w)
            },
            concrete_op: |x, y, w| {
                let sx = sign_extend(x, w);
                ((sx >> (y & 63)) as u64) & low_bits(w)
            },
        }
    }

    /// Abstract division with BPF `x / 0 = 0` semantics.
    #[must_use]
    pub fn div() -> Op2 {
        Op2 {
            name: "div",
            abstract_op: |a, b, w| a.div(b).truncate(w),
            concrete_op: |x, y, w| (if y == 0 { 0 } else { x / y }) & low_bits(w),
        }
    }

    /// Abstract remainder with BPF `x % 0 = x` semantics.
    #[must_use]
    pub fn rem() -> Op2 {
        Op2 {
            name: "mod",
            abstract_op: |a, b, w| a.rem(b).truncate(w),
            concrete_op: |x, y, w| (if y == 0 { x } else { x % y }) & low_bits(w),
        }
    }

    /// The operators the paper lists for bounded verification (§III-A):
    /// addition, subtraction, multiplication, bitwise or/and/xor, and the
    /// three shifts — plus div/mod (conservative) for completeness.
    #[must_use]
    pub fn paper_suite() -> Vec<Op2> {
        vec![
            Self::add(),
            Self::sub(),
            Self::mul(),
            Self::mul_kernel(),
            Self::mul_bitwise(),
            Self::and(),
            Self::or(),
            Self::xor(),
            Self::lshift(),
            Self::rshift(),
            Self::arshift(),
            Self::div(),
            Self::rem(),
        ]
    }

    /// The three multiplication algorithms compared in §IV.
    #[must_use]
    pub fn mul_suite() -> Vec<Op2> {
        vec![Self::mul(), Self::mul_kernel(), Self::mul_bitwise()]
    }
}

fn sign_extend(x: u64, width: u32) -> i64 {
    debug_assert!(width >= 1 && width <= 64);
    let shift = 64 - width;
    ((x << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let suite = OpCatalog::paper_suite();
        let mut names: Vec<&str> = suite.iter().map(|o| o.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn concrete_ops_match_reference_semantics() {
        let w = 8;
        assert_eq!((OpCatalog::add().concrete_op)(200, 100, w), 44);
        assert_eq!((OpCatalog::sub().concrete_op)(10, 20, w), 246);
        assert_eq!((OpCatalog::mul().concrete_op)(16, 16, w), 0);
        assert_eq!((OpCatalog::div().concrete_op)(10, 0, w), 0);
        assert_eq!((OpCatalog::rem().concrete_op)(10, 0, w), 10);
        // Shift counts are masked to 64-bit semantics: 1 << 9 escapes the
        // 8-bit window entirely.
        assert_eq!((OpCatalog::lshift().concrete_op)(1, 9, w), 0);
        assert_eq!((OpCatalog::lshift().concrete_op)(1, 65, w), 2); // 65 & 63 = 1
        assert_eq!((OpCatalog::arshift().concrete_op)(0x80, 1, w), 0xc0);
    }

    #[test]
    fn abstract_ops_stay_within_width() {
        let a: Tnum = "x1".parse().unwrap();
        let b: Tnum = "1x".parse().unwrap();
        for op in OpCatalog::paper_suite() {
            let r = (op.abstract_op)(a, b, 4);
            assert!(r.fits_width(4), "{} escaped its width", op.name);
        }
    }

    #[test]
    fn sign_extend_reference() {
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }
}
