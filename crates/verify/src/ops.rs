//! The catalog of abstract/concrete operator pairs under verification,
//! generic over the abstract domain.
//!
//! Each [`Op2`] couples a binary abstract operator over some
//! [`AbstractDomain`] `D` with the concrete `u64` operation it abstracts,
//! both parameterized by a bit width `w`: abstract results are truncated
//! to `w` bits and concrete results are reduced mod `2^w`, which is exact
//! for all operators in the catalog (carries/borrows/partial products
//! only propagate upward; shift amounts are reduced before use).
//!
//! [`OpCatalog`] builds the pairs from the [`ArithDomain`] /
//! [`BitwiseDomain`] transformer traits, so the *same* catalog definition
//! serves tnums, LLVM known-bits, and kernel bounds; the Tnum-only
//! multiplication variants the paper compares (`kern_mul`, `bitwise_mul`,
//! `our_mul_simplified`) are provided by an additional
//! `impl OpCatalog<Tnum>` block.

use domain::{ArithDomain, BitwiseDomain};
use tnum::{low_bits, Tnum};

/// A verifiable pair of abstract and concrete binary operators over the
/// domain `D`.
pub struct Op2<D> {
    /// Human-readable operator name (matches the paper's terminology).
    pub name: &'static str,
    /// The abstract operator (`opT`), width-adjusted.
    pub abstract_op: fn(D, D, u32) -> D,
    /// The concrete operator (`opC`), width-adjusted.
    pub concrete_op: fn(u64, u64, u32) -> u64,
}

// Manual impls: `D` only appears inside `fn` pointers, which are always
// `Copy`, so no `D: Clone` bound is needed (derive would add one).
impl<D> Clone for Op2<D> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<D> Copy for Op2<D> {}

impl<D> core::fmt::Debug for Op2<D> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Op2({})", self.name)
    }
}

/// The operator catalog for the domain `D`: the operators the paper's
/// bounded-verification campaign covers (§III-A), built from the
/// transformer traits. `OpCatalog<Tnum>` additionally carries the three
/// multiplication algorithms compared in §IV.
pub struct OpCatalog<D>(core::marker::PhantomData<D>);

impl<D: ArithDomain + BitwiseDomain> OpCatalog<D> {
    /// Abstract addition vs wrapping addition.
    #[must_use]
    pub fn add() -> Op2<D> {
        Op2 {
            name: "add",
            abstract_op: |a, b, w| a.abs_add(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_add(y) & low_bits(w),
        }
    }

    /// Abstract subtraction vs wrapping subtraction.
    #[must_use]
    pub fn sub() -> Op2<D> {
        Op2 {
            name: "sub",
            abstract_op: |a, b, w| a.abs_sub(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_sub(y) & low_bits(w),
        }
    }

    /// The domain's multiplication vs wrapping multiplication (for tnums
    /// this is the paper's `our_mul`, now the kernel's `tnum_mul`).
    #[must_use]
    pub fn mul() -> Op2<D> {
        Op2 {
            name: "mul",
            abstract_op: |a, b, w| a.abs_mul(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// Abstract bitwise AND.
    #[must_use]
    pub fn and() -> Op2<D> {
        Op2 {
            name: "and",
            abstract_op: |a, b, w| a.abs_and(b).truncate(w),
            concrete_op: |x, y, w| (x & y) & low_bits(w),
        }
    }

    /// Abstract bitwise OR.
    #[must_use]
    pub fn or() -> Op2<D> {
        Op2 {
            name: "or",
            abstract_op: |a, b, w| a.abs_or(b).truncate(w),
            concrete_op: |x, y, w| (x | y) & low_bits(w),
        }
    }

    /// Abstract bitwise XOR.
    #[must_use]
    pub fn xor() -> Op2<D> {
        Op2 {
            name: "xor",
            abstract_op: |a, b, w| a.abs_xor(b).truncate(w),
            concrete_op: |x, y, w| (x ^ y) & low_bits(w),
        }
    }

    /// Left shift by an abstract amount. Shift counts follow the 64-bit
    /// BPF instruction semantics (`amount & 63`) at every verification
    /// width; the width only truncates the *value*.
    #[must_use]
    pub fn lshift() -> Op2<D> {
        Op2 {
            name: "lshift",
            abstract_op: |a, b, w| a.abs_shl(b, w).truncate(w),
            concrete_op: |x, y, w| (x << (y & 63)) & low_bits(w),
        }
    }

    /// Logical right shift by an abstract amount (count masked `& 63`).
    #[must_use]
    pub fn rshift() -> Op2<D> {
        Op2 {
            name: "rshift",
            abstract_op: |a, b, w| a.abs_lshr(b, w).truncate(w),
            concrete_op: |x, y, w| (x >> (y & 63)) & low_bits(w),
        }
    }

    /// Arithmetic right shift (width-aware sign) by an abstract amount
    /// (count masked `& 63`).
    #[must_use]
    pub fn arshift() -> Op2<D> {
        Op2 {
            name: "arshift",
            abstract_op: |a, b, w| a.abs_ashr(b, w).truncate(w),
            concrete_op: |x, y, w| {
                let sx = sign_extend(x, w);
                ((sx >> (y & 63)) as u64) & low_bits(w)
            },
        }
    }

    /// Abstract division with BPF `x / 0 = 0` semantics.
    #[must_use]
    pub fn div() -> Op2<D> {
        Op2 {
            name: "div",
            abstract_op: |a, b, w| a.abs_div(b).truncate(w),
            concrete_op: |x, y, w| (if y == 0 { 0 } else { x / y }) & low_bits(w),
        }
    }

    /// Abstract remainder with BPF `x % 0 = x` semantics.
    #[must_use]
    pub fn rem() -> Op2<D> {
        Op2 {
            name: "mod",
            abstract_op: |a, b, w| a.abs_rem(b).truncate(w),
            concrete_op: |x, y, w| (if y == 0 { x } else { x % y }) & low_bits(w),
        }
    }

    /// The domain-generic operator suite the bounded-verification
    /// campaign quantifies over: the operators the paper lists for
    /// §III-A — addition, subtraction, multiplication, and/or/xor, the
    /// three shifts — plus div/mod (conservative) for completeness.
    #[must_use]
    pub fn domain_suite() -> Vec<Op2<D>> {
        vec![
            Self::add(),
            Self::sub(),
            Self::mul(),
            Self::and(),
            Self::or(),
            Self::xor(),
            Self::lshift(),
            Self::rshift(),
            Self::arshift(),
            Self::div(),
            Self::rem(),
        ]
    }
}

impl OpCatalog<Tnum> {
    /// The legacy kernel multiplication (`kern_mul`, Listing 2).
    #[must_use]
    pub fn mul_kernel() -> Op2<Tnum> {
        Op2 {
            name: "kern_mul",
            abstract_op: |a, b, w| a.mul_kernel_legacy(b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// The Regehr–Duongsaa `bitwise_mul` (Listing 5, optimized form).
    #[must_use]
    pub fn mul_bitwise() -> Op2<Tnum> {
        Op2 {
            name: "bitwise_mul",
            abstract_op: |a, b, w| bitwise_domain::bitwise_mul(a, b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// `our_mul_simplified` (Listing 3) — the proof-friendly form.
    #[must_use]
    pub fn mul_simplified() -> Op2<Tnum> {
        Op2 {
            name: "our_mul_simplified",
            abstract_op: |a, b, w| tnum::mul::our_mul_simplified(a, b).truncate(w),
            concrete_op: |x, y, w| x.wrapping_mul(y) & low_bits(w),
        }
    }

    /// The operators the paper lists for bounded verification of the
    /// kernel's tnums (§III-A) plus the baseline multiplications — the
    /// [`domain_suite`](Self::domain_suite) extended with `kern_mul` and
    /// `bitwise_mul`.
    #[must_use]
    pub fn paper_suite() -> Vec<Op2<Tnum>> {
        let mut suite = Self::domain_suite();
        // Keep the paper's historical name for the headline algorithm.
        let mul = suite
            .iter_mut()
            .find(|o| o.name == "mul")
            .expect("mul in suite");
        mul.name = "our_mul";
        suite.insert(3, Self::mul_kernel());
        suite.insert(4, Self::mul_bitwise());
        suite
    }

    /// The three multiplication algorithms compared in §IV.
    #[must_use]
    pub fn mul_suite() -> Vec<Op2<Tnum>> {
        let mut mul = Self::mul();
        mul.name = "our_mul";
        vec![mul, Self::mul_kernel(), Self::mul_bitwise()]
    }
}

fn sign_extend(x: u64, width: u32) -> i64 {
    debug_assert!((1..=64).contains(&width));
    let shift = 64 - width;
    ((x << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwise_domain::KnownBits;
    use interval_domain::Bounds;

    #[test]
    fn catalog_names_are_unique() {
        let suite = OpCatalog::<Tnum>::paper_suite();
        let mut names: Vec<&str> = suite.iter().map(|o| o.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn concrete_ops_match_reference_semantics() {
        let w = 8;
        assert_eq!((OpCatalog::<Tnum>::add().concrete_op)(200, 100, w), 44);
        assert_eq!((OpCatalog::<Tnum>::sub().concrete_op)(10, 20, w), 246);
        assert_eq!((OpCatalog::<Tnum>::mul().concrete_op)(16, 16, w), 0);
        assert_eq!((OpCatalog::<Tnum>::div().concrete_op)(10, 0, w), 0);
        assert_eq!((OpCatalog::<Tnum>::rem().concrete_op)(10, 0, w), 10);
        // Shift counts are masked to 64-bit semantics: 1 << 9 escapes the
        // 8-bit window entirely.
        assert_eq!((OpCatalog::<Tnum>::lshift().concrete_op)(1, 9, w), 0);
        assert_eq!((OpCatalog::<Tnum>::lshift().concrete_op)(1, 65, w), 2); // 65 & 63 = 1
        assert_eq!((OpCatalog::<Tnum>::arshift().concrete_op)(0x80, 1, w), 0xc0);
    }

    #[test]
    fn concrete_halves_are_domain_independent() {
        // The `opC` side must be identical across domains — one semantics,
        // three abstractions.
        let t = OpCatalog::<Tnum>::domain_suite();
        let k = OpCatalog::<KnownBits>::domain_suite();
        let b = OpCatalog::<Bounds>::domain_suite();
        for ((ot, ok), ob) in t.iter().zip(&k).zip(&b) {
            assert_eq!(ot.name, ok.name);
            assert_eq!(ot.name, ob.name);
            for (x, y) in [(200u64, 100u64), (10, 0), (1, 65), (0x80, 1)] {
                for w in [4, 8, 64] {
                    let reference = (ot.concrete_op)(x, y, w);
                    assert_eq!((ok.concrete_op)(x, y, w), reference, "{}", ot.name);
                    assert_eq!((ob.concrete_op)(x, y, w), reference, "{}", ot.name);
                }
            }
        }
    }

    #[test]
    fn abstract_ops_stay_within_width() {
        let a: Tnum = "x1".parse().unwrap();
        let b: Tnum = "1x".parse().unwrap();
        for op in OpCatalog::<Tnum>::paper_suite() {
            let r = (op.abstract_op)(a, b, 4);
            assert!(r.fits_width(4), "{} escaped its width", op.name);
        }
    }

    #[test]
    fn abstract_ops_stay_within_width_all_domains() {
        use domain::AbstractDomain;
        let a = KnownBits::constant(0b10);
        let b = KnownBits::UNKNOWN;
        for op in OpCatalog::<KnownBits>::domain_suite() {
            let r = (op.abstract_op)(a, b, 4);
            assert!(
                r.le(KnownBits::top_at_width(4)),
                "{} escaped its width",
                op.name
            );
        }
        let c = Bounds::constant(3);
        let d = <Bounds as AbstractDomain>::top_at_width(4);
        for op in OpCatalog::<Bounds>::domain_suite() {
            let r = (op.abstract_op)(c, d, 4);
            assert!(
                r.le(Bounds::top_at_width(4)),
                "{} escaped its width",
                op.name
            );
        }
    }

    #[test]
    fn sign_extend_reference() {
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }
}
