//! Exhaustive optimality checking against the best abstract transformer
//! `α ∘ f ∘ γ` (§II-A of the paper).

use tnum::enumerate::{count, nth};
use tnum::Tnum;

use crate::ops::Op2;
use crate::parallel::{default_threads, par_chunks};

/// An input pair where the operator is strictly less precise than the
/// best transformer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Suboptimal {
    /// First abstract operand.
    pub p: Tnum,
    /// Second abstract operand.
    pub q: Tnum,
    /// What the operator produced.
    pub got: Tnum,
    /// The maximally precise result `α(f(γ(p), γ(q)))`.
    pub best: Tnum,
}

/// Outcome of an exhaustive optimality check at one width.
#[derive(Clone, Debug)]
pub struct OptimalityReport {
    /// Operator name.
    pub name: &'static str,
    /// Bit width checked.
    pub width: u32,
    /// Number of abstract input pairs enumerated.
    pub pairs: u64,
    /// Pairs where the operator matched the best transformer exactly.
    pub optimal_pairs: u64,
    /// Sample of pairs where it did not (capped at 16 to bound memory).
    pub suboptimal_samples: Vec<Suboptimal>,
    /// Count of *soundness* violations encountered while brute-forcing —
    /// always zero for a sound operator.
    pub unsound_pairs: u64,
}

impl OptimalityReport {
    /// Whether the operator is the optimal abstraction at this width.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.optimal_pairs == self.pairs && self.unsound_pairs == 0
    }

    /// Fraction of input pairs on which the operator is exact w.r.t. the
    /// best transformer.
    #[must_use]
    pub fn optimal_fraction(&self) -> f64 {
        self.optimal_pairs as f64 / self.pairs as f64
    }
}

/// The maximally precise abstract result for one input pair:
/// `α({ opC(x, y) : x ∈ γ(p), y ∈ γ(q) })`.
#[must_use]
pub fn best_transformer(op: Op2, p: Tnum, q: Tnum, width: u32) -> Tnum {
    Tnum::abstract_of(
        p.concretize()
            .flat_map(|x| q.concretize().map(move |y| (op.concrete_op)(x, y, width))),
    )
    .expect("γ of a well-formed tnum is non-empty")
}

/// Exhaustively compares `op` against the best transformer at `width`.
///
/// # Panics
///
/// Panics if `width > 8` (the brute-force transformer enumerates `16^w`
/// member pairs).
#[must_use]
pub fn check_optimality(op: Op2, width: u32) -> OptimalityReport {
    assert!(width <= 8, "optimality sweeps are limited to width 8");
    let n = count(width);
    let per_thread = par_chunks(n, default_threads(), |lo, hi| {
        let mut optimal = 0u64;
        let mut unsound = 0u64;
        let mut samples = Vec::new();
        for pi in lo..hi {
            let p = nth(width, pi);
            for qi in 0..n {
                let q = nth(width, qi);
                let got = (op.abstract_op)(p, q, width);
                let best = best_transformer(op, p, q, width);
                if got == best {
                    optimal += 1;
                } else if best.is_subset_of(got) {
                    if samples.len() < 16 {
                        samples.push(Suboptimal { p, q, got, best });
                    }
                } else {
                    // The operator missed a concrete result: unsound.
                    unsound += 1;
                }
            }
        }
        (optimal, unsound, samples)
    });
    let mut optimal_pairs = 0;
    let mut unsound_pairs = 0;
    let mut suboptimal_samples = Vec::new();
    for (o, u, s) in per_thread {
        optimal_pairs += o;
        unsound_pairs += u;
        if suboptimal_samples.len() < 16 {
            suboptimal_samples.extend(s);
            suboptimal_samples.truncate(16);
        }
    }
    OptimalityReport {
        name: op.name,
        width,
        pairs: n * n,
        optimal_pairs,
        suboptimal_samples,
        unsound_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCatalog;

    #[test]
    fn add_and_sub_are_optimal_w4() {
        // Theorems 6 and 22 of the paper, checked by enumeration.
        for op in [OpCatalog::add(), OpCatalog::sub()] {
            let report = check_optimality(op, 4);
            assert!(report.is_optimal(), "{} suboptimal: {:?}", op.name, report.suboptimal_samples.first());
        }
    }

    #[test]
    fn bitwise_ops_are_optimal_w4() {
        for op in [OpCatalog::and(), OpCatalog::or(), OpCatalog::xor()] {
            assert!(check_optimality(op, 4).is_optimal(), "{}", op.name);
        }
    }

    #[test]
    fn no_multiplication_is_optimal_w4() {
        // §III-C: our_mul is sound but *not* optimal; neither are the
        // baselines.
        for op in OpCatalog::mul_suite() {
            let report = check_optimality(op, 4);
            assert!(!report.is_optimal(), "{} unexpectedly optimal", op.name);
            assert_eq!(report.unsound_pairs, 0, "{} must stay sound", op.name);
            assert!(!report.suboptimal_samples.is_empty());
            // The recorded samples are genuine precision losses.
            for s in &report.suboptimal_samples {
                assert!(s.best.is_strict_subset_of(s.got));
            }
        }
    }

    #[test]
    fn div_rem_conservative_but_sound_w3() {
        for op in [OpCatalog::div(), OpCatalog::rem()] {
            let report = check_optimality(op, 3);
            assert_eq!(report.unsound_pairs, 0);
            assert!(!report.is_optimal(), "{} is intentionally conservative", op.name);
        }
    }

    #[test]
    fn best_transformer_matches_manual_alpha() {
        // γ(10x) = {4, 5}; adding the constant 1 gives {5, 6} = {101, 110},
        // whose exact abstraction is 1xx.
        let p: Tnum = "10x".parse().unwrap();
        let q: Tnum = "001".parse().unwrap();
        let best = best_transformer(OpCatalog::add(), p, q, 3);
        assert_eq!(best, "1xx".parse().unwrap());
        // And it agrees with tnum_add (optimality on this pair).
        assert_eq!(best, p.add(q).truncate(3));
    }

    #[test]
    fn optimal_fraction_reported() {
        let report = check_optimality(OpCatalog::mul(), 3);
        assert!(report.optimal_fraction() > 0.9, "our_mul is near-optimal at small widths");
        assert!(report.optimal_fraction() < 1.0);
    }
}
