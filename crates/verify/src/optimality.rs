//! Exhaustive optimality checking against the best abstract transformer
//! `α ∘ f ∘ γ` (§II-A of the paper), generic over the abstract domain.

use domain::AbstractDomain;

use crate::ops::Op2;
use crate::parallel::{default_threads, par_chunks};

/// An input pair where the operator is strictly less precise than the
/// best transformer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Suboptimal<D> {
    /// First abstract operand.
    pub p: D,
    /// Second abstract operand.
    pub q: D,
    /// What the operator produced.
    pub got: D,
    /// The maximally precise result `α(f(γ(p), γ(q)))`.
    pub best: D,
}

/// Outcome of an exhaustive optimality check at one width.
#[derive(Clone, Debug)]
pub struct OptimalityReport<D> {
    /// Operator name.
    pub name: &'static str,
    /// Bit width checked.
    pub width: u32,
    /// Number of abstract input pairs enumerated.
    pub pairs: u64,
    /// Pairs where the operator matched the best transformer exactly.
    pub optimal_pairs: u64,
    /// Sample of pairs where it did not (capped at 16 to bound memory).
    pub suboptimal_samples: Vec<Suboptimal<D>>,
    /// Count of *soundness* violations encountered while brute-forcing —
    /// always zero for a sound operator.
    pub unsound_pairs: u64,
}

impl<D> OptimalityReport<D> {
    /// Whether the operator is the optimal abstraction at this width.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.optimal_pairs == self.pairs && self.unsound_pairs == 0
    }

    /// Fraction of input pairs on which the operator is exact w.r.t. the
    /// best transformer.
    #[must_use]
    pub fn optimal_fraction(&self) -> f64 {
        self.optimal_pairs as f64 / self.pairs as f64
    }
}

/// The maximally precise abstract result for one input pair:
/// `α({ opC(x, y) : x ∈ γ(p), y ∈ γ(q) })`.
#[must_use]
pub fn best_transformer<D: AbstractDomain>(op: Op2<D>, p: D, q: D, width: u32) -> D {
    best_from_members(op, &p.members(width), &q.members(width), width)
}

/// [`best_transformer`] over pre-materialized member sets — the shared
/// core, so the exhaustive sweep can cache `γ` per element.
fn best_from_members<D: AbstractDomain>(op: Op2<D>, xs: &[u64], ys: &[u64], width: u32) -> D {
    D::abstract_of(
        xs.iter()
            .flat_map(|&x| ys.iter().map(move |&y| (op.concrete_op)(x, y, width))),
    )
    .expect("γ of a well-formed element is non-empty")
}

/// Exhaustively compares `op` against the best transformer at `width`.
///
/// # Panics
///
/// Panics if `width > 8` (the brute-force transformer enumerates every
/// member pair — `16^w` of them for tnums).
#[must_use]
pub fn check_optimality<D: AbstractDomain>(op: Op2<D>, width: u32) -> OptimalityReport<D> {
    assert!(width <= 8, "optimality sweeps are limited to width 8");
    let elems = D::enumerate_at_width(width);
    let members: Vec<Vec<u64>> = elems.iter().map(|d| d.members(width)).collect();
    let n = elems.len() as u64;
    let per_thread = par_chunks(n, default_threads(), |lo, hi| {
        let mut optimal = 0u64;
        let mut unsound = 0u64;
        let mut samples = Vec::new();
        for pi in lo..hi {
            let p = elems[pi as usize];
            for (qi, &q) in elems.iter().enumerate() {
                let got = (op.abstract_op)(p, q, width);
                let best = best_from_members(op, &members[pi as usize], &members[qi], width);
                if got == best {
                    optimal += 1;
                } else if best.le(got) {
                    if samples.len() < 16 {
                        samples.push(Suboptimal { p, q, got, best });
                    }
                } else {
                    // The operator missed a concrete result: unsound.
                    unsound += 1;
                }
            }
        }
        (optimal, unsound, samples)
    });
    let mut optimal_pairs = 0;
    let mut unsound_pairs = 0;
    let mut suboptimal_samples = Vec::new();
    for (o, u, s) in per_thread {
        optimal_pairs += o;
        unsound_pairs += u;
        if suboptimal_samples.len() < 16 {
            suboptimal_samples.extend(s);
            suboptimal_samples.truncate(16);
        }
    }
    OptimalityReport {
        name: op.name,
        width,
        pairs: n * n,
        optimal_pairs,
        suboptimal_samples,
        unsound_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCatalog;
    use bitwise_domain::KnownBits;
    use interval_domain::Bounds;
    use tnum::Tnum;

    #[test]
    fn add_and_sub_are_optimal_w4() {
        // Theorems 6 and 22 of the paper, checked by enumeration.
        for op in [OpCatalog::<Tnum>::add(), OpCatalog::<Tnum>::sub()] {
            let report = check_optimality(op, 4);
            assert!(
                report.is_optimal(),
                "{} suboptimal: {:?}",
                op.name,
                report.suboptimal_samples.first()
            );
        }
    }

    #[test]
    fn bitwise_ops_are_optimal_w4() {
        for op in [
            OpCatalog::<Tnum>::and(),
            OpCatalog::<Tnum>::or(),
            OpCatalog::<Tnum>::xor(),
        ] {
            assert!(check_optimality(op, 4).is_optimal(), "{}", op.name);
        }
    }

    #[test]
    fn knownbits_inherits_tnum_optimality_w4() {
        // The bijection transports the optimality theorems to the LLVM
        // encoding — same campaign, same verdicts.
        for op in [
            OpCatalog::<KnownBits>::add(),
            OpCatalog::<KnownBits>::sub(),
            OpCatalog::<KnownBits>::and(),
            OpCatalog::<KnownBits>::or(),
            OpCatalog::<KnownBits>::xor(),
        ] {
            assert!(
                check_optimality(op, 4).is_optimal(),
                "knownbits {}",
                op.name
            );
        }
    }

    #[test]
    fn bounds_sound_everywhere_but_not_bit_exact_w3() {
        // Interval addition is the exact hull until a sum wraps past 2^w
        // (where truncation collapses to ⊤|w); interval AND loses
        // bit-level structure by construction — which is precisely why
        // the kernel runs the reduced product with tnums.
        let add = check_optimality(OpCatalog::<Bounds>::add(), 3);
        assert_eq!(add.unsound_pairs, 0);
        assert!(
            add.optimal_fraction() > 0.5,
            "non-wrapping sums are exact hulls"
        );
        let and = check_optimality(OpCatalog::<Bounds>::and(), 3);
        assert_eq!(and.unsound_pairs, 0);
        assert!(!and.is_optimal(), "interval AND cannot be bit-exact");
    }

    #[test]
    fn no_multiplication_is_optimal_w4() {
        // §III-C: our_mul is sound but *not* optimal; neither are the
        // baselines.
        for op in OpCatalog::<Tnum>::mul_suite() {
            let report = check_optimality(op, 4);
            assert!(!report.is_optimal(), "{} unexpectedly optimal", op.name);
            assert_eq!(report.unsound_pairs, 0, "{} must stay sound", op.name);
            assert!(!report.suboptimal_samples.is_empty());
            // The recorded samples are genuine precision losses.
            for s in &report.suboptimal_samples {
                assert!(s.best.is_strict_subset_of(s.got));
            }
        }
    }

    #[test]
    fn div_rem_conservative_but_sound_w3() {
        for op in [OpCatalog::<Tnum>::div(), OpCatalog::<Tnum>::rem()] {
            let report = check_optimality(op, 3);
            assert_eq!(report.unsound_pairs, 0);
            assert!(
                !report.is_optimal(),
                "{} is intentionally conservative",
                op.name
            );
        }
    }

    #[test]
    fn best_transformer_matches_manual_alpha() {
        // γ(10x) = {4, 5}; adding the constant 1 gives {5, 6} = {101, 110},
        // whose exact abstraction is 1xx.
        let p: Tnum = "10x".parse().unwrap();
        let q: Tnum = "001".parse().unwrap();
        let best = best_transformer(OpCatalog::<Tnum>::add(), p, q, 3);
        assert_eq!(best, "1xx".parse().unwrap());
        // And it agrees with tnum_add (optimality on this pair).
        assert_eq!(best, p.add(q).truncate(3));
    }

    #[test]
    fn optimal_fraction_reported() {
        let report = check_optimality(OpCatalog::<Tnum>::mul(), 3);
        assert!(
            report.optimal_fraction() > 0.9,
            "our_mul is near-optimal at small widths"
        );
        assert!(report.optimal_fraction() < 1.0);
    }
}
