//! Randomized 64-bit soundness testing — the enumeration-free analogue of
//! the paper's §VII-D harness ("spot-checking the correctness of our SMT
//! encodings"), and the only practical check at the kernel's full width.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnum::Tnum;

use crate::ops::Op2;
use crate::soundness::Violation;

/// Outcome of a randomized soundness campaign at width 64.
#[derive(Clone, Debug)]
pub struct SpotCheckReport {
    /// Operator name.
    pub name: &'static str,
    /// Random tnum pairs drawn.
    pub pairs: u64,
    /// Concrete member pairs checked per tnum pair.
    pub members_per_pair: u32,
    /// Violations found (must be empty for a sound operator).
    pub violations: Vec<Violation>,
}

impl SpotCheckReport {
    /// Whether no violation was found.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Draws a uniformly random well-formed 64-bit tnum.
pub fn random_tnum(rng: &mut impl Rng) -> Tnum {
    let mask: u64 = rng.gen();
    let value: u64 = rng.gen::<u64>() & !mask;
    Tnum::new(value, mask).expect("disjoint by construction")
}

/// Draws a uniformly random member of `γ(t)`.
pub fn random_member(rng: &mut impl Rng, t: Tnum) -> u64 {
    t.value() | (rng.gen::<u64>() & t.mask())
}

/// Randomized soundness check at the full 64-bit width: for `pairs`
/// random well-formed tnum pairs, checks `members_per_pair` random
/// concrete pairs for membership of the concrete result in the abstract
/// one. Deterministic in `seed`.
#[must_use]
pub fn spot_check(op: Op2, pairs: u64, members_per_pair: u32, seed: u64) -> SpotCheckReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut violations = Vec::new();
    for _ in 0..pairs {
        let p = random_tnum(&mut rng);
        let q = random_tnum(&mut rng);
        let r = (op.abstract_op)(p, q, 64);
        for _ in 0..members_per_pair {
            let x = random_member(&mut rng, p);
            let y = random_member(&mut rng, q);
            let z = (op.concrete_op)(x, y, 64);
            if !r.contains(z) {
                violations.push(Violation { p, q, x, y, z, r });
            }
        }
    }
    SpotCheckReport { name: op.name, pairs, members_per_pair, violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCatalog;

    #[test]
    fn paper_suite_sound_at_64_bits_randomized() {
        // The analogue of "verification succeeded for bitvectors of width
        // 64" (§III-A) — here by randomized testing rather than SMT.
        for op in OpCatalog::paper_suite() {
            let report = spot_check(op, 2_000, 8, 0xC60_2022);
            assert!(
                report.is_sound(),
                "{}: violation {:?}",
                op.name,
                report.violations.first()
            );
        }
    }

    #[test]
    fn random_tnums_are_well_formed_and_members_belong() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let t = random_tnum(&mut rng);
            assert_eq!(t.value() & t.mask(), 0);
            let m = random_member(&mut rng, t);
            assert!(t.contains(m));
        }
    }

    #[test]
    fn broken_operator_is_caught_randomly() {
        let broken = Op2 {
            name: "broken_xor",
            // Claims the result equals the xor of the value parts exactly.
            abstract_op: |a, b, _| Tnum::constant(a.value() ^ b.value()),
            concrete_op: |x, y, _| x ^ y,
        };
        let report = spot_check(broken, 200, 4, 42);
        assert!(!report.is_sound());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = spot_check(OpCatalog::add(), 100, 4, 9);
        let b = spot_check(OpCatalog::add(), 100, 4, 9);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.violations.len(), b.violations.len());
    }
}
