//! Randomized 64-bit soundness testing — the enumeration-free analogue of
//! the paper's §VII-D harness ("spot-checking the correctness of our SMT
//! encodings"), the only practical check at the kernel's full width, and
//! generic over the abstract domain via [`AbstractDomain::random`] /
//! [`AbstractDomain::random_member`].

use domain::rng::SplitMix64;
use domain::AbstractDomain;

use crate::ops::Op2;
use crate::soundness::Violation;

/// Outcome of a randomized soundness campaign at width 64.
#[derive(Clone, Debug)]
pub struct SpotCheckReport<D> {
    /// Operator name.
    pub name: &'static str,
    /// Random abstract pairs drawn.
    pub pairs: u64,
    /// Concrete member pairs checked per abstract pair.
    pub members_per_pair: u32,
    /// Violations found (must be empty for a sound operator).
    pub violations: Vec<Violation<D>>,
}

impl<D> SpotCheckReport<D> {
    /// Whether no violation was found.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Randomized soundness check at the full 64-bit width: for `pairs`
/// random well-formed abstract pairs, checks `members_per_pair` random
/// concrete pairs for membership of the concrete result in the abstract
/// one. Deterministic in `seed`.
#[must_use]
pub fn spot_check<D: AbstractDomain>(
    op: Op2<D>,
    pairs: u64,
    members_per_pair: u32,
    seed: u64,
) -> SpotCheckReport<D> {
    let mut rng = SplitMix64::new(seed);
    let mut violations = Vec::new();
    for _ in 0..pairs {
        let p = D::random(&mut rng);
        let q = D::random(&mut rng);
        let r = (op.abstract_op)(p, q, 64);
        for _ in 0..members_per_pair {
            let x = p.random_member(&mut rng);
            let y = q.random_member(&mut rng);
            let z = (op.concrete_op)(x, y, 64);
            if !r.contains(z) {
                violations.push(Violation { p, q, x, y, z, r });
            }
        }
    }
    SpotCheckReport {
        name: op.name,
        pairs,
        members_per_pair,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpCatalog;
    use bitwise_domain::KnownBits;
    use interval_domain::Bounds;
    use tnum::Tnum;

    #[test]
    fn paper_suite_sound_at_64_bits_randomized() {
        // The analogue of "verification succeeded for bitvectors of width
        // 64" (§III-A) — here by randomized testing rather than SMT.
        for op in OpCatalog::<Tnum>::paper_suite() {
            let report = spot_check(op, 2_000, 8, 0xC60_2022);
            assert!(
                report.is_sound(),
                "{}: violation {:?}",
                op.name,
                report.violations.first()
            );
        }
    }

    #[test]
    fn knownbits_and_bounds_sound_at_64_bits_randomized() {
        // The same randomized campaign, same code path, other domains.
        for op in OpCatalog::<KnownBits>::domain_suite() {
            let report = spot_check(op, 1_000, 8, 0x5EED);
            assert!(
                report.is_sound(),
                "knownbits {}: {:?}",
                op.name,
                report.violations.first()
            );
        }
        for op in OpCatalog::<Bounds>::domain_suite() {
            let report = spot_check(op, 1_000, 8, 0x5EED);
            assert!(
                report.is_sound(),
                "bounds {}: {:?}",
                op.name,
                report.violations.first()
            );
        }
    }

    #[test]
    fn random_elements_are_well_formed_and_members_belong() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1_000 {
            let t = Tnum::random(&mut rng);
            assert_eq!(t.value() & t.mask(), 0);
            let m = t.random_member(&mut rng);
            assert!(t.contains(m));
        }
    }

    #[test]
    fn broken_operator_is_caught_randomly() {
        let broken = Op2 {
            name: "broken_xor",
            // Claims the result equals the xor of the value parts exactly.
            abstract_op: |a: Tnum, b: Tnum, _| Tnum::constant(a.value() ^ b.value()),
            concrete_op: |x, y, _| x ^ y,
        };
        let report = spot_check(broken, 200, 4, 42);
        assert!(!report.is_sound());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = spot_check(OpCatalog::<Tnum>::add(), 100, 4, 9);
        let b = spot_check(OpCatalog::<Tnum>::add(), 100, 4, 9);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.violations.len(), b.violations.len());
    }
}
