//! The domain-generic bounded-verification campaign: one code path that
//! runs the paper's §III-A method — exhaustive soundness (Eqn. 11) plus
//! optimality against the best transformer `α ∘ f ∘ γ` — over *any*
//! [`ArithDomain`] + [`BitwiseDomain`] implementor.
//!
//! This is the tentpole deliverable of the abstraction layer: the same
//! campaign that validates the kernel's tnums validates the LLVM
//! known-bits encoding and the kernel's range bounds, and will validate
//! any future domain (signed intervals, congruences, …) with zero new
//! harness code.

use domain::{ArithDomain, BitwiseDomain};

use crate::ops::OpCatalog;
use crate::optimality::check_optimality;
use crate::soundness::check_soundness;
use crate::spotcheck::spot_check;

/// The per-operator verdict of a campaign run.
#[derive(Clone, Debug)]
pub struct CampaignEntry {
    /// Operator name.
    pub op: &'static str,
    /// Exhaustively verified sound at the campaign width.
    pub sound: bool,
    /// Violations found (0 for a sound operator).
    pub violations: u64,
    /// Abstract input pairs enumerated.
    pub pairs: u64,
    /// Concrete membership checks performed.
    pub member_checks: u64,
    /// Matched the best transformer on every pair (`None` when the
    /// optimality pass was skipped).
    pub optimal: Option<bool>,
    /// Fraction of pairs where the operator is exact w.r.t. the best
    /// transformer (`None` when skipped).
    pub optimal_fraction: Option<f64>,
    /// Soundness violations surfaced by the optimality brute-force
    /// (always 0 for a sound operator; `None` when skipped).
    pub unsound_pairs: Option<u64>,
    /// Wall-clock seconds for the soundness sweep.
    pub seconds: f64,
}

/// The outcome of one generic campaign run over a domain.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Domain name ([`AbstractDomain::NAME`]).
    pub domain: &'static str,
    /// Campaign width (the bound of the bounded verification).
    pub width: u32,
    /// Per-operator verdicts, in catalog order.
    pub entries: Vec<CampaignEntry>,
    /// Violations found by the randomized width-64 spot check, summed
    /// over operators (`None` when `spot_pairs` was 0).
    pub spot_violations: Option<u64>,
}

impl CampaignReport {
    /// Whether every operator verified sound — exhaustively at the
    /// campaign width and (if run) at width 64 randomized.
    #[must_use]
    pub fn all_sound(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.sound && e.unsound_pairs.unwrap_or(0) == 0)
            && self.spot_violations.unwrap_or(0) == 0
    }
}

/// Campaign configuration.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Width of the exhaustive sweeps (the paper uses up to 64 via SMT;
    /// enumeration keeps tests at ≤ 6).
    pub width: u32,
    /// Whether to run the optimality comparison (quadratic in the member
    /// count on top of soundness).
    pub optimality: bool,
    /// Random abstract pairs for the width-64 spot check (0 to skip).
    pub spot_pairs: u64,
    /// Concrete member pairs per spot-checked abstract pair.
    pub spot_members: u32,
    /// Spot-check seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            width: 4,
            optimality: true,
            spot_pairs: 1_000,
            spot_members: 8,
            seed: 0xC60_2022,
        }
    }
}

/// Runs the generic campaign over the domain `D`'s
/// [`domain_suite`](OpCatalog::domain_suite).
///
/// # Panics
///
/// Panics if `config.width` exceeds the sweep caps (10 for soundness,
/// 8 when `optimality` is set).
#[must_use]
pub fn run_campaign<D: ArithDomain + BitwiseDomain>(config: CampaignConfig) -> CampaignReport {
    let mut entries = Vec::new();
    let mut spot_violations = (config.spot_pairs > 0).then_some(0u64);
    for op in OpCatalog::<D>::domain_suite() {
        let s = check_soundness(op, config.width);
        let (optimal, optimal_fraction, unsound_pairs) = if config.optimality {
            let o = check_optimality(op, config.width);
            (
                Some(o.is_optimal()),
                Some(o.optimal_fraction()),
                Some(o.unsound_pairs),
            )
        } else {
            (None, None, None)
        };
        if let Some(total) = spot_violations.as_mut() {
            let r = spot_check(op, config.spot_pairs, config.spot_members, config.seed);
            *total += r.violations.len() as u64;
        }
        entries.push(CampaignEntry {
            op: op.name,
            sound: s.is_sound(),
            violations: s.violations.len() as u64,
            pairs: s.pairs,
            member_checks: s.member_checks,
            optimal,
            optimal_fraction,
            unsound_pairs,
            seconds: s.seconds,
        });
    }
    CampaignReport {
        domain: D::NAME,
        width: config.width,
        entries,
        spot_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwise_domain::KnownBits;
    use interval_domain::Bounds;
    use tnum::Tnum;

    fn quick(width: u32) -> CampaignConfig {
        CampaignConfig {
            width,
            optimality: true,
            spot_pairs: 200,
            spot_members: 4,
            seed: 1,
        }
    }

    #[test]
    fn one_code_path_validates_all_three_domains() {
        // The acceptance criterion of the abstraction layer: the same
        // generic soundness + optimality campaign, through the same
        // Op2<D> catalog, passes for all three shipped domains.
        let t = run_campaign::<Tnum>(quick(4));
        let k = run_campaign::<KnownBits>(quick(4));
        let b = run_campaign::<Bounds>(quick(3));
        for report in [&t, &k, &b] {
            assert!(
                report.all_sound(),
                "{} campaign failed: {report:?}",
                report.domain
            );
            assert_eq!(report.entries.len(), 11);
        }
        // The isomorphic encodings agree pair-for-pair on optimality.
        for (et, ek) in t.entries.iter().zip(&k.entries) {
            assert_eq!(et.op, ek.op);
            assert_eq!(et.pairs, ek.pairs, "{}", et.op);
            assert_eq!(et.optimal, ek.optimal, "{}", et.op);
        }
    }

    #[test]
    fn optimality_pass_can_be_skipped() {
        let r = run_campaign::<Tnum>(CampaignConfig {
            width: 3,
            optimality: false,
            spot_pairs: 0,
            spot_members: 0,
            seed: 0,
        });
        assert!(r.all_sound());
        assert!(r.entries.iter().all(|e| e.optimal.is_none()));
        assert_eq!(r.spot_violations, None);
    }
}
