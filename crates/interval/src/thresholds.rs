//! Program-derived widening thresholds — the classic "widening with
//! thresholds" refinement (Cousot's *widening with a threshold set*).
//!
//! The built-in ladders of [`UInterval::widen`](crate::UInterval::widen)
//! and [`SInterval::widen`](crate::SInterval::widen) only know the magic
//! values of the 64-bit machine, so an eagerly widened loop counter jumps
//! straight to `i32::MAX`. A fixpoint engine that *harvests* the
//! comparison constants of the program under analysis can extend the
//! ladder so the same jump lands on the `i < N` guard that actually
//! bounds the loop — keeping the precision of a long widening delay at
//! the cost of an eager one.

/// A harvested set of extra widening thresholds, kept sorted for the
/// ladder search in [`UInterval::widen_with`](crate::UInterval::widen_with)
/// and [`SInterval::widen_with`](crate::SInterval::widen_with).
///
/// # Examples
///
/// ```
/// use interval_domain::{UInterval, WidenThresholds};
///
/// // `if i < 13`: harvesting 13 plants 12, 13, 14 in the ladder, so a
/// // counter creeping past [0, 4] widens to 12 instead of i32::MAX.
/// let th = WidenThresholds::harvest([13]);
/// let old = UInterval::new(0, 4).unwrap();
/// let grown = UInterval::new(0, 5).unwrap();
/// assert_eq!(old.widen_with(grown, th.unsigned()).max(), 12);
/// assert_eq!(old.widen(grown).max(), i32::MAX as u64);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WidenThresholds {
    u: Vec<u64>,
    s: Vec<i64>,
}

impl WidenThresholds {
    /// The empty threshold set: widening falls back to the built-in
    /// ladders alone.
    pub const EMPTY: WidenThresholds = WidenThresholds {
        u: Vec::new(),
        s: Vec::new(),
    };

    /// Builds a threshold set from the comparison constants of a program.
    ///
    /// Each constant `v` plants `v - 1`, `v`, and `v + 1` (saturating) in
    /// both ladders, covering the stable bound of every strict and
    /// non-strict guard in either direction (`i < v` stabilizes at
    /// `v - 1`, `i <= v` at `v`, `i != v` exits at `v`, …). Unsigned
    /// thresholds use the same bit pattern the comparison sees (negative
    /// constants sign-extend, exactly as BPF immediates do).
    pub fn harvest<I: IntoIterator<Item = i64>>(values: I) -> WidenThresholds {
        let mut u = Vec::new();
        let mut s = Vec::new();
        for v in values {
            for c in [v.saturating_sub(1), v, v.saturating_add(1)] {
                s.push(c);
                u.push(c as u64);
            }
        }
        u.sort_unstable();
        u.dedup();
        s.sort_unstable();
        s.dedup();
        WidenThresholds { u, s }
    }

    /// The unsigned ladder extension, ascending.
    #[must_use]
    pub fn unsigned(&self) -> &[u64] {
        &self.u
    }

    /// The signed ladder extension, ascending.
    #[must_use]
    pub fn signed(&self) -> &[i64] {
        &self.s
    }

    /// Whether no thresholds were harvested.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.u.is_empty() && self.s.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SInterval, UInterval};

    #[test]
    fn harvest_plants_neighbours_in_both_ladders() {
        let th = WidenThresholds::harvest([13, 0]);
        assert_eq!(th.signed(), &[-1, 0, 1, 12, 13, 14]);
        assert_eq!(
            th.unsigned(),
            &[0, 1, 12, 13, 14, u64::MAX] // -1 sign-extends
        );
        assert!(WidenThresholds::EMPTY.is_empty());
        assert!(!th.is_empty());
    }

    #[test]
    fn widen_with_lands_on_the_harvested_guard() {
        let th = WidenThresholds::harvest([13]);
        let old = UInterval::new(0, 2).unwrap();
        let grown = UInterval::new(0, 3).unwrap();
        assert_eq!(old.widen_with(grown, th.unsigned()).max(), 12);
        // Growth beyond every harvested threshold falls back to the
        // built-in ladder.
        let past = UInterval::new(0, 20).unwrap();
        assert_eq!(old.widen_with(past, th.unsigned()).max(), i32::MAX as u64);
        // Signed lower bounds jump to harvested values too — to the
        // *tightest* rung that still covers the growth (-6 ≤ -3).
        let th = WidenThresholds::harvest([-7]);
        let s0 = SInterval::new(-2, 0).unwrap();
        let s1 = SInterval::new(-3, 0).unwrap();
        assert_eq!(s0.widen_with(s1, th.signed()).min(), -6);
        assert_eq!(s0.widen(s1).min(), i32::MIN as i64);
    }

    #[test]
    fn widen_with_still_covers_and_terminates() {
        let th = WidenThresholds::harvest([5, 100]);
        let mut cur = UInterval::new(0, 0).unwrap();
        let mut jumps = 0;
        for k in 1..10_000u64 {
            let grown = cur.union(UInterval::new(0, k).unwrap());
            let next = cur.widen_with(grown, th.unsigned());
            assert!(grown.is_subset_of(next), "covering at k={k}");
            if next != cur {
                jumps += 1;
                cur = next;
            }
        }
        // One jump per rung of the merged ladder at most: the chain
        // stabilizes long before the input stops growing.
        assert!(jumps <= th.unsigned().len() + 2, "chain took {jumps} jumps");
        assert_eq!(cur.max(), i32::MAX as u64);
    }
}
