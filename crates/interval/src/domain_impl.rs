//! [`AbstractDomain`] / [`ArithDomain`] / [`BitwiseDomain`] for
//! [`Bounds`], plus the two [`RefineFrom`] directions of the kernel's
//! `reg_bounds_sync` — the glue that lets the range half of the reduced
//! product ride the same generic verification campaign and analyzer as
//! the bit-level domains.
//!
//! ## Canonical enumeration
//!
//! At widths below 64 every representable value is non-negative, so a
//! canonical (fully deduced) [`Bounds`] element is determined by its
//! unsigned interval: `enumerate_at_width(w)` yields
//! `Bounds::from_unsigned([lo, hi])` for every `0 <= lo <= hi < 2^w` —
//! `2^w (2^w + 1) / 2` elements, the complete bounded quantification
//! space for this domain (the analogue of the `3^w` tnums).
//!
//! ## Width truncation
//!
//! Intervals do not commute with `mod 2^w` the way value/mask pairs do:
//! a range that crosses a `2^w` boundary wraps into a union of two
//! ranges, which the domain cannot represent. [`AbstractDomain::truncate`]
//! therefore keeps the element when it already fits in `[0, 2^w)` and
//! soundly collapses to `⊤|w = [0, 2^w)` otherwise.

use domain::rng::SplitMix64;
use domain::{AbstractDomain, ArithDomain, BitwiseDomain, RefineFrom, WidenDomain};
use tnum::{low_bits, Tnum};

use crate::bounds::Bounds;
use crate::signed::SInterval;
use crate::unsigned::UInterval;

impl AbstractDomain for Bounds {
    const NAME: &'static str = "bounds";

    fn top() -> Bounds {
        Bounds::FULL
    }

    fn le(self, other: Bounds) -> bool {
        self.is_subset_of(other)
    }

    fn join(self, other: Bounds) -> Bounds {
        self.union(other)
    }

    fn meet(self, other: Bounds) -> Option<Bounds> {
        self.intersect(other)
    }

    fn abstract_of<I: IntoIterator<Item = u64>>(values: I) -> Option<Bounds> {
        let mut iter = values.into_iter();
        let first = iter.next()?;
        let (mut umin, mut umax) = (first, first);
        let (mut smin, mut smax) = (first as i64, first as i64);
        for v in iter {
            umin = umin.min(v);
            umax = umax.max(v);
            smin = smin.min(v as i64);
            smax = smax.max(v as i64);
        }
        let u = UInterval::new(umin, umax).expect("min <= max");
        let s = SInterval::new(smin, smax).expect("min <= max");
        Some(
            Bounds::from_unsigned(u)
                .intersect(Bounds::from_signed(s))
                .expect("hull of a non-empty set is non-empty"),
        )
    }

    fn contains(self, x: u64) -> bool {
        Bounds::contains(self, x)
    }

    fn enumerate_at_width(width: u32) -> Vec<Bounds> {
        assert!(width < 64, "bounds enumeration is limited to width 63");
        let n = 1u64 << width;
        let mut out = Vec::with_capacity((n * (n + 1) / 2) as usize);
        for lo in 0..n {
            for hi in lo..n {
                out.push(Bounds::from_unsigned(
                    UInterval::new(lo, hi).expect("lo <= hi"),
                ));
            }
        }
        out
    }

    fn members(self, width: u32) -> Vec<u64> {
        let t = AbstractDomain::truncate(self, width);
        (t.umin()..=t.umax()).filter(|&x| t.contains(x)).collect()
    }

    fn as_constant(self) -> Option<u64> {
        Bounds::as_constant(self)
    }

    fn truncate(self, width: u32) -> Bounds {
        if width >= 64 {
            return self;
        }
        let lim = low_bits(width);
        if self.umax() <= lim && self.smin() >= 0 {
            self
        } else {
            Bounds::from_unsigned(UInterval::new(0, lim).expect("0 <= lim"))
        }
    }

    fn random(rng: &mut SplitMix64) -> Bounds {
        if rng.coin() {
            let (a, b) = (rng.next_u64(), rng.next_u64());
            Bounds::from_unsigned(UInterval::new(a.min(b), a.max(b)).expect("sorted"))
        } else {
            let (a, b) = (rng.next_u64() as i64, rng.next_u64() as i64);
            Bounds::from_signed(SInterval::new(a.min(b), a.max(b)).expect("sorted"))
        }
    }

    fn random_member(self, rng: &mut SplitMix64) -> u64 {
        // γ(self) is the unsigned interval intersected with the signed
        // one; in unsigned order the signed interval is one contiguous
        // range (sign-pure) or two (straddling zero: the non-negative
        // prefix and the negative suffix of the u64 line). Intersect the
        // unsigned view with each piece and sample uniformly across the
        // surviving segments — exact for every consistent element, not
        // just those built by `random`.
        let (smin, smax) = (self.smin(), self.smax());
        let pieces: [Option<(u64, u64)>; 2] = if smin >= 0 || smax < 0 {
            [Some((smin as u64, smax as u64)), None]
        } else {
            [Some((0, smax as u64)), Some((smin as u64, u64::MAX))]
        };
        let segments: Vec<(u64, u64)> = pieces
            .into_iter()
            .flatten()
            .filter_map(|(lo, hi)| {
                let lo = lo.max(self.umin());
                let hi = hi.min(self.umax());
                (lo <= hi).then_some((lo, hi))
            })
            .collect();
        // A well-formed Bounds is non-empty, so at least one segment
        // survives; weight the choice by segment size (saturating: the
        // full line collapses to one segment anyway).
        let total = segments.iter().fold(0u64, |acc, &(lo, hi)| {
            acc.saturating_add((hi - lo).saturating_add(1))
        });
        let mut pick = rng.below(total.max(1));
        for &(lo, hi) in &segments {
            let size = (hi - lo).saturating_add(1);
            if pick < size {
                let x = if hi - lo == u64::MAX {
                    rng.next_u64()
                } else {
                    lo + pick
                };
                debug_assert!(self.contains(x), "sampled non-member {x:#x} of {self:?}");
                return x;
            }
            pick -= size;
        }
        unreachable!("non-empty Bounds always yields a segment: {self:?}")
    }
}

impl WidenDomain for Bounds {
    /// View-wise threshold widening — intervals have infinite ascending
    /// chains, so unlike the bit-level domains the join is *not* enough;
    /// growing endpoints jump to the shared threshold ladder.
    fn widen(self, newer: Bounds) -> Bounds {
        Bounds::widen(self, newer)
    }
}

impl ArithDomain for Bounds {
    fn abs_add(self, rhs: Bounds) -> Bounds {
        self.add(rhs)
    }

    fn abs_sub(self, rhs: Bounds) -> Bounds {
        self.sub(rhs)
    }

    fn abs_mul(self, rhs: Bounds) -> Bounds {
        self.mul(rhs)
    }

    fn abs_div(self, rhs: Bounds) -> Bounds {
        self.div(rhs)
    }

    fn abs_rem(self, rhs: Bounds) -> Bounds {
        self.rem(rhs)
    }
}

impl BitwiseDomain for Bounds {
    fn abs_and(self, rhs: Bounds) -> Bounds {
        self.and(rhs)
    }

    fn abs_or(self, rhs: Bounds) -> Bounds {
        self.or(rhs)
    }

    fn abs_xor(self, rhs: Bounds) -> Bounds {
        self.xor(rhs)
    }

    fn abs_shl(self, rhs: Bounds, width: u32) -> Bounds {
        match rhs.as_constant() {
            Some(k) => self.lshift((k & 63) as u32),
            None => Bounds::top_at_width(width),
        }
    }

    fn abs_lshr(self, rhs: Bounds, width: u32) -> Bounds {
        match rhs.as_constant() {
            Some(k) => self.rshift((k & 63) as u32),
            None => Bounds::top_at_width(width),
        }
    }

    fn abs_ashr(self, rhs: Bounds, width: u32) -> Bounds {
        // The native arshift assumes the sign lives at bit 63; for
        // narrower verification widths the sign position moves, so fall
        // back to ⊤ at the width (sound; the tnum half of the product
        // carries the precision for this operator).
        match (rhs.as_constant(), width) {
            (Some(k), 64) => self.arshift((k & 63) as u32),
            _ => Bounds::top_at_width(width),
        }
    }
}

impl RefineFrom<Tnum> for Bounds {
    /// Half of the kernel's `reg_bounds_sync`: tighten the ranges with the
    /// tnum-implied `[min_value, max_value]` / `[min_signed, max_signed]`.
    fn refine_from(self, other: &Tnum) -> Option<Bounds> {
        self.refined_by_tnum(*other)
    }
}

impl RefineFrom<Bounds> for Tnum {
    /// The other half (`__reg_bound_offset`): intersect with
    /// `tnum_range(umin, umax)`.
    fn refine_from(self, other: &Bounds) -> Option<Tnum> {
        self.intersect(other.to_tnum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_and_galois_laws() {
        domain::laws::assert_lattice_laws::<Bounds>(3);
        domain::laws::assert_galois_soundness::<Bounds>(4);
        domain::laws::assert_sampling_sound::<Bounds>(2_000, 0xB0);
        domain::laws::assert_widening_laws::<Bounds>(3, 200, 64, 0xB1);
    }

    #[test]
    fn widening_jumps_to_thresholds_and_keeps_stable_bounds() {
        let narrow = Bounds::from_unsigned(UInterval::new(0, 4).unwrap());
        let grown = Bounds::from_unsigned(UInterval::new(0, 5).unwrap());
        let w = narrow.widen(grown);
        // The stable lower bound is kept; the creeping upper bound jumps
        // to the next threshold (i32::MAX) instead of 5.
        assert_eq!(w.umin(), 0);
        assert_eq!(w.umax(), i32::MAX as u64);
        // A second growth within the widened bound is absorbed: ∇ is
        // stationary once the chain stops climbing.
        let grown2 = w.union(Bounds::from_unsigned(UInterval::new(0, 1000).unwrap()));
        assert_eq!(w.widen(grown2), w);
        // Signed endpoints jump through their own ladder.
        let s0 = Bounds::from_signed(SInterval::new(-1, 3).unwrap());
        let s1 = s0.union(Bounds::from_signed(SInterval::new(-7, 3).unwrap()));
        let ws = s0.widen(s1);
        assert_eq!(ws.smin(), i32::MIN as i64);
        assert_eq!(ws.smax(), 3);
    }

    #[test]
    fn enumeration_is_complete_and_canonical() {
        let elems = <Bounds as AbstractDomain>::enumerate_at_width(3);
        assert_eq!(elems.len(), 8 * 9 / 2);
        for b in &elems {
            // Canonical: deduction is a no-op.
            assert_eq!(b.deduce(), Some(*b));
            assert!(b.smin() >= 0, "width-3 members are non-negative");
        }
    }

    #[test]
    fn truncate_keeps_fitting_ranges_and_collapses_the_rest() {
        let fits = Bounds::from_unsigned(UInterval::new(3, 7).unwrap());
        assert_eq!(AbstractDomain::truncate(fits, 3), fits);
        let wide = Bounds::from_unsigned(UInterval::new(3, 9).unwrap());
        let t = AbstractDomain::truncate(wide, 3);
        assert_eq!((t.umin(), t.umax()), (0, 7));
        // Sound: (x mod 8) is contained for every member of the input.
        for x in 3u64..=9 {
            assert!(t.contains(x % 8));
        }
    }

    #[test]
    fn refine_from_is_the_kernel_sync() {
        let t: Tnum = "10xx".parse().unwrap(); // {8..=11}
        let b = Bounds::FULL.refine_from(&t).unwrap();
        assert_eq!((b.umin(), b.umax()), (8, 11));
        let t2 = Tnum::UNKNOWN.refine_from(&b).unwrap();
        assert_eq!(t2, t);
        // Contradiction surfaces as None in both directions.
        let low = Bounds::from_unsigned(UInterval::new(0, 3).unwrap());
        assert_eq!(low.refine_from(&t), None);
        assert_eq!("1xxx".parse::<Tnum>().unwrap().refine_from(&low), None);
    }

    #[test]
    fn random_member_respects_both_views_on_meet_derived_elements() {
        // Regression: an element whose unsigned *and* signed views both
        // strictly constrain it (straddling-unsigned ∧ straddling-signed,
        // as produced by the domain's own meet) must never yield a sample
        // outside γ — the old smaller-span heuristic did.
        let b = Bounds::from_unsigned(
            UInterval::new(2_213_914_867_404_379_067, 10_486_188_960_074_589_865).unwrap(),
        )
        .intersect(Bounds::from_signed(
            SInterval::new(-3_258_883_285_024_894_585, 2_983_140_654_205_117_793).unwrap(),
        ))
        .unwrap();
        let mut rng = SplitMix64::new(0xDEAD);
        for _ in 0..10_000 {
            let x = b.random_member(&mut rng);
            assert!(b.contains(x), "{x:#x} escapes {b:?}");
        }
        // And a negative-only signed element samples into the high half.
        let neg = Bounds::from_signed(SInterval::new(-40, -2).unwrap());
        for _ in 0..100 {
            assert!(neg.contains(neg.random_member(&mut rng)));
        }
    }

    #[test]
    fn hull_abstraction_is_tight_in_both_orders() {
        let b = <Bounds as AbstractDomain>::abstract_of([3u64, 5, 9]).unwrap();
        assert_eq!((b.umin(), b.umax()), (3, 9));
        assert_eq!((b.smin(), b.smax()), (3, 9));
        // A set straddling the sign boundary keeps the signed hull tight.
        let s = <Bounds as AbstractDomain>::abstract_of([u64::MAX, 2]).unwrap();
        assert_eq!((s.smin(), s.smax()), (-1, 2));
        assert!(s.contains(u64::MAX) && s.contains(2));
    }
}
