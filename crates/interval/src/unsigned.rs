//! Unsigned 64-bit intervals.

use core::fmt;

/// An inclusive unsigned interval `[min, max]`, `min <= max`.
///
/// The abstraction of a set of `u64` values by its unsigned extremes.
/// Transfer functions are sound for BPF's wrapping ALU semantics: whenever
/// an operation may wrap, the result widens to [`UInterval::FULL`].
///
/// # Examples
///
/// ```
/// use interval_domain::UInterval;
/// let a = UInterval::new(2, 5).unwrap();
/// let b = UInterval::constant(10);
/// assert_eq!(a.add(b), UInterval::new(12, 15).unwrap());
/// assert!(UInterval::FULL.add(b).is_full()); // possible wrap ⇒ ⊤
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct UInterval {
    min: u64,
    max: u64,
}

impl UInterval {
    /// The full interval `[0, u64::MAX]` — ⊤ of the domain.
    pub const FULL: UInterval = UInterval {
        min: 0,
        max: u64::MAX,
    };

    /// Creates `[min, max]`; `None` if `min > max` (the empty interval ⊥
    /// has no representation, mirroring [`tnum::Tnum`]).
    #[must_use]
    pub const fn new(min: u64, max: u64) -> Option<UInterval> {
        if min <= max {
            Some(UInterval { min, max })
        } else {
            None
        }
    }

    /// The singleton `[v, v]`.
    #[must_use]
    pub const fn constant(v: u64) -> UInterval {
        UInterval { min: v, max: v }
    }

    /// Lower bound.
    #[must_use]
    pub const fn min(self) -> u64 {
        self.min
    }

    /// Upper bound.
    #[must_use]
    pub const fn max(self) -> u64 {
        self.max
    }

    /// Whether this is the full interval.
    #[must_use]
    pub const fn is_full(self) -> bool {
        self.min == 0 && self.max == u64::MAX
    }

    /// Whether this is a singleton, and if so its value.
    #[must_use]
    pub const fn as_constant(self) -> Option<u64> {
        if self.min == self.max {
            Some(self.min)
        } else {
            None
        }
    }

    /// Membership test.
    #[must_use]
    pub const fn contains(self, x: u64) -> bool {
        self.min <= x && x <= self.max
    }

    /// Interval order: is every member of `self` a member of `other`?
    #[must_use]
    pub const fn is_subset_of(self, other: UInterval) -> bool {
        other.min <= self.min && self.max <= other.max
    }

    /// Join (convex hull).
    #[must_use]
    pub fn union(self, other: UInterval) -> UInterval {
        UInterval {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Meet; `None` when disjoint.
    #[must_use]
    pub fn intersect(self, other: UInterval) -> Option<UInterval> {
        UInterval::new(self.min.max(other.min), self.max.min(other.max))
    }

    /// Abstract wrapping addition: exact when no member sum wraps,
    /// otherwise ⊤ (as in the kernel's `scalar_min_max_add`).
    #[must_use]
    pub fn add(self, other: UInterval) -> UInterval {
        match (
            self.min.checked_add(other.min),
            self.max.checked_add(other.max),
        ) {
            (Some(lo), Some(hi)) => UInterval { min: lo, max: hi },
            _ => UInterval::FULL,
        }
    }

    /// Abstract wrapping subtraction: exact when no member difference
    /// underflows, otherwise ⊤.
    #[must_use]
    pub fn sub(self, other: UInterval) -> UInterval {
        match (
            self.min.checked_sub(other.max),
            self.max.checked_sub(other.min),
        ) {
            (Some(lo), Some(hi)) => UInterval { min: lo, max: hi },
            _ => UInterval::FULL,
        }
    }

    /// Abstract wrapping multiplication: exact when the extreme product
    /// does not overflow, otherwise ⊤.
    #[must_use]
    pub fn mul(self, other: UInterval) -> UInterval {
        match self.max.checked_mul(other.max) {
            Some(hi) => UInterval {
                min: self.min.wrapping_mul(other.min),
                max: hi,
            },
            None => UInterval::FULL,
        }
    }

    /// Abstract bitwise AND: `x & y <= min(x, y)`, lower bound 0.
    #[must_use]
    pub fn and(self, other: UInterval) -> UInterval {
        UInterval {
            min: 0,
            max: self.max.min(other.max),
        }
    }

    /// Abstract bitwise OR: `x | y >= max(x, y)` and the result cannot
    /// exceed the all-ones value of the wider operand's bit length.
    #[must_use]
    pub fn or(self, other: UInterval) -> UInterval {
        UInterval {
            min: self.min.max(other.min),
            max: ones_envelope(self.max | other.max),
        }
    }

    /// Abstract bitwise XOR: bounded by the bit-length envelope.
    #[must_use]
    pub fn xor(self, other: UInterval) -> UInterval {
        UInterval {
            min: 0,
            max: ones_envelope(self.max | other.max),
        }
    }

    /// Abstract left shift by a constant: exact unless the top bits shift
    /// out, in which case ⊤.
    #[must_use]
    pub fn lshift(self, k: u32) -> UInterval {
        debug_assert!(k < 64);
        if k == 0 {
            return self;
        }
        if self.max.leading_zeros() >= k {
            UInterval {
                min: self.min << k,
                max: self.max << k,
            }
        } else {
            UInterval::FULL
        }
    }

    /// Abstract logical right shift by a constant (always exact).
    #[must_use]
    pub fn rshift(self, k: u32) -> UInterval {
        debug_assert!(k < 64);
        UInterval {
            min: self.min >> k,
            max: self.max >> k,
        }
    }

    /// Abstract unsigned division with BPF `x / 0 = 0` semantics:
    /// `x / y <= x`, and 0 is reachable whenever the divisor may be 0 or
    /// exceed `x`.
    #[must_use]
    pub fn div(self, other: UInterval) -> UInterval {
        let hi = if other.min == 0 {
            self.max
        } else {
            self.max / other.min
        };
        let lo = if other.contains(0) {
            0
        } else {
            self.min / other.max
        };
        UInterval { min: lo, max: hi }
    }

    /// Abstract unsigned remainder with BPF `x % 0 = x` semantics:
    /// `x % y <= x` always.
    #[must_use]
    pub fn rem(self, _other: UInterval) -> UInterval {
        UInterval {
            min: 0,
            max: self.max,
        }
    }

    /// Classic threshold widening `self ∇ newer`: a bound that grew since
    /// the last iteration jumps straight to the next value of
    /// [`UInterval::WIDEN_THRESHOLDS`] instead of creeping one loop trip
    /// at a time, so ascending chains stabilize after at most one jump per
    /// remaining threshold.
    ///
    /// Stable bounds are kept exactly; the result always covers both
    /// operands.
    #[must_use]
    pub fn widen(self, newer: UInterval) -> UInterval {
        self.widen_with(newer, &[])
    }

    /// [`UInterval::widen`] over the built-in ladder *extended* with
    /// `extra` thresholds (sorted ascending) — the classic "widening with
    /// thresholds" refinement: an analyzer harvests the comparison
    /// constants of the program under analysis so a growing bound lands
    /// on the nearest `i < N` guard instead of jumping to a register-width
    /// extreme.
    ///
    /// Termination is preserved: the merged ladder is finite, and every
    /// jump moves strictly up it.
    #[must_use]
    pub fn widen_with(self, newer: UInterval, extra: &[u64]) -> UInterval {
        debug_assert!(
            extra.windows(2).all(|w| w[0] <= w[1]),
            "thresholds ascending"
        );
        let min = if newer.min >= self.min {
            self.min
        } else {
            let base = *UInterval::WIDEN_THRESHOLDS
                .iter()
                .rev()
                .find(|&&t| t <= newer.min)
                .expect("0 is always a lower threshold");
            // The tightest lower threshold across both ladders.
            extra
                .iter()
                .copied()
                .take_while(|&t| t <= newer.min)
                .last()
                .map_or(base, |e| base.max(e))
        };
        let max = if newer.max <= self.max {
            self.max
        } else {
            let base = *UInterval::WIDEN_THRESHOLDS
                .iter()
                .find(|&&t| t >= newer.max)
                .expect("u64::MAX is always an upper threshold");
            extra
                .iter()
                .copied()
                .find(|&t| t >= newer.max)
                .map_or(base, |e| base.min(e))
        };
        UInterval { min, max }
    }

    /// The jump targets of [`UInterval::widen`]: the magic values of the
    /// 64-bit machine (register-width extremes and the sign boundaries of
    /// the narrower views), ascending.
    pub const WIDEN_THRESHOLDS: [u64; 6] = [
        0,
        1,
        i32::MAX as u64,
        u32::MAX as u64,
        i64::MAX as u64,
        u64::MAX,
    ];
}

/// Smallest all-ones value covering `x`: `2^bits(x) - 1`.
fn ones_envelope(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        u64::MAX >> x.leading_zeros()
    }
}

impl Default for UInterval {
    /// The default is ⊤ (no information), matching an untracked register.
    fn default() -> UInterval {
        UInterval::FULL
    }
}

impl fmt::Debug for UInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

impl fmt::Display for UInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All intervals within [0, n).
    fn intervals(n: u64) -> impl Iterator<Item = UInterval> {
        (0..n).flat_map(move |lo| (lo..n).map(move |hi| UInterval::new(lo, hi).unwrap()))
    }

    fn check_sound(
        op_i: impl Fn(UInterval, UInterval) -> UInterval,
        op_c: impl Fn(u64, u64) -> u64,
    ) {
        for a in intervals(8) {
            for b in intervals(8) {
                let r = op_i(a, b);
                for x in a.min()..=a.max() {
                    for y in b.min()..=b.max() {
                        assert!(
                            r.contains(op_c(x, y)),
                            "{a} op {b}: {x}, {y} -> {} not in {r}",
                            op_c(x, y)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn add_sound_small() {
        check_sound(UInterval::add, |x, y| x.wrapping_add(y));
    }

    #[test]
    fn sub_sound_small() {
        check_sound(UInterval::sub, |x, y| x.wrapping_sub(y));
    }

    #[test]
    fn mul_sound_small() {
        check_sound(UInterval::mul, |x, y| x.wrapping_mul(y));
    }

    #[test]
    fn and_or_xor_sound_small() {
        check_sound(UInterval::and, |x, y| x & y);
        check_sound(UInterval::or, |x, y| x | y);
        check_sound(UInterval::xor, |x, y| x ^ y);
    }

    #[test]
    fn div_rem_sound_small() {
        check_sound(UInterval::div, |x, y| if y == 0 { 0 } else { x / y });
        check_sound(UInterval::rem, |x, y| if y == 0 { x } else { x % y });
    }

    #[test]
    fn shifts_sound_small() {
        for a in intervals(8) {
            for k in 0..6u32 {
                let l = a.lshift(k);
                let r = a.rshift(k);
                for x in a.min()..=a.max() {
                    assert!(l.contains(x << k));
                    assert!(r.contains(x >> k));
                }
            }
        }
    }

    #[test]
    fn wrap_produces_full() {
        let nearly = UInterval::new(u64::MAX - 1, u64::MAX).unwrap();
        assert!(nearly.add(UInterval::constant(2)).is_full());
        assert!(UInterval::constant(0).sub(UInterval::constant(1)).is_full());
        assert!(nearly.mul(UInterval::constant(2)).is_full());
        assert!(nearly.lshift(1).is_full());
    }

    #[test]
    fn lattice_ops() {
        let a = UInterval::new(2, 5).unwrap();
        let b = UInterval::new(4, 9).unwrap();
        assert_eq!(a.union(b), UInterval::new(2, 9).unwrap());
        assert_eq!(a.intersect(b), UInterval::new(4, 5));
        let c = UInterval::new(7, 9).unwrap();
        assert_eq!(a.intersect(c), None);
        assert!(a.is_subset_of(UInterval::new(0, 10).unwrap()));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn constants_and_empties() {
        assert_eq!(UInterval::new(3, 2), None);
        assert_eq!(UInterval::constant(7).as_constant(), Some(7));
        assert_eq!(UInterval::new(1, 2).unwrap().as_constant(), None);
        assert_eq!(UInterval::default(), UInterval::FULL);
    }

    #[test]
    fn ones_envelope_examples() {
        assert_eq!(ones_envelope(0), 0);
        assert_eq!(ones_envelope(1), 1);
        assert_eq!(ones_envelope(5), 7);
        assert_eq!(ones_envelope(8), 15);
        assert_eq!(ones_envelope(u64::MAX), u64::MAX);
    }

    #[test]
    fn div_by_possibly_zero_reaches_zero() {
        let a = UInterval::new(5, 10).unwrap();
        let maybe_zero = UInterval::new(0, 3).unwrap();
        let r = a.div(maybe_zero);
        assert!(r.contains(0), "x / 0 = 0 must be reachable");
        assert!(r.contains(10), "x / 1 = x must be reachable");
    }
}
