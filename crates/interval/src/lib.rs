//! # interval-domain — kernel-style value bounds
//!
//! The BPF verifier tracks each scalar register in a *reduced product* of
//! two abstract domains: the bit-level tnum domain (the subject of the
//! paper) and value ranges — unsigned `[umin, umax]` and signed
//! `[smin, smax]` bounds, as in the kernel's `struct bpf_reg_state`.
//!
//! This crate provides that range half and the glue between the two
//! domains:
//!
//! * [`UInterval`] / [`SInterval`] — unsigned and signed 64-bit intervals
//!   with sound transfer functions for every BPF ALU operation;
//! * [`Bounds`] — the product of both orders with the kernel's
//!   *deduction* rules (`__reg_deduce_bounds`) that let each view sharpen
//!   the other, plus tnum synchronization (`reg_bounds_sync`):
//!   [`Bounds::from_tnum`], [`Bounds::to_tnum`], [`Bounds::refined_by_tnum`].
//!
//! The `verifier` crate combines [`Bounds`] with a
//! [`Tnum`](tnum::Tnum) into its scalar register state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::should_implement_trait)]
#![allow(clippy::manual_checked_ops)]

mod bounds;
mod domain_impl;
mod signed;
mod thresholds;
mod unsigned;

pub use bounds::Bounds;
pub use signed::SInterval;
pub use thresholds::WidenThresholds;
pub use unsigned::UInterval;
