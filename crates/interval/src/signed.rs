//! Signed 64-bit intervals.

use core::fmt;

/// An inclusive signed interval `[min, max]`, `min <= max`, over `i64`.
///
/// The signed companion of [`UInterval`](crate::UInterval); operations
/// widen to [`SInterval::FULL`] whenever signed overflow is possible,
/// mirroring the kernel's `scalar_min_max_*` handling.
///
/// # Examples
///
/// ```
/// use interval_domain::SInterval;
/// let a = SInterval::new(-3, 4).unwrap();
/// assert!(a.contains(0));
/// assert_eq!(a.neg(), SInterval::new(-4, 3).unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SInterval {
    min: i64,
    max: i64,
}

impl SInterval {
    /// The full interval `[i64::MIN, i64::MAX]` — ⊤.
    pub const FULL: SInterval = SInterval {
        min: i64::MIN,
        max: i64::MAX,
    };

    /// Creates `[min, max]`; `None` if `min > max`.
    #[must_use]
    pub const fn new(min: i64, max: i64) -> Option<SInterval> {
        if min <= max {
            Some(SInterval { min, max })
        } else {
            None
        }
    }

    /// The singleton `[v, v]`.
    #[must_use]
    pub const fn constant(v: i64) -> SInterval {
        SInterval { min: v, max: v }
    }

    /// Lower bound.
    #[must_use]
    pub const fn min(self) -> i64 {
        self.min
    }

    /// Upper bound.
    #[must_use]
    pub const fn max(self) -> i64 {
        self.max
    }

    /// Whether this is the full interval.
    #[must_use]
    pub const fn is_full(self) -> bool {
        self.min == i64::MIN && self.max == i64::MAX
    }

    /// Whether this is a singleton, and if so its value.
    #[must_use]
    pub const fn as_constant(self) -> Option<i64> {
        if self.min == self.max {
            Some(self.min)
        } else {
            None
        }
    }

    /// Membership test.
    #[must_use]
    pub const fn contains(self, x: i64) -> bool {
        self.min <= x && x <= self.max
    }

    /// Interval order.
    #[must_use]
    pub const fn is_subset_of(self, other: SInterval) -> bool {
        other.min <= self.min && self.max <= other.max
    }

    /// Join (convex hull).
    #[must_use]
    pub fn union(self, other: SInterval) -> SInterval {
        SInterval {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Meet; `None` when disjoint.
    #[must_use]
    pub fn intersect(self, other: SInterval) -> Option<SInterval> {
        SInterval::new(self.min.max(other.min), self.max.min(other.max))
    }

    /// Abstract wrapping addition: ⊤ when either extreme overflows.
    #[must_use]
    pub fn add(self, other: SInterval) -> SInterval {
        match (
            self.min.checked_add(other.min),
            self.max.checked_add(other.max),
        ) {
            (Some(lo), Some(hi)) => SInterval { min: lo, max: hi },
            _ => SInterval::FULL,
        }
    }

    /// Abstract wrapping subtraction: ⊤ when either extreme overflows.
    #[must_use]
    pub fn sub(self, other: SInterval) -> SInterval {
        match (
            self.min.checked_sub(other.max),
            self.max.checked_sub(other.min),
        ) {
            (Some(lo), Some(hi)) => SInterval { min: lo, max: hi },
            _ => SInterval::FULL,
        }
    }

    /// Abstract wrapping multiplication: interval product over the four
    /// corner products, ⊤ when any corner overflows.
    #[must_use]
    pub fn mul(self, other: SInterval) -> SInterval {
        let corners = [
            self.min.checked_mul(other.min),
            self.min.checked_mul(other.max),
            self.max.checked_mul(other.min),
            self.max.checked_mul(other.max),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for c in corners {
            match c {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return SInterval::FULL,
            }
        }
        SInterval { min: lo, max: hi }
    }

    /// Abstract negation: ⊤ when `i64::MIN` is a member (its negation
    /// wraps).
    #[must_use]
    pub fn neg(self) -> SInterval {
        match (self.max.checked_neg(), self.min.checked_neg()) {
            (Some(lo), Some(hi)) => SInterval { min: lo, max: hi },
            _ => SInterval::FULL,
        }
    }

    /// Abstract arithmetic right shift by a constant (always exact on the
    /// extremes: `>>` is monotone over signed values).
    #[must_use]
    pub fn arshift(self, k: u32) -> SInterval {
        debug_assert!(k < 64);
        SInterval {
            min: self.min >> k,
            max: self.max >> k,
        }
    }

    /// Classic threshold widening `self ∇ newer` — the signed companion
    /// of [`UInterval::widen`](crate::UInterval::widen): a bound that grew
    /// jumps to the next value of [`SInterval::WIDEN_THRESHOLDS`], stable
    /// bounds are kept exactly.
    #[must_use]
    pub fn widen(self, newer: SInterval) -> SInterval {
        self.widen_with(newer, &[])
    }

    /// [`SInterval::widen`] over the built-in ladder extended with `extra`
    /// thresholds (sorted ascending) — the signed companion of
    /// [`UInterval::widen_with`](crate::UInterval::widen_with).
    #[must_use]
    pub fn widen_with(self, newer: SInterval, extra: &[i64]) -> SInterval {
        debug_assert!(
            extra.windows(2).all(|w| w[0] <= w[1]),
            "thresholds ascending"
        );
        let min = if newer.min >= self.min {
            self.min
        } else {
            let base = *SInterval::WIDEN_THRESHOLDS
                .iter()
                .rev()
                .find(|&&t| t <= newer.min)
                .expect("i64::MIN is always a lower threshold");
            extra
                .iter()
                .copied()
                .take_while(|&t| t <= newer.min)
                .last()
                .map_or(base, |e| base.max(e))
        };
        let max = if newer.max <= self.max {
            self.max
        } else {
            let base = *SInterval::WIDEN_THRESHOLDS
                .iter()
                .find(|&&t| t >= newer.max)
                .expect("i64::MAX is always an upper threshold");
            extra
                .iter()
                .copied()
                .find(|&t| t >= newer.max)
                .map_or(base, |e| base.min(e))
        };
        SInterval { min, max }
    }

    /// The jump targets of [`SInterval::widen`], ascending: zero, ±1, the
    /// 32-bit extremes, and the register-width extremes.
    pub const WIDEN_THRESHOLDS: [i64; 8] = [
        i64::MIN,
        i32::MIN as i64,
        -1,
        0,
        1,
        i32::MAX as i64,
        u32::MAX as i64,
        i64::MAX,
    ];

    /// Whether every member is non-negative (the signed and unsigned views
    /// then coincide).
    #[must_use]
    pub const fn is_non_negative(self) -> bool {
        self.min >= 0
    }

    /// Whether every member is negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.max < 0
    }
}

impl Default for SInterval {
    /// The default is ⊤ (no information).
    fn default() -> SInterval {
        SInterval::FULL
    }
}

impl fmt::Debug for SInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

impl fmt::Display for SInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intervals() -> impl Iterator<Item = SInterval> {
        (-6i64..6).flat_map(move |lo| (lo..6).map(move |hi| SInterval::new(lo, hi).unwrap()))
    }

    fn check_sound(
        op_i: impl Fn(SInterval, SInterval) -> SInterval,
        op_c: impl Fn(i64, i64) -> i64,
    ) {
        for a in intervals() {
            for b in intervals() {
                let r = op_i(a, b);
                for x in a.min()..=a.max() {
                    for y in b.min()..=b.max() {
                        assert!(r.contains(op_c(x, y)), "{a} op {b} at ({x},{y})");
                    }
                }
            }
        }
    }

    #[test]
    fn add_sub_mul_sound_small() {
        check_sound(SInterval::add, |x, y| x.wrapping_add(y));
        check_sound(SInterval::sub, |x, y| x.wrapping_sub(y));
        check_sound(SInterval::mul, |x, y| x.wrapping_mul(y));
    }

    #[test]
    fn neg_and_arshift_sound_small() {
        for a in intervals() {
            let n = a.neg();
            for x in a.min()..=a.max() {
                assert!(n.contains(x.wrapping_neg()));
            }
            for k in 0..4u32 {
                let s = a.arshift(k);
                for x in a.min()..=a.max() {
                    assert!(s.contains(x >> k));
                }
            }
        }
    }

    #[test]
    fn overflow_gives_full() {
        let hi = SInterval::new(i64::MAX - 1, i64::MAX).unwrap();
        assert!(hi.add(SInterval::constant(2)).is_full());
        let lo = SInterval::constant(i64::MIN);
        assert!(lo.neg().is_full());
        assert!(lo.sub(SInterval::constant(1)).is_full());
        assert!(hi.mul(SInterval::constant(3)).is_full());
    }

    #[test]
    fn mul_corner_cases() {
        // Mixed signs: corners matter.
        let a = SInterval::new(-3, 2).unwrap();
        let b = SInterval::new(-5, 4).unwrap();
        let r = a.mul(b);
        assert_eq!(r, SInterval::new(-12, 15).unwrap());
    }

    #[test]
    fn sign_predicates() {
        assert!(SInterval::new(0, 5).unwrap().is_non_negative());
        assert!(!SInterval::new(-1, 5).unwrap().is_non_negative());
        assert!(SInterval::new(-5, -1).unwrap().is_negative());
        assert!(!SInterval::new(-5, 0).unwrap().is_negative());
    }

    #[test]
    fn lattice_ops() {
        let a = SInterval::new(-2, 5).unwrap();
        let b = SInterval::new(0, 9).unwrap();
        assert_eq!(a.union(b), SInterval::new(-2, 9).unwrap());
        assert_eq!(a.intersect(b), SInterval::new(0, 5));
        assert_eq!(a.intersect(SInterval::new(6, 7).unwrap()), None);
        assert_eq!(SInterval::new(2, 1), None);
    }
}
