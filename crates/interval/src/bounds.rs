//! The product of unsigned and signed bounds with kernel-style deduction
//! and tnum synchronization.

use core::fmt;

use tnum::Tnum;

use crate::signed::SInterval;
use crate::unsigned::UInterval;

/// Combined unsigned + signed bounds on a 64-bit register, as tracked by
/// the kernel's `bpf_reg_state` (`umin_value`/`umax_value` and
/// `smin_value`/`smax_value`).
///
/// The two views describe the *same* set of concrete bit patterns; a value
/// `x: u64` is a member iff `u.contains(x)` and `s.contains(x as i64)`.
/// [`Bounds::deduce`] implements the kernel's `__reg_deduce_bounds`: each
/// view is sharpened from the other whenever the sign of all members is
/// determined. An impossible combination (empty set) is reported as `None`,
/// which the verifier treats as an unreachable path.
///
/// # Examples
///
/// ```
/// use interval_domain::Bounds;
/// use tnum::Tnum;
///
/// // A value masked with 0b111 is in [0, 7] in every view.
/// let b = Bounds::from_tnum("xxx".parse::<Tnum>()?);
/// assert_eq!(b.umax(), 7);
/// assert_eq!(b.smin(), 0);
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bounds {
    u: UInterval,
    s: SInterval,
}

impl Bounds {
    /// No information: both views full.
    pub const FULL: Bounds = Bounds {
        u: UInterval::FULL,
        s: SInterval::FULL,
    };

    /// The singleton abstraction of one concrete value.
    #[must_use]
    pub const fn constant(v: u64) -> Bounds {
        Bounds {
            u: UInterval::constant(v),
            s: SInterval::constant(v as i64),
        }
    }

    /// Builds from an unsigned range, deducing the signed view.
    ///
    /// Returns the ⊤ signed view refined as far as the unsigned range
    /// allows (never `None`: a non-empty unsigned range is satisfiable).
    #[must_use]
    pub fn from_unsigned(u: UInterval) -> Bounds {
        Bounds {
            u,
            s: SInterval::FULL,
        }
        .deduce()
        .expect("non-empty unsigned range is satisfiable")
    }

    /// Builds from a signed range, deducing the unsigned view.
    #[must_use]
    pub fn from_signed(s: SInterval) -> Bounds {
        Bounds {
            u: UInterval::FULL,
            s,
        }
        .deduce()
        .expect("non-empty signed range is satisfiable")
    }

    /// The bounds implied by a tnum: `[t.min_value(), t.max_value()]`
    /// unsigned and `[t.min_signed(), t.max_signed()]` signed.
    #[must_use]
    pub fn from_tnum(t: Tnum) -> Bounds {
        let u = UInterval::new(t.min_value(), t.max_value()).expect("min <= max");
        let s = SInterval::new(t.min_signed(), t.max_signed()).expect("min <= max");
        Bounds { u, s }
            .deduce()
            .expect("tnum bounds are satisfiable")
    }

    /// The unsigned view.
    #[must_use]
    pub const fn unsigned(self) -> UInterval {
        self.u
    }

    /// The signed view.
    #[must_use]
    pub const fn signed(self) -> SInterval {
        self.s
    }

    /// Unsigned minimum (`umin_value`).
    #[must_use]
    pub const fn umin(self) -> u64 {
        self.u.min()
    }

    /// Unsigned maximum (`umax_value`).
    #[must_use]
    pub const fn umax(self) -> u64 {
        self.u.max()
    }

    /// Signed minimum (`smin_value`).
    #[must_use]
    pub const fn smin(self) -> i64 {
        self.s.min()
    }

    /// Signed maximum (`smax_value`).
    #[must_use]
    pub const fn smax(self) -> i64 {
        self.s.max()
    }

    /// Membership: `x` must satisfy both views.
    #[must_use]
    pub const fn contains(self, x: u64) -> bool {
        self.u.contains(x) && self.s.contains(x as i64)
    }

    /// Whether both views carry no information.
    #[must_use]
    pub const fn is_full(self) -> bool {
        self.u.is_full() && self.s.is_full()
    }

    /// Whether the bounds pin a single value, and if so which.
    #[must_use]
    pub fn as_constant(self) -> Option<u64> {
        self.u.as_constant()
    }

    /// Bounds order: both views must be included.
    #[must_use]
    pub const fn is_subset_of(self, other: Bounds) -> bool {
        self.u.is_subset_of(other.u) && self.s.is_subset_of(other.s)
    }

    /// Join: convex hull in both views.
    #[must_use]
    pub fn union(self, other: Bounds) -> Bounds {
        Bounds {
            u: self.u.union(other.u),
            s: self.s.union(other.s),
        }
    }

    /// Threshold widening `self ∇ newer`, view-wise: each of the four
    /// endpoints either holds steady or jumps to the next widening
    /// threshold (see [`UInterval::widen`] / [`SInterval::widen`]).
    ///
    /// The result is deliberately **not** re-deduced: deduction is
    /// reductive and re-sharpening a freshly widened bound from the other
    /// view could re-open the slow ascent widening exists to cut short.
    /// Fixpoint engines normalize once more during their narrowing pass
    /// instead.
    #[must_use]
    pub fn widen(self, newer: Bounds) -> Bounds {
        Bounds {
            u: self.u.widen(newer.u),
            s: self.s.widen(newer.s),
        }
    }

    /// [`Bounds::widen`] with the built-in ladders extended by harvested
    /// per-program thresholds ([`crate::WidenThresholds`]), so growing
    /// endpoints can land on the comparison constants that actually bound
    /// the loop instead of the register-width extremes.
    #[must_use]
    pub fn widen_with(self, newer: Bounds, thresholds: &crate::WidenThresholds) -> Bounds {
        Bounds {
            u: self.u.widen_with(newer.u, thresholds.unsigned()),
            s: self.s.widen_with(newer.s, thresholds.signed()),
        }
    }

    /// Meet: `None` when the constraint set is unsatisfiable.
    #[must_use]
    pub fn intersect(self, other: Bounds) -> Option<Bounds> {
        Bounds {
            u: self.u.intersect(other.u)?,
            s: self.s.intersect(other.s)?,
        }
        .deduce()
    }

    /// The kernel's `__reg_deduce_bounds`: let each view sharpen the other.
    ///
    /// * If the unsigned range stays on one side of the sign boundary, the
    ///   signed view is the same range reinterpreted.
    /// * If the signed range stays on one side of zero, the unsigned view
    ///   is the same range reinterpreted.
    ///
    /// Returns `None` when the two views contradict (empty set).
    #[must_use]
    pub fn deduce(self) -> Option<Bounds> {
        let mut u = self.u;
        let mut s = self.s;
        // Two rounds reach the fixpoint for these rules.
        for _ in 0..2 {
            // Unsigned range entirely below the sign boundary, or entirely
            // at/above it: reinterpret as a signed range.
            if u.max() <= i64::MAX as u64 || u.min() > i64::MAX as u64 {
                s = s.intersect(SInterval::new(u.min() as i64, u.max() as i64)?)?;
            }
            // Signed range entirely non-negative, or entirely negative:
            // reinterpret as an unsigned range.
            if s.min() >= 0 || s.max() < 0 {
                u = u.intersect(UInterval::new(s.min() as u64, s.max() as u64)?)?;
            }
        }
        Some(Bounds { u, s })
    }

    /// Refines these bounds with the knowledge of a tnum
    /// (half of the kernel's `reg_bounds_sync`).
    ///
    /// Returns `None` when tnum and bounds contradict.
    #[must_use]
    pub fn refined_by_tnum(self, t: Tnum) -> Option<Bounds> {
        self.intersect(Bounds::from_tnum(t))
    }

    /// The tnum implied by these bounds — the other half of
    /// `reg_bounds_sync` (`__reg_bound_offset`): `tnum_range` over the
    /// unsigned view.
    #[must_use]
    pub fn to_tnum(self) -> Tnum {
        Tnum::range(self.umin(), self.umax())
    }

    /// Abstract addition.
    #[must_use]
    pub fn add(self, other: Bounds) -> Bounds {
        Bounds {
            u: self.u.add(other.u),
            s: self.s.add(other.s),
        }
    }

    /// Abstract subtraction.
    #[must_use]
    pub fn sub(self, other: Bounds) -> Bounds {
        Bounds {
            u: self.u.sub(other.u),
            s: self.s.sub(other.s),
        }
    }

    /// Abstract multiplication.
    #[must_use]
    pub fn mul(self, other: Bounds) -> Bounds {
        Bounds {
            u: self.u.mul(other.u),
            s: self.s.mul(other.s),
        }
    }

    /// Abstract negation (signed-led; unsigned deduced).
    #[must_use]
    pub fn neg(self) -> Bounds {
        Bounds::from_signed(self.s.neg())
    }

    /// Abstract bitwise AND (unsigned-led; signed deduced).
    #[must_use]
    pub fn and(self, other: Bounds) -> Bounds {
        Bounds::from_unsigned(self.u.and(other.u))
    }

    /// Abstract bitwise OR (unsigned-led; signed deduced).
    #[must_use]
    pub fn or(self, other: Bounds) -> Bounds {
        Bounds::from_unsigned(self.u.or(other.u))
    }

    /// Abstract bitwise XOR (unsigned-led; signed deduced).
    #[must_use]
    pub fn xor(self, other: Bounds) -> Bounds {
        Bounds::from_unsigned(self.u.xor(other.u))
    }

    /// Abstract left shift by a constant (unsigned-led; signed deduced).
    #[must_use]
    pub fn lshift(self, k: u32) -> Bounds {
        Bounds::from_unsigned(self.u.lshift(k))
    }

    /// Abstract logical right shift by a constant (unsigned-led).
    #[must_use]
    pub fn rshift(self, k: u32) -> Bounds {
        Bounds::from_unsigned(self.u.rshift(k))
    }

    /// Abstract arithmetic right shift by a constant (signed-led; unsigned
    /// deduced).
    #[must_use]
    pub fn arshift(self, k: u32) -> Bounds {
        Bounds::from_signed(self.s.arshift(k))
    }

    /// Abstract unsigned division (BPF `x / 0 = 0`).
    #[must_use]
    pub fn div(self, other: Bounds) -> Bounds {
        Bounds::from_unsigned(self.u.div(other.u))
    }

    /// Abstract unsigned remainder (BPF `x % 0 = x`).
    #[must_use]
    pub fn rem(self, other: Bounds) -> Bounds {
        Bounds::from_unsigned(self.u.rem(other.u))
    }
}

impl fmt::Debug for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{:?} s{:?}", self.u, self.s)
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{} s{}", self.u, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_agrees_in_both_views() {
        let b = Bounds::constant(u64::MAX);
        assert_eq!(b.umin(), u64::MAX);
        assert_eq!(b.smin(), -1);
        assert!(b.contains(u64::MAX));
        assert!(!b.contains(0));
        assert_eq!(b.as_constant(), Some(u64::MAX));
    }

    #[test]
    fn deduce_learns_sign_from_unsigned() {
        // Unsigned [0, 100] means signed [0, 100].
        let b = Bounds::from_unsigned(UInterval::new(0, 100).unwrap());
        assert_eq!(b.smin(), 0);
        assert_eq!(b.smax(), 100);
        // Unsigned entirely above the sign boundary means negative signed.
        let hi = Bounds::from_unsigned(UInterval::new(u64::MAX - 5, u64::MAX).unwrap());
        assert_eq!(hi.smax(), -1);
        assert_eq!(hi.smin(), -6);
    }

    #[test]
    fn deduce_learns_unsigned_from_signed() {
        let b = Bounds::from_signed(SInterval::new(5, 9).unwrap());
        assert_eq!((b.umin(), b.umax()), (5, 9));
        let neg = Bounds::from_signed(SInterval::new(-4, -2).unwrap());
        assert_eq!(neg.umin(), (-4i64) as u64);
        assert_eq!(neg.umax(), (-2i64) as u64);
    }

    #[test]
    fn deduce_detects_contradiction() {
        // Unsigned says [0, 10]; signed says [-5, -1]: impossible.
        let b = Bounds {
            u: UInterval::new(0, 10).unwrap(),
            s: SInterval::new(-5, -1).unwrap(),
        };
        assert_eq!(b.deduce(), None);
    }

    #[test]
    fn deduce_never_drops_members_small() {
        // Soundness of deduction: any value satisfying both input views
        // still satisfies both output views.
        let u_ranges = [
            (0u64, 5u64),
            (3, 200),
            (u64::MAX - 3, u64::MAX),
            (0, u64::MAX),
        ];
        let s_ranges = [(-5i64, 5i64), (0, 100), (-10, -1), (i64::MIN, i64::MAX)];
        for &(ul, uh) in &u_ranges {
            for &(sl, sh) in &s_ranges {
                let b = Bounds {
                    u: UInterval::new(ul, uh).unwrap(),
                    s: SInterval::new(sl, sh).unwrap(),
                };
                let samples: Vec<u64> = (0..64)
                    .map(|i| ul.wrapping_add(i * 7919))
                    .chain([ul, uh, 0, u64::MAX, sl as u64, sh as u64])
                    .collect();
                match b.deduce() {
                    None => {
                        for &x in &samples {
                            assert!(!b.contains(x), "deduce dropped member {x}");
                        }
                    }
                    Some(d) => {
                        for &x in &samples {
                            if b.contains(x) {
                                assert!(d.contains(x), "deduce dropped member {x}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tnum_round_trip() {
        let t: Tnum = "10xx".parse().unwrap(); // {8..=11}
        let b = Bounds::from_tnum(t);
        assert_eq!((b.umin(), b.umax()), (8, 11));
        assert_eq!((b.smin(), b.smax()), (8, 11));
        // And back: the implied tnum re-derives the prefix.
        assert_eq!(b.to_tnum(), t);
    }

    #[test]
    fn refined_by_tnum_detects_conflict() {
        let b = Bounds::from_unsigned(UInterval::new(0, 3).unwrap());
        // A tnum whose minimum value is 8 cannot satisfy umax = 3.
        let t: Tnum = "1xxx".parse().unwrap();
        assert_eq!(b.refined_by_tnum(t), None);
    }

    #[test]
    fn arithmetic_delegates_to_views() {
        let a = Bounds::from_unsigned(UInterval::new(2, 5).unwrap());
        let c = Bounds::constant(10);
        let sum = a.add(c);
        assert_eq!((sum.umin(), sum.umax()), (12, 15));
        assert_eq!((sum.smin(), sum.smax()), (12, 15));
        let diff = c.sub(a);
        assert_eq!((diff.umin(), diff.umax()), (5, 8));
        let prod = a.mul(c);
        assert_eq!((prod.umin(), prod.umax()), (20, 50));
    }

    #[test]
    fn bitwise_ops_are_sound_for_samples() {
        let a = Bounds::from_unsigned(UInterval::new(0, 12).unwrap());
        let b = Bounds::from_unsigned(UInterval::new(3, 5).unwrap());
        let and = a.and(b);
        let or = a.or(b);
        let xor = a.xor(b);
        for x in 0u64..=12 {
            for y in 3u64..=5 {
                assert!(and.contains(x & y));
                assert!(or.contains(x | y));
                assert!(xor.contains(x ^ y));
            }
        }
    }

    #[test]
    fn shifts_and_division() {
        let a = Bounds::from_unsigned(UInterval::new(4, 9).unwrap());
        assert_eq!(a.lshift(2).umax(), 36);
        assert_eq!(a.rshift(1).umin(), 2);
        let d = a.div(Bounds::constant(2));
        assert_eq!((d.umin(), d.umax()), (2, 4));
        let m = a.rem(Bounds::constant(4));
        assert!(m.umax() <= 9);
        // arshift is signed-led.
        let n = Bounds::from_signed(SInterval::new(-8, 8).unwrap());
        let sh = n.arshift(1);
        assert_eq!((sh.smin(), sh.smax()), (-4, 4));
    }

    #[test]
    fn union_and_intersect() {
        let a = Bounds::from_unsigned(UInterval::new(0, 4).unwrap());
        let b = Bounds::from_unsigned(UInterval::new(10, 12).unwrap());
        let u = a.union(b);
        assert_eq!((u.umin(), u.umax()), (0, 12));
        assert_eq!(a.intersect(b), None);
        let c = Bounds::from_unsigned(UInterval::new(3, 11).unwrap());
        let i = a.intersect(c).unwrap();
        assert_eq!((i.umin(), i.umax()), (3, 4));
    }

    #[test]
    fn neg_is_sound_for_samples() {
        let a = Bounds::from_signed(SInterval::new(-3, 7).unwrap());
        let n = a.neg();
        for x in -3i64..=7 {
            assert!(n.contains(x.wrapping_neg() as u64), "missing -{x}");
        }
    }
}
