//! Randomized property tests for the interval domain at full 64-bit
//! width, driven by the workspace's deterministic SplitMix64 stream.

// Explicit BPF division semantics (`x / 0 = 0`, `x % 0 = x`) throughout.
#![allow(clippy::manual_checked_ops)]
use domain::rng::SplitMix64;
use interval_domain::{Bounds, SInterval, UInterval};
use tnum::Tnum;

const CASES: u32 = 512;

fn any_uinterval(rng: &mut SplitMix64) -> UInterval {
    let (a, b) = (rng.next_u64(), rng.next_u64());
    UInterval::new(a.min(b), a.max(b)).unwrap()
}

fn any_sinterval(rng: &mut SplitMix64) -> SInterval {
    let (a, b) = (rng.next_u64() as i64, rng.next_u64() as i64);
    SInterval::new(a.min(b), a.max(b)).unwrap()
}

/// An unsigned interval with a random member.
fn uinterval_and_member(rng: &mut SplitMix64) -> (UInterval, u64) {
    let i = any_uinterval(rng);
    let span = i.max() - i.min();
    let pick = rng.next_u64();
    let x = if span == u64::MAX {
        pick
    } else {
        i.min() + pick % (span + 1)
    };
    (i, x)
}

fn sinterval_and_member(rng: &mut SplitMix64) -> (SInterval, i64) {
    let i = any_sinterval(rng);
    let span = i.max().wrapping_sub(i.min()) as u64;
    let pick = rng.next_u64();
    let x = if span == u64::MAX {
        pick as i64
    } else {
        i.min().wrapping_add((pick % (span + 1)) as i64)
    };
    (i, x)
}

#[test]
fn unsigned_ops_sound() {
    let mut rng = SplitMix64::new(0x30);
    for _ in 0..CASES {
        let (a, x) = uinterval_and_member(&mut rng);
        let (b, y) = uinterval_and_member(&mut rng);
        assert!(a.add(b).contains(x.wrapping_add(y)));
        assert!(a.sub(b).contains(x.wrapping_sub(y)));
        assert!(a.mul(b).contains(x.wrapping_mul(y)));
        assert!(a.and(b).contains(x & y));
        assert!(a.or(b).contains(x | y));
        assert!(a.xor(b).contains(x ^ y));
        let quotient = if y == 0 { 0 } else { x / y };
        let remainder = if y == 0 { x } else { x % y };
        assert!(a.div(b).contains(quotient));
        assert!(a.rem(b).contains(remainder));
    }
}

#[test]
fn unsigned_shifts_sound() {
    let mut rng = SplitMix64::new(0x31);
    for _ in 0..CASES {
        let (a, x) = uinterval_and_member(&mut rng);
        let k = rng.next_u32() % 64;
        assert!(a.lshift(k).contains(x.wrapping_shl(k)) || a.lshift(k).is_full());
        assert!(a.lshift(k).contains(x << k) || x.leading_zeros() < k);
        assert!(a.rshift(k).contains(x >> k));
    }
}

#[test]
fn signed_ops_sound() {
    let mut rng = SplitMix64::new(0x32);
    for _ in 0..CASES {
        let (a, x) = sinterval_and_member(&mut rng);
        let (b, y) = sinterval_and_member(&mut rng);
        assert!(a.add(b).contains(x.wrapping_add(y)));
        assert!(a.sub(b).contains(x.wrapping_sub(y)));
        assert!(a.mul(b).contains(x.wrapping_mul(y)));
        assert!(a.neg().contains(x.wrapping_neg()));
        for k in [0u32, 1, 13, 63] {
            assert!(a.arshift(k).contains(x >> k));
        }
    }
}

#[test]
fn lattice_laws_unsigned() {
    let mut rng = SplitMix64::new(0x33);
    for _ in 0..CASES {
        let a = any_uinterval(&mut rng);
        let b = any_uinterval(&mut rng);
        let j = a.union(b);
        assert!(a.is_subset_of(j) && b.is_subset_of(j));
        match a.intersect(b) {
            Some(m) => {
                assert!(m.is_subset_of(a) && m.is_subset_of(b));
            }
            None => assert!(a.max() < b.min() || b.max() < a.min()),
        }
    }
}

#[test]
fn bounds_deduction_sound() {
    let mut rng = SplitMix64::new(0x34);
    for _ in 0..CASES {
        let (u, x) = uinterval_and_member(&mut rng);
        let s = any_sinterval(&mut rng);
        let b = Bounds::FULL;
        assert!(b.contains(x));
        let combined = Bounds::from_unsigned(u);
        // Deduction must preserve every member of the unsigned view that
        // also satisfies the (full) signed view.
        assert!(combined.contains(x));
        // From-signed construction contains its own members.
        let sb = Bounds::from_signed(s);
        assert!(sb.contains(s.min() as u64));
        assert!(sb.contains(s.max() as u64));
    }
}

#[test]
fn bounds_tnum_round_trip() {
    let mut rng = SplitMix64::new(0x35);
    for _ in 0..CASES {
        let t = Tnum::masked(rng.next_u64(), rng.next_u64());
        let x = t.value() | (rng.next_u64() & t.mask());
        let b = Bounds::from_tnum(t);
        assert!(b.contains(x), "bounds from tnum lost member");
        // And the induced tnum contains the member too.
        assert!(b.to_tnum().contains(x));
    }
}

#[test]
fn bounds_ops_sound() {
    let mut rng = SplitMix64::new(0x36);
    for _ in 0..CASES {
        let (ua, x) = uinterval_and_member(&mut rng);
        let (ub, y) = uinterval_and_member(&mut rng);
        let a = Bounds::from_unsigned(ua);
        let b = Bounds::from_unsigned(ub);
        assert!(a.add(b).contains(x.wrapping_add(y)));
        assert!(a.sub(b).contains(x.wrapping_sub(y)));
        assert!(a.mul(b).contains(x.wrapping_mul(y)));
        assert!(a.and(b).contains(x & y));
        assert!(a.or(b).contains(x | y));
        assert!(a.xor(b).contains(x ^ y));
        assert!(a.neg().contains(x.wrapping_neg()));
        let quotient = if y == 0 { 0 } else { x / y };
        let remainder = if y == 0 { x } else { x % y };
        assert!(a.div(b).contains(quotient));
        assert!(a.rem(b).contains(remainder));
    }
}

#[test]
fn bounds_intersection_sound() {
    let mut rng = SplitMix64::new(0x37);
    for _ in 0..CASES {
        let (ua, x) = uinterval_and_member(&mut rng);
        let ub = any_uinterval(&mut rng);
        let a = Bounds::from_unsigned(ua);
        let b = Bounds::from_unsigned(ub);
        match a.intersect(b) {
            Some(m) => {
                if b.contains(x) {
                    assert!(m.contains(x));
                }
            }
            None => assert!(!(a.contains(x) && b.contains(x))),
        }
    }
}
