//! Property-based tests for the interval domain at full 64-bit width.

use interval_domain::{Bounds, SInterval, UInterval};
use proptest::prelude::*;
use tnum::Tnum;

prop_compose! {
    fn any_uinterval()(a in any::<u64>(), b in any::<u64>()) -> UInterval {
        UInterval::new(a.min(b), a.max(b)).unwrap()
    }
}

prop_compose! {
    fn any_sinterval()(a in any::<i64>(), b in any::<i64>()) -> SInterval {
        SInterval::new(a.min(b), a.max(b)).unwrap()
    }
}

prop_compose! {
    /// An unsigned interval with a random member.
    fn uinterval_and_member()(i in any_uinterval(), pick in any::<u64>()) -> (UInterval, u64) {
        let span = i.max() - i.min();
        let x = if span == u64::MAX { pick } else { i.min() + pick % (span + 1) };
        (i, x)
    }
}

prop_compose! {
    fn sinterval_and_member()(i in any_sinterval(), pick in any::<u64>()) -> (SInterval, i64) {
        let span = i.max().wrapping_sub(i.min()) as u64;
        let x = if span == u64::MAX { pick as i64 } else { i.min().wrapping_add((pick % (span + 1)) as i64) };
        (i, x)
    }
}

proptest! {
    #[test]
    fn unsigned_ops_sound((a, x) in uinterval_and_member(), (b, y) in uinterval_and_member()) {
        prop_assert!(a.add(b).contains(x.wrapping_add(y)));
        prop_assert!(a.sub(b).contains(x.wrapping_sub(y)));
        prop_assert!(a.mul(b).contains(x.wrapping_mul(y)));
        prop_assert!(a.and(b).contains(x & y));
        prop_assert!(a.or(b).contains(x | y));
        prop_assert!(a.xor(b).contains(x ^ y));
        let quotient = if y == 0 { 0 } else { x / y };
        let remainder = if y == 0 { x } else { x % y };
        prop_assert!(a.div(b).contains(quotient));
        prop_assert!(a.rem(b).contains(remainder));
    }

    #[test]
    fn unsigned_shifts_sound((a, x) in uinterval_and_member(), k in 0u32..64) {
        prop_assert!(a.lshift(k).contains(x.wrapping_shl(k)) || a.lshift(k).is_full());
        prop_assert!(a.lshift(k).contains(x << k) || x.leading_zeros() < k);
        prop_assert!(a.rshift(k).contains(x >> k));
    }

    #[test]
    fn signed_ops_sound((a, x) in sinterval_and_member(), (b, y) in sinterval_and_member()) {
        prop_assert!(a.add(b).contains(x.wrapping_add(y)));
        prop_assert!(a.sub(b).contains(x.wrapping_sub(y)));
        prop_assert!(a.mul(b).contains(x.wrapping_mul(y)));
        prop_assert!(a.neg().contains(x.wrapping_neg()));
        for k in [0u32, 1, 13, 63] {
            prop_assert!(a.arshift(k).contains(x >> k));
        }
    }

    #[test]
    fn lattice_laws_unsigned(a in any_uinterval(), b in any_uinterval()) {
        let j = a.union(b);
        prop_assert!(a.is_subset_of(j) && b.is_subset_of(j));
        match a.intersect(b) {
            Some(m) => {
                prop_assert!(m.is_subset_of(a) && m.is_subset_of(b));
            }
            None => prop_assert!(a.max() < b.min() || b.max() < a.min()),
        }
    }

    #[test]
    fn bounds_deduction_sound((u, x) in uinterval_and_member(), s in any_sinterval()) {
        let b = Bounds::FULL;
        prop_assert!(b.contains(x));
        let combined = Bounds::from_unsigned(u);
        // Deduction must preserve every member of the unsigned view that
        // also satisfies the (full) signed view.
        prop_assert!(combined.contains(x));
        // From-signed construction contains its own members.
        let sb = Bounds::from_signed(s);
        prop_assert!(sb.contains(s.min() as u64));
        prop_assert!(sb.contains(s.max() as u64));
    }

    #[test]
    fn bounds_tnum_round_trip(mask in any::<u64>(), raw in any::<u64>(), pick in any::<u64>()) {
        let t = Tnum::masked(raw, mask);
        let x = t.value() | (pick & t.mask());
        let b = Bounds::from_tnum(t);
        prop_assert!(b.contains(x), "bounds from tnum lost member");
        // And the induced tnum contains the member too.
        prop_assert!(b.to_tnum().contains(x));
    }

    #[test]
    fn bounds_ops_sound((ua, x) in uinterval_and_member(), (ub, y) in uinterval_and_member()) {
        let a = Bounds::from_unsigned(ua);
        let b = Bounds::from_unsigned(ub);
        prop_assert!(a.add(b).contains(x.wrapping_add(y)));
        prop_assert!(a.sub(b).contains(x.wrapping_sub(y)));
        prop_assert!(a.mul(b).contains(x.wrapping_mul(y)));
        prop_assert!(a.and(b).contains(x & y));
        prop_assert!(a.or(b).contains(x | y));
        prop_assert!(a.xor(b).contains(x ^ y));
        prop_assert!(a.neg().contains(x.wrapping_neg()));
        let quotient = if y == 0 { 0 } else { x / y };
        let remainder = if y == 0 { x } else { x % y };
        prop_assert!(a.div(b).contains(quotient));
        prop_assert!(a.rem(b).contains(remainder));
    }

    #[test]
    fn bounds_intersection_sound((ua, x) in uinterval_and_member(), ub in any_uinterval()) {
        let a = Bounds::from_unsigned(ua);
        let b = Bounds::from_unsigned(ub);
        match a.intersect(b) {
            Some(m) => {
                if b.contains(x) {
                    prop_assert!(m.contains(x));
                }
            }
            None => prop_assert!(!(a.contains(x) && b.contains(x))),
        }
    }
}
