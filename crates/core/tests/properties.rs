//! Randomized property tests for the tnum domain's core invariants at
//! the full 64-bit width, complementing the exhaustive small-width
//! proofs in the unit tests. Driven by the workspace's deterministic
//! SplitMix64 stream (no third-party dependencies), 512 cases per
//! property.

// Explicit BPF division semantics (`x / 0 = 0`, `x % 0 = x`) throughout.
#![allow(clippy::manual_checked_ops)]
use domain::rng::SplitMix64;
use tnum::{Tnum, Trit};

const CASES: u32 = 512;

/// A uniformly random well-formed tnum.
fn any_tnum(rng: &mut SplitMix64) -> Tnum {
    Tnum::masked(rng.next_u64(), rng.next_u64())
}

/// A tnum together with a random member of its concretization.
fn tnum_and_member(rng: &mut SplitMix64) -> (Tnum, u64) {
    let t = any_tnum(rng);
    (t, t.value() | (rng.next_u64() & t.mask()))
}

#[test]
fn wellformedness_invariant() {
    let mut rng = SplitMix64::new(0x01);
    for _ in 0..CASES {
        let t = any_tnum(&mut rng);
        assert_eq!(t.value() & t.mask(), 0);
    }
}

#[test]
fn membership_definition() {
    let mut rng = SplitMix64::new(0x02);
    for _ in 0..CASES {
        let (t, x) = tnum_and_member(&mut rng);
        assert!(t.contains(x));
        assert!(x >= t.min_value());
        assert!(x <= t.max_value());
    }
}

#[test]
fn add_sub_soundness() {
    let mut rng = SplitMix64::new(0x03);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let (b, y) = tnum_and_member(&mut rng);
        assert!(a.add(b).contains(x.wrapping_add(y)), "add {a} {b}");
        assert!(a.sub(b).contains(x.wrapping_sub(y)), "sub {a} {b}");
    }
}

#[test]
fn mul_soundness() {
    let mut rng = SplitMix64::new(0x04);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let (b, y) = tnum_and_member(&mut rng);
        assert!(a.mul(b).contains(x.wrapping_mul(y)), "our_mul {a} {b}");
        assert!(
            a.mul_kernel_legacy(b).contains(x.wrapping_mul(y)),
            "kern_mul {a} {b}"
        );
    }
}

#[test]
fn mul_equals_simplified() {
    // Lemma 11 at width 64, randomly.
    let mut rng = SplitMix64::new(0x05);
    for _ in 0..CASES {
        let a = any_tnum(&mut rng);
        let b = any_tnum(&mut rng);
        assert_eq!(a.mul(b), tnum::mul::our_mul_simplified(a, b), "{a} {b}");
    }
}

#[test]
fn bitwise_soundness() {
    let mut rng = SplitMix64::new(0x06);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let (b, y) = tnum_and_member(&mut rng);
        assert!(a.and(b).contains(x & y));
        assert!(a.or(b).contains(x | y));
        assert!(a.xor(b).contains(x ^ y));
        assert!(a.not().contains(!x));
    }
}

#[test]
fn shift_soundness() {
    let mut rng = SplitMix64::new(0x07);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let k = rng.next_u32() % 64;
        assert!(a.lshift(k).contains(x << k));
        assert!(a.rshift(k).contains(x >> k));
        assert!(a.arshift(k).contains(((x as i64) >> k) as u64));
    }
}

#[test]
fn neg_div_rem_soundness() {
    let mut rng = SplitMix64::new(0x08);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let (b, y) = tnum_and_member(&mut rng);
        assert!(a.neg().contains(x.wrapping_neg()));
        let quotient = if y == 0 { 0 } else { x / y };
        let remainder = if y == 0 { x } else { x % y };
        assert!(a.div(b).contains(quotient));
        assert!(a.rem(b).contains(remainder));
    }
}

#[test]
fn union_is_upper_bound() {
    let mut rng = SplitMix64::new(0x09);
    for _ in 0..CASES {
        let a = any_tnum(&mut rng);
        let b = any_tnum(&mut rng);
        let j = a.union(b);
        assert!(a.is_subset_of(j));
        assert!(b.is_subset_of(j));
        assert_eq!(j, b.union(a));
    }
}

#[test]
fn intersect_is_lower_bound() {
    let mut rng = SplitMix64::new(0x0a);
    for _ in 0..CASES {
        let a = any_tnum(&mut rng);
        let b = any_tnum(&mut rng);
        if let Some(m) = a.intersect(b) {
            assert!(m.is_subset_of(a));
            assert!(m.is_subset_of(b));
            assert_eq!(Some(m), b.intersect(a));
        } else {
            // Empty: no common member exists at any known-conflicting bit.
            let both_known = !a.mask() & !b.mask();
            assert!((a.value() ^ b.value()) & both_known != 0);
        }
    }
}

#[test]
fn order_agrees_with_membership() {
    let mut rng = SplitMix64::new(0x0b);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let b = any_tnum(&mut rng);
        if a.is_subset_of(b) {
            assert!(b.contains(x));
        }
    }
}

#[test]
fn alpha_of_members_refines() {
    let mut rng = SplitMix64::new(0x0c);
    for _ in 0..CASES {
        // Abstracting any two members produces a tnum below `a`.
        let (a, x) = tnum_and_member(&mut rng);
        let y = a.value() | (rng.next_u64() & a.mask());
        let alpha = Tnum::abstract_of([x, y]).unwrap();
        assert!(alpha.is_subset_of(a));
        assert!(alpha.contains(x) && alpha.contains(y));
    }
}

#[test]
fn parse_display_round_trip() {
    let mut rng = SplitMix64::new(0x0d);
    for _ in 0..CASES {
        let t = any_tnum(&mut rng);
        let s = t.to_bin_string(64);
        let back: Tnum = s.parse().unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn trit_views_are_consistent() {
    let mut rng = SplitMix64::new(0x0e);
    for _ in 0..CASES {
        let t = any_tnum(&mut rng);
        let bit = rng.next_u32() % 64;
        let trit = t.trit(bit);
        let (v, m) = trit.to_value_mask();
        assert_eq!(v, (t.value() >> bit) & 1);
        assert_eq!(m, (t.mask() >> bit) & 1);
        // Setting the trit back is the identity.
        assert_eq!(t.with_trit(bit, trit), t);
        // Setting unknown then a known value round-trips the other bits.
        let poked = t.with_trit(bit, Trit::Unknown).with_trit(bit, Trit::One);
        assert_eq!(poked.trit(bit), Trit::One);
        assert_eq!(poked.with_trit(bit, trit), t);
    }
}

#[test]
fn truncate_then_extend_invariants() {
    let mut rng = SplitMix64::new(0x0f);
    for _ in 0..CASES {
        let t = any_tnum(&mut rng);
        let width = 1 + rng.next_u32() % 63;
        let tr = t.truncate(width);
        assert!(tr.fits_width(width));
        // Truncation preserves membership of truncated members.
        assert!(tr.contains(t.value() & tnum::low_bits(width)));
        // Sign extension agrees with concrete sign extension on members.
        let sx = tr.sign_extend_from(width);
        let member = tr.value();
        let shift = 64 - width;
        assert!(sx.contains(((member << shift) as i64 >> shift) as u64));
    }
}

#[test]
fn cardinality_counts_members() {
    let mut rng = SplitMix64::new(0x10);
    for _ in 0..64 {
        // Keep the popcount small enough to enumerate.
        let mask = rng.next_u64() & 0x8421_0842_1084_2108; // at most 13 bits
        let t = Tnum::masked(0, mask);
        let n = t.concretize().count() as u128;
        assert_eq!(n, t.cardinality());
    }
}

#[test]
fn range_contains_endpoints() {
    let mut rng = SplitMix64::new(0x11);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t = Tnum::range(lo, hi);
        assert!(t.contains(lo));
        assert!(t.contains(hi));
        assert!(t.contains(lo + (hi - lo) / 2));
    }
}

#[test]
fn cast_and_subreg_consistency() {
    let mut rng = SplitMix64::new(0x12);
    for _ in 0..CASES {
        let (t, x) = tnum_and_member(&mut rng);
        assert!(t.subreg().contains(x & 0xffff_ffff));
        assert!(t.clear_subreg().contains(x & !0xffff_ffff));
        assert_eq!(t.subreg().or(t.clear_subreg()), t);
        for size in 0..=8u32 {
            assert!(t.cast(size).contains(x & tnum::low_bits(size * 8)));
        }
    }
}

#[test]
fn tnum_amount_shift_soundness() {
    let mut rng = SplitMix64::new(0x13);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let (k, kv) = tnum_and_member(&mut rng);
        let k6 = k.and(Tnum::constant(63));
        let amt = kv & 63;
        assert!(a.lshift_tnum(k6).contains(x << amt));
        assert!(a.rshift_tnum(k6).contains(x >> amt));
        assert!(a.arshift_tnum(k6).contains(((x as i64) >> amt) as u64));
    }
}
