//! Property-based tests (proptest) for the tnum domain's core invariants
//! at the full 64-bit width, complementing the exhaustive small-width
//! proofs in the unit tests.

use proptest::prelude::*;
use tnum::{Trit, Tnum};

prop_compose! {
    /// A uniformly random well-formed tnum.
    fn any_tnum()(mask in any::<u64>(), raw in any::<u64>()) -> Tnum {
        Tnum::masked(raw, mask)
    }
}

prop_compose! {
    /// A tnum together with a random member of its concretization.
    fn tnum_and_member()(t in any_tnum(), pick in any::<u64>()) -> (Tnum, u64) {
        (t, t.value() | (pick & t.mask()))
    }
}

proptest! {
    #[test]
    fn wellformedness_invariant(t in any_tnum()) {
        prop_assert_eq!(t.value() & t.mask(), 0);
    }

    #[test]
    fn membership_definition((t, x) in tnum_and_member()) {
        prop_assert!(t.contains(x));
        prop_assert!(x >= t.min_value());
        prop_assert!(x <= t.max_value());
    }

    #[test]
    fn add_soundness((a, x) in tnum_and_member(), (b, y) in tnum_and_member()) {
        prop_assert!(a.add(b).contains(x.wrapping_add(y)));
    }

    #[test]
    fn sub_soundness((a, x) in tnum_and_member(), (b, y) in tnum_and_member()) {
        prop_assert!(a.sub(b).contains(x.wrapping_sub(y)));
    }

    #[test]
    fn mul_soundness((a, x) in tnum_and_member(), (b, y) in tnum_and_member()) {
        prop_assert!(a.mul(b).contains(x.wrapping_mul(y)));
        prop_assert!(a.mul_kernel_legacy(b).contains(x.wrapping_mul(y)));
    }

    #[test]
    fn mul_equals_simplified(a in any_tnum(), b in any_tnum()) {
        // Lemma 11 at width 64, randomly.
        prop_assert_eq!(a.mul(b), tnum::mul::our_mul_simplified(a, b));
    }

    #[test]
    fn bitwise_soundness((a, x) in tnum_and_member(), (b, y) in tnum_and_member()) {
        prop_assert!(a.and(b).contains(x & y));
        prop_assert!(a.or(b).contains(x | y));
        prop_assert!(a.xor(b).contains(x ^ y));
        prop_assert!(a.not().contains(!x));
    }

    #[test]
    fn shift_soundness((a, x) in tnum_and_member(), k in 0u32..64) {
        prop_assert!(a.lshift(k).contains(x << k));
        prop_assert!(a.rshift(k).contains(x >> k));
        prop_assert!(a.arshift(k).contains(((x as i64) >> k) as u64));
    }

    #[test]
    fn neg_div_rem_soundness((a, x) in tnum_and_member(), (b, y) in tnum_and_member()) {
        prop_assert!(a.neg().contains(x.wrapping_neg()));
        let quotient = if y == 0 { 0 } else { x / y };
        let remainder = if y == 0 { x } else { x % y };
        prop_assert!(a.div(b).contains(quotient));
        prop_assert!(a.rem(b).contains(remainder));
    }

    #[test]
    fn union_is_upper_bound(a in any_tnum(), b in any_tnum()) {
        let j = a.union(b);
        prop_assert!(a.is_subset_of(j));
        prop_assert!(b.is_subset_of(j));
        prop_assert_eq!(j, b.union(a));
    }

    #[test]
    fn intersect_is_lower_bound(a in any_tnum(), b in any_tnum()) {
        if let Some(m) = a.intersect(b) {
            prop_assert!(m.is_subset_of(a));
            prop_assert!(m.is_subset_of(b));
            prop_assert_eq!(Some(m), b.intersect(a));
        } else {
            // Empty: no common member exists at any known-conflicting bit.
            let both_known = !a.mask() & !b.mask();
            prop_assert!((a.value() ^ b.value()) & both_known != 0);
        }
    }

    #[test]
    fn order_agrees_with_membership((a, x) in tnum_and_member(), b in any_tnum()) {
        if a.is_subset_of(b) {
            prop_assert!(b.contains(x));
        }
    }

    #[test]
    fn alpha_of_members_refines((a, x) in tnum_and_member(), pick in any::<u64>()) {
        // Abstracting any two members produces a tnum below `a`.
        let y = a.value() | (pick & a.mask());
        let alpha = Tnum::abstract_of([x, y]).unwrap();
        prop_assert!(alpha.is_subset_of(a));
        prop_assert!(alpha.contains(x) && alpha.contains(y));
    }

    #[test]
    fn parse_display_round_trip(t in any_tnum()) {
        let s = t.to_bin_string(64);
        let back: Tnum = s.parse().unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn trit_views_are_consistent(t in any_tnum(), bit in 0u32..64) {
        let trit = t.trit(bit);
        let (v, m) = trit.to_value_mask();
        prop_assert_eq!(v, (t.value() >> bit) & 1);
        prop_assert_eq!(m, (t.mask() >> bit) & 1);
        // Setting the trit back is the identity.
        prop_assert_eq!(t.with_trit(bit, trit), t);
        // Setting unknown then a known value round-trips the other bits.
        let poked = t.with_trit(bit, Trit::Unknown).with_trit(bit, Trit::One);
        prop_assert_eq!(poked.trit(bit), Trit::One);
        prop_assert_eq!(poked.with_trit(bit, trit), t);
    }

    #[test]
    fn truncate_then_extend_invariants(t in any_tnum(), width in 1u32..64) {
        let tr = t.truncate(width);
        prop_assert!(tr.fits_width(width));
        // Truncation preserves membership of truncated members.
        prop_assert!(tr.contains(t.value() & tnum::low_bits(width)));
        // Sign extension agrees with concrete sign extension on members.
        let sx = tr.sign_extend_from(width);
        let member = tr.value();
        let shift = 64 - width;
        prop_assert!(sx.contains(((member << shift) as i64 >> shift) as u64));
    }

    #[test]
    fn cardinality_counts_members(mask in any::<u64>()) {
        // Keep the popcount small enough to enumerate.
        let mask = mask & 0x8421_0842_1084_2108; // at most 13 bits
        let t = Tnum::masked(0, mask);
        let n = t.concretize().count() as u128;
        prop_assert_eq!(n, t.cardinality());
    }

    #[test]
    fn range_contains_endpoints(lo in any::<u64>(), hi in any::<u64>()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let t = Tnum::range(lo, hi);
        prop_assert!(t.contains(lo));
        prop_assert!(t.contains(hi));
        prop_assert!(t.contains(lo + (hi - lo) / 2));
    }

    #[test]
    fn cast_and_subreg_consistency((t, x) in tnum_and_member()) {
        prop_assert!(t.subreg().contains(x & 0xffff_ffff));
        prop_assert!(t.clear_subreg().contains(x & !0xffff_ffff));
        prop_assert_eq!(t.subreg().or(t.clear_subreg()), t);
        for size in 0..=8u32 {
            prop_assert!(t.cast(size).contains(x & tnum::low_bits(size * 8)));
        }
    }

    #[test]
    fn tnum_amount_shift_soundness((a, x) in tnum_and_member(), (k, kv) in tnum_and_member()) {
        let k6 = k.and(Tnum::constant(63));
        let amt = kv & 63;
        prop_assert!(a.lshift_tnum(k6).contains(x << amt));
        prop_assert!(a.rshift_tnum(k6).contains(x >> amt));
        prop_assert!(a.arshift_tnum(k6).contains(((x as i64) >> amt) as u64));
    }
}
