//! Width casts and 32-bit subregister operations, as used by the BPF
//! verifier for `ALU32` instructions (`tnum_cast`, `tnum_subreg`,
//! `tnum_clear_subreg`, `tnum_with_subreg`, `tnum_const_subreg`).

use crate::tnum::Tnum;

impl Tnum {
    /// Truncates to the low `size` *bytes* — the kernel's `tnum_cast`.
    ///
    /// `size` is in bytes (1, 2, 4, or 8 in BPF); `cast(8)` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `size > 8`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::constant(0x1234_5678_9abc_def0);
    /// assert_eq!(t.cast(4), Tnum::constant(0x9abc_def0));
    /// assert_eq!(t.cast(8), t);
    /// ```
    #[must_use]
    pub const fn cast(self, size: u32) -> Tnum {
        assert!(size <= 8, "cast size out of range 0..=8 bytes");
        self.truncate(size * 8)
    }

    /// The low 32-bit subregister (the kernel's `tnum_subreg`):
    /// equal to `cast(4)`.
    #[must_use]
    pub const fn subreg(self) -> Tnum {
        self.cast(4)
    }

    /// Clears the low 32-bit subregister to known zeros, keeping the high
    /// half (the kernel's `tnum_clear_subreg`).
    #[must_use]
    pub const fn clear_subreg(self) -> Tnum {
        self.rshift(32).lshift(32)
    }

    /// Replaces the low 32-bit subregister with `subreg`'s low half
    /// (the kernel's `tnum_with_subreg`).
    ///
    /// This is how the verifier installs the result of a 32-bit ALU
    /// operation into the abstract 64-bit register (zero-extension of the
    /// high half, when required, is applied separately by the caller).
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let hi = Tnum::constant(0xdead_beef_0000_0000);
    /// let lo: Tnum = "x1".parse()?;
    /// let r = hi.with_subreg(lo);
    /// assert_eq!(r.value() >> 32, 0xdead_beef);
    /// assert_eq!(r.truncate(32), lo.truncate(32));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn with_subreg(self, subreg: Tnum) -> Tnum {
        self.clear_subreg().or(subreg.subreg())
    }

    /// Replaces the low 32-bit subregister with a known constant
    /// (the kernel's `tnum_const_subreg`).
    #[must_use]
    pub const fn const_subreg(self, value: u32) -> Tnum {
        self.with_subreg(Tnum::constant(value as u64))
    }

    /// Zero-extends from `width` bits: forces all trits at and above
    /// `width` to known `0`. Alias of [`Tnum::truncate`] with intent-revealing
    /// naming for modeling `zext` after narrow loads.
    #[must_use]
    pub const fn zero_extend_from(self, width: u32) -> Tnum {
        self.truncate(width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    #[test]
    fn cast_sound_and_exact_per_member() {
        for t in tnums(6) {
            let c = t.cast(0);
            assert_eq!(c, Tnum::ZERO);
            for size in 1..=8u32 {
                let c = t.cast(size);
                let m = crate::low_bits((size * 8).min(64));
                let best = Tnum::abstract_of(t.concretize().map(|x| x & m)).unwrap();
                assert_eq!(c, best, "cast({t}, {size})");
            }
        }
    }

    #[test]
    fn subreg_ops_partition_the_register() {
        let t = Tnum::masked(0xaaaa_0000_5555_0000, 0x0000_ffff_0000_ffff);
        let lo = t.subreg();
        let hi = t.clear_subreg();
        assert_eq!(lo.or(hi), t);
        assert_eq!(hi.subreg(), Tnum::ZERO);
        assert_eq!(lo.clear_subreg(), Tnum::ZERO);
    }

    #[test]
    fn with_subreg_replaces_low_half_only() {
        let t = Tnum::masked(0xffff_ffff_0000_0000, 0x0000_0000_ffff_ffff);
        let r = t.with_subreg(Tnum::constant(7));
        assert_eq!(r.value(), 0xffff_ffff_0000_0007);
        assert_eq!(r.mask(), 0);
        // The high half of the replacement is ignored.
        let s = t.with_subreg(Tnum::constant(0xdead_0000_0000_0007));
        assert_eq!(s, r);
    }

    #[test]
    fn const_subreg_matches_with_subreg() {
        let t = Tnum::UNKNOWN;
        assert_eq!(
            t.const_subreg(0x1234),
            t.with_subreg(Tnum::constant(0x1234))
        );
        assert_eq!(t.const_subreg(5).subreg(), Tnum::constant(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cast_9_panics() {
        let _ = Tnum::ZERO.cast(9);
    }
}
