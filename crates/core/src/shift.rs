//! Abstract shift operators: logical left/right and arithmetic right.
//!
//! Constant-amount shifts are the kernel's `tnum_lshift` / `tnum_rshift` /
//! `tnum_arshift` and are sound and optimal: shifting moves trits without
//! interaction. Shifts by a *tnum* amount (needed for BPF's register-amount
//! shifts) are provided as the join over the possible amounts.

use crate::tnum::Tnum;
use crate::width::BITS;

impl Tnum {
    /// Logical left shift by a constant amount (the kernel's `tnum_lshift`).
    ///
    /// Trits shifted out of the top are discarded; known-`0` trits enter at
    /// the bottom.
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 64`, matching Rust (and BPF-verified) semantics
    /// where oversized shift amounts are rejected up front.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t: Tnum = "1x".parse()?;
    /// assert_eq!(t.lshift(2).to_bin_string(4), "1x00");
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn lshift(self, shift: u32) -> Tnum {
        assert!(shift < BITS, "shift amount out of range 0..=63");
        Tnum::masked(self.value() << shift, self.mask() << shift)
    }

    /// Logical right shift by a constant amount (the kernel's
    /// `tnum_rshift`).
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t: Tnum = "1x00".parse()?;
    /// assert_eq!(t.rshift(2).to_bin_string(2), "1x");
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn rshift(self, shift: u32) -> Tnum {
        assert!(shift < BITS, "shift amount out of range 0..=63");
        Tnum::masked(self.value() >> shift, self.mask() >> shift)
    }

    /// Arithmetic right shift by a constant amount at full 64-bit width
    /// (the kernel's `tnum_arshift` with `insn_bitness = 64`).
    ///
    /// The sign *trit* (bit 63) is replicated: a known sign shifts in known
    /// copies, an unknown sign shifts in unknown trits.
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let neg = Tnum::constant(u64::MAX << 63); // sign bit known 1
    /// assert_eq!(neg.arshift(63), Tnum::constant(u64::MAX));
    /// ```
    #[must_use]
    pub const fn arshift(self, shift: u32) -> Tnum {
        assert!(shift < BITS, "shift amount out of range 0..=63");
        Tnum::masked(
            ((self.value() as i64) >> shift) as u64,
            ((self.mask() as i64) >> shift) as u64,
        )
    }

    /// Arithmetic right shift of a `width`-bit tnum: sign-extends from
    /// `width`, shifts, and truncates back. With `width == 64` this is
    /// [`Tnum::arshift`]; with `width == 32` it matches the kernel's
    /// `tnum_arshift` for 32-bit instructions.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if `shift >= width`.
    #[must_use]
    pub const fn arshift_width(self, shift: u32, width: u32) -> Tnum {
        assert!(width >= 1 && width <= BITS, "width out of range 1..=64");
        assert!(shift < width, "shift amount out of range for width");
        self.sign_extend_from(width).arshift(shift).truncate(width)
    }

    /// Logical left shift by a *tnum* amount: the join of `self << k` over
    /// every feasible amount `k ∈ γ(amount) ∩ [0, 64)`.
    ///
    /// Amounts ≥ 64 contribute the all-zero result, matching BPF's
    /// wrapping-free semantics where the verifier rejects oversized constant
    /// shifts but must still abstract register shifts soundly (BPF masks
    /// register shift amounts to the instruction bitness; pass a masked
    /// `amount` to model that).
    ///
    /// Returns ⊤-free sound results in O(64) joins worst case.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::constant(0b1);
    /// let amt: Tnum = "x".parse()?; // shift by 0 or 1
    /// let r = t.lshift_tnum(amt);
    /// assert!(r.contains(0b1) && r.contains(0b10));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn lshift_tnum(self, amount: Tnum) -> Tnum {
        // Oversized logical shifts move everything out: they contribute
        // the all-zero result.
        self.shift_tnum(amount, Tnum::lshift, Tnum::ZERO)
    }

    /// Logical right shift by a *tnum* amount — see [`Tnum::lshift_tnum`].
    #[must_use]
    pub fn rshift_tnum(self, amount: Tnum) -> Tnum {
        self.shift_tnum(amount, Tnum::rshift, Tnum::ZERO)
    }

    /// Arithmetic right shift by a *tnum* amount — see
    /// [`Tnum::lshift_tnum`]. Amounts ≥ 64 contribute the sign-fill result
    /// (`self.arshift(63)`).
    #[must_use]
    pub fn arshift_tnum(self, amount: Tnum) -> Tnum {
        self.shift_tnum(amount, Tnum::arshift, self.arshift(BITS - 1))
    }

    /// The one accumulate-join loop behind every shift-by-a-tnum operator:
    /// joins `op(self, k)` over the feasible in-range amounts, plus
    /// `saturated` — the operator's fixed result for amounts ≥ 64 (zero
    /// for logical shifts, the sign-fill `arshift(63)` for arithmetic
    /// ones) — whenever some member of `amount` is oversized.
    fn shift_tnum(self, amount: Tnum, op: impl Fn(Tnum, u32) -> Tnum, saturated: Tnum) -> Tnum {
        let mut acc: Option<Tnum> = None;
        let mut join = |t: Tnum| {
            acc = Some(match acc {
                None => t,
                Some(a) => a.union(t),
            })
        };
        let low = amount.truncate(6);
        for k in feasible_amounts(amount, low) {
            join(op(self, k));
        }
        if amount.max_value() >= BITS as u64 {
            join(saturated);
        }
        acc.expect("at least one feasible amount always exists")
    }
}

/// In-range shift amounts `k < 64` feasible for `amount`: members of the
/// low-6-bit projection whose high-bit completion can be all zero.
fn feasible_amounts(amount: Tnum, low: Tnum) -> impl Iterator<Item = u32> {
    // A k < 64 is feasible iff k matches the low 6 trits and the high 58
    // trits can all be zero (i.e. no known-1 high bit).
    let high_known_one = amount.value() >> 6 != 0;
    let iter: Box<dyn Iterator<Item = u64>> = if high_known_one {
        Box::new(std::iter::empty())
    } else {
        Box::new(low.concretize())
    };
    iter.map(|k| k as u32)
}

/// Operator form of [`Tnum::lshift`].
impl core::ops::Shl<u32> for Tnum {
    type Output = Tnum;
    fn shl(self, shift: u32) -> Tnum {
        self.lshift(shift)
    }
}

/// Operator form of [`Tnum::rshift`].
impl core::ops::Shr<u32> for Tnum {
    type Output = Tnum;
    fn shr(self, shift: u32) -> Tnum {
        self.rshift(shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    #[test]
    fn const_shifts_optimal_w4() {
        for a in tnums(4) {
            for k in 0..4u32 {
                let l = a.lshift(k).truncate(4);
                let best_l = Tnum::abstract_of(a.concretize().map(|x| (x << k) & 0xf)).unwrap();
                assert_eq!(l, best_l, "lshift {a} by {k}");

                let r = a.rshift(k);
                let best_r = Tnum::abstract_of(a.concretize().map(|x| x >> k)).unwrap();
                assert_eq!(r, best_r, "rshift {a} by {k}");
            }
        }
    }

    #[test]
    fn arshift_width_optimal_w4() {
        for a in tnums(4) {
            for k in 0..4u32 {
                let got = a.arshift_width(k, 4);
                let best = Tnum::abstract_of(a.concretize().map(|x| {
                    // Sign-extend a 4-bit value, arithmetic shift, re-truncate.
                    let sx = ((x as i64) << 60) >> 60;
                    ((sx >> k) as u64) & 0xf
                }))
                .unwrap();
                assert_eq!(got, best, "arshift {a} by {k} at width 4");
            }
        }
    }

    #[test]
    fn arshift64_sign_fill() {
        let neg = Tnum::constant(1 << 63);
        assert_eq!(neg.arshift(1).value() >> 62, 0b11);
        let unknown_sign = Tnum::masked(0, 1 << 63);
        assert_eq!(unknown_sign.arshift(1).mask() >> 62, 0b11);
        // shift 0 is identity.
        for t in tnums(4) {
            assert_eq!(t.arshift(0), t);
            assert_eq!(t.lshift(0), t);
            assert_eq!(t.rshift(0), t);
        }
    }

    #[test]
    fn tnum_amount_shifts_sound_w4() {
        // Exhaustive soundness at width 4 with 3-bit amounts.
        for a in tnums(4) {
            for amt in tnums(3) {
                let l = a.lshift_tnum(amt);
                let r = a.rshift_tnum(amt);
                let ar = a.arshift_tnum(amt);
                for x in a.concretize() {
                    for k in amt.concretize() {
                        assert!(l.contains(x << k), "lshift {a} by {amt}: {x} << {k}");
                        assert!(r.contains(x >> k), "rshift {a} by {amt}: {x} >> {k}");
                        assert!(
                            ar.contains(((x as i64) >> k) as u64),
                            "arshift {a} by {amt}: {x} >> {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tnum_amount_constant_matches_const_shift() {
        for a in tnums(4) {
            for k in 0..8u32 {
                assert_eq!(a.lshift_tnum(Tnum::constant(k as u64)), a.lshift(k));
                assert_eq!(a.rshift_tnum(Tnum::constant(k as u64)), a.rshift(k));
                assert_eq!(a.arshift_tnum(Tnum::constant(k as u64)), a.arshift(k));
            }
        }
    }

    #[test]
    fn oversized_amounts_are_sound() {
        let t = Tnum::constant(0b1010);
        // Amount {64}: logical shifts produce 0 — result must contain 0.
        let big = Tnum::constant(64);
        assert!(t.lshift_tnum(big).contains(0));
        assert!(t.rshift_tnum(big).contains(0));
        // Amount {0, 64}: join of identity and zero.
        let maybe: Tnum = Tnum::masked(0, 64);
        let r = t.lshift_tnum(maybe);
        assert!(r.contains(0b1010) && r.contains(0));
        // arshift of a negative by >= 63 gives all-ones.
        let neg = Tnum::constant(u64::MAX);
        assert!(neg.arshift_tnum(big).contains(u64::MAX));
    }

    #[test]
    fn operators_match_methods() {
        let a: Tnum = "1x0".parse().unwrap();
        assert_eq!(a << 2, a.lshift(2));
        assert_eq!(a >> 1, a.rshift(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lshift_64_panics() {
        let _ = Tnum::constant(1).lshift(64);
    }
}
