//! [`AbstractDomain`] / [`ArithDomain`] / [`BitwiseDomain`] for [`Tnum`]
//! — the paper's subject domain, plugged into the domain-generic
//! verification campaign, reduced product, and benches.
//!
//! Every trait method delegates to the kernel-faithful inherent operator
//! it names; the mapping is one-to-one (`le` ↔ `tnum_in`, `join` ↔
//! `tnum_union`, `meet` ↔ `tnum_intersect`, …), so the generic campaign
//! verifies exactly the operators the paper verifies.

use domain::rng::SplitMix64;
use domain::{AbstractDomain, ArithDomain, BitwiseDomain, WidenDomain};

use crate::enumerate;
use crate::tnum::Tnum;

impl AbstractDomain for Tnum {
    const NAME: &'static str = "tnum";

    fn top() -> Tnum {
        Tnum::UNKNOWN
    }

    fn le(self, other: Tnum) -> bool {
        self.is_subset_of(other)
    }

    fn join(self, other: Tnum) -> Tnum {
        self.union(other)
    }

    fn meet(self, other: Tnum) -> Option<Tnum> {
        self.intersect(other)
    }

    fn abstract_of<I: IntoIterator<Item = u64>>(values: I) -> Option<Tnum> {
        Tnum::abstract_of(values)
    }

    fn contains(self, x: u64) -> bool {
        Tnum::contains(self, x)
    }

    fn enumerate_at_width(width: u32) -> Vec<Tnum> {
        enumerate::tnums(width).collect()
    }

    fn members(self, width: u32) -> Vec<u64> {
        self.truncate(width).concretize().collect()
    }

    fn as_constant(self) -> Option<u64> {
        Tnum::as_constant(self)
    }

    fn truncate(self, width: u32) -> Tnum {
        Tnum::truncate(self, width)
    }

    fn cast(self, bytes: u32) -> Tnum {
        Tnum::cast(self, bytes)
    }

    fn random(rng: &mut SplitMix64) -> Tnum {
        let mask = rng.next_u64();
        let value = rng.next_u64() & !mask;
        Tnum::masked(value, mask)
    }

    fn random_member(self, rng: &mut SplitMix64) -> u64 {
        self.value() | (rng.next_u64() & self.mask())
    }
}

impl WidenDomain for Tnum {
    /// Widening is the join: the tnum lattice has finite height (every
    /// strictly growing step turns at least one known trit unknown and
    /// there are only 64 trits), so `tnum_union` already guarantees
    /// termination of ascending chains at loop heads.
    fn widen(self, newer: Tnum) -> Tnum {
        self.union(newer)
    }
}

impl ArithDomain for Tnum {
    fn abs_add(self, rhs: Tnum) -> Tnum {
        self.add(rhs)
    }

    fn abs_sub(self, rhs: Tnum) -> Tnum {
        self.sub(rhs)
    }

    fn abs_mul(self, rhs: Tnum) -> Tnum {
        self.mul(rhs)
    }

    fn abs_div(self, rhs: Tnum) -> Tnum {
        self.div(rhs)
    }

    fn abs_rem(self, rhs: Tnum) -> Tnum {
        self.rem(rhs)
    }
}

impl BitwiseDomain for Tnum {
    fn abs_and(self, rhs: Tnum) -> Tnum {
        self.and(rhs)
    }

    fn abs_or(self, rhs: Tnum) -> Tnum {
        self.or(rhs)
    }

    fn abs_xor(self, rhs: Tnum) -> Tnum {
        self.xor(rhs)
    }

    fn abs_shl(self, rhs: Tnum, _width: u32) -> Tnum {
        self.lshift_tnum(rhs.and(Tnum::constant(63)))
    }

    fn abs_lshr(self, rhs: Tnum, _width: u32) -> Tnum {
        self.rshift_tnum(rhs.and(Tnum::constant(63)))
    }

    fn abs_ashr(self, rhs: Tnum, width: u32) -> Tnum {
        self.sign_extend_from(width)
            .arshift_tnum(rhs.and(Tnum::constant(63)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_and_galois_laws() {
        domain::laws::assert_lattice_laws::<Tnum>(4);
        domain::laws::assert_galois_soundness::<Tnum>(5);
        domain::laws::assert_sampling_sound::<Tnum>(2_000, 0xC60);
        domain::laws::assert_widening_laws::<Tnum>(3, 200, 200, 0xC61);
    }

    #[test]
    fn trait_surface_matches_inherent_operators() {
        let a: Tnum = "1x0".parse().unwrap();
        let b: Tnum = "x10".parse().unwrap();
        assert_eq!(a.abs_add(b), a.add(b));
        assert_eq!(a.abs_mul(b), a.mul(b));
        assert_eq!(AbstractDomain::join(a, b), a.union(b));
        assert_eq!(AbstractDomain::meet(a, b), a.intersect(b));
        assert_eq!(<Tnum as AbstractDomain>::top(), Tnum::UNKNOWN);
        assert_eq!(<Tnum as AbstractDomain>::bottom(), None);
        assert_eq!(<Tnum as AbstractDomain>::constant(9), Tnum::constant(9));
    }

    #[test]
    fn enumeration_is_the_paper_quantification() {
        assert_eq!(<Tnum as AbstractDomain>::enumerate_at_width(4).len(), 81);
        let members = AbstractDomain::members("1x".parse::<Tnum>().unwrap(), 2);
        assert_eq!(members, vec![2, 3]);
    }

    #[test]
    fn cast_and_top_at_width() {
        let t = Tnum::constant(0x1_0000_0001);
        assert_eq!(AbstractDomain::cast(t, 4), Tnum::constant(1));
        assert_eq!(Tnum::top_at_width(3), Tnum::masked(0, 0b111));
    }
}
