//! The lattice structure of the tnum domain: order, join, and meet.

use crate::tnum::Tnum;

impl Tnum {
    /// The abstract order ⊑A (Eqn. 2): `self ⊑A other` iff
    /// `γ(self) ⊆ γ(other)`.
    ///
    /// Holds exactly when every unknown trit of `self` is unknown in
    /// `other`, and every known trit of `other` agrees with `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let small: Tnum = "10".parse()?;  // {2}
    /// let big: Tnum = "1x".parse()?;    // {2, 3}
    /// assert!(small.is_subset_of(big));
    /// assert!(!big.is_subset_of(small));
    /// assert!(big.is_subset_of(big));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn is_subset_of(self, other: Tnum) -> bool {
        // self's unknown bits must be unknown in other, and on other's known
        // bits the values must agree.
        self.mask() & !other.mask() == 0 && (self.value() ^ other.value()) & !other.mask() == 0
    }

    /// Strict version of [`Tnum::is_subset_of`]: `γ(self) ⊊ γ(other)`.
    #[must_use]
    pub fn is_strict_subset_of(self, other: Tnum) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Whether two tnums are comparable under ⊑A (one abstracts a subset of
    /// the other). Used by the paper's precision comparisons (§IV-A).
    #[must_use]
    pub const fn is_comparable_to(self, other: Tnum) -> bool {
        self.is_subset_of(other) || other.is_subset_of(self)
    }

    /// The join (least upper bound) of two tnums — the kernel's
    /// `tnum_union`: the smallest tnum whose concretization contains
    /// `γ(self) ∪ γ(other)`.
    ///
    /// A trit of the result is known `k` iff both operands have that trit
    /// known `k`; all other trits are unknown.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a = Tnum::constant(0b101);
    /// let b = Tnum::constant(0b100);
    /// assert_eq!(a.union(b), "10x".parse()?);
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn union(self, other: Tnum) -> Tnum {
        let v = self.value() & other.value();
        let mu = (self.value() ^ other.value()) | self.mask() | other.mask();
        Tnum::masked(v, mu)
    }

    /// The meet (greatest lower bound) of two tnums: the tnum abstracting
    /// `γ(self) ∩ γ(other)` exactly, or `None` when the intersection is
    /// empty (⊥).
    ///
    /// The intersection is empty precisely when the operands disagree on a
    /// bit both know. Compare [`Tnum::intersect_kernel`], which silently
    /// resolves such conflicts.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a: Tnum = "1x".parse()?;   // {2, 3}
    /// let b: Tnum = "x1".parse()?;   // {1, 3}
    /// assert_eq!(a.intersect(b), Some(Tnum::constant(3)));
    /// let c: Tnum = "0x".parse()?;   // {0, 1}
    /// assert_eq!(a.intersect(c), None); // disjoint
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn intersect(self, other: Tnum) -> Option<Tnum> {
        // Bits known in both with different values: empty intersection.
        let both_known = !self.mask() & !other.mask();
        if (self.value() ^ other.value()) & both_known != 0 {
            return None;
        }
        let v = self.value() | other.value();
        let mu = self.mask() & other.mask();
        Some(Tnum::masked(v, mu))
    }

    /// The kernel's `tnum_intersect`, which assumes the operands abstract a
    /// common value and therefore never reports emptiness: conflicting known
    /// bits are resolved by OR-ing the values.
    ///
    /// Prefer [`Tnum::intersect`] unless bug-for-bug kernel fidelity is
    /// required (e.g. in differential tests against `tnum.c`).
    #[must_use]
    pub const fn intersect_kernel(self, other: Tnum) -> Tnum {
        let v = self.value() | other.value();
        let mu = self.mask() & other.mask();
        Tnum::masked(v, mu)
    }

    /// Joins an iterator of tnums, returning `None` for an empty iterator
    /// (the join of nothing is ⊥, which `Tnum` does not represent).
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let join = Tnum::union_all((0..4u64).map(Tnum::constant)).unwrap();
    /// assert_eq!(join, "xx".parse()?);
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn union_all<I: IntoIterator<Item = Tnum>>(tnums: I) -> Option<Tnum> {
        tnums.into_iter().reduce(Tnum::union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    /// γ(a) ⊆ γ(b) computed by brute force, for cross-checking the O(1)
    /// order test.
    fn subset_brute(a: Tnum, b: Tnum) -> bool {
        a.concretize().all(|x| b.contains(x))
    }

    #[test]
    fn order_matches_gamma_subset_exhaustively() {
        for a in tnums(4) {
            for b in tnums(4) {
                assert_eq!(
                    a.is_subset_of(b),
                    subset_brute(a, b),
                    "order mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn order_is_a_partial_order() {
        let all: Vec<Tnum> = tnums(3).collect();
        for &a in &all {
            assert!(a.is_subset_of(a), "reflexive");
            for &b in &all {
                if a.is_subset_of(b) && b.is_subset_of(a) {
                    assert_eq!(a, b, "antisymmetric");
                }
                for &c in &all {
                    if a.is_subset_of(b) && b.is_subset_of(c) {
                        assert!(a.is_subset_of(c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn union_is_least_upper_bound() {
        let all: Vec<Tnum> = tnums(3).collect();
        for &a in &all {
            for &b in &all {
                let j = a.union(b);
                assert!(a.is_subset_of(j) && b.is_subset_of(j), "upper bound");
                // Least: no strictly smaller upper bound exists.
                for &c in &all {
                    if a.is_subset_of(c) && b.is_subset_of(c) {
                        assert!(j.is_subset_of(c), "{j} should be below {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn intersect_is_exact_meet() {
        for a in tnums(4) {
            for b in tnums(4) {
                let expected: Vec<u64> = a.concretize().filter(|&x| b.contains(x)).collect();
                match a.intersect(b) {
                    None => assert!(expected.is_empty(), "{a} ∩ {b}"),
                    Some(m) => {
                        let got: Vec<u64> = m.concretize().collect();
                        assert_eq!(got, expected, "{a} ∩ {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_intersect_agrees_when_nonempty() {
        for a in tnums(4) {
            for b in tnums(4) {
                if let Some(m) = a.intersect(b) {
                    assert_eq!(m, a.intersect_kernel(b));
                }
            }
        }
    }

    #[test]
    fn top_and_constant_relations() {
        assert!(Tnum::constant(99).is_subset_of(Tnum::UNKNOWN));
        assert!(Tnum::constant(99).is_strict_subset_of(Tnum::UNKNOWN));
        assert!(!Tnum::UNKNOWN.is_strict_subset_of(Tnum::UNKNOWN));
        assert!(Tnum::UNKNOWN.is_comparable_to(Tnum::constant(0)));
        // Two different constants are incomparable.
        assert!(!Tnum::constant(1).is_comparable_to(Tnum::constant(2)));
    }

    #[test]
    fn union_all_empty_and_singleton() {
        assert_eq!(Tnum::union_all(std::iter::empty()), None);
        assert_eq!(
            Tnum::union_all([Tnum::constant(5)]),
            Some(Tnum::constant(5))
        );
    }

    #[test]
    fn union_equals_alpha_of_united_gammas() {
        // The join is exactly α(γ(a) ∪ γ(b)) — optimality of tnum_union.
        for a in tnums(4) {
            for b in tnums(4) {
                let members = a.concretize().chain(b.concretize());
                let alpha = Tnum::abstract_of(members).unwrap();
                assert_eq!(a.union(b), alpha, "union {a} ∪ {b}");
            }
        }
    }
}
