//! Bitwise abstract operators: `and`, `or`, `xor`.
//!
//! These are the kernel's `tnum_and` / `tnum_or` / `tnum_xor`; prior work
//! (Miné 2012) showed the same formulas to be sound and optimal. Because
//! each output bit depends only on the corresponding input bits, no
//! uncertainty propagates across positions.

use crate::tnum::Tnum;

impl Tnum {
    /// Abstract bitwise AND (sound and optimal).
    ///
    /// A result bit is known `0` if either operand's bit is known `0`; known
    /// `1` if both are known `1`; otherwise unknown.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a: Tnum = "1x1".parse()?;
    /// let b: Tnum = "11x".parse()?;
    /// assert_eq!(a.and(b).to_bin_string(3), "1xx");
    /// // Masking with a constant pins high bits to zero — the classic
    /// // verifier idiom for bounding an index.
    /// let any = Tnum::UNKNOWN;
    /// assert_eq!(any.and(Tnum::constant(0b111)).max_value(), 7);
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn and(self, other: Tnum) -> Tnum {
        let alpha = self.value() | self.mask();
        let beta = other.value() | other.mask();
        let v = self.value() & other.value();
        Tnum::masked(v, alpha & beta & !v)
    }

    /// Abstract bitwise OR (sound and optimal).
    ///
    /// A result bit is known `1` if either operand's bit is known `1`; known
    /// `0` if both are known `0`; otherwise unknown.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a: Tnum = "0x0".parse()?;
    /// let b: Tnum = "10x".parse()?;
    /// assert_eq!(a.or(b).to_bin_string(3), "1xx");
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn or(self, other: Tnum) -> Tnum {
        let v = self.value() | other.value();
        let mu = self.mask() | other.mask();
        // A bit known 1 in either operand stays known 1 (1 | x = 1), so the
        // kernel removes v bits from the result mask rather than vice versa.
        Tnum::masked(v, mu & !v)
    }

    /// Abstract bitwise XOR (sound and optimal).
    ///
    /// A result bit is known iff both operand bits are known.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a: Tnum = "11x".parse()?;
    /// let b: Tnum = "101".parse()?;
    /// assert_eq!(a.xor(b).to_bin_string(3), "01x");
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn xor(self, other: Tnum) -> Tnum {
        let v = self.value() ^ other.value();
        let mu = self.mask() | other.mask();
        Tnum::masked(v, mu)
    }

    /// Abstract bitwise NOT: flips every known trit, keeps unknowns.
    ///
    /// Not in `tnum.c` (BPF lowers `~x` to `x ^ -1`), provided for
    /// completeness; equal to `self.xor(Tnum::constant(u64::MAX))`.
    #[must_use]
    pub const fn not(self) -> Tnum {
        Tnum::masked(!self.value(), self.mask())
    }
}

/// Operator form of [`Tnum::and`].
impl core::ops::BitAnd for Tnum {
    type Output = Tnum;
    fn bitand(self, rhs: Tnum) -> Tnum {
        self.and(rhs)
    }
}

/// Operator form of [`Tnum::or`].
impl core::ops::BitOr for Tnum {
    type Output = Tnum;
    fn bitor(self, rhs: Tnum) -> Tnum {
        self.or(rhs)
    }
}

/// Operator form of [`Tnum::xor`].
impl core::ops::BitXor for Tnum {
    type Output = Tnum;
    fn bitxor(self, rhs: Tnum) -> Tnum {
        self.xor(rhs)
    }
}

/// Operator form of [`Tnum::not`].
impl core::ops::Not for Tnum {
    type Output = Tnum;
    fn not(self) -> Tnum {
        Tnum::not(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    fn check_optimal(
        op_t: impl Fn(Tnum, Tnum) -> Tnum,
        op_c: impl Fn(u64, u64) -> u64,
        width: u32,
    ) {
        let m = crate::low_bits(width);
        for a in tnums(width) {
            for b in tnums(width) {
                let got = op_t(a, b).truncate(width);
                let best = Tnum::abstract_of(
                    a.concretize()
                        .flat_map(|x| b.concretize().map(|y| op_c(x, y) & m).collect::<Vec<_>>()),
                )
                .unwrap();
                assert_eq!(got, best, "not optimal for {a}, {b}");
            }
        }
    }

    #[test]
    fn and_optimal_w4() {
        check_optimal(Tnum::and, |x, y| x & y, 4);
    }

    #[test]
    fn or_optimal_w4() {
        check_optimal(Tnum::or, |x, y| x | y, 4);
    }

    #[test]
    fn xor_optimal_w4() {
        check_optimal(Tnum::xor, |x, y| x ^ y, 4);
    }

    #[test]
    fn not_optimal_w4() {
        for a in tnums(4) {
            let got = a.not().truncate(4);
            let best = Tnum::abstract_of(a.concretize().map(|x| !x & 0xf)).unwrap();
            assert_eq!(got, best);
        }
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Tnum::constant(0b1100).and(Tnum::constant(0b1010)),
            Tnum::constant(0b1000)
        );
        assert_eq!(
            Tnum::constant(0b1100).or(Tnum::constant(0b1010)),
            Tnum::constant(0b1110)
        );
        assert_eq!(
            Tnum::constant(0b1100).xor(Tnum::constant(0b1010)),
            Tnum::constant(0b0110)
        );
        assert_eq!(Tnum::constant(0).not(), Tnum::constant(u64::MAX));
    }

    #[test]
    fn annihilators_and_identities() {
        for t in tnums(4) {
            assert_eq!(t.and(Tnum::ZERO), Tnum::ZERO);
            assert_eq!(t.and(Tnum::constant(u64::MAX)), t);
            assert_eq!(t.or(Tnum::ZERO), t);
            assert_eq!(t.or(Tnum::constant(u64::MAX)), Tnum::constant(u64::MAX));
            assert_eq!(t.xor(Tnum::ZERO), t);
            assert_eq!(t.not().not(), t);
            assert_eq!(t.xor(Tnum::constant(u64::MAX)), t.not());
        }
    }

    #[test]
    fn unknown_absorbs_partially() {
        // x & unknown keeps known zeros, loses everything else.
        let t: Tnum = "100x".parse().unwrap();
        let r = t.and(Tnum::UNKNOWN);
        assert_eq!(r.to_bin_string(4), "x00x");
    }

    #[test]
    fn bitwise_ops_commutative_and_associative_w3() {
        let all: Vec<Tnum> = tnums(3).collect();
        for &a in &all {
            for &b in &all {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
                for &c in &all {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                    assert_eq!(a.xor(b).xor(c), a.xor(b.xor(c)));
                }
            }
        }
    }

    #[test]
    fn operators_match_methods() {
        let a: Tnum = "1x".parse().unwrap();
        let b: Tnum = "x1".parse().unwrap();
        assert_eq!(a & b, a.and(b));
        assert_eq!(a | b, a.or(b));
        assert_eq!(a ^ b, a.xor(b));
        assert_eq!(!a, a.not());
    }
}
