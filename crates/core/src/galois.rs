//! The Galois connection: abstraction (α) and concretization (γ).

use crate::tnum::Tnum;

impl Tnum {
    /// The abstraction function α over a non-empty set of concrete values
    /// (Eqn. 5 of the paper):
    ///
    /// * `α&(C)` = bitwise AND of all members (bits known `1` everywhere),
    /// * `α|(C)` = bitwise OR of all members,
    /// * result = `(α&, α& ⊕ α|)`.
    ///
    /// This abstraction is *bitwise exact* (Eqn. 6): the result has an
    /// unknown trit at position `k` iff two members of `C` disagree at `k`.
    ///
    /// Returns `None` when the iterator is empty (α(∅) = ⊥, which `Tnum`
    /// does not represent).
    ///
    /// # Examples
    ///
    /// The Fig. 1 examples at width 2: α({1,2,3}) = `xx` (over-approximating
    /// to {0,1,2,3}), while α({2,3}) = `1x` is exact.
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a = Tnum::abstract_of([1u64, 2, 3]).unwrap();
    /// assert_eq!(a, "xx".parse()?);
    /// assert_eq!(a.cardinality(), 4); // over-approximation
    /// let b = Tnum::abstract_of([2u64, 3]).unwrap();
    /// assert_eq!(b, "1x".parse()?);
    /// assert_eq!(b.cardinality(), 2); // exact
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn abstract_of<I: IntoIterator<Item = u64>>(values: I) -> Option<Tnum> {
        let mut iter = values.into_iter();
        let first = iter.next()?;
        let (and, or) = iter.fold((first, first), |(a, o), v| (a & v, o | v));
        Some(Tnum::masked(and, and ^ or))
    }

    /// Iterates over γ(self): every concrete value abstracted by this tnum,
    /// in increasing numeric order.
    ///
    /// The iterator yields exactly [`Tnum::cardinality`] values. Beware that
    /// this is `2^popcount(mask)` — calling this on ⊤ would enumerate all
    /// 2⁶⁴ values.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t: Tnum = "x10".parse()?;
    /// assert_eq!(t.concretize().collect::<Vec<_>>(), vec![0b010, 0b110]);
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn concretize(self) -> Concretize {
        Concretize {
            base: self.value(),
            mask: self.mask(),
            sub: 0,
            done: false,
        }
    }
}

/// Iterator over the concretization γ of a tnum, created by
/// [`Tnum::concretize`].
///
/// Internally enumerates submasks of the unknown-bit mask in increasing
/// order via the standard `sub = (sub - mask) & mask` recurrence.
#[derive(Clone, Debug)]
pub struct Concretize {
    base: u64,
    mask: u64,
    sub: u64,
    done: bool,
}

impl Iterator for Concretize {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let out = self.base | self.sub;
        if self.sub == self.mask {
            self.done = true;
        } else {
            // Next submask of `mask` in increasing order.
            self.sub = (self.sub.wrapping_sub(self.mask)) & self.mask;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Remaining count is total minus consumed; both fit usize only when
        // popcount < usize bits, so saturate for the pathological ⊤ case.
        let total = 1u128 << self.mask.count_ones();
        let consumed = if self.sub == 0 && !self.done {
            0u128
        } else {
            // Count of submasks strictly below `sub`: compress sub onto mask.
            compress(self.sub, self.mask) as u128
        };
        let rem = total - consumed;
        let lower = usize::try_from(rem).unwrap_or(usize::MAX);
        (lower, usize::try_from(rem).ok())
    }
}

impl std::iter::FusedIterator for Concretize {}

/// Extracts the bits of `x` selected by `mask`, packing them densely into
/// the low bits (a software PEXT).
fn compress(x: u64, mask: u64) -> u64 {
    let mut out = 0u64;
    let mut bit = 0u32;
    let mut m = mask;
    while m != 0 {
        let lsb = m & m.wrapping_neg();
        if x & lsb != 0 {
            out |= 1 << bit;
        }
        bit += 1;
        m &= m - 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_of_constant_is_singleton() {
        let t = Tnum::constant(42);
        assert_eq!(t.concretize().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn gamma_is_sorted_and_complete() {
        let t = Tnum::masked(0b0100_0001, 0b0011_0010);
        let members: Vec<u64> = t.concretize().collect();
        assert_eq!(members.len() as u128, t.cardinality());
        assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        for &m in &members {
            assert!(t.contains(m));
        }
        // And nothing outside gamma in the covering range is contained.
        for x in 0..=t.max_value() {
            assert_eq!(t.contains(x), members.binary_search(&x).is_ok());
        }
    }

    #[test]
    fn alpha_gamma_round_trips_exactly() {
        // α ∘ γ is the identity on well-formed tnums (reductivity is an
        // equality for this domain — Property G4 of the paper).
        for t in crate::enumerate::tnums(6) {
            let back = Tnum::abstract_of(t.concretize()).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn gamma_alpha_is_extensive() {
        // γ ∘ α over-approximates: C ⊆ γ(α(C)) (Property G3).
        let sets: [&[u64]; 5] = [&[1, 2, 3], &[2, 3], &[0], &[7, 11, 13, 64], &[u64::MAX, 0]];
        for set in sets {
            let a = Tnum::abstract_of(set.iter().copied()).unwrap();
            for &c in set {
                assert!(a.contains(c), "{c} must be in γ(α(C)) for C={set:?}");
            }
        }
    }

    #[test]
    fn alpha_of_empty_is_none() {
        assert_eq!(Tnum::abstract_of(std::iter::empty()), None);
    }

    #[test]
    fn fig1_worked_examples() {
        // Fig. 1(i): α({1,2,3}) = μμ, γ gives {0,1,2,3}.
        let a = Tnum::abstract_of([1u64, 2, 3]).unwrap();
        assert_eq!(a.concretize().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Fig. 1(ii): α({2,3}) = 1μ, γ gives exactly {2,3}.
        let b = Tnum::abstract_of([2u64, 3]).unwrap();
        assert_eq!(b.concretize().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn size_hint_is_exact() {
        let t = Tnum::masked(0, 0b1011);
        let mut it = t.concretize();
        assert_eq!(it.size_hint(), (8, Some(8)));
        it.next();
        it.next();
        assert_eq!(it.size_hint(), (6, Some(6)));
        let rest: Vec<u64> = it.collect();
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn compress_is_pext() {
        assert_eq!(compress(0b1010, 0b1110), 0b101);
        assert_eq!(compress(0, u64::MAX), 0);
        assert_eq!(compress(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(compress(0b100, 0b100), 1);
    }
}
