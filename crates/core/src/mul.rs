//! Abstract multiplication: the paper's new algorithm (`our_mul`, §III-C),
//! its reference form (`our_mul_simplified`, Listing 3), and the legacy
//! kernel algorithm (`kern_mul`, Listing 2).
//!
//! All three are *sound* abstractions of wrapping 64-bit multiplication;
//! none is optimal. `our_mul` is the algorithm merged into the Linux kernel
//! by the paper's authors: it is empirically more precise than `kern_mul`
//! and the Regehr–Duongsaa `bitwise_mul` (see the `tnum-verify` crate and
//! the Fig. 4 / Table I experiments), and ~33% faster.

use crate::tnum::Tnum;

impl Tnum {
    /// Abstract multiplication — the paper's `our_mul` (Listing 4), now the
    /// Linux kernel's `tnum_mul`.
    ///
    /// Generalizes binary long multiplication to tnums while keeping the
    /// *known* and *unknown* partial-product contributions in two separate
    /// accumulators:
    ///
    /// * `acc_v` accumulates `P.value * Q.value` — all the fully-known
    ///   partial products, summed with one concrete multiply;
    /// * `acc_m` accumulates mask-only tnums `(0, m)` for every partial
    ///   product that carries uncertainty, using [`Tnum::add`].
    ///
    /// The two are combined with a single final abstract addition. This
    /// *value/mask decomposition* (Lemma 9) postpones mixing certain and
    /// uncertain trits until the very last step, which is why `our_mul`
    /// out-performs algorithms that accumulate mixed tnums (§IV-A).
    ///
    /// Runs in O(n) for n-bit operands; exits early once the remaining
    /// multiplier bits are all known zero.
    ///
    /// # Examples
    ///
    /// The Fig. 3 worked example: `μ01 * μ10 = μμμ10`.
    ///
    /// ```
    /// use tnum::Tnum;
    /// let p: Tnum = "x01".parse()?;
    /// let q: Tnum = "x10".parse()?;
    /// let r = p.mul(q);
    /// assert_eq!(r.to_bin_string(5), "xxx10");
    /// // Soundness: all 4 concrete products are members.
    /// for x in p.concretize() {
    ///     for y in q.concretize() {
    ///         assert!(r.contains(x * y));
    ///     }
    /// }
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn mul(self, other: Tnum) -> Tnum {
        let acc_v = self.value().wrapping_mul(other.value());
        let mut acc_m = Tnum::ZERO;
        let mut a = self;
        let mut b = other;
        while a.value() != 0 || a.mask() != 0 {
            if a.value() & 1 == 1 {
                // LSB of `a` is a certain 1: partial product contributes
                // exactly b's uncertainty.
                acc_m = acc_m.add(Tnum::masked(0, b.mask()));
            } else if a.mask() & 1 == 1 {
                // LSB of `a` is unknown: partial product is 0 or any member
                // of b — every possibly-set bit of b becomes uncertain
                // (Lemma 8, "tnum set union with zero").
                acc_m = acc_m.add(Tnum::masked(0, b.value() | b.mask()));
            }
            // Note: no case for a certain-0 LSB — zero partial product.
            a = a.rshift(1);
            b = b.lshift(1);
        }
        Tnum::constant(acc_v).add(acc_m)
    }

    /// The legacy Linux kernel abstract multiplication — the paper's
    /// `kern_mul` (Listing 2), built on the half-multiply-accumulate
    /// helper [`hma`].
    ///
    /// Sound (verified exhaustively up to width 8, matching the paper's
    /// bounded verification) but less precise and slower than [`Tnum::mul`]:
    /// it performs up to 2n abstract additions of *mixed* tnums versus
    /// `our_mul`'s n+1 additions of mask-only tnums.
    ///
    /// # Examples
    ///
    /// At width 9 the two algorithms produce incomparable results (§IV-A):
    ///
    /// ```
    /// use tnum::Tnum;
    /// let p: Tnum = "000000011".parse()?;
    /// let q: Tnum = "011x011xx".parse()?;
    /// let kern = p.mul_kernel_legacy(q);
    /// let ours = p.mul(q);
    /// assert_eq!(kern.to_bin_string(9), "xxxx0xxxx");
    /// assert_eq!(ours.to_bin_string(9), "0xxxxxxxx");
    /// assert!(!kern.is_comparable_to(ours));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn mul_kernel_legacy(self, other: Tnum) -> Tnum {
        let pi = self.value().wrapping_mul(other.value());
        let acc = hma(
            Tnum::constant(pi),
            self.mask(),
            other.mask() | other.value(),
        );
        hma(acc, other.mask(), self.value())
    }
}

/// The kernel's "half-multiply-accumulate" helper used by
/// [`Tnum::mul_kernel_legacy`]: accumulates `(0, x << i)` into `acc` for
/// every set bit `i` of `y`.
#[must_use]
pub const fn hma(mut acc: Tnum, mut x: u64, mut y: u64) -> Tnum {
    while y != 0 {
        if y & 1 == 1 {
            acc = acc.add(Tnum::masked(0, x));
        }
        y >>= 1;
        x <<= 1;
    }
    acc
}

/// The paper's `our_mul_simplified` (Listing 3): semantically equivalent to
/// [`Tnum::mul`] but structured for the soundness proof — it materializes
/// *both* accumulators as tnums and always loops over the full bitwidth.
///
/// Lemma 11 ("correctness of strength reductions") states the equivalence
/// with `our_mul`; the `tnum-verify` crate checks it exhaustively.
///
/// # Examples
///
/// ```
/// use tnum::{mul::our_mul_simplified, Tnum};
/// let p: Tnum = "x01".parse()?;
/// let q: Tnum = "x10".parse()?;
/// assert_eq!(our_mul_simplified(p, q), p.mul(q));
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[must_use]
pub fn our_mul_simplified(p: Tnum, q: Tnum) -> Tnum {
    let mut acc_v = Tnum::ZERO;
    let mut acc_m = Tnum::ZERO;
    let mut a = p;
    let mut b = q;
    for _ in 0..crate::BITS {
        if a.value() & 1 == 1 {
            // LSB of `a` is a certain 1.
            acc_v = acc_v.add(Tnum::constant(b.value()));
            acc_m = acc_m.add(Tnum::masked(0, b.mask()));
        } else if a.mask() & 1 == 1 {
            // LSB of `a` is uncertain.
            acc_m = acc_m.add(Tnum::masked(0, b.value() | b.mask()));
        }
        a = a.rshift(1);
        b = b.lshift(1);
    }
    acc_v.add(acc_m)
}

/// Operator form of [`Tnum::mul`].
impl core::ops::Mul for Tnum {
    type Output = Tnum;
    fn mul(self, rhs: Tnum) -> Tnum {
        Tnum::mul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    fn sound_mul(mul: impl Fn(Tnum, Tnum) -> Tnum, width: u32) {
        let m = crate::low_bits(width);
        for a in tnums(width) {
            for b in tnums(width) {
                let r = mul(a, b).truncate(width);
                for x in a.concretize() {
                    for y in b.concretize() {
                        let prod = x.wrapping_mul(y) & m;
                        assert!(
                            r.contains(prod),
                            "{x}*{y}={prod} missing from mul({a},{b})={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn our_mul_sound_exhaustive_w4() {
        sound_mul(Tnum::mul, 4);
    }

    #[test]
    fn kern_mul_sound_exhaustive_w4() {
        sound_mul(Tnum::mul_kernel_legacy, 4);
    }

    #[test]
    fn simplified_sound_exhaustive_w4() {
        sound_mul(our_mul_simplified, 4);
    }

    #[test]
    fn our_mul_equals_simplified_exhaustive_w5() {
        // Lemma 11: the strength-reduced our_mul has identical input/output
        // behaviour to our_mul_simplified.
        for a in tnums(5) {
            for b in tnums(5) {
                assert_eq!(a.mul(b), our_mul_simplified(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn fig3_worked_example() {
        let p: Tnum = "x01".parse().unwrap();
        let q: Tnum = "x10".parse().unwrap();
        let r = p.mul(q);
        assert_eq!((r.value(), r.mask()), (0b00010, 0b11100));
        // γ(R) = {2, 6, 10, 14, 18, 22, 26, 30}.
        assert_eq!(
            r.concretize().collect::<Vec<_>>(),
            vec![2, 6, 10, 14, 18, 22, 26, 30]
        );
    }

    #[test]
    fn mul_constants_is_concrete() {
        assert_eq!(Tnum::constant(6).mul(Tnum::constant(7)), Tnum::constant(42));
        assert_eq!(
            Tnum::constant(u64::MAX).mul(Tnum::constant(2)),
            Tnum::constant(u64::MAX.wrapping_mul(2))
        );
        assert_eq!(Tnum::UNKNOWN.mul(Tnum::ZERO), Tnum::ZERO);
    }

    #[test]
    fn mul_by_power_of_two_is_shift() {
        for t in tnums(4) {
            assert_eq!(t.mul(Tnum::constant(4)), t.lshift(2));
        }
    }

    #[test]
    fn mul_not_commutative_witness() {
        // §III-A observation (3): tnum multiplication is not commutative.
        let mut found = false;
        'outer: for a in tnums(4) {
            for b in tnums(4) {
                if a.mul(b) != b.mul(a) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected a non-commutativity witness at width 4");
    }

    #[test]
    fn paper_incomparability_example_w9() {
        // §IV-A: at n = 9, P = 000000011, Q = 011x011xx gives incomparable
        // outputs from kern_mul and our_mul.
        let p: Tnum = "000000011".parse().unwrap();
        let q: Tnum = "011x011xx".parse().unwrap();
        let kern = p.mul_kernel_legacy(q).truncate(9);
        let ours = p.mul(q).truncate(9);
        assert_eq!(kern.to_bin_string(9), "xxxx0xxxx");
        assert_eq!(ours.to_bin_string(9), "0xxxxxxxx");
        assert!(!kern.is_comparable_to(ours));
    }

    #[test]
    fn our_mul_never_less_precise_when_comparable_w5() {
        // §IV-A empirical claim at small width: when outputs differ and are
        // comparable, count how often each is more precise; our_mul must win
        // the majority (Table I shows 75% at width 5).
        let mut ours_wins = 0u32;
        let mut kern_wins = 0u32;
        for a in tnums(5) {
            for b in tnums(5) {
                let k = a.mul_kernel_legacy(b).truncate(5);
                let o = a.mul(b).truncate(5);
                if k == o {
                    continue;
                }
                if o.is_strict_subset_of(k) {
                    ours_wins += 1;
                } else if k.is_strict_subset_of(o) {
                    kern_wins += 1;
                }
            }
        }
        assert!(
            ours_wins > kern_wins,
            "ours {ours_wins} vs kern {kern_wins}"
        );
    }

    #[test]
    fn hma_accumulates_shifted_masks() {
        // hma(acc, x, y) adds (0, x << i) for each set bit i of y.
        let acc = hma(Tnum::ZERO, 0b1, 0b101);
        let expect = Tnum::masked(0, 0b1).add(Tnum::masked(0, 0b100));
        assert_eq!(acc, expect);
        assert_eq!(hma(Tnum::constant(9), 0b11, 0), Tnum::constant(9));
    }

    #[test]
    fn operator_matches_method() {
        let a: Tnum = "1x".parse().unwrap();
        let b: Tnum = "x1".parse().unwrap();
        assert_eq!(a * b, a.mul(b));
    }

    #[test]
    fn mul_not_monotone_witness() {
        // Unlike tnum_add (optimal, hence monotone), our_mul is *not*
        // monotone in its arguments: refining an input can coarsen the
        // output. This is a consequence of branching on the certainty of
        // the multiplier's LSB. Soundness is unaffected. We pin this
        // property with an exhaustively-found witness at width 3.
        let all: Vec<Tnum> = tnums(3).collect();
        let mut witness = None;
        'outer: for &a in &all {
            for &a2 in &all {
                if !a.is_subset_of(a2) {
                    continue;
                }
                for &b in &all {
                    if !a.mul(b).is_subset_of(a2.mul(b)) {
                        witness = Some((a, a2, b));
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            witness.is_some(),
            "expected a non-monotonicity witness for our_mul at width 3"
        );
    }
}
