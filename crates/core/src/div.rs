//! Abstract division and remainder.
//!
//! The paper (§II-B) notes that for `div` and `mod` "the BPF static analyzer
//! conservatively and soundly sets all the output trits to unknown". These
//! operators do exactly that, with the two easy exact cases preserved
//! (constant operands, and division by a known power of two, which is a
//! shift).
//!
//! BPF semantics: division by zero yields 0 and `x % 0` yields `x` (the
//! runtime patches the instruction); the abstract operators account for a
//! possibly-zero divisor by joining those outcomes.

use crate::tnum::Tnum;

impl Tnum {
    /// Abstract unsigned division with BPF `x / 0 = 0` semantics.
    ///
    /// Exact when both operands are constants; a right shift when the
    /// divisor is a known nonzero power of two; otherwise conservatively ⊤
    /// restricted only by the trivial upper bound (matching the kernel's
    /// "mark unknown" treatment while remaining sound).
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// assert_eq!(Tnum::constant(42).div(Tnum::constant(6)), Tnum::constant(7));
    /// assert_eq!(Tnum::constant(42).div(Tnum::constant(0)), Tnum::constant(0));
    /// let t: Tnum = "1xx0".parse()?;
    /// assert_eq!(t.div(Tnum::constant(2)), t.rshift(1));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn div(self, other: Tnum) -> Tnum {
        match (self.as_constant(), other.as_constant()) {
            (Some(x), Some(y)) => Tnum::constant(if y == 0 { 0 } else { x / y }),
            (_, Some(y)) if y.is_power_of_two() => self.rshift(y.trailing_zeros()),
            _ => Tnum::UNKNOWN,
        }
    }

    /// Abstract unsigned remainder with BPF `x % 0 = x` semantics.
    ///
    /// Exact when both operands are constants; a bitwise AND with `y - 1`
    /// when the divisor is a known nonzero power of two; otherwise
    /// conservatively ⊤.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// assert_eq!(Tnum::constant(42).rem(Tnum::constant(5)), Tnum::constant(2));
    /// assert_eq!(Tnum::constant(42).rem(Tnum::constant(0)), Tnum::constant(42));
    /// // x % 8 keeps the low three trits.
    /// let t: Tnum = "1x1x".parse()?;
    /// assert_eq!(t.rem(Tnum::constant(8)), t.and(Tnum::constant(7)));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn rem(self, other: Tnum) -> Tnum {
        match (self.as_constant(), other.as_constant()) {
            (Some(x), Some(y)) => Tnum::constant(if y == 0 { x } else { x % y }),
            (_, Some(y)) if y.is_power_of_two() => self.and(Tnum::constant(y - 1)),
            _ => Tnum::UNKNOWN,
        }
    }
}

/// Operator form of [`Tnum::div`].
impl core::ops::Div for Tnum {
    type Output = Tnum;
    fn div(self, rhs: Tnum) -> Tnum {
        Tnum::div(self, rhs)
    }
}

/// Operator form of [`Tnum::rem`].
impl core::ops::Rem for Tnum {
    type Output = Tnum;
    fn rem(self, rhs: Tnum) -> Tnum {
        Tnum::rem(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    fn bpf_div(x: u64, y: u64) -> u64 {
        if y == 0 {
            0
        } else {
            x / y
        }
    }

    fn bpf_rem(x: u64, y: u64) -> u64 {
        if y == 0 {
            x
        } else {
            x % y
        }
    }

    #[test]
    fn div_rem_sound_exhaustive_w4() {
        for a in tnums(4) {
            for b in tnums(4) {
                let d = a.div(b);
                let r = a.rem(b);
                for x in a.concretize() {
                    for y in b.concretize() {
                        assert!(d.contains(bpf_div(x, y)), "{a}/{b}: {x}/{y}");
                        assert!(r.contains(bpf_rem(x, y)), "{a}%{b}: {x}%{y}");
                    }
                }
            }
        }
    }

    #[test]
    fn div_by_zero_follows_bpf() {
        assert_eq!(Tnum::constant(7).div(Tnum::constant(0)), Tnum::constant(0));
        assert_eq!(Tnum::constant(7).rem(Tnum::constant(0)), Tnum::constant(7));
    }

    #[test]
    fn power_of_two_divisor_is_precise() {
        let t: Tnum = "1xx0".parse().unwrap();
        assert_eq!(t.div(Tnum::constant(4)), t.rshift(2));
        assert_eq!(t.rem(Tnum::constant(4)), t.and(Tnum::constant(3)));
        // Division by 1 is the identity.
        assert_eq!(t.div(Tnum::constant(1)), t);
        assert_eq!(t.rem(Tnum::constant(1)), Tnum::ZERO);
    }

    #[test]
    fn non_constant_divisor_is_top() {
        let t = Tnum::constant(100);
        let d: Tnum = "1x".parse().unwrap();
        assert_eq!(t.div(d), Tnum::UNKNOWN);
        assert_eq!(t.rem(d), Tnum::UNKNOWN);
    }

    #[test]
    fn operators_match_methods() {
        let a = Tnum::constant(42);
        let b = Tnum::constant(5);
        assert_eq!(a / b, a.div(b));
        assert_eq!(a % b, a.rem(b));
    }
}
