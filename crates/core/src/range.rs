//! Constructing tnums from value ranges — the kernel's `tnum_range`.

use crate::tnum::Tnum;
use crate::width::BITS;

impl Tnum {
    /// The smallest tnum containing every value in `min..=max`
    /// (the kernel's `tnum_range`).
    ///
    /// All bits above the highest bit where `min` and `max` differ are
    /// known (they are shared by the whole range); everything below is
    /// unknown. This is exactly α applied to the interval, and the verifier
    /// uses it to convert interval-domain knowledge into tnum knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` (an empty range has no tnum abstraction).
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// // 8..=11 share the prefix 10; the low two bits are free.
    /// assert_eq!(Tnum::range(8, 11), "10xx".parse()?);
    /// assert_eq!(Tnum::range(5, 5), Tnum::constant(5));
    /// assert_eq!(Tnum::range(0, u64::MAX), Tnum::UNKNOWN);
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn range(min: u64, max: u64) -> Tnum {
        assert!(min <= max, "tnum range requires min <= max");
        let chi = min ^ max;
        // fls64: index of the highest set bit, 1-based; 0 when chi == 0.
        let bits = (BITS - chi.leading_zeros()) as u64;
        if bits > 63 {
            return Tnum::UNKNOWN;
        }
        let delta = (1u64 << bits) - 1;
        Tnum::masked(min, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains_every_member_exhaustive_w6() {
        for min in 0..64u64 {
            for max in min..64 {
                let t = Tnum::range(min, max);
                for x in min..=max {
                    assert!(t.contains(x), "range({min},{max}) missing {x}");
                }
            }
        }
    }

    #[test]
    fn range_is_alpha_of_interval_exhaustive_w6() {
        // tnum_range equals the exact abstraction α(min..=max).
        for min in 0..64u64 {
            for max in min..64 {
                let t = Tnum::range(min, max);
                let best = Tnum::abstract_of(min..=max).unwrap();
                assert_eq!(t, best, "range({min},{max})");
            }
        }
    }

    #[test]
    fn singleton_range_is_constant() {
        assert_eq!(Tnum::range(42, 42), Tnum::constant(42));
    }

    #[test]
    fn sign_boundary_range_is_top() {
        // Ranges crossing bit 63 lose all information.
        assert_eq!(Tnum::range(0, u64::MAX), Tnum::UNKNOWN);
        assert_eq!(Tnum::range(1, 1 << 63), Tnum::UNKNOWN);
    }

    #[test]
    fn power_of_two_aligned_ranges() {
        assert_eq!(Tnum::range(16, 31), Tnum::masked(16, 15));
        assert_eq!(Tnum::range(0, 7), Tnum::masked(0, 7));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn inverted_range_panics() {
        let _ = Tnum::range(3, 2);
    }
}
