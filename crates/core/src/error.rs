//! Error types for tnum construction and parsing.

use core::fmt;

/// Error returned by [`Tnum::new`](crate::Tnum::new) when a `value`/`mask`
/// pair has overlapping bits.
///
/// Such pairs are the paper's ⊥ (Eqn. 4): they concretize to the empty set
/// and are excluded from the [`Tnum`](crate::Tnum) type by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotWellFormedError {
    /// The offending `value` operand.
    pub value: u64,
    /// The offending `mask` operand.
    pub mask: u64,
}

impl fmt::Display for NotWellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tnum (value={:#x}, mask={:#x}) is not well-formed: overlapping bits {:#x}",
            self.value,
            self.mask,
            self.value & self.mask
        )
    }
}

impl std::error::Error for NotWellFormedError {}

/// Error returned when parsing a tnum from its textual trit form fails.
///
/// Produced by the [`FromStr`](core::str::FromStr) implementation of
/// [`Tnum`](crate::Tnum).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseTnumError {
    /// The input was empty.
    Empty,
    /// The input contained a character that is not a trit
    /// (`0`, `1`, `x`/`X`/`u`/`U`/`μ`/`?`) or an ignored separator (`_`).
    InvalidTrit {
        /// The offending character.
        character: char,
        /// Byte offset of the character within the input.
        offset: usize,
    },
    /// The input contained more than 64 trits.
    TooWide {
        /// Number of trits found.
        found: usize,
    },
}

impl fmt::Display for ParseTnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTnumError::Empty => write!(f, "empty tnum literal"),
            ParseTnumError::InvalidTrit { character, offset } => {
                write!(
                    f,
                    "invalid trit character {character:?} at byte offset {offset}"
                )
            }
            ParseTnumError::TooWide { found } => {
                write!(
                    f,
                    "tnum literal has {found} trits, more than the maximum of 64"
                )
            }
        }
    }
}

impl std::error::Error for ParseTnumError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tnum;

    #[test]
    fn display_mentions_offending_bits() {
        let err = Tnum::new(0b110, 0b010).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("0x2"), "message should name overlap: {msg}");
    }

    #[test]
    fn parse_error_display() {
        assert_eq!("".parse::<Tnum>().unwrap_err(), ParseTnumError::Empty);
        let err = "1020".parse::<Tnum>().unwrap_err();
        assert!(matches!(
            err,
            ParseTnumError::InvalidTrit {
                character: '2',
                offset: 2
            }
        ));
        assert!(err.to_string().contains("'2'"));
        let wide = "0".repeat(65).parse::<Tnum>().unwrap_err();
        assert_eq!(wide, ParseTnumError::TooWide { found: 65 });
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NotWellFormedError>();
        assert_err::<ParseTnumError>();
    }
}
