//! Enumeration of all well-formed tnums at a given bit width.
//!
//! The exhaustive experiments of the paper (§IV-A, Table I) quantify over
//! *every* well-formed tnum pair at widths 5–10. There are exactly `3^n`
//! well-formed n-trit tnums; this module enumerates them in a canonical
//! (base-3 counter) order.

use crate::tnum::Tnum;
use crate::trit::Trit;

/// Iterates over all `3^width` well-formed tnums of the given width
/// (higher bits known `0`), in base-3 counting order with the trit order
/// `0 < 1 < x` per position.
///
/// # Panics
///
/// Panics if `width > 40` — beyond that `3^width` overflows any practical
/// enumeration budget (and the internal `u64` index math).
///
/// # Examples
///
/// ```
/// use tnum::enumerate::tnums;
///
/// assert_eq!(tnums(1).count(), 3);
/// assert_eq!(tnums(2).count(), 9);
/// let all: Vec<String> = tnums(1).map(|t| t.to_bin_string(1)).collect();
/// assert_eq!(all, ["0", "1", "x"]);
/// ```
pub fn tnums(width: u32) -> Tnums {
    assert!(width <= 40, "enumeration width out of range 0..=40");
    Tnums {
        width,
        index: 0,
        total: 3u64.pow(width),
    }
}

/// The number of well-formed tnums at `width` bits: `3^width`.
///
/// # Examples
///
/// ```
/// assert_eq!(tnum::enumerate::count(8), 6561);
/// ```
#[must_use]
pub fn count(width: u32) -> u64 {
    3u64.pow(width)
}

/// Decodes the `index`-th tnum (in [`tnums`] order) of the given width.
///
/// Useful for partitioning an exhaustive sweep across threads without
/// materializing the enumeration.
///
/// # Panics
///
/// Panics if `index >= 3^width`.
///
/// # Examples
///
/// ```
/// use tnum::enumerate::{nth, tnums};
/// let all: Vec<_> = tnums(3).collect();
/// for (i, &t) in all.iter().enumerate() {
///     assert_eq!(nth(3, i as u64), t);
/// }
/// ```
#[must_use]
pub fn nth(width: u32, index: u64) -> Tnum {
    assert!(index < count(width), "tnum index out of range");
    let mut t = Tnum::ZERO;
    let mut rem = index;
    for bit in 0..width {
        let trit = match rem % 3 {
            0 => Trit::Zero,
            1 => Trit::One,
            _ => Trit::Unknown,
        };
        t = t.with_trit(bit, trit);
        rem /= 3;
    }
    t
}

/// Iterator over all well-formed tnums of a fixed width, created by
/// [`tnums`].
#[derive(Clone, Debug)]
pub struct Tnums {
    width: u32,
    index: u64,
    total: u64,
}

impl Iterator for Tnums {
    type Item = Tnum;

    fn next(&mut self) -> Option<Tnum> {
        if self.index >= self.total {
            return None;
        }
        let t = nth(self.width, self.index);
        self.index += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.index) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Tnums {}
impl std::iter::FusedIterator for Tnums {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counts_match_3_pow_n() {
        for w in 0..=8 {
            assert_eq!(tnums(w).count() as u64, count(w));
        }
    }

    #[test]
    fn all_distinct_and_well_formed() {
        let mut seen = HashSet::new();
        for t in tnums(6) {
            assert_eq!(t.value() & t.mask(), 0, "well-formed");
            assert!(t.fits_width(6), "fits width");
            assert!(seen.insert((t.value(), t.mask())), "distinct");
        }
        assert_eq!(seen.len(), 729);
    }

    #[test]
    fn enumeration_covers_every_wellformed_pair() {
        // Every well-formed (v, m) pair within the width appears.
        let set: HashSet<(u64, u64)> = tnums(4).map(|t| (t.value(), t.mask())).collect();
        for v in 0u64..16 {
            for m in 0u64..16 {
                if v & m == 0 {
                    assert!(set.contains(&(v, m)), "missing ({v},{m})");
                }
            }
        }
    }

    #[test]
    fn zero_width_enumerates_only_zero() {
        let all: Vec<Tnum> = tnums(0).collect();
        assert_eq!(all, vec![Tnum::ZERO]);
    }

    #[test]
    fn nth_agrees_with_iterator_and_size_hint() {
        let it = tnums(5);
        assert_eq!(it.len(), 243);
        let mut count = 0u64;
        for (i, t) in it.enumerate() {
            assert_eq!(t, nth(5, i as u64));
            count += 1;
        }
        assert_eq!(count, 243);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_rejects_overflow_index() {
        let _ = nth(2, 9);
    }
}
