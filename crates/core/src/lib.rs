//! # tnum — the tristate-number abstract domain
//!
//! Tristate numbers (*tnums*) are the bit-level abstract domain used by the
//! Linux kernel's eBPF verifier to track, for every bit of a 64-bit register,
//! whether that bit is known to be `0`, known to be `1`, or unknown (written
//! `x` here, `μ` in the paper) across all executions of a program.
//!
//! This crate is a from-scratch Rust implementation of the domain as
//! formalized in *"Sound, Precise, and Fast Abstract Interpretation with
//! Tristate Numbers"* (Vishwanathan, Shachnai, Narayana, Nagarakatte —
//! CGO 2022). It provides:
//!
//! * the [`Tnum`] representation (a `value`/`mask` pair of `u64`s, exactly as
//!   in the kernel's `struct tnum`), kept well-formed by construction;
//! * the kernel's **O(1)** abstract addition ([`Tnum::add`], Listing 1 of the
//!   paper) and subtraction ([`Tnum::sub`], Listing 6), proven sound *and*
//!   maximally precise in the paper;
//! * three abstract multiplications: the paper's new sound algorithm
//!   ([`Tnum::mul`] = `our_mul`, now in the Linux kernel), the legacy kernel
//!   algorithm ([`Tnum::mul_kernel_legacy`] = `kern_mul`), and the
//!   loop-per-bitwidth reference version
//!   ([`mul::our_mul_simplified`]);
//! * sound and optimal bitwise operators (`and`, `or`, `xor`, shifts) and the
//!   kernel's auxiliary operations (`cast`, `subreg`, `range`, `intersect`,
//!   `union`, alignment tests);
//! * the Galois connection: the abstraction function [`Tnum::abstract_of`]
//!   (α) and concretization via [`Tnum::concretize`] (γ), plus membership
//!   ([`Tnum::contains`]) and cardinality queries;
//! * the lattice structure: the abstract order [`Tnum::is_subset_of`] (⊑A),
//!   join ([`Tnum::union`]) and meet ([`Tnum::intersect`]);
//! * width-parametric utilities ([`Tnum::truncate`],
//!   [`Tnum::sign_extend_from`], [`enumerate::tnums`]) used by the
//!   exhaustive verification and precision experiments.
//!
//! ## Quick example
//!
//! The worked example from Fig. 2 of the paper — adding `10x0` (i.e. {8, 10})
//! and `10x1` (i.e. {9, 11}) yields `10xx1`:
//!
//! ```
//! use tnum::Tnum;
//!
//! let p: Tnum = "10x0".parse()?;
//! let q: Tnum = "10x1".parse()?;
//! let r = p.add(q);
//! assert_eq!(r.to_bin_string(5), "10xx1");
//! // γ(r) = {17, 19, 21, 23}: every concrete sum is contained.
//! for x in p.concretize() {
//!     for y in q.concretize() {
//!         assert!(r.contains(x.wrapping_add(y)));
//!     }
//! }
//! # Ok::<(), tnum::ParseTnumError>(())
//! ```
//!
//! ## Relationship to the kernel sources
//!
//! All operators follow the kernel's `kernel/bpf/tnum.c` algorithms with C
//! (two's-complement, wrapping) machine-arithmetic semantics. Where the
//! kernel algorithm differs from a mathematically cleaner choice (e.g.
//! [`Tnum::intersect_kernel`] vs. [`Tnum::intersect`]), both are provided and
//! the difference is documented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::should_implement_trait)]
#![allow(clippy::manual_checked_ops)]

mod add;
mod bitwise;
mod cast;
mod div;
mod domain_impl;
mod error;
mod fmt;
mod galois;
mod lattice;
mod nary;
mod range;
mod shift;
mod sub;
mod tnum;
mod trit;
mod width;

pub mod enumerate;
pub mod mul;

pub use crate::error::{NotWellFormedError, ParseTnumError};
pub use crate::galois::Concretize;
pub use crate::tnum::Tnum;
pub use crate::trit::Trit;
pub use crate::width::{low_bits, BITS};
