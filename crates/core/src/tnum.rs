//! The core tristate-number representation.

use crate::error::NotWellFormedError;
use crate::trit::Trit;
use crate::width::{low_bits, BITS};

/// A 64-bit tristate number: the kernel's `struct tnum`.
///
/// A tnum abstracts a *set* of 64-bit values by tracking each bit position
/// independently as known-`0`, known-`1`, or unknown. It is represented, as
/// in the Linux kernel, by a pair of `u64`s:
///
/// * `value` — bits known to be `1`,
/// * `mask`  — bits whose value is unknown (`μ`).
///
/// A bit that is clear in both is known to be `0`. The pair is *well-formed*
/// iff `value & mask == 0`; every `Tnum` this crate hands out maintains that
/// invariant, so the bottom element ⊥ (the empty set) has no `Tnum`
/// representation — operations that can produce an empty result (such as
/// [`Tnum::intersect`]) return `Option<Tnum>` instead.
///
/// The concretization of a tnum `P` is
/// `γ(P) = { c : c & !P.mask == P.value }` (Eqn. 7 of the paper), a set of
/// `2^popcount(mask)` values.
///
/// # Examples
///
/// ```
/// use tnum::Tnum;
///
/// // 4-bit variable abstracted as 01x0 — the motivating example from §I:
/// // it concretizes to {0b0100, 0b0110} = {4, 6}, so `x <= 8` always holds.
/// let x = Tnum::new(0b0100, 0b0010)?;
/// assert_eq!(x.concretize().collect::<Vec<_>>(), vec![4, 6]);
/// assert!(x.max_value() <= 8);
/// # Ok::<(), tnum::NotWellFormedError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tnum {
    value: u64,
    mask: u64,
}

impl Tnum {
    /// The tnum with every bit unknown: ⊤, abstracting all of `u64`.
    ///
    /// This is the kernel's `tnum_unknown`.
    pub const UNKNOWN: Tnum = Tnum {
        value: 0,
        mask: u64::MAX,
    };

    /// The constant zero tnum (every bit known `0`).
    pub const ZERO: Tnum = Tnum { value: 0, mask: 0 };

    /// Creates a tnum from a `value`/`mask` pair.
    ///
    /// # Errors
    ///
    /// Returns [`NotWellFormedError`] if any bit is set in both `value` and
    /// `mask` — such pairs represent the empty set ⊥ in the paper's
    /// formalization (Eqn. 4) and are excluded from this type by
    /// construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::new(0b1000, 0b0010)?; // 1 0 x 0
    /// assert_eq!(t.to_bin_string(4), "10x0");
    /// assert!(Tnum::new(0b1, 0b1).is_err());
    /// # Ok::<(), tnum::NotWellFormedError>(())
    /// ```
    pub const fn new(value: u64, mask: u64) -> Result<Tnum, NotWellFormedError> {
        if value & mask != 0 {
            Err(NotWellFormedError { value, mask })
        } else {
            Ok(Tnum { value, mask })
        }
    }

    /// Creates a tnum from a `value`/`mask` pair, normalizing it to be
    /// well-formed by dropping `value` bits that are covered by `mask`.
    ///
    /// This mirrors how kernel code writes `TNUM(v & ~mu, mu)`: the mask
    /// wins wherever the two overlap.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::masked(0b1011, 0b0010);
    /// assert_eq!((t.value(), t.mask()), (0b1001, 0b0010));
    /// ```
    #[must_use]
    pub const fn masked(value: u64, mask: u64) -> Tnum {
        Tnum {
            value: value & !mask,
            mask,
        }
    }

    /// Creates the exact abstraction of a single concrete value
    /// (the kernel's `tnum_const`).
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::constant(42);
    /// assert!(t.is_constant());
    /// assert_eq!(t.as_constant(), Some(42));
    /// ```
    #[must_use]
    pub const fn constant(value: u64) -> Tnum {
        Tnum { value, mask: 0 }
    }

    /// The bits of this tnum known to be `1`.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.value
    }

    /// The bits of this tnum whose value is unknown.
    #[must_use]
    pub const fn mask(self) -> u64 {
        self.mask
    }

    /// Destructures into the `(value, mask)` pair.
    #[must_use]
    pub const fn into_parts(self) -> (u64, u64) {
        (self.value, self.mask)
    }

    /// Returns the trit at bit position `bit` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[must_use]
    pub fn trit(self, bit: u32) -> Trit {
        assert!(bit < BITS, "bit index {bit} out of range for a 64-bit tnum");
        Trit::from_value_mask(self.value >> bit, self.mask >> bit)
            .expect("well-formed tnum cannot hold a (1,1) trit")
    }

    /// Returns a copy of this tnum with the trit at position `bit` replaced.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::{Tnum, Trit};
    /// let t = Tnum::constant(0b100).with_trit(1, Trit::Unknown);
    /// assert_eq!(t.to_bin_string(3), "1x0");
    /// ```
    #[must_use]
    pub fn with_trit(self, bit: u32, trit: Trit) -> Tnum {
        assert!(bit < BITS, "bit index {bit} out of range for a 64-bit tnum");
        let (v, m) = trit.to_value_mask();
        Tnum {
            value: (self.value & !(1 << bit)) | (v << bit),
            mask: (self.mask & !(1 << bit)) | (m << bit),
        }
    }

    /// Builds a tnum from trits listed most-significant first, with all
    /// higher bits known `0`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 trits are supplied.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::{Tnum, Trit};
    /// let t = Tnum::from_trits([Trit::One, Trit::Unknown, Trit::Zero]);
    /// assert_eq!(t.to_bin_string(3), "1x0");
    /// ```
    #[must_use]
    pub fn from_trits<I: IntoIterator<Item = Trit>>(trits: I) -> Tnum {
        let mut t = Tnum::ZERO;
        for trit in trits {
            assert!(
                t.value >> (BITS - 1) == 0 && t.mask >> (BITS - 1) == 0,
                "more than 64 trits supplied"
            );
            let (v, m) = trit.to_value_mask();
            t = Tnum {
                value: (t.value << 1) | v,
                mask: (t.mask << 1) | m,
            };
        }
        t
    }

    /// Iterates over the trits of the low `width` bits, least-significant
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn trits(self, width: u32) -> impl Iterator<Item = Trit> {
        assert!(width <= BITS, "width {width} out of range");
        (0..width).map(move |i| self.trit(i))
    }

    /// Whether this tnum is a singleton — i.e. every bit is known.
    #[must_use]
    pub const fn is_constant(self) -> bool {
        self.mask == 0
    }

    /// If this tnum is a singleton, returns its unique concrete value.
    #[must_use]
    pub const fn as_constant(self) -> Option<u64> {
        if self.mask == 0 {
            Some(self.value)
        } else {
            None
        }
    }

    /// Whether this tnum is ⊤ (all 64 bits unknown).
    #[must_use]
    pub const fn is_unknown(self) -> bool {
        self.mask == u64::MAX
    }

    /// The number of unknown bits (μ trits).
    #[must_use]
    pub const fn unknown_bits(self) -> u32 {
        self.mask.count_ones()
    }

    /// The smallest concrete value in γ(self), which is always `value`.
    #[must_use]
    pub const fn min_value(self) -> u64 {
        self.value
    }

    /// The largest concrete value in γ(self), which is `value | mask`.
    #[must_use]
    pub const fn max_value(self) -> u64 {
        self.value | self.mask
    }

    /// The smallest value of γ(self) interpreted as two's-complement `i64`.
    ///
    /// If the sign bit is unknown, the minimum is negative (sign bit set).
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// assert_eq!(Tnum::UNKNOWN.min_signed(), i64::MIN);
    /// assert_eq!(Tnum::constant(5).min_signed(), 5);
    /// ```
    #[must_use]
    pub const fn min_signed(self) -> i64 {
        if self.mask >> (BITS - 1) == 1 {
            // Sign bit unknown: minimum sets the sign bit and clears all
            // other unknown bits.
            (self.value | (1 << (BITS - 1))) as i64
        } else {
            self.value as i64
        }
    }

    /// The largest value of γ(self) interpreted as two's-complement `i64`.
    #[must_use]
    pub const fn max_signed(self) -> i64 {
        if self.mask >> (BITS - 1) == 1 {
            // Sign bit unknown: maximum clears the sign bit and sets all
            // other unknown bits.
            ((self.value | self.mask) & !(1 << (BITS - 1))) as i64
        } else {
            (self.value | self.mask) as i64
        }
    }

    /// Whether all members of γ(self) are aligned to `size` bytes
    /// (the kernel's `tnum_is_aligned`).
    ///
    /// `size` is typically a power of two; `size == 0` is vacuously aligned,
    /// matching the kernel.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::new(0b1000, 0b0100).unwrap(); // 1x00: {8, 12}
    /// assert!(t.is_aligned(4));
    /// assert!(!t.is_aligned(8));
    /// ```
    #[must_use]
    pub const fn is_aligned(self, size: u64) -> bool {
        if size == 0 {
            return true;
        }
        (self.value | self.mask) & (size - 1) == 0
    }

    /// Keeps only the low `width` bits, forcing all higher bits to known `0`.
    ///
    /// This generalizes the kernel's byte-granular `tnum_cast` to arbitrary
    /// bit widths; it is the workhorse of the width-parametric experiments.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    #[must_use]
    pub const fn truncate(self, width: u32) -> Tnum {
        let m = low_bits(width);
        Tnum {
            value: self.value & m,
            mask: self.mask & m,
        }
    }

    /// Whether this tnum fits in `width` bits (all higher trits known `0`).
    #[must_use]
    pub const fn fits_width(self, width: u32) -> bool {
        let m = low_bits(width);
        self.value & !m == 0 && self.mask & !m == 0
    }

    /// Sign-extends a `width`-bit tnum to 64 bits: the trit at position
    /// `width - 1` is replicated into all higher positions.
    ///
    /// Used to give width-parametric semantics to arithmetic right shift.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t: Tnum = "10".parse::<Tnum>()?;       // 2-bit value 0b10
    /// let s = t.sign_extend_from(2);
    /// assert_eq!(s.value(), 0b10u64 | !0b11);    // sign bit 1 replicated
    /// let u: Tnum = "x0".parse::<Tnum>()?;       // sign bit unknown
    /// assert_eq!(u.sign_extend_from(2).mask(), !0b01); // μ replicated
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn sign_extend_from(self, width: u32) -> Tnum {
        assert!(width >= 1 && width <= BITS, "width out of range 1..=64");
        if width == BITS {
            return self;
        }
        let low = low_bits(width);
        let high = !low;
        let sign_v = self.value >> (width - 1) & 1;
        let sign_m = self.mask >> (width - 1) & 1;
        Tnum {
            value: (self.value & low) | (if sign_v == 1 { high } else { 0 }),
            mask: (self.mask & low) | (if sign_m == 1 { high } else { 0 }),
        }
    }

    /// Whether the concrete value `x` is a member of γ(self) — the paper's
    /// `member` predicate (Eqn. 9): `x & !mask == value`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t: Tnum = "1x0".parse()?;
    /// assert!(t.contains(0b100) && t.contains(0b110));
    /// assert!(!t.contains(0b000));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn contains(self, x: u64) -> bool {
        x & !self.mask == self.value
    }

    /// The number of concrete values in γ(self): `2^popcount(mask)`.
    ///
    /// Returned as `u128` because ⊤ concretizes to all 2⁶⁴ values.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// assert_eq!(Tnum::constant(7).cardinality(), 1);
    /// assert_eq!(Tnum::UNKNOWN.cardinality(), 1u128 << 64);
    /// ```
    #[must_use]
    pub const fn cardinality(self) -> u128 {
        1u128 << self.mask.count_ones()
    }

    /// The kernel's `tnum_in(a, b)` check: is every concrete value of `b`
    /// (which the kernel requires to be "at least as known" as `a`)
    /// contained in `a`?
    ///
    /// This is exactly the abstract order test `b ⊑A a` — see
    /// [`Tnum::is_subset_of`], of which this is the argument-flipped kernel
    /// spelling.
    #[must_use]
    pub const fn contains_tnum(self, b: Tnum) -> bool {
        b.is_subset_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_ill_formed() {
        let err = Tnum::new(0b11, 0b01).unwrap_err();
        assert_eq!(err.value, 0b11);
        assert_eq!(err.mask, 0b01);
        assert!(err.to_string().contains("not well-formed"));
    }

    #[test]
    fn masked_normalizes() {
        let t = Tnum::masked(u64::MAX, 0b1010);
        assert_eq!(t.value() & t.mask(), 0);
        assert_eq!(t.value(), !0b1010);
    }

    #[test]
    fn constant_round_trip() {
        for v in [0u64, 1, 42, u64::MAX] {
            let t = Tnum::constant(v);
            assert!(t.is_constant());
            assert_eq!(t.as_constant(), Some(v));
            assert_eq!(t.min_value(), v);
            assert_eq!(t.max_value(), v);
            assert_eq!(t.cardinality(), 1);
        }
    }

    #[test]
    fn unknown_is_top() {
        assert!(Tnum::UNKNOWN.is_unknown());
        assert_eq!(Tnum::UNKNOWN.min_value(), 0);
        assert_eq!(Tnum::UNKNOWN.max_value(), u64::MAX);
        assert_eq!(Tnum::UNKNOWN.unknown_bits(), 64);
        assert_eq!(Tnum::UNKNOWN.as_constant(), None);
    }

    #[test]
    fn trit_get_set_round_trip() {
        let mut t = Tnum::ZERO;
        t = t.with_trit(0, Trit::One);
        t = t.with_trit(5, Trit::Unknown);
        assert_eq!(t.trit(0), Trit::One);
        assert_eq!(t.trit(5), Trit::Unknown);
        assert_eq!(t.trit(4), Trit::Zero);
        // Overwriting an unknown trit with a known one clears the mask bit.
        t = t.with_trit(5, Trit::Zero);
        assert_eq!(t.trit(5), Trit::Zero);
        assert_eq!(t.mask(), 0);
    }

    #[test]
    fn from_trits_msb_first() {
        let t = Tnum::from_trits([Trit::One, Trit::Zero, Trit::Unknown, Trit::Zero]);
        assert_eq!((t.value(), t.mask()), (0b1000, 0b0010));
        let collected: Vec<Trit> = t.trits(4).collect();
        assert_eq!(
            collected,
            vec![Trit::Zero, Trit::Unknown, Trit::Zero, Trit::One]
        );
    }

    #[test]
    fn membership_matches_definition() {
        let t = Tnum::new(0b1000, 0b0010).unwrap(); // 10x0
        assert!(t.contains(0b1000));
        assert!(t.contains(0b1010));
        assert!(!t.contains(0b1001));
        assert!(!t.contains(0b0000));
    }

    #[test]
    fn min_max_bound_gamma() {
        let t = Tnum::new(0b1000, 0b0101).unwrap();
        let members: Vec<u64> = t.concretize().collect();
        assert_eq!(*members.iter().min().unwrap(), t.min_value());
        assert_eq!(*members.iter().max().unwrap(), t.max_value());
        assert_eq!(members.len() as u128, t.cardinality());
    }

    #[test]
    fn signed_extremes() {
        // Sign bit unknown: covers both halves of the signed range.
        let t = Tnum::masked(0, 1 << 63 | 0b1);
        assert_eq!(t.min_signed(), i64::MIN);
        assert_eq!(t.max_signed(), 1);
        // Sign bit known 1: strictly negative.
        let neg = Tnum::new(1 << 63, 0b1).unwrap();
        assert!(neg.min_signed() < 0 && neg.max_signed() < 0);
        // Exhaustive check at small width: the abstract signed extremes
        // bound the concrete sign-extended members. When the sign trit is
        // known the bounds are exact; an unknown sign trit replicates to
        // *independent* unknown high bits, so the abstraction widens.
        for t in crate::enumerate::tnums(4) {
            let s = t.sign_extend_from(4);
            let signed: Vec<i64> = t.concretize().map(|x| ((x as i64) << 60) >> 60).collect();
            let (lo, hi) = (*signed.iter().min().unwrap(), *signed.iter().max().unwrap());
            assert!(s.min_signed() <= lo && hi <= s.max_signed(), "{t}");
            if t.trit(3).is_known() {
                assert_eq!(s.min_signed(), lo, "{t}");
                assert_eq!(s.max_signed(), hi, "{t}");
            }
        }
    }

    #[test]
    fn alignment() {
        assert!(Tnum::constant(16).is_aligned(8));
        assert!(Tnum::constant(16).is_aligned(0));
        assert!(!Tnum::constant(12).is_aligned(8));
        // 1x00 = {8, 12}: 4-aligned but not 8-aligned.
        let t = Tnum::new(0b1000, 0b0100).unwrap();
        assert!(t.is_aligned(4));
        assert!(!t.is_aligned(8));
    }

    #[test]
    fn truncate_and_fits() {
        let t = Tnum::masked(0xff00, 0x00f0);
        assert!(t.fits_width(16));
        assert!(!t.fits_width(8));
        let low = t.truncate(8);
        assert!(low.fits_width(8));
        assert_eq!(low.mask(), 0xf0);
        assert_eq!(low.value(), 0);
        assert_eq!(t.truncate(64), t);
    }

    #[test]
    fn sign_extend_known_and_unknown() {
        // width-4 constant 0b1000 (signed -8) extends to ...11111000.
        let t = Tnum::constant(0b1000).sign_extend_from(4);
        assert_eq!(t.value(), (-8i64) as u64);
        assert_eq!(t.mask(), 0);
        // Unknown sign bit propagates μ upward.
        let u = Tnum::masked(0, 0b1000).sign_extend_from(4);
        assert_eq!(u.mask() & !0b111, !0b111);
        // Width 64 is the identity.
        assert_eq!(Tnum::constant(5).sign_extend_from(64), Tnum::constant(5));
    }

    #[test]
    fn contains_tnum_is_order() {
        let big: Tnum = Tnum::masked(0b1000, 0b0110); // 1xx0
        let small: Tnum = Tnum::new(0b1010, 0).unwrap();
        assert!(big.contains_tnum(small));
        assert!(!small.contains_tnum(big));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trit_index_out_of_range_panics() {
        let _ = Tnum::ZERO.trit(64);
    }
}
