//! Abstract addition — the kernel's `tnum_add` (Listing 1 of the paper).

use crate::tnum::Tnum;

impl Tnum {
    /// Abstract addition: a sound **and optimal** abstraction of wrapping
    /// 64-bit addition, in O(1) machine operations (Theorem 6 of the paper).
    ///
    /// The algorithm (Listing 1) never ripples carries bit by bit. Instead
    /// it computes two *extreme* concrete additions — `sv = P.v + Q.v`
    /// (fewest carries, Lemma 2) and `Σ = (P.v + P.m) + (Q.v + Q.m)` (most
    /// carries, Lemma 3) — and marks unknown exactly the bits where an
    /// operand is unknown or the carry-in provably varies across concrete
    /// additions (`χ = Σ ⊕ sv`, Lemmas 4–5).
    ///
    /// # Examples
    ///
    /// The Fig. 2 example: `10x0 + 10x1 = 10xx1`.
    ///
    /// ```
    /// use tnum::Tnum;
    /// let p: Tnum = "10x0".parse()?;
    /// let q: Tnum = "10x1".parse()?;
    /// assert_eq!(p.add(q).to_bin_string(5), "10xx1");
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    ///
    /// The uncertainty amplification example from §I: adding `b ∈ {0, 1}` to
    /// the constant all-ones makes *every* bit unknown:
    ///
    /// ```
    /// use tnum::Tnum;
    /// let a = Tnum::constant(u64::MAX);
    /// let b: Tnum = "x".parse()?;
    /// assert!(a.add(b).is_unknown());
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn add(self, other: Tnum) -> Tnum {
        let sm = self.mask().wrapping_add(other.mask());
        let sv = self.value().wrapping_add(other.value());
        let sigma = sm.wrapping_add(sv);
        let chi = sigma ^ sv;
        let mu = chi | self.mask() | other.mask();
        Tnum::masked(sv, mu)
    }
}

/// Operator form of [`Tnum::add`].
///
/// Abstract operators soundly over-approximate their concrete counterparts,
/// so `p + q` reads as "the abstraction of all sums `x + y`".
impl core::ops::Add for Tnum {
    type Output = Tnum;
    fn add(self, rhs: Tnum) -> Tnum {
        Tnum::add(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    /// Optimal abstract addition at small width, by brute force:
    /// α({x + y mod 2^w}).
    fn best_add(a: Tnum, b: Tnum, width: u32) -> Tnum {
        let m = crate::low_bits(width);
        Tnum::abstract_of(
            a.concretize()
                .flat_map(|x| b.concretize().map(move |y| x.wrapping_add(y) & m)),
        )
        .expect("non-empty")
    }

    #[test]
    fn fig2_worked_example() {
        let p: Tnum = "10x0".parse().unwrap();
        let q: Tnum = "10x1".parse().unwrap();
        let r = p.add(q);
        assert_eq!((r.value(), r.mask()), (0b10001, 0b00110));
        // γ(R) = {17, 19, 21, 23}.
        assert_eq!(r.concretize().collect::<Vec<_>>(), vec![17, 19, 21, 23]);
    }

    #[test]
    fn add_is_sound_and_optimal_exhaustive_w5() {
        // Theorem 6 checked by enumeration at width 5 (truncation is exact
        // for addition: carries only propagate upward).
        for a in tnums(5) {
            for b in tnums(5) {
                let got = a.add(b).truncate(5);
                let best = best_add(a, b, 5);
                assert_eq!(got, best, "tnum_add not optimal for {a} + {b}");
            }
        }
    }

    #[test]
    fn add_zero_is_identity() {
        for a in tnums(4) {
            assert_eq!(a.add(Tnum::ZERO), a);
            assert_eq!(Tnum::ZERO.add(a), a);
        }
    }

    #[test]
    fn add_constants_is_concrete() {
        assert_eq!(Tnum::constant(3).add(Tnum::constant(4)), Tnum::constant(7));
        // Wrapping semantics.
        assert_eq!(
            Tnum::constant(u64::MAX).add(Tnum::constant(1)),
            Tnum::constant(0)
        );
    }

    #[test]
    fn add_is_commutative() {
        // Addition *is* commutative (unlike tnum multiplication).
        for a in tnums(4) {
            for b in tnums(4) {
                assert_eq!(a.add(b), b.add(a));
            }
        }
    }

    #[test]
    fn add_is_not_associative_witness() {
        // §III-A observation (1): tnum addition is not associative.
        // Exhaustively find at least one witness at width 3.
        let all: Vec<Tnum> = tnums(3).collect();
        let mut found = false;
        'outer: for &a in &all {
            for &b in &all {
                for &c in &all {
                    if a.add(b).add(c) != a.add(b.add(c)) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "expected a non-associativity witness at width 3");
    }

    #[test]
    fn uncertainty_amplification() {
        // One uncertain operand bit can make all result bits unknown (§I).
        let ones = Tnum::constant(u64::MAX);
        let bit: Tnum = "x".parse().unwrap();
        assert!(ones.add(bit).is_unknown());
    }

    #[test]
    fn operator_matches_method() {
        let a: Tnum = "1x0".parse().unwrap();
        let b: Tnum = "01x".parse().unwrap();
        assert_eq!(a + b, a.add(b));
    }

    #[test]
    fn add_monotone_in_both_arguments() {
        // Sound abstract operators are monotone w.r.t. ⊑A; spot-check
        // exhaustively at width 3.
        let all: Vec<Tnum> = tnums(3).collect();
        for &a in &all {
            for &a2 in &all {
                if !a.is_subset_of(a2) {
                    continue;
                }
                for &b in &all {
                    assert!(
                        a.add(b).is_subset_of(a2.add(b)),
                        "monotonicity violated: {a} ⊑ {a2} but sums unordered"
                    );
                }
            }
        }
    }
}
