//! Variable-arity tnum summation — the machinery of Lemma 9
//! ("value-mask-decomposed tnum summations"), the key structural idea
//! behind `our_mul`.
//!
//! Because tnum addition is not associative (§III-A), different ways of
//! summing the same list of tnums produce different (all sound) results.
//! Lemma 9 proves that splitting each summand into its value part
//! `(v, 0)` and mask part `(0, m)`, summing the two groups separately and
//! combining them at the end, still contains every concrete sum — and
//! §IV-A attributes `our_mul`'s precision edge to exactly this
//! decomposition postponing the mixing of certain and uncertain trits.

use crate::tnum::Tnum;

impl Tnum {
    /// Folds [`Tnum::add`] left-to-right over the summands — the paper's
    /// `tnum_add(n-1..0)` spelling. Returns `None` for an empty iterator.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let sum = Tnum::add_all((1..=3u64).map(Tnum::constant)).unwrap();
    /// assert_eq!(sum, Tnum::constant(6));
    /// ```
    #[must_use]
    pub fn add_all<I: IntoIterator<Item = Tnum>>(tnums: I) -> Option<Tnum> {
        tnums.into_iter().reduce(Tnum::add)
    }

    /// Lemma 9's decomposed summation: sum all value parts, sum all mask
    /// parts, then add the two partial sums.
    ///
    /// The value parts are fully concrete, so their "abstract" sum is a
    /// single wrapping machine addition; only the mask parts go through
    /// abstract addition. Contains every concrete sum of members (the
    /// lemma), and never mixes certain with uncertain trits until the
    /// final step.
    ///
    /// # Examples
    ///
    /// The example from the Lemma 9 text: `T1 = 1x0`, `T2 = 01x` — every
    /// `x1 + x2` lands in `tnum_add((110, 0), (0, 011))`.
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t1: Tnum = "1x0".parse()?;
    /// let t2: Tnum = "01x".parse()?;
    /// let s = Tnum::add_all_decomposed([t1, t2]).unwrap();
    /// for x1 in t1.concretize() {
    ///     for x2 in t2.concretize() {
    ///         assert!(s.contains(x1 + x2));
    ///     }
    /// }
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub fn add_all_decomposed<I: IntoIterator<Item = Tnum>>(tnums: I) -> Option<Tnum> {
        let mut iter = tnums.into_iter();
        let first = iter.next()?;
        let mut value_sum = first.value();
        let mut mask_sum = Tnum::masked(0, first.mask());
        for t in iter {
            // Summing (v_i, 0) tnums degenerates to machine addition
            // (the strength reduction of Lemma 11).
            value_sum = value_sum.wrapping_add(t.value());
            mask_sum = mask_sum.add(Tnum::masked(0, t.mask()));
        }
        Some(Tnum::constant(value_sum).add(mask_sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    /// All concrete sums of one member from each summand, truncated.
    fn concrete_sums(summands: &[Tnum], width: u32) -> Vec<u64> {
        let m = crate::low_bits(width);
        let mut sums = vec![0u64];
        for t in summands {
            sums = sums
                .iter()
                .flat_map(|&s| t.concretize().map(move |x| s.wrapping_add(x) & m))
                .collect();
        }
        sums.sort_unstable();
        sums.dedup();
        sums
    }

    #[test]
    fn both_methods_sound_exhaustive_w3_triples() {
        let all: Vec<Tnum> = tnums(3).collect();
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    let folded = Tnum::add_all([a, b, c]).unwrap().truncate(3);
                    let decomposed = Tnum::add_all_decomposed([a, b, c]).unwrap().truncate(3);
                    for s in concrete_sums(&[a, b, c], 3) {
                        assert!(folded.contains(s), "fold missed {s} for {a},{b},{c}");
                        assert!(
                            decomposed.contains(s),
                            "decomposition missed {s} for {a},{b},{c} (Lemma 9)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn neither_summation_order_dominates_in_general() {
        // Measured finding (pinned here): over all 3⁶ width-3 triples the
        // two methods each win thousands of cases — the decomposition is
        // NOT universally better. Its advantage in our_mul (§IV-A) is
        // contextual: there the value parts bypass abstract addition
        // entirely (a single machine multiply) and only mask-only tnums
        // are folded. `decomposition_mirrors_our_mul_structure` below
        // exhibits that context.
        let all: Vec<Tnum> = tnums(3).collect();
        let mut dec_wins = 0u32;
        let mut fold_wins = 0u32;
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    let folded = Tnum::add_all([a, b, c]).unwrap();
                    let dec = Tnum::add_all_decomposed([a, b, c]).unwrap();
                    if dec.is_strict_subset_of(folded) {
                        dec_wins += 1;
                    } else if folded.is_strict_subset_of(dec) {
                        fold_wins += 1;
                    }
                }
            }
        }
        assert_eq!((dec_wins, fold_wins), (2750, 2996));
    }

    #[test]
    fn lemma9_worked_example() {
        // T1 = 1x0 = (100, 010), T2 = 01x = (010, 001):
        // S = tnum_add(tnum(110, 0), tnum(0, 011)).
        let t1: Tnum = "1x0".parse().unwrap();
        let t2: Tnum = "01x".parse().unwrap();
        let s = Tnum::add_all_decomposed([t1, t2]).unwrap();
        let manual = Tnum::constant(0b110).add(Tnum::masked(0, 0b011));
        assert_eq!(s, manual);
    }

    #[test]
    fn singletons_and_empty() {
        assert_eq!(Tnum::add_all(std::iter::empty()), None);
        assert_eq!(Tnum::add_all_decomposed(std::iter::empty()), None);
        let t: Tnum = "x1".parse().unwrap();
        assert_eq!(Tnum::add_all([t]), Some(t));
        // A single summand decomposes to (v,0) + (0,m) = the tnum itself.
        assert_eq!(Tnum::add_all_decomposed([t]), Some(t));
    }

    #[test]
    fn constants_collapse_to_machine_sum() {
        let summands: Vec<Tnum> = (1..=10u64).map(Tnum::constant).collect();
        assert_eq!(
            Tnum::add_all(summands.iter().copied()),
            Some(Tnum::constant(55))
        );
        assert_eq!(Tnum::add_all_decomposed(summands), Some(Tnum::constant(55)));
    }

    #[test]
    fn decomposition_mirrors_our_mul_structure() {
        // our_mul(p, q) is exactly the decomposed sum of its partial
        // products; spot-check by reconstructing the Fig. 3 example.
        let q: Tnum = "x10".parse().unwrap();
        // Partial products for p = x01: T0 = q (bit0 certain 1),
        // T1 = 0, T2 = kill(q << 2) (bit2 unknown).
        let t0 = q;
        let t2 = Tnum::masked(0, (q.value() | q.mask()) << 2);
        let s = Tnum::add_all_decomposed([t0, t2]).unwrap();
        let p: Tnum = "x01".parse().unwrap();
        assert_eq!(s, p.mul(q));
    }
}
