//! Abstract subtraction — the kernel's `tnum_sub` (Listing 6 of the paper).

use crate::tnum::Tnum;

impl Tnum {
    /// Abstract subtraction: a sound **and optimal** abstraction of wrapping
    /// 64-bit subtraction, in O(1) machine operations (Theorem 22 of the
    /// paper).
    ///
    /// Mirrors [`Tnum::add`] with borrows in place of carries: `α = dv + P.m`
    /// produces the fewest borrows and `β = dv − Q.m` the most (Lemmas
    /// 24–25), so `α ⊕ β` captures exactly the borrow bits that vary across
    /// concrete subtractions.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let p: Tnum = "1x0".parse()?;  // {4, 6}
    /// let q: Tnum = "010".parse()?;  // {2}
    /// let r = p.sub(q);              // {2, 4} ⊆ γ(r)
    /// assert!(r.contains(2) && r.contains(4));
    /// # Ok::<(), tnum::ParseTnumError>(())
    /// ```
    #[must_use]
    pub const fn sub(self, other: Tnum) -> Tnum {
        let dv = self.value().wrapping_sub(other.value());
        let alpha = dv.wrapping_add(self.mask());
        let beta = dv.wrapping_sub(other.mask());
        let chi = alpha ^ beta;
        let mu = chi | self.mask() | other.mask();
        Tnum::masked(dv, mu)
    }

    /// Abstract negation: `0 - self`, the abstraction of two's-complement
    /// negation. This is how the BPF verifier models the `neg` ALU op.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// assert_eq!(Tnum::constant(5).neg(), Tnum::constant(5u64.wrapping_neg()));
    /// ```
    #[must_use]
    pub const fn neg(self) -> Tnum {
        Tnum::ZERO.sub(self)
    }
}

/// Operator form of [`Tnum::sub`].
impl core::ops::Sub for Tnum {
    type Output = Tnum;
    fn sub(self, rhs: Tnum) -> Tnum {
        Tnum::sub(self, rhs)
    }
}

/// Operator form of [`Tnum::neg`].
impl core::ops::Neg for Tnum {
    type Output = Tnum;
    fn neg(self) -> Tnum {
        Tnum::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::tnums;

    /// Optimal abstract subtraction at small width, by brute force.
    fn best_sub(a: Tnum, b: Tnum, width: u32) -> Tnum {
        let m = crate::low_bits(width);
        Tnum::abstract_of(
            a.concretize()
                .flat_map(|x| b.concretize().map(move |y| x.wrapping_sub(y) & m)),
        )
        .expect("non-empty")
    }

    #[test]
    fn sub_is_sound_and_optimal_exhaustive_w5() {
        // Theorem 22 checked by enumeration at width 5. Note: unlike
        // addition, truncating tnum_sub's 64-bit output to w bits is exact
        // because borrows also propagate only upward.
        for a in tnums(5) {
            for b in tnums(5) {
                let got = a.sub(b).truncate(5);
                let best = best_sub(a, b, 5);
                assert_eq!(got, best, "tnum_sub not optimal for {a} - {b}");
            }
        }
    }

    #[test]
    fn sub_constants_is_concrete() {
        assert_eq!(Tnum::constant(9).sub(Tnum::constant(4)), Tnum::constant(5));
        // Wrapping semantics.
        assert_eq!(
            Tnum::constant(0).sub(Tnum::constant(1)),
            Tnum::constant(u64::MAX)
        );
    }

    #[test]
    fn sub_self_is_not_zero_in_general() {
        // x - x over a non-constant tnum is *not* the constant zero: the two
        // occurrences are independent members of γ. (This also documents why
        // add and sub are not inverses, §III-A observation (2).)
        let t: Tnum = "x0".parse().unwrap();
        assert_ne!(t.sub(t), Tnum::ZERO);
        assert!(t.sub(t).contains(0));
    }

    #[test]
    fn add_sub_not_inverse_witness() {
        // §III-A observation (2): (a + b) - b ≠ a in general.
        let all: Vec<Tnum> = tnums(3).collect();
        let mut found = false;
        for &a in &all {
            for &b in &all {
                if a.add(b).sub(b) != a {
                    found = true;
                }
            }
        }
        assert!(found, "expected an add/sub non-inverse witness at width 3");
    }

    #[test]
    fn neg_matches_zero_minus() {
        for t in tnums(4) {
            assert_eq!(t.neg(), Tnum::ZERO.sub(t));
            // Soundness of neg at width 4.
            for x in t.concretize() {
                assert!(t.neg().truncate(4).contains(x.wrapping_neg() & 0xf));
            }
        }
    }

    #[test]
    fn operators_match_methods() {
        let a: Tnum = "1x0".parse().unwrap();
        let b: Tnum = "001".parse().unwrap();
        assert_eq!(a - b, a.sub(b));
        assert_eq!(-a, a.neg());
    }

    #[test]
    fn sub_monotone_in_both_arguments() {
        let all: Vec<Tnum> = tnums(3).collect();
        for &a in &all {
            for &a2 in &all {
                if !a.is_subset_of(a2) {
                    continue;
                }
                for &b in &all {
                    assert!(a.sub(b).is_subset_of(a2.sub(b)));
                    assert!(b.sub(a).is_subset_of(b.sub(a2)));
                }
            }
        }
    }
}
