//! Bit-width helpers shared by the width-parametric experiment APIs.

/// The native tnum width: 64 bits, matching the kernel's `u64` registers.
pub const BITS: u32 = 64;

/// A mask with the low `width` bits set.
///
/// `low_bits(0) == 0` and `low_bits(64) == u64::MAX`.
///
/// # Panics
///
/// Panics if `width > 64` (in const evaluation, fails to compile).
///
/// # Examples
///
/// ```
/// use tnum::low_bits;
/// assert_eq!(low_bits(4), 0b1111);
/// assert_eq!(low_bits(0), 0);
/// assert_eq!(low_bits(64), u64::MAX);
/// ```
#[must_use]
pub const fn low_bits(width: u32) -> u64 {
    assert!(width <= BITS, "width out of range 0..=64");
    if width == BITS {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_edges() {
        assert_eq!(low_bits(0), 0);
        assert_eq!(low_bits(1), 1);
        assert_eq!(low_bits(63), u64::MAX >> 1);
        assert_eq!(low_bits(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn low_bits_rejects_overwide() {
        let _ = low_bits(65);
    }
}
