//! Textual formatting and parsing of tnums.
//!
//! The canonical textual form is a string of trits, most-significant first,
//! using `0`, `1`, and `x` (the kernel's `tnum_sbin` convention; the paper
//! writes `μ` for `x`, which the parser also accepts).

use core::fmt;
use core::str::FromStr;

use crate::error::ParseTnumError;
use crate::tnum::Tnum;
use crate::trit::Trit;
use crate::width::BITS;

impl Tnum {
    /// Renders the low `width` trits as a string, most-significant first.
    ///
    /// This is the kernel's `tnum_sbin` restricted to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Tnum;
    /// let t = Tnum::new(0b1001, 0b0010)?;
    /// assert_eq!(t.to_bin_string(4), "10x1");
    /// assert_eq!(t.to_bin_string(6), "0010x1");
    /// # Ok::<(), tnum::NotWellFormedError>(())
    /// ```
    #[must_use]
    pub fn to_bin_string(self, width: u32) -> String {
        assert!((1..=BITS).contains(&width), "width out of range 1..=64");
        (0..width).rev().map(|i| self.trit(i).to_char()).collect()
    }

    /// The minimal number of trits needed to render this tnum without
    /// dropping any known-`1` or unknown trit (at least 1).
    #[must_use]
    pub fn significant_bits(self) -> u32 {
        (BITS - (self.value() | self.mask()).leading_zeros()).max(1)
    }
}

/// Parses a tnum from its textual trit form, most-significant trit first.
///
/// Accepted trit characters: `0`, `1`, and any of `x`, `X`, `u`, `U`, `μ`,
/// `?` for unknown. Underscores are ignored as visual separators. Bits above
/// the written trits are known `0`.
///
/// # Examples
///
/// ```
/// use tnum::Tnum;
/// let t: Tnum = "10_x1".parse()?;
/// assert_eq!((t.value(), t.mask()), (0b1001, 0b0010));
/// let paper: Tnum = "10μ0".parse()?; // paper notation accepted
/// assert_eq!(paper.mask(), 0b0010);
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
impl FromStr for Tnum {
    type Err = ParseTnumError;

    fn from_str(s: &str) -> Result<Tnum, ParseTnumError> {
        let mut trits = Vec::new();
        for (offset, c) in s.char_indices() {
            if c == '_' {
                continue;
            }
            match Trit::from_char(c) {
                Some(t) => trits.push(t),
                None => {
                    return Err(ParseTnumError::InvalidTrit {
                        character: c,
                        offset,
                    })
                }
            }
        }
        if trits.is_empty() {
            return Err(ParseTnumError::Empty);
        }
        if trits.len() > BITS as usize {
            return Err(ParseTnumError::TooWide { found: trits.len() });
        }
        Ok(Tnum::from_trits(trits))
    }
}

/// Displays the tnum as its significant trits (e.g. `10x1`).
impl fmt::Display for Tnum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.to_bin_string(self.significant_bits()))
    }
}

/// Debug form shows both the trit string and the raw `(value, mask)` pair.
impl fmt::Debug for Tnum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tnum({} = value:{:#x}/mask:{:#x})",
            self.to_bin_string(self.significant_bits()),
            self.value(),
            self.mask()
        )
    }
}

/// Binary form (`{:b}`) renders all 64 trits (or per the requested width
/// via the standard fill/width specifiers).
impl fmt::Binary for Tnum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.to_bin_string(BITS))
    }
}

/// Hex form (`{:x}`) renders nibbles, using `x` for any nibble containing an
/// unknown bit that cannot be expressed exactly in hex.
///
/// A nibble prints as a hex digit when fully known; as `x` when any of its
/// four trits is unknown.
impl fmt::LowerHex for Tnum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(16);
        for nibble in (0..16).rev() {
            let v = (self.value() >> (nibble * 4)) & 0xf;
            let m = (self.mask() >> (nibble * 4)) & 0xf;
            if m == 0 {
                s.push(char::from_digit(v as u32, 16).expect("nibble < 16"));
            } else {
                s.push('x');
            }
        }
        let trimmed = s.trim_start_matches('0');
        let out = if trimmed.is_empty() { "0" } else { trimmed };
        f.pad(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_string_round_trip() {
        for s in ["0", "1", "x", "10x0", "1x0x1", "x1x1x1x1"] {
            let t: Tnum = s.parse().unwrap();
            assert_eq!(t.to_bin_string(s.len() as u32), s);
        }
    }

    #[test]
    fn parse_accepts_paper_and_separator_notation() {
        let a: Tnum = "10μ0".parse().unwrap();
        let b: Tnum = "10x0".parse().unwrap();
        let c: Tnum = "1_0_x_0".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10z0".parse::<Tnum>().is_err());
        assert!("".parse::<Tnum>().is_err());
        assert!("___".parse::<Tnum>().is_err());
    }

    #[test]
    fn parse_64_trits_ok_65_err() {
        let ok = "x".repeat(64).parse::<Tnum>().unwrap();
        assert!(ok.is_unknown());
        assert!("x".repeat(65).parse::<Tnum>().is_err());
    }

    #[test]
    fn display_uses_significant_bits() {
        let t: Tnum = "0010x1".parse().unwrap();
        assert_eq!(t.to_string(), "10x1");
        assert_eq!(Tnum::ZERO.to_string(), "0");
        assert_eq!(format!("{:>6}", Tnum::constant(0b101)), "   101");
    }

    #[test]
    fn debug_is_nonempty_and_informative() {
        let t: Tnum = "1x".parse().unwrap();
        let dbg = format!("{t:?}");
        assert!(dbg.contains("1x"));
        assert!(dbg.contains("value"));
    }

    #[test]
    fn binary_renders_full_width() {
        let t = Tnum::constant(1);
        let s = format!("{t:b}");
        assert_eq!(s.len(), 64);
        assert!(s.ends_with('1'));
    }

    #[test]
    fn hex_marks_uncertain_nibbles() {
        let t = Tnum::masked(0xab00, 0x00f0);
        assert_eq!(format!("{t:x}"), "abx0");
        assert_eq!(format!("{:x}", Tnum::ZERO), "0");
        // Partially unknown nibble is still an 'x'.
        let p = Tnum::masked(0x4, 0x1);
        assert_eq!(format!("{p:x}"), "x");
    }

    #[test]
    fn significant_bits_examples() {
        assert_eq!(Tnum::ZERO.significant_bits(), 1);
        assert_eq!(Tnum::constant(1).significant_bits(), 1);
        assert_eq!(Tnum::constant(0b100).significant_bits(), 3);
        assert_eq!(Tnum::masked(0, 0b1000).significant_bits(), 4);
        assert_eq!(Tnum::UNKNOWN.significant_bits(), 64);
    }
}
