//! The three-valued digit ("trit") making up a tnum.

use core::fmt;

/// A ternary digit: the abstract value of a single bit position.
///
/// Across all executions of a program, a given bit of a register is either
/// known to be `0`, known to be `1`, or *unknown* (written `μ` in the paper
/// and `x` in this crate's textual format, matching the kernel's
/// `tnum_sbin`).
///
/// # Examples
///
/// ```
/// use tnum::{Tnum, Trit};
///
/// let t: Tnum = "1x0".parse()?;
/// assert_eq!(t.trit(0), Trit::Zero);
/// assert_eq!(t.trit(1), Trit::Unknown);
/// assert_eq!(t.trit(2), Trit::One);
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Trit {
    /// The bit is `0` in every concrete value of the tnum.
    Zero,
    /// The bit is `1` in every concrete value of the tnum.
    One,
    /// The bit is `0` in some concrete values and `1` in others (μ).
    Unknown,
}

impl Trit {
    /// All three trits, in `0`, `1`, `x` order (useful for enumeration).
    pub const ALL: [Trit; 3] = [Trit::Zero, Trit::One, Trit::Unknown];

    /// Returns the `(value, mask)` bit pair encoding this trit, per Eqn. 3 of
    /// the paper: `0 ↦ (0,0)`, `1 ↦ (1,0)`, `μ ↦ (0,1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Trit;
    /// assert_eq!(Trit::One.to_value_mask(), (1, 0));
    /// assert_eq!(Trit::Unknown.to_value_mask(), (0, 1));
    /// ```
    #[must_use]
    pub const fn to_value_mask(self) -> (u64, u64) {
        match self {
            Trit::Zero => (0, 0),
            Trit::One => (1, 0),
            Trit::Unknown => (0, 1),
        }
    }

    /// Decodes a `(value, mask)` bit pair into a trit.
    ///
    /// Returns `None` for the ill-formed pair `(1, 1)`, which the paper maps
    /// to ⊥ (the empty tnum) and which this crate rules out by construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnum::Trit;
    /// assert_eq!(Trit::from_value_mask(0, 1), Some(Trit::Unknown));
    /// assert_eq!(Trit::from_value_mask(1, 1), None);
    /// ```
    #[must_use]
    pub const fn from_value_mask(value: u64, mask: u64) -> Option<Trit> {
        match (value & 1, mask & 1) {
            (0, 0) => Some(Trit::Zero),
            (1, 0) => Some(Trit::One),
            (0, 1) => Some(Trit::Unknown),
            _ => None,
        }
    }

    /// Returns `true` if this trit is [`Trit::Unknown`].
    #[must_use]
    pub const fn is_unknown(self) -> bool {
        matches!(self, Trit::Unknown)
    }

    /// Returns `true` if this trit is a known constant (`0` or `1`).
    #[must_use]
    pub const fn is_known(self) -> bool {
        !self.is_unknown()
    }

    /// The canonical character for this trit: `'0'`, `'1'`, or `'x'`.
    #[must_use]
    pub const fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::Unknown => 'x',
        }
    }

    /// Parses a trit character. Accepts `0`, `1`, and any of `x`, `X`, `u`,
    /// `U`, `μ`, `?` for the unknown trit.
    #[must_use]
    pub fn from_char(c: char) -> Option<Trit> {
        match c {
            '0' => Some(Trit::Zero),
            '1' => Some(Trit::One),
            'x' | 'X' | 'u' | 'U' | 'μ' | '?' => Some(Trit::Unknown),
            _ => None,
        }
    }

    /// Whether a concrete bit `b` is a member of this trit's concretization.
    ///
    /// `Unknown` contains both bit values; `Zero`/`One` contain exactly one.
    #[must_use]
    pub const fn contains_bit(self, b: bool) -> bool {
        match self {
            Trit::Zero => !b,
            Trit::One => b,
            Trit::Unknown => true,
        }
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Trit::Zero => "0",
            Trit::One => "1",
            Trit::Unknown => "x",
        })
    }
}

impl From<bool> for Trit {
    /// Converts a known concrete bit into the corresponding certain trit.
    fn from(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_mask_round_trip() {
        for t in Trit::ALL {
            let (v, m) = t.to_value_mask();
            assert_eq!(Trit::from_value_mask(v, m), Some(t));
        }
    }

    #[test]
    fn bottom_pair_is_rejected() {
        assert_eq!(Trit::from_value_mask(1, 1), None);
    }

    #[test]
    fn char_round_trip() {
        for t in Trit::ALL {
            assert_eq!(Trit::from_char(t.to_char()), Some(t));
        }
        assert_eq!(Trit::from_char('μ'), Some(Trit::Unknown));
        assert_eq!(Trit::from_char('u'), Some(Trit::Unknown));
        assert_eq!(Trit::from_char('2'), None);
    }

    #[test]
    fn membership() {
        assert!(Trit::Unknown.contains_bit(false));
        assert!(Trit::Unknown.contains_bit(true));
        assert!(Trit::Zero.contains_bit(false));
        assert!(!Trit::Zero.contains_bit(true));
        assert!(Trit::One.contains_bit(true));
        assert!(!Trit::One.contains_bit(false));
    }

    #[test]
    fn from_bool() {
        assert_eq!(Trit::from(true), Trit::One);
        assert_eq!(Trit::from(false), Trit::Zero);
    }

    #[test]
    fn known_predicates() {
        assert!(Trit::Zero.is_known());
        assert!(Trit::One.is_known());
        assert!(Trit::Unknown.is_unknown());
        assert!(!Trit::Unknown.is_known());
    }
}
