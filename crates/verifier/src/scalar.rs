//! The scalar register abstraction: the reduced product of tnum × bounds.

use core::fmt;

use ebpf::{AluOp, Width};
use interval_domain::Bounds;
use tnum::Tnum;

use crate::product::Product;

/// The abstract value of a scalar (non-pointer) register: the reduced
/// product of a [`Tnum`] and [`Bounds`].
///
/// `Scalar` is a type alias for the generic [`Product`], which supplies
/// the lattice operations (`union`, `intersect`, `is_subset_of`,
/// `contains`) and the kernel's `reg_bounds_sync` cross-refinement
/// ([`Product::normalize`], built on `domain::RefineFrom`). This module
/// adds the BPF-specific transfer functions — the 64-bit and 32-bit ALU
/// semantics the analyzer interprets instructions with.
///
/// # Examples
///
/// ```
/// use ebpf::AluOp;
/// use verifier::Scalar;
/// use tnum::Tnum;
///
/// let s = Scalar::unknown().alu64(AluOp::And, Scalar::constant(0b110));
/// assert_eq!(s.tnum(), "xx0".parse::<Tnum>()?);
/// assert_eq!(s.bounds().umax(), 6);   // range recovered from the tnum
/// assert!(s.contains(0b100) && !s.contains(1));
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
pub type Scalar = Product<Tnum, Bounds>;

impl Scalar {
    /// Builds the scalar equivalent of a tnum.
    #[must_use]
    pub fn from_tnum(tnum: Tnum) -> Scalar {
        Scalar::raw(tnum, Bounds::from_tnum(tnum))
    }

    /// The bit-level component.
    #[must_use]
    pub const fn tnum(self) -> Tnum {
        self.a
    }

    /// Widening `self ∇ newer` with the interval half extended by
    /// harvested thresholds ([`Bounds::widen_with`]); the tnum half has
    /// finite height and keeps its join-wise ∇. Like the generic
    /// [`Product::widen`], the result is deliberately not re-normalized.
    #[must_use]
    pub fn widen_with(
        self,
        newer: Scalar,
        thresholds: &interval_domain::WidenThresholds,
    ) -> Scalar {
        use domain::WidenDomain as _;
        Scalar::raw(
            self.a.widen(newer.a),
            self.b.widen_with(newer.b, thresholds),
        )
    }

    /// The range component.
    #[must_use]
    pub const fn bounds(self) -> Bounds {
        self.b
    }

    /// Applies a 64-bit ALU operation.
    #[must_use]
    pub fn alu64(self, op: AluOp, rhs: Scalar) -> Scalar {
        let raw = match op {
            AluOp::Add => Scalar::raw(self.a.add(rhs.a), self.b.add(rhs.b)),
            AluOp::Sub => Scalar::raw(self.a.sub(rhs.a), self.b.sub(rhs.b)),
            AluOp::Mul => Scalar::raw(self.a.mul(rhs.a), self.b.mul(rhs.b)),
            AluOp::Or => Scalar::raw(self.a.or(rhs.a), self.b.or(rhs.b)),
            AluOp::And => Scalar::raw(self.a.and(rhs.a), self.b.and(rhs.b)),
            AluOp::Xor => Scalar::raw(self.a.xor(rhs.a), self.b.xor(rhs.b)),
            AluOp::Div => Scalar::raw(self.a.div(rhs.a), self.b.div(rhs.b)),
            AluOp::Mod => Scalar::raw(self.a.rem(rhs.a), self.b.rem(rhs.b)),
            AluOp::Neg => Scalar::raw(self.a.neg(), self.b.neg()),
            AluOp::Mov => rhs,
            AluOp::Lsh => self.shift64(rhs, Tnum::lshift, Bounds::lshift, Tnum::lshift_tnum),
            AluOp::Rsh => self.shift64(rhs, Tnum::rshift, Bounds::rshift, Tnum::rshift_tnum),
            AluOp::Arsh => self.shift64(rhs, Tnum::arshift, Bounds::arshift, Tnum::arshift_tnum),
        };
        raw.normalize().unwrap_or_else(Scalar::unknown)
    }

    fn shift64(
        self,
        amount: Scalar,
        tnum_const: impl Fn(Tnum, u32) -> Tnum,
        bounds_const: impl Fn(Bounds, u32) -> Bounds,
        tnum_var: impl Fn(Tnum, Tnum) -> Tnum,
    ) -> Scalar {
        // BPF masks the shift amount to the operand width.
        match amount.as_constant() {
            Some(k) => {
                let k = (k & 63) as u32;
                Scalar::raw(tnum_const(self.a, k), bounds_const(self.b, k))
            }
            None => {
                let masked = amount.a.and(Tnum::constant(63));
                let t = tnum_var(self.a, masked);
                Scalar::raw(t, Bounds::from_tnum(t))
            }
        }
    }

    /// Applies a 32-bit ALU operation: computed on the low halves, with the
    /// result zero-extended, exactly as the concrete `alu32` semantics.
    #[must_use]
    pub fn alu32(self, op: AluOp, rhs: Scalar) -> Scalar {
        let a = self.subreg();
        let b = rhs.subreg();
        // Compute in the 64-bit domain on zero-extended halves, then wrap
        // to 32 bits. For every ALU op, the low 32 result bits of the
        // 64-bit computation equal the 32-bit computation (shifts use the
        // masked amount below).
        let wide = match op {
            AluOp::Lsh | AluOp::Rsh | AluOp::Arsh => {
                let k = b.as_constant().map(|k| (k & 31) as u32);
                match (op, k) {
                    (AluOp::Lsh, Some(k)) => Scalar::raw(a.a.lshift(k), a.b.lshift(k)),
                    (AluOp::Rsh, Some(k)) => Scalar::raw(a.a.subreg().rshift(k), a.b.rshift(k)),
                    (AluOp::Arsh, Some(k)) => {
                        let t = a.a.arshift_width(k, 32);
                        Scalar::raw(t, Bounds::from_tnum(t.subreg()))
                    }
                    // Variable 32-bit shift amounts: give up precision on
                    // the subreg (sound: any 32-bit value).
                    _ => Scalar::from_tnum(Tnum::masked(0, u32::MAX as u64)),
                }
            }
            AluOp::Div => Scalar::raw(a.a.div(b.a), a.b.div(b.b)),
            AluOp::Mod => Scalar::raw(a.a.rem(b.a), a.b.rem(b.b)),
            AluOp::Neg => Scalar::raw(a.a.neg(), Bounds::FULL),
            _ => a.alu64(op, b),
        };
        let t = wide.a.subreg();
        let b32 = wrap32(wide.b)
            .intersect(Bounds::from_tnum(t))
            .unwrap_or_else(|| Bounds::from_tnum(t));
        Scalar::raw(t, b32)
            .normalize()
            .unwrap_or_else(Scalar::unknown)
    }

    /// The abstraction of the low 32 bits, zero-extended.
    #[must_use]
    pub fn subreg(self) -> Scalar {
        let t = self.a.subreg();
        let mut b = Bounds::from_tnum(t);
        // The 64-bit range carries over exactly when it fits in 32 bits.
        if self.b.umax() <= u32::MAX as u64 {
            b = b.intersect(self.b).unwrap_or(b);
        }
        Scalar::raw(t, b)
            .normalize()
            .unwrap_or_else(Scalar::unknown)
    }
}

/// Wraps 64-bit bounds into the `[0, u32::MAX]` window: exact if the range
/// already fits, full 32-bit range if it may wrap.
fn wrap32(b: Bounds) -> Bounds {
    if b.umax() <= u32::MAX as u64 {
        b
    } else {
        Bounds::from_unsigned(
            interval_domain::UInterval::new(0, u32::MAX as u64).expect("valid range"),
        )
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar({} {:?})", self.a, self.b)
    }
}

/// Compact human-readable form, as used by the verifier log
/// ([`Analysis::annotate`](crate::Analysis::annotate)): constants print
/// as numbers (signed when that is shorter), otherwise only the
/// informative components are shown — the tnum in hex when it knows
/// anything, unsigned/signed ranges when they are not full — and a value
/// with no information prints as `unknown`.
impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.as_constant() {
            return if (c as i64) < 0 && (c as i64) > -65536 {
                write!(f, "{}", c as i64)
            } else {
                write!(f, "{c}")
            };
        }
        let mut parts: Vec<String> = Vec::new();
        if !self.a.is_unknown() {
            parts.push(format!("tnum={:x}", self.a));
        }
        let b = self.b;
        if !(b.umin() == 0 && b.umax() == u64::MAX) {
            parts.push(format!("u[{}, {}]", b.umin(), b.umax()));
        }
        if !(b.smin() == i64::MIN && b.smax() == i64::MAX)
            && (b.smin() < 0 || b.smax() != b.umax() as i64 || b.smin() != b.umin() as i64)
        {
            parts.push(format!("s[{}, {}]", b.smin(), b.smax()));
        }
        if parts.is_empty() {
            f.write_str("unknown")
        } else {
            f.write_str(&parts.join(" "))
        }
    }
}

/// Convenience: apply an ALU op at either width.
impl Scalar {
    /// Dispatches on the instruction width.
    #[must_use]
    pub fn alu(self, width: Width, op: AluOp, rhs: Scalar) -> Scalar {
        match width {
            Width::W64 => self.alu64(op, rhs),
            Width::W32 => self.alu32(op, rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive small-domain soundness: every op, every width, over
    /// abstract operands derived from small concrete sets.
    #[test]
    fn alu_ops_sound_on_sampled_abstractions() {
        let abstractions: Vec<(Scalar, Vec<u64>)> = vec![
            (Scalar::constant(0), vec![0]),
            (Scalar::constant(7), vec![7]),
            (Scalar::constant(u64::MAX), vec![u64::MAX]),
            (
                Scalar::from_tnum("x1x".parse().unwrap()),
                "x1x".parse::<Tnum>().unwrap().concretize().collect(),
            ),
            (
                Scalar::from_tnum("1xx0".parse().unwrap()),
                "1xx0".parse::<Tnum>().unwrap().concretize().collect(),
            ),
            (
                Scalar::from_parts(
                    Tnum::UNKNOWN,
                    Bounds::from_unsigned(interval_domain::UInterval::new(3, 6).unwrap()),
                )
                .unwrap(),
                vec![3, 4, 5, 6],
            ),
            (
                Scalar::from_tnum(Tnum::masked(1 << 63, 0b11)),
                Tnum::masked(1 << 63, 0b11).concretize().collect(),
            ),
        ];
        for (sa, xs) in &abstractions {
            for (sb, ys) in &abstractions {
                for op in AluOp::ALL {
                    for width in [Width::W64, Width::W32] {
                        let r = sa.alu(width, op, *sb);
                        for &x in xs {
                            for &y in ys {
                                let concrete = concrete_alu(width, op, x, y);
                                assert!(
                                    r.contains(concrete),
                                    "{op:?}/{width:?}: {x} op {y} = {concrete} \
                                     not in {r:?} (a={sa:?}, b={sb:?})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    fn concrete_alu(width: Width, op: AluOp, x: u64, y: u64) -> u64 {
        // Mirrors the VM's semantics.
        match width {
            Width::W64 => match op {
                AluOp::Add => x.wrapping_add(y),
                AluOp::Sub => x.wrapping_sub(y),
                AluOp::Mul => x.wrapping_mul(y),
                AluOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x / y
                    }
                }
                AluOp::Mod => {
                    if y == 0 {
                        x
                    } else {
                        x % y
                    }
                }
                AluOp::Or => x | y,
                AluOp::And => x & y,
                AluOp::Xor => x ^ y,
                AluOp::Lsh => x.wrapping_shl(y as u32 & 63),
                AluOp::Rsh => x.wrapping_shr(y as u32 & 63),
                AluOp::Arsh => ((x as i64).wrapping_shr(y as u32 & 63)) as u64,
                AluOp::Neg => x.wrapping_neg(),
                AluOp::Mov => y,
            },
            Width::W32 => {
                let (a, b) = (x as u32, y as u32);
                (match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a / b
                        }
                    }
                    AluOp::Mod => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                    AluOp::Xor => a ^ b,
                    AluOp::Lsh => a.wrapping_shl(b & 31),
                    AluOp::Rsh => a.wrapping_shr(b & 31),
                    AluOp::Arsh => ((a as i32).wrapping_shr(b & 31)) as u32,
                    AluOp::Neg => a.wrapping_neg(),
                    AluOp::Mov => b,
                }) as u64
            }
        }
    }

    #[test]
    fn masking_bounds_via_tnum() {
        // The paper's §I story: after `r &= 6`, the range is [0, 6] even
        // though the interval domain alone knows nothing.
        let s = Scalar::unknown().alu64(AluOp::And, Scalar::constant(6));
        assert_eq!(s.bounds().umax(), 6);
        assert_eq!(s.bounds().umin(), 0);
        assert_eq!(s.bounds().smin(), 0);
    }

    #[test]
    fn range_knowledge_sharpens_tnum() {
        // Conversely, a range [8, 11] pins the tnum prefix 10xx.
        let b = Bounds::from_unsigned(interval_domain::UInterval::new(8, 11).unwrap());
        let s = Scalar::from_parts(Tnum::UNKNOWN, b).unwrap();
        assert_eq!(s.tnum(), "10xx".parse().unwrap());
    }

    #[test]
    fn constants_fold_through_all_ops() {
        let a = Scalar::constant(24);
        let b = Scalar::constant(5);
        assert_eq!(a.alu64(AluOp::Add, b).as_constant(), Some(29));
        assert_eq!(a.alu64(AluOp::Div, b).as_constant(), Some(4));
        assert_eq!(a.alu64(AluOp::Mod, b).as_constant(), Some(4));
        assert_eq!(a.alu64(AluOp::Lsh, b).as_constant(), Some(24 << 5));
        assert_eq!(a.alu32(AluOp::Sub, b).as_constant(), Some(19));
    }

    #[test]
    fn alu32_zero_extends() {
        let max = Scalar::constant(u64::MAX);
        let r = max.alu32(AluOp::Add, Scalar::constant(1));
        assert_eq!(r.as_constant(), Some(0));
        let copy = max.alu32(AluOp::Mov, max);
        assert_eq!(copy.as_constant(), Some(0xffff_ffff));
    }

    #[test]
    fn join_and_order() {
        let a = Scalar::constant(4);
        let b = Scalar::constant(6);
        let j = a.union(b);
        assert!(a.is_subset_of(j) && b.is_subset_of(j));
        assert!(j.contains(4) && j.contains(6));
        // The join knows bit 0 is zero and the range is [4, 6].
        assert_eq!(j.bounds().umin(), 4);
        assert_eq!(j.bounds().umax(), 6);
        assert!(!j.tnum().contains(5) || !j.bounds().contains(5) || j.contains(5));
    }

    #[test]
    fn intersect_detects_contradiction() {
        let low = Scalar::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_unsigned(interval_domain::UInterval::new(0, 3).unwrap()),
        )
        .unwrap();
        let high_bit = Scalar::from_tnum("1xxx".parse().unwrap());
        assert_eq!(low.intersect(high_bit), None);
    }

    #[test]
    fn variable_shift_is_sound() {
        let v = Scalar::constant(1);
        let amt = Scalar::from_tnum("xx".parse().unwrap()); // 0..=3
        let r = v.alu64(AluOp::Lsh, amt);
        for k in 0..4u64 {
            assert!(r.contains(1 << k), "1 << {k}");
        }
    }
}
