//! The batched verification engine: verify many programs concurrently
//! on a scoped-thread worker pool, measured in **programs/sec**.
//!
//! This is the "verification-as-a-service" throughput layer from the
//! ROADMAP: a load-time verifier is rarely handed one program at a time
//! — it sees fleets (every variant of a packet filter, a CI sweep of
//! fixtures) — and the per-program analyses are independent. Because
//! [`AbsState`](crate::AbsState) is `Rc`-backed and `!Send`,
//! parallelism is **program-granular**: each worker owns every state it
//! allocates, and nothing `Rc`-backed ever crosses a thread boundary.
//! Two mechanisms make the pool more than N independent loops:
//!
//! * **Work stealing.** Workers claim programs from a shared
//!   [`WorkQueue`] instead of a static partition, so a worker that drew
//!   cheap acyclic programs immediately steals the remaining loopy
//!   ones. Analysis costs within one batch differ by orders of
//!   magnitude, which is exactly when static chunking idles.
//! * **Cross-program memoization.** All items can share one
//!   [`TransferMemo`](crate::memo::TransferMemo) (the default when
//!   batching through
//!   [`VerificationSession::run_batch`]): pure scalar transfer results
//!   computed while verifying one program are reused by every other,
//!   with full operand equality checked before each reuse.
//!
//! Results come back **in submission order** as real
//! [`Analysis`] values: each worker flattens its per-instruction states
//! into dense `Copy` snapshots (which *are* `Send`), and the submitting
//! thread rebuilds them — fingerprints and all — after the scope joins.

use std::time::{Duration, Instant};

use domain::parallel::{default_threads, par_workers, WorkQueue};
use ebpf::Program;

use crate::analyzer::{Analysis, AnalyzerOptions, DegradationPolicy, VerificationSession};
use crate::error::VerifierError;
use crate::explore::Strategy;
use crate::fixpoint::{self, AnalysisStats};
use crate::memo;
use crate::state::{AbsState, SparseStack, REGS};
use crate::value::RegValue;

/// One unit of batch work: a program with its own options and strategy.
/// Heterogeneous batches (per-program configuration) are first-class;
/// [`VerificationSession::run_batch`] builds homogeneous ones sharing
/// the session's options — including its memo cache `Arc`.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The program to verify.
    pub prog: Program,
    /// The analysis options for this program. Items whose options hold
    /// the same `memo_cache` `Arc` share cached transfer results.
    pub options: AnalyzerOptions,
    /// The exploration strategy for this program.
    pub strategy: Strategy,
    /// What the worker's session does when a governance fault (a
    /// contained panic or a blown deadline) hits this program: walk the
    /// degradation ladder (the default) or fail fast.
    pub degradation: DegradationPolicy,
}

/// The roll-up of one batch run: throughput, verdict counts, how the
/// work spread across workers, and the memo-cache traffic.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Programs submitted.
    pub programs: usize,
    /// Programs accepted.
    pub accepted: usize,
    /// Programs rejected (any [`VerifierError`]).
    pub rejected: usize,
    /// Worker threads the pool actually ran (the *outer*,
    /// program-granular level).
    pub jobs: usize,
    /// Intra-program explorer threads granted to each
    /// [`Strategy::PathParallel`] item that left
    /// [`AnalyzerOptions::explore_jobs`] at `0`: the batch thread
    /// budget divided by the outer worker count, so outer × inner never
    /// oversubscribes it. `1` when the batch has no such items or the
    /// budget is spent on the outer level.
    pub inner_jobs: usize,
    /// Wall-clock time from first claim to scope join.
    pub elapsed: Duration,
    /// Programs each worker claimed — the work-stealing distribution.
    pub per_worker_programs: Vec<usize>,
    /// Instruction visits each worker's analyses consumed — including
    /// the partial walks of *rejected* runs (which abort at the first
    /// error and report no `AnalysisStats` of their own): the work a
    /// rejection burned is real batch load and is not dropped from the
    /// roll-up.
    pub per_worker_visits: Vec<u64>,
    /// Memo-cache hits across all workers (accepted and rejected runs).
    pub memo_hits: u64,
    /// Memo-cache misses across all workers.
    pub memo_misses: u64,
    /// Memo-cache entries evicted by the per-shard caps.
    pub memo_evicted: u64,
    /// Programs whose final verdict was
    /// [`VerifierError::DeadlineExceeded`] — the wall-clock governance
    /// rejections ([`AnalyzerOptions::deadline`]).
    pub deadline_exceeded: usize,
    /// Programs whose final verdict was
    /// [`VerifierError::InternalFault`] — per-program contained panics
    /// that did not take the batch down.
    pub internal_faults: usize,
    /// Total strategy downgrades the sessions' degradation ladders took
    /// across the batch's *accepted* programs
    /// ([`AnalysisStats::degradations`] summed).
    pub degradations: u64,
}

impl BatchStats {
    /// Verification throughput: programs per wall-clock second.
    #[must_use]
    pub fn programs_per_sec(&self) -> f64 {
        self.programs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of memo lookups that hit, in `[0, 1]` (0 when the cache
    /// was disabled or never consulted).
    #[must_use]
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// The result of a batch run: per-program outcomes in submission order
/// plus the [`BatchStats`] roll-up.
#[derive(Debug)]
pub struct BatchReport {
    /// One verdict per submitted program, index-aligned with the input.
    pub results: Vec<Result<Analysis, VerifierError>>,
    /// The run's throughput and distribution counters.
    pub stats: BatchStats,
}

/// One per-instruction state flattened to the `Send` representation
/// that crosses the worker boundary: a dense register file plus a
/// *sparse* stack — one boxed chunk per materialized frame position,
/// `None` where the chunk is entirely uninitialized (untouched, or
/// cleaned to ⊤ by liveness pruning). A stackless or mostly-dead point
/// is therefore ~11 register values and eight `None`s, not ~5 KiB.
struct DensePoint {
    regs: [RegValue; REGS],
    chunks: SparseStack,
}

/// A whole [`Analysis`] in `Send` form.
struct SendAnalysis {
    strategy: Strategy,
    states: Vec<Option<Box<DensePoint>>>,
    stats: AnalysisStats,
}

impl SendAnalysis {
    fn capture(a: &Analysis) -> SendAnalysis {
        SendAnalysis {
            strategy: a.strategy(),
            states: a
                .raw_states()
                .iter()
                .map(|s| {
                    s.as_ref().map(|st| {
                        let (regs, chunks) = st.to_parts();
                        Box::new(DensePoint { regs, chunks })
                    })
                })
                .collect(),
            stats: a.stats(),
        }
    }

    fn rebuild(self) -> Analysis {
        Analysis::from_raw(
            self.strategy,
            self.states
                .into_iter()
                .map(|p| p.map(|p| AbsState::from_parts(p.regs, p.chunks)))
                .collect(),
            self.stats,
        )
    }
}

/// What one worker brings back across the scope join.
struct WorkerOutput {
    results: Vec<(usize, Result<SendAnalysis, VerifierError>)>,
    visits: u64,
    memo: (u64, u64, u64),
}

/// Verifies every item concurrently on `jobs` workers (0 =
/// [`default_threads`], which honors `TNUM_THREADS`), returning
/// per-program results in submission order.
///
/// This is the heterogeneous entry point;
/// [`VerificationSession::run_batch`] is the common homogeneous wrapper.
#[must_use]
pub fn run(items: &[BatchItem], jobs: usize) -> BatchReport {
    let jobs = if jobs == 0 { default_threads() } else { jobs };
    let workers = jobs.min(items.len()).max(1);
    // One thread budget, two levels: `workers` outer threads verify
    // whole programs, and every `PathParallel` item that left
    // `explore_jobs` at 0 (= auto) gets the leftover budget as its
    // intra-program worker count, so `outer × inner ≤ jobs` (plus the
    // coordinator, which only blocks).
    let inner_jobs = (jobs / workers).max(1);
    let queue = WorkQueue::new(items.len());
    let start = Instant::now();
    let per_worker = par_workers(workers, |_worker| {
        let mut results = Vec::new();
        let mut visits: u64 = 0;
        let mut memo = (0u64, 0u64, 0u64);
        while let Some(i) = queue.claim() {
            let item = &items[i];
            let mut options = item.options.clone();
            if item.strategy == Strategy::PathParallel && options.explore_jobs == 0 {
                options.explore_jobs = inner_jobs as u32;
            }
            let session = VerificationSession::new()
                .with_options(options)
                .with_strategy(item.strategy)
                .with_degradation(item.degradation);
            memo::counters::reset();
            fixpoint::ledger::reset();
            // Belt over the session's own containment: a panic anywhere
            // in this program's run (including the dense-state capture
            // below) costs only this slot, never the batch.
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.run(&item.prog).map(|a| SendAnalysis::capture(&a))
            }))
            .unwrap_or_else(|payload| Err(VerifierError::from_panic(payload.as_ref())));
            // The thread-local memo counters and visit ledger now hold
            // exactly this program's traffic — harvested here so
            // rejected runs (which produce no `AnalysisStats`) still
            // contribute the partial work they burned.
            visits += fixpoint::ledger::snapshot();
            let (h, m, e) = memo::counters::snapshot();
            memo = (memo.0 + h, memo.1 + m, memo.2 + e);
            results.push((i, res));
        }
        WorkerOutput {
            results,
            visits,
            memo,
        }
    });
    let elapsed = start.elapsed();

    let mut slots: Vec<Option<Result<Analysis, VerifierError>>> =
        std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut per_worker_programs = Vec::with_capacity(workers);
    let mut per_worker_visits = Vec::with_capacity(workers);
    let (mut memo_hits, mut memo_misses, mut memo_evicted) = (0, 0, 0);
    for w in per_worker {
        per_worker_programs.push(w.results.len());
        per_worker_visits.push(w.visits);
        memo_hits += w.memo.0;
        memo_misses += w.memo.1;
        memo_evicted += w.memo.2;
        for (i, res) in w.results {
            slots[i] = Some(res.map(SendAnalysis::rebuild));
        }
    }
    let results: Vec<Result<Analysis, VerifierError>> = slots
        .into_iter()
        .map(|r| r.expect("the queue hands every index to exactly one worker"))
        .collect();
    let accepted = results.iter().filter(|r| r.is_ok()).count();
    let (mut deadline_exceeded, mut internal_faults, mut degradations) = (0usize, 0usize, 0u64);
    for res in &results {
        match res {
            Ok(a) => degradations += a.stats().degradations,
            Err(VerifierError::DeadlineExceeded { .. }) => deadline_exceeded += 1,
            Err(VerifierError::InternalFault { .. }) => internal_faults += 1,
            Err(_) => {}
        }
    }
    BatchReport {
        stats: BatchStats {
            programs: items.len(),
            accepted,
            rejected: results.len() - accepted,
            jobs: workers,
            inner_jobs,
            elapsed,
            per_worker_programs,
            per_worker_visits,
            memo_hits,
            memo_misses,
            memo_evicted,
            deadline_exceeded,
            internal_faults,
            degradations,
        },
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;
    use ebpf::Reg;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| assemble(s).unwrap()).collect()
    }

    #[test]
    fn dense_snapshots_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SendAnalysis>();
        assert_send::<WorkerOutput>();
    }

    #[test]
    fn results_come_back_in_submission_order() {
        // Distinct return constants identify each program; one reject in
        // the middle must stay at its own index.
        let batch = progs(&[
            "r0 = 10\nexit",
            "r0 = r9\nexit", // uninit read: rejected
            "r0 = 30\nexit",
            "r0 = 40\nexit",
        ]);
        for jobs in [1, 2, 8] {
            let report = VerificationSession::new().run_batch(&batch, jobs);
            assert_eq!(report.results.len(), 4);
            assert!(matches!(
                report.results[1],
                Err(VerifierError::UninitRead { .. })
            ));
            for (i, want) in [(0, 10), (2, 30), (3, 40)] {
                let a = report.results[i].as_ref().unwrap();
                let r0 = a.state_before(1).unwrap().reg(Reg::R0).as_scalar().unwrap();
                assert_eq!(r0.as_constant(), Some(want), "index {i} at jobs={jobs}");
            }
            assert_eq!(report.stats.accepted, 3);
            assert_eq!(report.stats.rejected, 1);
            assert_eq!(report.stats.programs, 4);
            assert_eq!(
                report.stats.per_worker_programs.iter().sum::<usize>(),
                4,
                "every program claimed exactly once"
            );
            assert_eq!(report.stats.jobs, jobs.min(4));
        }
    }

    #[test]
    fn rebuilt_states_match_a_sequential_run_exactly() {
        let prog = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                r3 = r10
                r3 += -8
                r3 += r2
                *(u8 *)(r3 + 0) = 0
                r0 = 0
                exit
            ",
        )
        .unwrap();
        let session = VerificationSession::new();
        let direct = session.run(&prog).unwrap();
        let report = session.run_batch(std::slice::from_ref(&prog), 1);
        let batched = report.results[0].as_ref().unwrap();
        assert_eq!(batched.strategy(), direct.strategy());
        // The session's memo cache is shared across runs, so the second
        // run hits where the first missed; every other counter (and all
        // verdict-relevant output below) must be identical.
        let neutral = |mut s: crate::AnalysisStats| {
            s.memo_hits = 0;
            s.memo_misses = 0;
            s.memo_evicted = 0;
            s
        };
        assert_eq!(neutral(batched.stats()), neutral(direct.stats()));
        assert_eq!(
            batched.stats().memo_hits + batched.stats().memo_misses,
            direct.stats().memo_hits + direct.stats().memo_misses,
            "memo traffic volume matches even when hit/miss split differs"
        );
        for pc in 0..prog.len() {
            match (direct.state_before(pc), batched.state_before(pc)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a, b, "state at pc {pc}");
                    assert_eq!(a.fingerprint(), b.fingerprint(), "fingerprint at pc {pc}");
                }
                (a, b) => panic!("reachability diverged at pc {pc}: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(batched.annotate(&prog), direct.annotate(&prog));
    }

    #[test]
    fn snapshots_skip_uninit_stack_chunks_and_rebuilds_share_them() {
        // A stackless program: every captured point crosses the thread
        // boundary with zero dense chunks.
        let prog = assemble("r0 = 0\nexit").unwrap();
        let direct = VerificationSession::new().run(&prog).unwrap();
        let send = SendAnalysis::capture(&direct);
        for point in send.states.iter().flatten() {
            assert!(
                point.chunks.iter().all(Option::is_none),
                "untouched frame snapshots dense chunks"
            );
        }
        // One spill materializes exactly one chunk in the snapshot …
        let prog = assemble("r3 = 1\n*(u64 *)(r10 - 8) = r3\nr0 = 0\nexit").unwrap();
        let direct = VerificationSession::new().run(&prog).unwrap();
        let send = SendAnalysis::capture(&direct);
        let at_exit = send.states[3].as_ref().unwrap();
        assert_eq!(
            at_exit.chunks.iter().filter(|c| c.is_some()).count(),
            1,
            "one spilled chunk is dense, the other seven stay sparse"
        );
        // … and rebuilt frames share one empty-chunk allocation: two
        // rebuilt pre-spill states agree on all chunks by *pointer*.
        let rebuilt = send.rebuild();
        let (a, b) = (
            rebuilt.state_before(0).unwrap(),
            rebuilt.state_before(1).unwrap(),
        );
        assert_eq!(a.shared_stack_chunks(b), crate::STACK_CHUNKS);
        assert_eq!(rebuilt.state_before(3), direct.state_before(3));
    }

    #[test]
    fn batch_shares_the_memo_cache_across_programs() {
        // Two identical programs through one session: on jobs=1 the
        // second run must hit the entries the first one inserted.
        let batch = progs(&["r2 = 5\nr2 += 3\nr2 *= 2\nr0 = r2\nexit"; 2]);
        let report = VerificationSession::new().run_batch(&batch, 1);
        assert!(
            report.stats.memo_hits > 0,
            "second program reuses the first's transfer results: {:?}",
            report.stats
        );
        let hit_rate = report.stats.memo_hit_rate();
        assert!(hit_rate > 0.0 && hit_rate <= 1.0);
        // And the per-program stats surface the same traffic.
        let second = report.results[1].as_ref().unwrap().stats();
        assert!(second.memo_hits > 0, "{second:?}");
    }

    #[test]
    fn region_checks_share_the_memo_cache() {
        // A program whose only memoizable work is the memory check: no
        // scalar×scalar ALU, no scalar branch. The second identical
        // program must hit the first one's cached region verdict.
        let batch = progs(&["r3 = 1\n*(u64 *)(r10 - 8) = r3\nr0 = 0\nexit"; 2]);
        let report = VerificationSession::new().run_batch(&batch, 1);
        assert!(
            report.stats.memo_hits > 0,
            "second program reuses the first's region-check verdict: {:?}",
            report.stats
        );
        let (a, b) = (
            report.results[0].as_ref().unwrap(),
            report.results[1].as_ref().unwrap(),
        );
        assert_eq!(a.annotate(&batch[0]), b.annotate(&batch[1]));
    }

    #[test]
    fn path_parallel_items_split_the_batch_thread_budget() {
        let batch = progs(&[
            "r2 = *(u8 *)(r1 + 0)\nif r2 > 3 goto a\nr2 += 1\na:\nr2 &= 6\nr0 = r2\nexit",
            "r0 = 7\nexit",
        ]);
        let report = VerificationSession::new()
            .with_strategy(Strategy::PathParallel)
            .run_batch(&batch, 8);
        // 8 threads over 2 programs: 2 outer workers × 4 inner explorer
        // jobs each.
        assert_eq!(report.stats.jobs, 2);
        assert_eq!(report.stats.inner_jobs, 4);
        // And the rebuilt analyses match the sequential strategy's.
        let seq = VerificationSession::new()
            .with_strategy(Strategy::PathSensitive)
            .run_batch(&batch, 1);
        for (i, (p, s)) in report.results.iter().zip(seq.results.iter()).enumerate() {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.annotate(&batch[i]), s.annotate(&batch[i]));
        }
        // An explicit per-item explore_jobs is never overridden.
        let items = vec![BatchItem {
            prog: batch[0].clone(),
            options: AnalyzerOptions {
                explore_jobs: 1,
                ..AnalyzerOptions::default()
            },
            strategy: Strategy::PathParallel,
            degradation: DegradationPolicy::default(),
        }];
        let report = run(&items, 8);
        assert!(report.results[0].is_ok());
        assert_eq!(report.results[0].as_ref().unwrap().stats().steals, 0);
    }

    #[test]
    fn empty_batch_is_a_clean_noop() {
        let report = VerificationSession::new().run_batch(&[], 4);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.programs, 0);
        assert_eq!(report.stats.accepted, 0);
        assert_eq!(report.stats.memo_hit_rate(), 0.0);
    }

    #[test]
    fn zero_jobs_selects_default_threads() {
        let report = VerificationSession::new().run_batch(&progs(&["r0 = 0\nexit"]), 0);
        assert_eq!(report.stats.jobs, 1, "capped by batch size");
        assert!(report.results[0].is_ok());
    }

    #[test]
    fn heterogeneous_items_run_their_own_configuration() {
        let loopy = assemble("l:\nr0 = 0\ngoto l\nexit").unwrap();
        let items = vec![
            BatchItem {
                prog: loopy.clone(),
                options: AnalyzerOptions::default(),
                strategy: Strategy::WideningFixpoint,
                degradation: DegradationPolicy::default(),
            },
            BatchItem {
                prog: loopy,
                options: AnalyzerOptions {
                    reject_loops: true,
                    ..AnalyzerOptions::default()
                },
                strategy: Strategy::WideningFixpoint,
                degradation: DegradationPolicy::default(),
            },
        ];
        let report = run(&items, 2);
        assert!(report.results[0].is_ok(), "fixpoint accepts the loop");
        assert!(
            matches!(report.results[1], Err(VerifierError::LoopDetected { .. })),
            "reject_loops item keeps its own policy"
        );
    }
}
