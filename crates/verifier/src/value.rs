//! Abstract register values: scalars, region pointers, or uninitialized.

use core::fmt;

use crate::scalar::Scalar;

/// The abstract value of one register.
///
/// Pointers carry a *variable offset* tracked as a full [`Scalar`]
/// (tnum + bounds), so bit-level facts about an index — e.g. alignment
/// after a mask — flow into memory-access checks exactly as in the kernel,
/// where `bpf_reg_state.var_off` is a tnum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegValue {
    /// Never written on this path; any read is rejected.
    Uninit,
    /// An ordinary 64-bit value.
    Scalar(Scalar),
    /// A pointer into the 512-byte stack frame: address
    /// `STACK_TOP + offset` with `offset` usually negative.
    StackPtr {
        /// Signed byte offset from the top of the stack.
        offset: Scalar,
    },
    /// A pointer into the context buffer: address `CTX_BASE + offset`.
    CtxPtr {
        /// Byte offset from the start of the context.
        offset: Scalar,
    },
    /// A handle to a map, produced by the tagged `lddw` form
    /// `rD = map N` — the kernel's `CONST_PTR_TO_MAP`. Only usable as a
    /// helper argument; any dereference or arithmetic is rejected.
    MapHandle {
        /// Map id (an index into [`ebpf::DEFAULT_MAPS`]).
        map: u32,
    },
    /// A pointer to a value of map `map`, as returned by `map_lookup` —
    /// the kernel's `PTR_TO_MAP_VALUE[_OR_NULL]`. While `or_null` is
    /// set the pointer may be NULL and any dereference is rejected;
    /// a `== 0` / `!= 0` branch refines the non-zero edge to a
    /// dereferenceable `or_null: false` pointer.
    MapValuePtr {
        /// Map id (fixes the value size the pointer may roam over).
        map: u32,
        /// Whether the pointer may still be NULL (unchecked).
        or_null: bool,
        /// Byte offset from the start of the value.
        offset: Scalar,
    },
}

impl RegValue {
    /// An unknown scalar (the abstraction of "any 64-bit value").
    #[must_use]
    pub fn unknown_scalar() -> RegValue {
        RegValue::Scalar(Scalar::unknown())
    }

    /// Whether this value may be read at all.
    #[must_use]
    pub fn is_readable(self) -> bool {
        !matches!(self, RegValue::Uninit)
    }

    /// The scalar component if this is a scalar.
    #[must_use]
    pub fn as_scalar(self) -> Option<Scalar> {
        match self {
            RegValue::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is a pointer value.
    #[must_use]
    pub fn is_pointer(self) -> bool {
        matches!(
            self,
            RegValue::StackPtr { .. }
                | RegValue::CtxPtr { .. }
                | RegValue::MapHandle { .. }
                | RegValue::MapValuePtr { .. }
        )
    }

    /// The shared shape of [`RegValue::union`] and [`RegValue::widen`]:
    /// same-kind values merge their scalars with `f`; everything else
    /// collapses to [`RegValue::Uninit`] (for mixed pointer kinds —
    /// reading such a register is rejected, which is sound). Map value
    /// pointers of the same map join offsets and *or* their `or_null`
    /// flags (may-be-NULL is the weaker fact).
    fn merge(self, other: RegValue, f: impl Fn(Scalar, Scalar) -> Scalar) -> RegValue {
        match (self, other) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) => RegValue::Scalar(f(a, b)),
            (RegValue::StackPtr { offset: a }, RegValue::StackPtr { offset: b }) => {
                RegValue::StackPtr { offset: f(a, b) }
            }
            (RegValue::CtxPtr { offset: a }, RegValue::CtxPtr { offset: b }) => {
                RegValue::CtxPtr { offset: f(a, b) }
            }
            (RegValue::MapHandle { map: a }, RegValue::MapHandle { map: b }) if a == b => self,
            (
                RegValue::MapValuePtr {
                    map: a,
                    or_null: na,
                    offset: oa,
                },
                RegValue::MapValuePtr {
                    map: b,
                    or_null: nb,
                    offset: ob,
                },
            ) if a == b => RegValue::MapValuePtr {
                map: a,
                or_null: na || nb,
                offset: f(oa, ob),
            },
            _ => RegValue::Uninit,
        }
    }

    /// Join of two register values. Pointers join with pointers of the
    /// same region by joining offsets; everything else collapses to
    /// [`RegValue::Uninit`] or to a joined scalar.
    #[must_use]
    pub fn union(self, other: RegValue) -> RegValue {
        self.merge(other, Scalar::union)
    }

    /// Widening `self ∇ newer` at a loop head: like [`RegValue::union`]
    /// but extrapolating with [`Scalar::widen`] so growing scalars (and
    /// growing pointer offsets) stabilize. Mismatched kinds collapse to
    /// [`RegValue::Uninit`], exactly as in the join — the top of the
    /// safety order, so termination is preserved.
    #[must_use]
    pub fn widen(self, newer: RegValue) -> RegValue {
        self.merge(newer, Scalar::widen)
    }

    /// [`RegValue::widen`] with harvested interval thresholds
    /// ([`Scalar::widen_with`]), so a growing counter or pointer offset
    /// can land on a comparison constant of the program instead of a
    /// register-width extreme.
    #[must_use]
    pub fn widen_with(
        self,
        newer: RegValue,
        thresholds: &interval_domain::WidenThresholds,
    ) -> RegValue {
        self.merge(newer, |a, b| a.widen_with(b, thresholds))
    }

    /// Abstract-order test used for state-inclusion checks.
    #[must_use]
    pub fn is_subset_of(self, other: RegValue) -> bool {
        match (self, other) {
            // Uninit is the top of the "safety" order: any value may be
            // weakened to it (it only forbids reads).
            (_, RegValue::Uninit) => true,
            (RegValue::Scalar(a), RegValue::Scalar(b)) => a.is_subset_of(b),
            (RegValue::StackPtr { offset: a }, RegValue::StackPtr { offset: b })
            | (RegValue::CtxPtr { offset: a }, RegValue::CtxPtr { offset: b }) => a.is_subset_of(b),
            (RegValue::MapHandle { map: a }, RegValue::MapHandle { map: b }) => a == b,
            (
                RegValue::MapValuePtr {
                    map: a,
                    or_null: na,
                    offset: oa,
                },
                RegValue::MapValuePtr {
                    map: b,
                    or_null: nb,
                    offset: ob,
                },
            ) => {
                // A checked (non-null) pointer is covered by a may-be-null
                // one, never the reverse: `or_null` only forbids reads.
                a == b && (nb || !na) && oa.is_subset_of(ob)
            }
            _ => false,
        }
    }
}

impl fmt::Display for RegValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pointer offsets read best signed (stack offsets are negative).
        fn offset(f: &mut fmt::Formatter<'_>, region: &str, s: &Scalar) -> fmt::Result {
            if let Some(c) = s.as_constant() {
                write!(f, "{region}{:+}", c as i64)
            } else {
                write!(f, "{region}+[{}, {}]", s.bounds().smin(), s.bounds().smax())
            }
        }
        match self {
            RegValue::Uninit => write!(f, "uninit"),
            RegValue::Scalar(s) => write!(f, "{s}"),
            RegValue::StackPtr { offset: o } => offset(f, "stack", o),
            RegValue::CtxPtr { offset: o } => offset(f, "ctx", o),
            RegValue::MapHandle { map } => write!(f, "map{map}"),
            RegValue::MapValuePtr {
                map,
                or_null,
                offset: o,
            } => {
                let region = format!("map{map}_value{}", if *or_null { "?" } else { "" });
                offset(f, &region, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_joins() {
        let a = RegValue::Scalar(Scalar::constant(1));
        let b = RegValue::Scalar(Scalar::constant(3));
        match a.union(b) {
            RegValue::Scalar(s) => {
                assert!(s.contains(1) && s.contains(3));
            }
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn same_region_pointers_join_offsets() {
        let p = RegValue::StackPtr {
            offset: Scalar::constant((-8i64) as u64),
        };
        let q = RegValue::StackPtr {
            offset: Scalar::constant((-16i64) as u64),
        };
        match p.union(q) {
            RegValue::StackPtr { offset } => {
                assert!(offset.contains((-8i64) as u64));
                assert!(offset.contains((-16i64) as u64));
            }
            other => panic!("expected stack pointer, got {other:?}"),
        }
    }

    #[test]
    fn mixed_kinds_collapse_to_uninit() {
        let p = RegValue::StackPtr {
            offset: Scalar::constant(0),
        };
        let c = RegValue::CtxPtr {
            offset: Scalar::constant(0),
        };
        let s = RegValue::Scalar(Scalar::constant(0));
        assert_eq!(p.union(c), RegValue::Uninit);
        assert_eq!(p.union(s), RegValue::Uninit);
        assert_eq!(s.union(RegValue::Uninit), RegValue::Uninit);
    }

    #[test]
    fn order_respects_uninit_top() {
        let s = RegValue::Scalar(Scalar::constant(5));
        assert!(s.is_subset_of(RegValue::Uninit));
        assert!(!RegValue::Uninit.is_subset_of(s));
        assert!(s.is_subset_of(RegValue::unknown_scalar()));
        assert!(!RegValue::unknown_scalar().is_subset_of(s));
    }

    #[test]
    fn map_value_ptr_join_weakens_to_or_null() {
        let checked = RegValue::MapValuePtr {
            map: 0,
            or_null: false,
            offset: Scalar::constant(0),
        };
        let unchecked = RegValue::MapValuePtr {
            map: 0,
            or_null: true,
            offset: Scalar::constant(0),
        };
        assert_eq!(checked.union(unchecked), unchecked);
        assert_eq!(checked.union(checked), checked);
        // Different maps collapse (reading such a register is rejected).
        let other = RegValue::MapValuePtr {
            map: 1,
            or_null: false,
            offset: Scalar::constant(0),
        };
        assert_eq!(checked.union(other), RegValue::Uninit);
        assert_eq!(
            RegValue::MapHandle { map: 0 }.union(RegValue::MapHandle { map: 1 }),
            RegValue::Uninit
        );
        assert_eq!(
            RegValue::MapHandle { map: 1 }.union(RegValue::MapHandle { map: 1 }),
            RegValue::MapHandle { map: 1 }
        );
    }

    #[test]
    fn map_value_ptr_order_checked_below_or_null() {
        let checked = RegValue::MapValuePtr {
            map: 0,
            or_null: false,
            offset: Scalar::constant(4),
        };
        let unchecked = RegValue::MapValuePtr {
            map: 0,
            or_null: true,
            offset: Scalar::constant(4),
        };
        assert!(checked.is_subset_of(unchecked));
        assert!(!unchecked.is_subset_of(checked));
        assert!(checked.is_subset_of(RegValue::Uninit));
        assert!(!checked.is_subset_of(RegValue::unknown_scalar()));
        assert!(RegValue::MapHandle { map: 2 }.is_subset_of(RegValue::MapHandle { map: 2 }));
        assert!(!RegValue::MapHandle { map: 2 }.is_subset_of(RegValue::MapHandle { map: 3 }));
    }

    #[test]
    fn map_values_display_compactly() {
        assert_eq!(RegValue::MapHandle { map: 0 }.to_string(), "map0");
        let p = RegValue::MapValuePtr {
            map: 1,
            or_null: true,
            offset: Scalar::constant(0),
        };
        assert_eq!(p.to_string(), "map1_value?+0");
        let q = RegValue::MapValuePtr {
            map: 1,
            or_null: false,
            offset: Scalar::constant(8),
        };
        assert_eq!(q.to_string(), "map1_value+8");
    }

    #[test]
    fn readability_and_kind_predicates() {
        assert!(!RegValue::Uninit.is_readable());
        assert!(RegValue::unknown_scalar().is_readable());
        assert!(RegValue::StackPtr {
            offset: Scalar::constant(0)
        }
        .is_pointer());
        assert!(RegValue::unknown_scalar().as_scalar().is_some());
        assert!(RegValue::Uninit.as_scalar().is_none());
    }
}
