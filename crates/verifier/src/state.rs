//! The per-program-point abstract machine state: registers and stack,
//! with **copy-on-write structural sharing**.
//!
//! The kernel's verifier goes to great lengths to share and prune
//! `bpf_verifier_state` rather than copy it; this module does the same
//! for the fixpoint engine. An [`AbsState`] is two [`Rc`]-backed
//! components — the 11-register file and the 64-slot stack frame —
//! so cloning a state is two reference-count bumps, and a transfer
//! function that writes one register materializes (deep-copies) only the
//! register file while all 64 stack slots stay shared. The `Rc` identity
//! doubles as change tracking: a component that was never written keeps
//! its pointer, letting [`AbsState::is_subset_of`], [`AbsState::union`],
//! and [`AbsState::flow_join`] short-circuit whole components on
//! `Rc::ptr_eq` before falling into pointwise lattice operations.
//!
//! Those properties are what make the path-sensitive exploration
//! strategy ([`crate::explore::PathSensitive`]) viable: forking a state
//! at every branch is O(1), and its kernel-style pruning probes
//! (`is_state_visited` via [`crate::VisitedTable`]) lean on exactly the
//! [`AbsState::is_subset_of`] identity short-circuits. The soundness of
//! pruning rests on `is_subset_of` implying concrete-state containment
//! — locked in by the property suite in `tests/properties.rs`.
//!
//! The loop-head merge ([`AbsState::flow_join`]) also owns **per-register
//! widening stabilization** ([`JoinCounters`]): each register and stack
//! slot burns its *own* widening delay, so an accumulator that keeps
//! changing no longer spends the precise joins a bounded counter needed
//! (the shared-counter engine of PR 2 widened the whole state once any
//! component had changed `delay` times).
//!
//! Sharing traffic is counted in thread-local [`stats`] counters that the
//! fixpoint engine snapshots into `AnalysisStats`.

use core::fmt;
use std::rc::Rc;

use ebpf::{Reg, STACK_SIZE};
use interval_domain::WidenThresholds;

use crate::scalar::Scalar;
use crate::value::RegValue;

/// Number of 8-byte stack slots tracked (512 / 8 = 64).
const SLOTS: usize = (STACK_SIZE / 8) as usize;

/// Number of architectural registers tracked (r0–r10).
const REGS: usize = 11;

/// Thread-local sharing counters behind `AnalysisStats`. Thread-local
/// (not per-call plumbing) so the state layer's internals stay free of
/// `&mut stats` threading; the fixpoint engine resets them at the start
/// of an analysis and snapshots them at the end.
pub(crate) mod stats {
    use std::cell::Cell;

    thread_local! {
        static ALLOCATED: Cell<u64> = const { Cell::new(0) };
        static SHARED: Cell<u64> = const { Cell::new(0) };
        static SHORT_CIRCUITED: Cell<u64> = const { Cell::new(0) };
        static WIDENINGS: Cell<u64> = const { Cell::new(0) };
    }

    fn bump(c: &'static std::thread::LocalKey<Cell<u64>>) {
        c.with(|v| v.set(v.get() + 1));
    }

    /// A deep copy of a register file or stack frame was performed.
    pub(crate) fn bump_allocated() {
        bump(&ALLOCATED);
    }

    /// An `AbsState` clone shared both components (refcount bumps only).
    pub(crate) fn bump_shared() {
        bump(&SHARED);
    }

    /// A join/inclusion resolved a whole component by pointer identity.
    pub(crate) fn bump_short_circuited() {
        bump(&SHORT_CIRCUITED);
    }

    /// A widening operator was applied to one register or stack slot.
    pub(crate) fn bump_widenings() {
        bump(&WIDENINGS);
    }

    /// Zeroes all counters (start of an analysis).
    pub(crate) fn reset() {
        for c in [&ALLOCATED, &SHARED, &SHORT_CIRCUITED, &WIDENINGS] {
            c.with(|v| v.set(0));
        }
    }

    /// `(allocated, shared, short_circuited, widenings)` since the last
    /// [`reset`].
    pub(crate) fn snapshot() -> (u64, u64, u64, u64) {
        (
            ALLOCATED.with(Cell::get),
            SHARED.with(Cell::get),
            SHORT_CIRCUITED.with(Cell::get),
            WIDENINGS.with(Cell::get),
        )
    }
}

/// The abstract contents of one 8-byte stack slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackSlot {
    /// Never written on this path.
    Uninit,
    /// Written with bytes whose value is not tracked (partial or variable
    /// writes, or non-slot-aligned stores). Reads yield unknown scalars.
    Misc,
    /// An aligned 8-byte spill of a tracked value.
    Spill(RegValue),
}

impl StackSlot {
    /// The shared shape of [`StackSlot::union`] and [`StackSlot::widen`]:
    /// agreeing spills merge their values with `f`, and any disagreement
    /// invalidates the slot ([`StackSlot::Misc`] for incompatible
    /// initialized contents, [`StackSlot::Uninit`] when one path never
    /// wrote it).
    fn merge(self, other: StackSlot, f: impl Fn(RegValue, RegValue) -> RegValue) -> StackSlot {
        match (self, other) {
            (StackSlot::Uninit, _) | (_, StackSlot::Uninit) => StackSlot::Uninit,
            (StackSlot::Spill(a), StackSlot::Spill(b)) => match f(a, b) {
                RegValue::Uninit => StackSlot::Misc,
                v => StackSlot::Spill(v),
            },
            _ => StackSlot::Misc,
        }
    }

    /// Join of slot states at merge points.
    #[must_use]
    pub fn union(self, other: StackSlot) -> StackSlot {
        self.merge(other, RegValue::union)
    }

    /// Widening of slot states at a loop head: spills widen their tracked
    /// values; disagreement invalidates the slot exactly as in the join.
    #[must_use]
    pub fn widen(self, newer: StackSlot) -> StackSlot {
        self.widen_with(newer, &WidenThresholds::EMPTY)
    }

    /// [`StackSlot::widen`] with harvested interval thresholds.
    #[must_use]
    pub fn widen_with(self, newer: StackSlot, thresholds: &WidenThresholds) -> StackSlot {
        self.merge(newer, |a, b| a.widen_with(b, thresholds))
    }

    /// Whether reading this slot is allowed.
    #[must_use]
    pub fn is_initialized(self) -> bool {
        !matches!(self, StackSlot::Uninit)
    }

    /// Slot inclusion for state-inclusion checks.
    fn is_subset_of(self, other: StackSlot) -> bool {
        match (self, other) {
            (_, StackSlot::Uninit) => true,
            (StackSlot::Spill(x), StackSlot::Spill(y)) => x.is_subset_of(y),
            (StackSlot::Misc | StackSlot::Spill(_), StackSlot::Misc) => true,
            // Misc is not included in a tracked spill.
            (StackSlot::Uninit, _) | (StackSlot::Misc, StackSlot::Spill(_)) => false,
        }
    }
}

/// Per-component changing-join counters at one loop head, driving
/// **per-register delayed widening**.
///
/// The engine of PR 2 kept one counter per loop head: any changing join
/// burned the shared `widen_delay`, so a still-growing accumulator (or a
/// second back-edge) could exhaust the delay a bounded counter needed to
/// reach its exit-test fixpoint, widening the counter to a threshold and
/// losing the bounds proof. Here every register and every stack slot
/// counts its *own* changing joins and is widened only once it has
/// individually absorbed `widen_delay` of them — stable components are
/// never penalized for their neighbours' churn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinCounters {
    regs: [u32; REGS],
    slots: [u32; SLOTS],
}

impl JoinCounters {
    /// Fresh counters: no changing joins seen yet.
    #[must_use]
    pub fn new() -> JoinCounters {
        JoinCounters {
            regs: [0; REGS],
            slots: [0; SLOTS],
        }
    }

    /// The number of changing joins register `reg` has absorbed.
    #[must_use]
    pub fn reg_joins(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }
}

impl Default for JoinCounters {
    fn default() -> JoinCounters {
        JoinCounters::new()
    }
}

/// The widening context of a loop-head merge: the head's per-component
/// counters, the configured delay, and the harvested interval thresholds.
pub struct WidenCtx<'a> {
    /// Per-register / per-slot changing-join counters of this loop head.
    pub counters: &'a mut JoinCounters,
    /// How many changing joins each component absorbs exactly before its
    /// own widening kicks in.
    pub delay: u32,
    /// Program-derived extra thresholds for the interval ladders.
    pub thresholds: &'a WidenThresholds,
}

/// Abstract machine state at one program point: the eleven registers plus
/// the 64 stack slots, both behind copy-on-write [`Rc`]s.
///
/// # Examples
///
/// ```
/// use verifier::{AbsState, RegValue};
/// use ebpf::Reg;
///
/// let state = AbsState::entry();
/// assert!(matches!(state.reg(Reg::R1), RegValue::CtxPtr { .. }));
/// assert!(matches!(state.reg(Reg::R10), RegValue::StackPtr { .. }));
/// assert!(matches!(state.reg(Reg::R0), RegValue::Uninit));
///
/// // Clones share storage until written.
/// let mut copy = state.clone();
/// copy.set_reg(Reg::R0, RegValue::unknown_scalar());
/// assert!(matches!(state.reg(Reg::R0), RegValue::Uninit));
/// ```
pub struct AbsState {
    regs: Rc<[RegValue; REGS]>,
    stack: Rc<[StackSlot; SLOTS]>,
}

impl Clone for AbsState {
    /// O(1): bumps the two component refcounts. The deep copy happens
    /// lazily, only for the component a later write actually touches.
    fn clone(&self) -> AbsState {
        stats::bump_shared();
        AbsState {
            regs: Rc::clone(&self.regs),
            stack: Rc::clone(&self.stack),
        }
    }
}

impl PartialEq for AbsState {
    fn eq(&self, other: &AbsState) -> bool {
        (Rc::ptr_eq(&self.regs, &other.regs) || self.regs == other.regs)
            && (Rc::ptr_eq(&self.stack, &other.stack) || self.stack == other.stack)
    }
}

impl Eq for AbsState {}

impl AbsState {
    /// The state on program entry: `r1` points at the context, `r2` holds
    /// the (unknown) context length, `r10` is the frame pointer, and
    /// everything else — registers and stack — is uninitialized.
    #[must_use]
    pub fn entry() -> AbsState {
        let mut regs = [RegValue::Uninit; REGS];
        regs[Reg::R1.index()] = RegValue::CtxPtr {
            offset: Scalar::constant(0),
        };
        regs[Reg::R2.index()] = RegValue::unknown_scalar();
        regs[Reg::R10.index()] = RegValue::StackPtr {
            offset: Scalar::constant(0),
        };
        stats::bump_allocated();
        stats::bump_allocated();
        AbsState {
            regs: Rc::new(regs),
            stack: Rc::new([StackSlot::Uninit; SLOTS]),
        }
    }

    /// Mutable access to the register file, materializing a private copy
    /// if it is currently shared.
    fn regs_mut(&mut self) -> &mut [RegValue; REGS] {
        if Rc::strong_count(&self.regs) > 1 {
            stats::bump_allocated();
        }
        Rc::make_mut(&mut self.regs)
    }

    /// Mutable access to the stack frame, materializing a private copy if
    /// it is currently shared.
    fn stack_mut(&mut self) -> &mut [StackSlot; SLOTS] {
        if Rc::strong_count(&self.stack) > 1 {
            stats::bump_allocated();
        }
        Rc::make_mut(&mut self.stack)
    }

    /// The abstract value of a register.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> RegValue {
        self.regs[reg.index()]
    }

    /// Replaces the abstract value of a register.
    pub fn set_reg(&mut self, reg: Reg, value: RegValue) {
        // No-op writes (common for `mov` round-trips and re-deriving the
        // same refinement) keep the file shared.
        if self.regs[reg.index()] != value {
            self.regs_mut()[reg.index()] = value;
        }
    }

    /// The abstract content of the 8-byte slot covering stack offset
    /// `offset` (negative, relative to the top of the stack).
    ///
    /// Returns `None` when the offset is outside the frame.
    #[must_use]
    pub fn stack_slot(&self, offset: i64) -> Option<StackSlot> {
        Some(self.stack[slot_index(offset)?])
    }

    /// Overwrites the slot covering `offset`.
    ///
    /// Returns `false` (and does nothing) when the offset is outside the
    /// frame.
    pub fn set_stack_slot(&mut self, offset: i64, slot: StackSlot) -> bool {
        match slot_index(offset) {
            Some(i) => {
                if self.stack[i] != slot {
                    self.stack_mut()[i] = slot;
                }
                true
            }
            None => false,
        }
    }

    /// Marks every slot intersecting `[start, end)` (stack-relative byte
    /// offsets) as [`StackSlot::Misc`]: the effect of a write whose exact
    /// location or value is not tracked.
    pub fn smear_stack(&mut self, start: i64, end: i64) {
        let slots = || (align_down(start)..end).step_by(8).filter_map(slot_index);
        // Decide before materializing: an all-Misc range keeps sharing.
        if slots().all(|i| self.stack[i] == StackSlot::Misc) {
            return;
        }
        let stack = self.stack_mut();
        for i in slots() {
            stack[i] = StackSlot::Misc;
        }
    }

    /// Whether every byte of `[start, end)` has been initialized.
    #[must_use]
    pub fn stack_range_initialized(&self, start: i64, end: i64) -> bool {
        if start >= end {
            return true;
        }
        (align_down(start)..end)
            .step_by(8)
            .all(|off| slot_index(off).is_some_and(|i| self.stack[i].is_initialized()))
    }

    /// Pointwise join of two states at a control-flow merge. Components
    /// identical by pointer or value are *shared*, not reallocated.
    #[must_use]
    pub fn union(&self, other: &AbsState) -> AbsState {
        AbsState {
            regs: union_component(&self.regs, &other.regs),
            stack: union_component(&self.stack, &other.stack),
        }
    }

    /// Merges `incoming` into `self` in place — the join the fixpoint
    /// engine performs when an edge flows into an instruction that
    /// already has a state — and reports whether `self` actually grew.
    ///
    /// At a loop head (`widen` is `Some`), each register and stack slot
    /// first absorbs [`WidenCtx::delay`] *of its own* changing joins
    /// exactly; every later one widens that component
    /// (`cur ∇ (cur ⊔ incoming)`), extrapolating through the built-in
    /// and harvested interval thresholds while components that already
    /// stabilized are left untouched. Components equal by `Rc` identity
    /// short-circuit without any pointwise work.
    pub fn flow_join(&mut self, incoming: &AbsState, widen: Option<WidenCtx<'_>>) -> bool {
        // Split the widening context into per-component halves so each
        // array flows with its own counters.
        let (regs_widen, stack_widen) = match widen {
            Some(WidenCtx {
                counters,
                delay,
                thresholds,
            }) => {
                let JoinCounters { regs, slots } = counters;
                (
                    Some((regs, delay, thresholds)),
                    Some((slots, delay, thresholds)),
                )
            }
            None => (None, None),
        };
        let regs_changed = flow_component(&mut self.regs, &incoming.regs, regs_widen);
        let stack_changed = flow_component(&mut self.stack, &incoming.stack, stack_widen);
        regs_changed || stack_changed
    }

    /// Pointwise widening `self ∇ newer` (kept for completeness and the
    /// domain-law tests; the engine itself widens through
    /// [`AbsState::flow_join`], which applies ∇ per component).
    #[must_use]
    pub fn widen(&self, newer: &AbsState) -> AbsState {
        let mut out = self.clone();
        let mut counters = JoinCounters::new();
        out.flow_join(
            newer,
            Some(WidenCtx {
                counters: &mut counters,
                delay: 0,
                thresholds: &WidenThresholds::EMPTY,
            }),
        );
        out
    }

    /// Pointwise abstract-order test (state inclusion), with whole
    /// components short-circuited on `Rc` identity.
    #[must_use]
    pub fn is_subset_of(&self, other: &AbsState) -> bool {
        let regs_ok = Rc::ptr_eq(&self.regs, &other.regs) || {
            (0..REGS).all(|i| self.regs[i].is_subset_of(other.regs[i]))
        };
        if !regs_ok {
            return false;
        }
        Rc::ptr_eq(&self.stack, &other.stack)
            || self
                .stack
                .iter()
                .zip(other.stack.iter())
                .all(|(a, b)| a.is_subset_of(*b))
    }

    /// Whether the two states share their register file (used by tests
    /// and stats reporting; `true` implies equal register values).
    #[must_use]
    pub fn shares_regs_with(&self, other: &AbsState) -> bool {
        Rc::ptr_eq(&self.regs, &other.regs)
    }

    /// Whether the two states share their stack frame.
    #[must_use]
    pub fn shares_stack_with(&self, other: &AbsState) -> bool {
        Rc::ptr_eq(&self.stack, &other.stack)
    }
}

/// The pointwise lattice interface shared by the two state component
/// types, letting [`union_component`] and [`flow_component`] merge the
/// register file and the stack frame through one code path.
trait Component: Copy + PartialEq {
    fn union(self, other: Self) -> Self;
    fn is_subset_of(self, other: Self) -> bool;
    fn widen_with(self, newer: Self, thresholds: &WidenThresholds) -> Self;
}

impl Component for RegValue {
    fn union(self, other: Self) -> Self {
        RegValue::union(self, other)
    }
    fn is_subset_of(self, other: Self) -> bool {
        RegValue::is_subset_of(self, other)
    }
    fn widen_with(self, newer: Self, thresholds: &WidenThresholds) -> Self {
        RegValue::widen_with(self, newer, thresholds)
    }
}

impl Component for StackSlot {
    fn union(self, other: Self) -> Self {
        StackSlot::union(self, other)
    }
    fn is_subset_of(self, other: Self) -> bool {
        StackSlot::is_subset_of(self, other)
    }
    fn widen_with(self, newer: Self, thresholds: &WidenThresholds) -> Self {
        StackSlot::widen_with(self, newer, thresholds)
    }
}

/// Sharing-aware pointwise join of one `Rc`-backed component array:
/// identical-by-pointer inputs short-circuit, and a join that changes
/// nothing returns the left input's `Rc` instead of allocating.
fn union_component<T: Component, const N: usize>(a: &Rc<[T; N]>, b: &Rc<[T; N]>) -> Rc<[T; N]> {
    if Rc::ptr_eq(a, b) {
        stats::bump_short_circuited();
        return Rc::clone(a);
    }
    let mut merged = **a;
    let mut changed = false;
    for (slot, &incoming) in merged.iter_mut().zip(b.iter()) {
        let next = slot.union(incoming);
        if next != *slot {
            *slot = next;
            changed = true;
        }
    }
    if changed {
        stats::bump_allocated();
        Rc::new(merged)
    } else {
        Rc::clone(a)
    }
}

/// In-place flow of `inc` into `dst` with optional per-index delayed
/// widening — the component half of [`AbsState::flow_join`]. Returns
/// whether `dst` grew; materializes `dst` only on the first real change.
fn flow_component<T: Component, const N: usize>(
    dst: &mut Rc<[T; N]>,
    inc: &Rc<[T; N]>,
    mut widen: Option<(&mut [u32; N], u32, &WidenThresholds)>,
) -> bool {
    if Rc::ptr_eq(dst, inc) {
        stats::bump_short_circuited();
        return false;
    }
    let mut changed = false;
    for i in 0..N {
        let cur = dst[i];
        let incoming = inc[i];
        if incoming == cur || incoming.is_subset_of(cur) {
            continue;
        }
        let grown = cur.union(incoming);
        let next = match &mut widen {
            Some((counters, delay, thresholds)) => {
                let joins = &mut counters[i];
                let next = if *joins >= *delay {
                    stats::bump_widenings();
                    cur.widen_with(grown, thresholds)
                } else {
                    grown
                };
                *joins = joins.saturating_add(1);
                next
            }
            None => grown,
        };
        // The join re-normalizes, which may canonicalize without
        // enlarging; only a real change re-fires the successor.
        if next != cur {
            if Rc::strong_count(dst) > 1 {
                stats::bump_allocated();
            }
            Rc::make_mut(dst)[i] = next;
            changed = true;
        }
    }
    changed
}

/// Maps a stack-relative byte offset (negative) to its slot index.
fn slot_index(offset: i64) -> Option<usize> {
    if (-(STACK_SIZE as i64)..0).contains(&offset) {
        Some(((offset + STACK_SIZE as i64) / 8) as usize)
    } else {
        None
    }
}

fn align_down(off: i64) -> i64 {
    off & !7
}

impl fmt::Debug for AbsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AbsState {{")?;
        for r in Reg::ALL {
            if self.regs[r.index()] != RegValue::Uninit {
                writeln!(f, "  {r}: {}", self.regs[r.index()])?;
            }
        }
        let written = self.stack.iter().filter(|s| s.is_initialized()).count();
        writeln!(f, "  stack: {written}/{SLOTS} slots written")?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_covers_frame() {
        assert_eq!(slot_index(-512), Some(0));
        assert_eq!(slot_index(-8), Some(63));
        assert_eq!(slot_index(-1), Some(63));
        assert_eq!(slot_index(-505), Some(0));
        assert_eq!(slot_index(0), None);
        assert_eq!(slot_index(-513), None);
    }

    #[test]
    fn entry_state_matches_abi() {
        let s = AbsState::entry();
        assert!(matches!(s.reg(Reg::R1), RegValue::CtxPtr { .. }));
        assert!(s.reg(Reg::R2).as_scalar().is_some());
        assert!(matches!(s.reg(Reg::R10), RegValue::StackPtr { .. }));
        for r in [Reg::R0, Reg::R3, Reg::R6, Reg::R9] {
            assert_eq!(s.reg(r), RegValue::Uninit);
        }
        assert_eq!(s.stack_slot(-8), Some(StackSlot::Uninit));
    }

    #[test]
    fn clones_share_until_written() {
        let base = AbsState::entry();
        let mut copy = base.clone();
        assert!(base.shares_regs_with(&copy) && base.shares_stack_with(&copy));
        // Writing a register materializes only the register file…
        copy.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(9)));
        assert!(!base.shares_regs_with(&copy));
        assert!(base.shares_stack_with(&copy), "stack still shared");
        // …and the original is unaffected.
        assert_eq!(base.reg(Reg::R3), RegValue::Uninit);
        // A stack write materializes the frame.
        copy.set_stack_slot(-8, StackSlot::Misc);
        assert!(!base.shares_stack_with(&copy));
        assert_eq!(base.stack_slot(-8), Some(StackSlot::Uninit));
        // No-op writes keep sharing.
        let mut noop = base.clone();
        noop.set_reg(Reg::R0, RegValue::Uninit);
        noop.set_stack_slot(-16, StackSlot::Uninit);
        assert!(base.shares_regs_with(&noop) && base.shares_stack_with(&noop));
    }

    #[test]
    fn stack_write_read_round_trip() {
        let mut s = AbsState::entry();
        let v = RegValue::Scalar(Scalar::constant(77));
        assert!(s.set_stack_slot(-8, StackSlot::Spill(v)));
        assert_eq!(s.stack_slot(-8), Some(StackSlot::Spill(v)));
        // Out-of-frame writes are refused.
        assert!(!s.set_stack_slot(-520, StackSlot::Misc));
        assert!(!s.set_stack_slot(8, StackSlot::Misc));
    }

    #[test]
    fn smear_marks_touched_slots() {
        let mut s = AbsState::entry();
        s.smear_stack(-20, -10); // touches slots for offsets [-24, -10)
        assert_eq!(s.stack_slot(-17), Some(StackSlot::Misc));
        assert_eq!(s.stack_slot(-12), Some(StackSlot::Misc));
        assert_eq!(s.stack_slot(-30), Some(StackSlot::Uninit));
        assert!(s.stack_range_initialized(-20, -10));
        assert!(!s.stack_range_initialized(-32, -10));
    }

    #[test]
    fn join_of_slots() {
        let spill = StackSlot::Spill(RegValue::Scalar(Scalar::constant(1)));
        assert_eq!(spill.union(StackSlot::Uninit), StackSlot::Uninit);
        assert_eq!(spill.union(StackSlot::Misc), StackSlot::Misc);
        match spill.union(StackSlot::Spill(RegValue::Scalar(Scalar::constant(3)))) {
            StackSlot::Spill(RegValue::Scalar(s)) => {
                assert!(s.contains(1) && s.contains(3));
            }
            other => panic!("unexpected join {other:?}"),
        }
        // Spills of incompatible kinds degrade to Misc, not Uninit: the
        // bytes are initialized on both paths.
        let ptr = StackSlot::Spill(RegValue::StackPtr {
            offset: Scalar::constant(0),
        });
        assert_eq!(spill.union(ptr), StackSlot::Misc);
    }

    #[test]
    fn state_join_and_order() {
        let mut a = AbsState::entry();
        let mut b = AbsState::entry();
        a.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        b.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(2)));
        let j = a.union(&b);
        assert!(a.is_subset_of(&j));
        assert!(b.is_subset_of(&j));
        let r3 = j.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(1) && r3.contains(2));
        // The untouched stack is shared through the join, not copied.
        assert!(j.shares_stack_with(&a));
        // A state with an initialized slot is included in one without.
        let mut with_slot = AbsState::entry();
        with_slot.set_stack_slot(-8, StackSlot::Misc);
        assert!(with_slot.is_subset_of(&AbsState::entry()));
        assert!(!AbsState::entry().is_subset_of(&with_slot));
    }

    #[test]
    fn flow_join_is_per_component_and_reports_growth() {
        let mut head = AbsState::entry();
        head.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(0)));
        let mut incoming = head.clone();
        // Identical states: no growth, no materialization.
        assert!(!head.clone().flow_join(&incoming, None));
        incoming.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        assert!(head.flow_join(&incoming, None));
        let r3 = head.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(0) && r3.contains(1));
    }

    #[test]
    fn per_register_delay_widens_only_exhausted_components() {
        let th = WidenThresholds::EMPTY;
        let mut counters = JoinCounters::new();
        let mut head = AbsState::entry();
        head.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(0)));
        head.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(0)));
        // r4 churns for 3 rounds while r3 is stable; with delay 2, r4
        // widens on its 3rd changing join but r3's budget stays unburned.
        for k in 1..=3u64 {
            let mut inc = head.clone();
            inc.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(k)));
            head.flow_join(
                &inc,
                Some(WidenCtx {
                    counters: &mut counters,
                    delay: 2,
                    thresholds: &th,
                }),
            );
        }
        assert_eq!(counters.reg_joins(Reg::R4), 3);
        assert_eq!(counters.reg_joins(Reg::R3), 0, "stable reg burns nothing");
        let r4 = head.reg(Reg::R4).as_scalar().unwrap();
        assert!(r4.bounds().umax() >= 3, "r4 was widened or joined past 3");
        // Now r3 grows once: it still gets a precise join (its own
        // counter is below the delay) even though r4 exhausted its.
        let mut inc = head.clone();
        inc.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        head.flow_join(
            &inc,
            Some(WidenCtx {
                counters: &mut counters,
                delay: 2,
                thresholds: &th,
            }),
        );
        let r3 = head.reg(Reg::R3).as_scalar().unwrap();
        assert_eq!(
            (r3.bounds().umin(), r3.bounds().umax()),
            (0, 1),
            "precise join, not a widening jump"
        );
    }
}
