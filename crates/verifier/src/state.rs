//! The per-program-point abstract machine state: registers and stack,
//! with **copy-on-write structural sharing**, **chunked stack frames**,
//! and **incrementally maintained structural fingerprints**.
//!
//! The kernel's verifier goes to great lengths to share and prune
//! `bpf_verifier_state` rather than copy it; this module does the same
//! for the exploration engines, in three layers:
//!
//! * **Sharing.** An [`AbsState`] is two [`Rc`]-backed components — the
//!   11-register file and the stack frame — so cloning a state is two
//!   reference-count bumps. The `Rc` identity doubles as change
//!   tracking: a component that was never written keeps its pointer,
//!   letting [`AbsState::is_subset_of`], [`AbsState::union`], and
//!   [`AbsState::flow_join`] short-circuit whole components on
//!   `Rc::ptr_eq` before falling into pointwise lattice operations.
//! * **Chunking.** The 64-slot stack frame is not one array but
//!   [`STACK_CHUNKS`] independently-`Rc`'d chunks of [`CHUNK_SLOTS`]
//!   slots behind a small shared spine, so a single spill materializes
//!   one ~0.5 KiB chunk (plus the pointer spine) instead of the whole
//!   4 KiB frame, and joins/inclusions short-circuit chunk by chunk.
//!   The copied volume is tracked as the `bytes_materialized` counter.
//! * **Fingerprints.** Every component carries a 64-bit structural
//!   fingerprint — SplitMix64-mixed, position-salted summaries of its
//!   values, XOR-combined so register and slot writes update it in
//!   O(1) — plus a generation counter bumped on each copy-on-write
//!   materialization. Equal states always have equal fingerprints
//!   ([`AbsState::fingerprint`]), so an equality probe can reject in
//!   O(1) on fingerprint mismatch before falling back to the pointwise
//!   comparison; [`crate::VisitedTable`] indexes its pruning chains by
//!   exactly this fingerprint.
//!
//! Those properties are what make the path-sensitive exploration
//! strategy ([`crate::explore::PathSensitive`]) viable: forking a state
//! at every branch is O(1), and its kernel-style pruning probes
//! (`is_state_visited` via [`crate::VisitedTable`]) lean on the
//! fingerprint index and the [`AbsState::is_subset_of`] identity
//! short-circuits. The soundness of pruning rests on `is_subset_of`
//! implying concrete-state containment — locked in by the property
//! suite in `tests/properties.rs`, which also pins the fingerprint
//! invariant (equal contents ⟹ equal fingerprint) and the
//! chunked-frame equivalence with whole-frame semantics.
//!
//! The loop-head merge ([`AbsState::flow_join`]) also owns **per-register
//! widening stabilization** ([`JoinCounters`]): each register and stack
//! slot burns its *own* widening delay, so an accumulator that keeps
//! changing no longer spends the precise joins a bounded counter needed.
//!
//! Sharing traffic is counted in thread-local [`stats`] counters that the
//! exploration engines snapshot into `AnalysisStats`.

use core::fmt;
use std::rc::Rc;

use ebpf::{Reg, STACK_SIZE};
use interval_domain::WidenThresholds;

use crate::scalar::Scalar;
use crate::value::RegValue;

/// Number of 8-byte stack slots tracked (512 / 8 = 64).
pub(crate) const SLOTS: usize = (STACK_SIZE / 8) as usize;

/// Number of architectural registers tracked (r0–r10).
pub(crate) const REGS: usize = 11;

/// Slots per copy-on-write stack chunk: the sharing granularity of the
/// frame. A spill materializes one chunk of this many slots, not the
/// whole frame.
pub const CHUNK_SLOTS: usize = 8;

/// Number of independently-`Rc`'d chunks the stack frame is split into.
pub const STACK_CHUNKS: usize = SLOTS / CHUNK_SLOTS;

/// Thread-local sharing counters behind `AnalysisStats`. Thread-local
/// (not per-call plumbing) so the state layer's internals stay free of
/// `&mut stats` threading; the exploration engines reset them at the
/// start of an analysis and snapshot them at the end.
pub(crate) mod stats {
    use std::cell::Cell;

    /// Snapshot of the state layer's sharing counters.
    #[derive(Clone, Copy, Debug, Default)]
    pub(crate) struct Traffic {
        /// Deep copies of a component (register file or stack chunk).
        pub(crate) allocated: u64,
        /// O(1) `AbsState` clones (refcount bumps only).
        pub(crate) shared: u64,
        /// Whole components (or chunks) resolved by pointer identity.
        pub(crate) short_circuited: u64,
        /// Widening operator applications to individual components.
        pub(crate) widenings: u64,
        /// Bytes copied by all materializations, including the chunk
        /// spine — the working-set proxy `BENCH_PR5.json` tracks.
        pub(crate) bytes: u64,
    }

    thread_local! {
        static ALLOCATED: Cell<u64> = const { Cell::new(0) };
        static SHARED: Cell<u64> = const { Cell::new(0) };
        static SHORT_CIRCUITED: Cell<u64> = const { Cell::new(0) };
        static WIDENINGS: Cell<u64> = const { Cell::new(0) };
        static BYTES: Cell<u64> = const { Cell::new(0) };
    }

    fn bump(c: &'static std::thread::LocalKey<Cell<u64>>) {
        c.with(|v| v.set(v.get() + 1));
    }

    /// A deep copy of `bytes` bytes (register file or stack chunk) was
    /// performed.
    pub(crate) fn bump_allocated(bytes: usize) {
        bump(&ALLOCATED);
        BYTES.with(|v| v.set(v.get() + bytes as u64));
    }

    /// Bytes copied without a full component materialization (the chunk
    /// spine of the stack frame).
    pub(crate) fn bump_bytes(bytes: usize) {
        BYTES.with(|v| v.set(v.get() + bytes as u64));
    }

    /// An `AbsState` clone shared both components (refcount bumps only).
    pub(crate) fn bump_shared() {
        bump(&SHARED);
    }

    /// A join/inclusion resolved a whole component or chunk by pointer
    /// identity.
    pub(crate) fn bump_short_circuited() {
        bump(&SHORT_CIRCUITED);
    }

    /// A widening operator was applied to one register or stack slot.
    pub(crate) fn bump_widenings() {
        bump(&WIDENINGS);
    }

    /// Zeroes all counters (start of an analysis).
    pub(crate) fn reset() {
        for c in [&ALLOCATED, &SHARED, &SHORT_CIRCUITED, &WIDENINGS, &BYTES] {
            c.with(|v| v.set(0));
        }
    }

    /// The counters accumulated since the last [`reset`].
    pub(crate) fn snapshot() -> Traffic {
        Traffic {
            allocated: ALLOCATED.with(Cell::get),
            shared: SHARED.with(Cell::get),
            short_circuited: SHORT_CIRCUITED.with(Cell::get),
            widenings: WIDENINGS.with(Cell::get),
            bytes: BYTES.with(Cell::get),
        }
    }
}

/// The abstract contents of one 8-byte stack slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackSlot {
    /// Never written on this path.
    Uninit,
    /// Written with bytes whose value is not tracked (partial or variable
    /// writes, or non-slot-aligned stores). Reads yield unknown scalars.
    Misc,
    /// An aligned 8-byte spill of a tracked value.
    Spill(RegValue),
}

impl StackSlot {
    /// The shared shape of [`StackSlot::union`] and [`StackSlot::widen`]:
    /// agreeing spills merge their values with `f`, and any disagreement
    /// invalidates the slot ([`StackSlot::Misc`] for incompatible
    /// initialized contents, [`StackSlot::Uninit`] when one path never
    /// wrote it).
    fn merge(self, other: StackSlot, f: impl Fn(RegValue, RegValue) -> RegValue) -> StackSlot {
        match (self, other) {
            (StackSlot::Uninit, _) | (_, StackSlot::Uninit) => StackSlot::Uninit,
            (StackSlot::Spill(a), StackSlot::Spill(b)) => match f(a, b) {
                RegValue::Uninit => StackSlot::Misc,
                v => StackSlot::Spill(v),
            },
            _ => StackSlot::Misc,
        }
    }

    /// Join of slot states at merge points.
    #[must_use]
    pub fn union(self, other: StackSlot) -> StackSlot {
        self.merge(other, RegValue::union)
    }

    /// Widening of slot states at a loop head: spills widen their tracked
    /// values; disagreement invalidates the slot exactly as in the join.
    #[must_use]
    pub fn widen(self, newer: StackSlot) -> StackSlot {
        self.widen_with(newer, &WidenThresholds::EMPTY)
    }

    /// [`StackSlot::widen`] with harvested interval thresholds.
    #[must_use]
    pub fn widen_with(self, newer: StackSlot, thresholds: &WidenThresholds) -> StackSlot {
        self.merge(newer, |a, b| a.widen_with(b, thresholds))
    }

    /// Whether reading this slot is allowed.
    #[must_use]
    pub fn is_initialized(self) -> bool {
        !matches!(self, StackSlot::Uninit)
    }

    /// Slot inclusion for state-inclusion checks: everything is included
    /// in [`StackSlot::Uninit`] (the top of the safety order — it only
    /// forbids reads), initialized slots are included in
    /// [`StackSlot::Misc`], and spills compare their tracked values.
    #[must_use]
    pub fn is_subset_of(self, other: StackSlot) -> bool {
        match (self, other) {
            (_, StackSlot::Uninit) => true,
            (StackSlot::Spill(x), StackSlot::Spill(y)) => x.is_subset_of(y),
            (StackSlot::Misc | StackSlot::Spill(_), StackSlot::Misc) => true,
            // Misc is not included in a tracked spill.
            (StackSlot::Uninit, _) | (StackSlot::Misc, StackSlot::Spill(_)) => false,
        }
    }
}

// ---------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------

/// The SplitMix64 output mixer (Steele, Lea & Flood, OOPSLA 2014): three
/// xor-shift-multiply rounds, the same finalizer `domain::rng` uses.
/// All structural fingerprints are built from it.
pub(crate) const fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The SplitMix64 increment (golden-ratio constant), used to derive
/// position salts.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// The position salt folded into a value hash before mixing: makes the
/// XOR-combined component fingerprint sensitive to *where* a value sits,
/// with `domain` separating registers, slots, and the chunk spine.
const fn pos_salt(domain: u64, index: usize) -> u64 {
    mix(domain ^ (index as u64 + 1).wrapping_mul(PHI))
}

/// Hash of a scalar's full representation (tnum and both bound pairs).
/// Two equal scalars always hash equally (the hash reads exactly the
/// fields `PartialEq` compares). A multiply-fold — each field scaled by
/// its own odd constant, one final mix — keeps the per-write cost of
/// incremental fingerprint maintenance to a handful of multiplies;
/// collisions only cost a confirming pointwise probe, never soundness.
fn hash_scalar(s: Scalar) -> u64 {
    let h = s.tnum().value().wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ s.tnum().mask().wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ s.bounds().umin().wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ s.bounds().umax().wrapping_mul(0x2545_f491_4f6c_dd1d)
        ^ (s.bounds().smin() as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)
        ^ (s.bounds().smax() as u64).wrapping_mul(0xa076_1d64_78bd_642f);
    mix(h)
}

/// The pointwise lattice interface shared by the two state component
/// types, letting the generic [`Cells`] store, the joins, and the flows
/// merge the register file and the stack chunks through one code path.
trait Component: Copy + PartialEq {
    /// Fingerprint domain separating this component type's hashes.
    const DOMAIN: u64;
    fn union(self, other: Self) -> Self;
    fn is_subset_of(self, other: Self) -> bool;
    fn widen_with(self, newer: Self, thresholds: &WidenThresholds) -> Self;
    /// Equality-respecting content hash: `a == b ⟹ hash(a) == hash(b)`.
    fn content_hash(self) -> u64;
}

impl Component for RegValue {
    const DOMAIN: u64 = 0x5249_4c45_5f52_4547; // "RILE_REG"

    fn union(self, other: Self) -> Self {
        RegValue::union(self, other)
    }
    fn is_subset_of(self, other: Self) -> bool {
        RegValue::is_subset_of(self, other)
    }
    fn widen_with(self, newer: Self, thresholds: &WidenThresholds) -> Self {
        RegValue::widen_with(self, newer, thresholds)
    }
    fn content_hash(self) -> u64 {
        match self {
            RegValue::Uninit => 0x1,
            RegValue::Scalar(s) => mix(hash_scalar(s) ^ 0x2),
            RegValue::StackPtr { offset } => mix(hash_scalar(offset) ^ 0x3),
            RegValue::CtxPtr { offset } => mix(hash_scalar(offset) ^ 0x4),
            RegValue::MapHandle { map } => mix(u64::from(map) ^ 0x5),
            RegValue::MapValuePtr {
                map,
                or_null,
                offset,
            } => mix(hash_scalar(offset) ^ mix(u64::from(map) << 1 | u64::from(or_null)) ^ 0x6),
        }
    }
}

impl Component for StackSlot {
    const DOMAIN: u64 = 0x4652_414d_455f_534c; // "FRAME_SL"

    fn union(self, other: Self) -> Self {
        StackSlot::union(self, other)
    }
    fn is_subset_of(self, other: Self) -> bool {
        StackSlot::is_subset_of(self, other)
    }
    fn widen_with(self, newer: Self, thresholds: &WidenThresholds) -> Self {
        StackSlot::widen_with(self, newer, thresholds)
    }
    fn content_hash(self) -> u64 {
        match self {
            StackSlot::Uninit => 0x10,
            StackSlot::Misc => 0x20,
            StackSlot::Spill(v) => mix(v.content_hash() ^ 0x30),
        }
    }
}

/// One fingerprinted, generation-counted array of components — the
/// representation of both the register file and each stack chunk.
///
/// `fp` is the XOR over all positions of the position-salted value hash;
/// the per-position hashes are cached in `hashes`, so a write re-hashes
/// only the *new* value and folds the cached old hash out of `fp` in
/// O(1). `generation` counts the copy-on-write materializations in this
/// component's history (pure diagnostics — it never feeds a semantic
/// decision).
#[derive(Clone, Debug)]
struct Cells<T, const N: usize> {
    fp: u64,
    generation: u64,
    hashes: [u64; N],
    vals: [T; N],
}

impl<T: Component, const N: usize> Cells<T, N> {
    fn new(vals: [T; N]) -> Cells<T, N> {
        let mut hashes = [0u64; N];
        let mut fp = 0;
        for (i, v) in vals.iter().enumerate() {
            hashes[i] = mix(v.content_hash() ^ pos_salt(T::DOMAIN, i));
            fp ^= hashes[i];
        }
        Cells {
            fp,
            generation: 0,
            hashes,
            vals,
        }
    }

    /// Writes position `i`, updating the fingerprint in O(1).
    fn set(&mut self, i: usize, v: T) {
        let new = mix(v.content_hash() ^ pos_salt(T::DOMAIN, i));
        self.fp ^= self.hashes[i] ^ new;
        self.hashes[i] = new;
        self.vals[i] = v;
    }

    #[cfg(test)]
    fn recomputed_fp(&self) -> u64 {
        Cells::new(self.vals).fp
    }
}

/// The register file: eleven fingerprinted registers.
type RegFile = Cells<RegValue, REGS>;

/// One stack chunk: [`CHUNK_SLOTS`] fingerprinted slots. The chunk
/// fingerprint is over chunk-*local* positions, so chunks with equal
/// contents are interchangeable (and the all-`Uninit` chunk is shared
/// across all eight positions of a fresh frame); the frame spine mixes
/// the chunk's position in when combining.
type Chunk = Cells<StackSlot, CHUNK_SLOTS>;

/// The `Send` sparse stack snapshot produced by [`AbsState::to_parts`]:
/// one boxed dense chunk per frame position, or `None` where the chunk
/// is entirely [`StackSlot::Uninit`] (untouched or liveness-cleaned).
pub(crate) type SparseStack = [Option<Box<[StackSlot; CHUNK_SLOTS]>>; STACK_CHUNKS];

/// The stack frame spine: [`STACK_CHUNKS`] `Rc`'d chunks plus the
/// XOR-combined, position-mixed frame fingerprint.
#[derive(Clone, Debug)]
struct Frame {
    fp: u64,
    generation: u64,
    chunks: [Rc<Chunk>; STACK_CHUNKS],
}

/// The fingerprint domain of the chunk spine's position mixing.
const FRAME_DOMAIN: u64 = 0x4652_414d_455f_4650; // "FRAME_FP"

/// One chunk's position-mixed contribution to the frame fingerprint.
const fn chunk_contrib(c: usize, chunk_fp: u64) -> u64 {
    mix(chunk_fp ^ pos_salt(FRAME_DOMAIN, c))
}

impl Frame {
    fn compute_fp(chunks: &[Rc<Chunk>; STACK_CHUNKS]) -> u64 {
        let mut fp = 0;
        for (c, chunk) in chunks.iter().enumerate() {
            fp ^= chunk_contrib(c, chunk.fp);
        }
        fp
    }

    fn from_chunks(chunks: [Rc<Chunk>; STACK_CHUNKS], generation: u64) -> Frame {
        Frame {
            fp: Frame::compute_fp(&chunks),
            generation,
            chunks,
        }
    }

    /// The slot at flat index `i`.
    fn slot(&self, i: usize) -> StackSlot {
        self.chunks[i / CHUNK_SLOTS].vals[i % CHUNK_SLOTS]
    }

    /// Writes the slot at flat index `i`, materializing only its chunk
    /// and keeping the frame fingerprint incremental.
    fn set_slot(&mut self, i: usize, v: StackSlot) {
        let (c, j) = (i / CHUNK_SLOTS, i % CHUNK_SLOTS);
        if self.chunks[c].vals[j] == v {
            return;
        }
        let old = chunk_contrib(c, self.chunks[c].fp);
        cells_mut(&mut self.chunks[c]).set(j, v);
        self.fp ^= old ^ chunk_contrib(c, self.chunks[c].fp);
    }
}

thread_local! {
    /// The all-uninitialized frame every analysis starts from: eight
    /// positions sharing *one* empty chunk allocation. Cached so
    /// `AbsState::entry` is two refcount bumps, not nine allocations.
    static EMPTY_FRAME: Rc<Frame> = {
        let empty_chunk = Rc::new(Chunk::new([StackSlot::Uninit; CHUNK_SLOTS]));
        let chunks = std::array::from_fn(|_| Rc::clone(&empty_chunk));
        Rc::new(Frame::from_chunks(chunks, 0))
    };
}

/// Mutable access to a fingerprinted component (register file or stack
/// chunk), materializing — and counting, in both `states_allocated` and
/// the component's generation — a private copy if it is currently
/// shared. The single copy-on-write fault path: every component
/// materialization in this module goes through here so the accounting
/// `fixpoint_guard` gates on cannot drift between call sites.
fn cells_mut<T: Component, const N: usize>(rc: &mut Rc<Cells<T, N>>) -> &mut Cells<T, N> {
    let was_shared = Rc::strong_count(rc) > 1;
    if was_shared {
        stats::bump_allocated(size_of::<Cells<T, N>>());
    }
    let c = Rc::make_mut(rc);
    if was_shared {
        c.generation += 1;
    }
    c
}

/// Per-component changing-join counters at one loop head, driving
/// **per-register delayed widening**.
///
/// The engine of PR 2 kept one counter per loop head: any changing join
/// burned the shared `widen_delay`, so a still-growing accumulator (or a
/// second back-edge) could exhaust the delay a bounded counter needed to
/// reach its exit-test fixpoint, widening the counter to a threshold and
/// losing the bounds proof. Here every register and every stack slot
/// counts its *own* changing joins and is widened only once it has
/// individually absorbed `widen_delay` of them — stable components are
/// never penalized for their neighbours' churn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinCounters {
    regs: [u32; REGS],
    slots: [u32; SLOTS],
}

impl JoinCounters {
    /// Fresh counters: no changing joins seen yet.
    #[must_use]
    pub fn new() -> JoinCounters {
        JoinCounters {
            regs: [0; REGS],
            slots: [0; SLOTS],
        }
    }

    /// The number of changing joins register `reg` has absorbed.
    #[must_use]
    pub fn reg_joins(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }
}

impl Default for JoinCounters {
    fn default() -> JoinCounters {
        JoinCounters::new()
    }
}

/// The widening context of a loop-head merge: the head's per-component
/// counters, the configured delay, and the harvested interval thresholds.
pub struct WidenCtx<'a> {
    /// Per-register / per-slot changing-join counters of this loop head.
    pub counters: &'a mut JoinCounters,
    /// How many changing joins each component absorbs exactly before its
    /// own widening kicks in.
    pub delay: u32,
    /// Program-derived extra thresholds for the interval ladders.
    pub thresholds: &'a WidenThresholds,
}

/// Abstract machine state at one program point: the eleven registers plus
/// the 64 stack slots (as [`STACK_CHUNKS`] copy-on-write chunks), both
/// behind [`Rc`]s, with a structural [`fingerprint`](AbsState::fingerprint)
/// maintained on every write.
///
/// # Examples
///
/// ```
/// use verifier::{AbsState, RegValue};
/// use ebpf::Reg;
///
/// let state = AbsState::entry();
/// assert!(matches!(state.reg(Reg::R1), RegValue::CtxPtr { .. }));
/// assert!(matches!(state.reg(Reg::R10), RegValue::StackPtr { .. }));
/// assert!(matches!(state.reg(Reg::R0), RegValue::Uninit));
///
/// // Clones share storage until written.
/// let mut copy = state.clone();
/// copy.set_reg(Reg::R0, RegValue::unknown_scalar());
/// assert!(matches!(state.reg(Reg::R0), RegValue::Uninit));
/// // The fingerprint tracks the divergence in O(1).
/// assert_ne!(state.fingerprint(), copy.fingerprint());
/// ```
pub struct AbsState {
    regs: Rc<RegFile>,
    stack: Rc<Frame>,
}

impl Clone for AbsState {
    /// O(1): bumps the two component refcounts. The deep copy happens
    /// lazily, only for the component (or stack chunk) a later write
    /// actually touches.
    fn clone(&self) -> AbsState {
        stats::bump_shared();
        AbsState {
            regs: Rc::clone(&self.regs),
            stack: Rc::clone(&self.stack),
        }
    }
}

impl PartialEq for AbsState {
    fn eq(&self, other: &AbsState) -> bool {
        // Fingerprint mismatch proves inequality in O(1); a match still
        // needs the pointwise confirmation (hashes can collide).
        if self.fingerprint() != other.fingerprint() {
            return false;
        }
        let regs_eq = Rc::ptr_eq(&self.regs, &other.regs) || self.regs.vals == other.regs.vals;
        regs_eq
            && (Rc::ptr_eq(&self.stack, &other.stack)
                || self
                    .stack
                    .chunks
                    .iter()
                    .zip(other.stack.chunks.iter())
                    .all(|(a, b)| Rc::ptr_eq(a, b) || a.vals == b.vals))
    }
}

impl Eq for AbsState {}

impl AbsState {
    /// The state on program entry: `r1` points at the context, `r2` holds
    /// the (unknown) context length, `r10` is the frame pointer, and
    /// everything else — registers and stack — is uninitialized.
    #[must_use]
    pub fn entry() -> AbsState {
        let mut regs = [RegValue::Uninit; REGS];
        regs[Reg::R1.index()] = RegValue::CtxPtr {
            offset: Scalar::constant(0),
        };
        regs[Reg::R2.index()] = RegValue::unknown_scalar();
        regs[Reg::R10.index()] = RegValue::StackPtr {
            offset: Scalar::constant(0),
        };
        stats::bump_allocated(size_of::<RegFile>());
        AbsState {
            regs: Rc::new(Cells::new(regs)),
            stack: EMPTY_FRAME.with(Rc::clone),
        }
    }

    /// The 64-bit structural fingerprint of this state: a pure function
    /// of the register and slot contents, maintained incrementally on
    /// every write. **Equal states always have equal fingerprints**, so
    /// a fingerprint mismatch rejects an equality probe in O(1); the
    /// converse does not hold (hashes can collide), so a match must be
    /// confirmed pointwise.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.regs.fp ^ self.stack.fp
    }

    /// The copy-on-write generation counters `(register file, stack
    /// spine)`: how many materializations each component's history has
    /// absorbed. Diagnostics for tests and tooling — the values never
    /// feed a semantic decision.
    #[must_use]
    pub fn generations(&self) -> (u64, u64) {
        (self.regs.generation, self.stack.generation)
    }

    /// Mutable access to the register file, materializing a private copy
    /// if it is currently shared.
    fn regs_mut(&mut self) -> &mut RegFile {
        cells_mut(&mut self.regs)
    }

    /// Mutable access to the stack spine, materializing a private copy
    /// (pointer array only — the chunks stay shared) if needed.
    fn frame_mut(&mut self) -> &mut Frame {
        frame_spine_mut(&mut self.stack)
    }

    /// The abstract value of a register.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> RegValue {
        self.regs.vals[reg.index()]
    }

    /// Replaces the abstract value of a register.
    pub fn set_reg(&mut self, reg: Reg, value: RegValue) {
        // No-op writes (common for `mov` round-trips and re-deriving the
        // same refinement) keep the file shared.
        if self.regs.vals[reg.index()] != value {
            self.regs_mut().set(reg.index(), value);
        }
    }

    /// The abstract content of the 8-byte slot covering stack offset
    /// `offset` (negative, relative to the top of the stack).
    ///
    /// Returns `None` when the offset is outside the frame.
    #[must_use]
    pub fn stack_slot(&self, offset: i64) -> Option<StackSlot> {
        Some(self.stack.slot(slot_index(offset)?))
    }

    /// Overwrites the slot covering `offset`, materializing only the
    /// ~0.5 KiB chunk holding it (plus the pointer spine), never the
    /// whole frame.
    ///
    /// Returns `false` (and does nothing) when the offset is outside the
    /// frame.
    pub fn set_stack_slot(&mut self, offset: i64, slot: StackSlot) -> bool {
        match slot_index(offset) {
            Some(i) => {
                if self.stack.slot(i) != slot {
                    self.frame_mut().set_slot(i, slot);
                }
                true
            }
            None => false,
        }
    }

    /// Marks every slot intersecting `[start, end)` (stack-relative byte
    /// offsets) as [`StackSlot::Misc`]: the effect of a write whose exact
    /// location or value is not tracked.
    pub fn smear_stack(&mut self, start: i64, end: i64) {
        let slots = || (align_down(start)..end).step_by(8).filter_map(slot_index);
        // Decide before materializing: an all-Misc range keeps sharing.
        if slots().all(|i| self.stack.slot(i) == StackSlot::Misc) {
            return;
        }
        let frame = self.frame_mut();
        for i in slots() {
            frame.set_slot(i, StackSlot::Misc);
        }
    }

    /// Sets every register and stack slot *outside* the live masks to
    /// its uninitialized top (`RegValue::Uninit` / `StackSlot::Uninit`)
    /// — the kernel's `clean_verifier_state`. A cleaned component is
    /// covered by anything in inclusion probes and hashes as a fixed
    /// salt in the fingerprint, so states that differed only in dead
    /// components become equal and prune each other.
    ///
    /// Register bits follow `Reg::index()` (`live_regs` bit `i` keeps
    /// `r{i}`); slot bits follow the frame's slot indices. Components
    /// already at top are left untouched (no materialization), so
    /// cleaning an already-clean state is free and preserves sharing.
    ///
    /// Returns the number of components actually cleared.
    pub fn clear_dead(&mut self, live_regs: u16, live_slots: u64) -> u32 {
        let mut cleared = 0;
        for r in Reg::ALL {
            if live_regs & (1 << r.index()) == 0 && self.regs.vals[r.index()] != RegValue::Uninit {
                self.regs_mut().set(r.index(), RegValue::Uninit);
                cleared += 1;
            }
        }
        if live_slots != u64::MAX {
            for i in 0..SLOTS {
                if live_slots & (1 << i) == 0 && self.stack.slot(i) != StackSlot::Uninit {
                    self.frame_mut().set_slot(i, StackSlot::Uninit);
                    cleared += 1;
                }
            }
        }
        cleared
    }

    /// Whether every byte of `[start, end)` has been initialized.
    #[must_use]
    pub fn stack_range_initialized(&self, start: i64, end: i64) -> bool {
        if start >= end {
            return true;
        }
        (align_down(start)..end)
            .step_by(8)
            .all(|off| slot_index(off).is_some_and(|i| self.stack.slot(i).is_initialized()))
    }

    /// Pointwise join of two states at a control-flow merge. Components
    /// (and individual stack chunks) identical by pointer or value are
    /// *shared*, not reallocated.
    #[must_use]
    pub fn union(&self, other: &AbsState) -> AbsState {
        AbsState {
            regs: union_cells(&self.regs, &other.regs),
            stack: union_frame(&self.stack, &other.stack),
        }
    }

    /// Merges `incoming` into `self` in place — the join the fixpoint
    /// engine performs when an edge flows into an instruction that
    /// already has a state — and reports whether `self` actually grew.
    ///
    /// At a loop head (`widen` is `Some`), each register and stack slot
    /// first absorbs [`WidenCtx::delay`] *of its own* changing joins
    /// exactly; every later one widens that component
    /// (`cur ∇ (cur ⊔ incoming)`), extrapolating through the built-in
    /// and harvested interval thresholds while components that already
    /// stabilized are left untouched. Components (and chunks) equal by
    /// `Rc` identity short-circuit without any pointwise work.
    pub fn flow_join(&mut self, incoming: &AbsState, widen: Option<WidenCtx<'_>>) -> bool {
        // Split the widening context into per-component halves so each
        // array flows with its own counters.
        let (regs_widen, stack_widen) = match widen {
            Some(WidenCtx {
                counters,
                delay,
                thresholds,
            }) => {
                let JoinCounters { regs, slots } = counters;
                (
                    Some((&mut regs[..], delay, thresholds)),
                    Some((&mut slots[..], delay, thresholds)),
                )
            }
            None => (None, None),
        };
        let regs_changed = flow_cells(&mut self.regs, &incoming.regs, regs_widen);
        let stack_changed = flow_frame(&mut self.stack, &incoming.stack, stack_widen);
        regs_changed || stack_changed
    }

    /// Pointwise widening `self ∇ newer` (kept for completeness and the
    /// domain-law tests; the engine itself widens through
    /// [`AbsState::flow_join`], which applies ∇ per component).
    #[must_use]
    pub fn widen(&self, newer: &AbsState) -> AbsState {
        let mut out = self.clone();
        let mut counters = JoinCounters::new();
        out.flow_join(
            newer,
            Some(WidenCtx {
                counters: &mut counters,
                delay: 0,
                thresholds: &WidenThresholds::EMPTY,
            }),
        );
        out
    }

    /// Pointwise abstract-order test (state inclusion), with whole
    /// components — and individual stack chunks — short-circuited on
    /// `Rc` identity.
    #[must_use]
    pub fn is_subset_of(&self, other: &AbsState) -> bool {
        let regs_ok = Rc::ptr_eq(&self.regs, &other.regs) || {
            (0..REGS).all(|i| self.regs.vals[i].is_subset_of(other.regs.vals[i]))
        };
        if !regs_ok {
            return false;
        }
        Rc::ptr_eq(&self.stack, &other.stack)
            || self
                .stack
                .chunks
                .iter()
                .zip(other.stack.chunks.iter())
                .all(|(a, b)| {
                    Rc::ptr_eq(a, b)
                        || a.vals
                            .iter()
                            .zip(b.vals.iter())
                            .all(|(x, y)| x.is_subset_of(*y))
                })
    }

    /// Whether the two states share their register file (used by tests
    /// and stats reporting; `true` implies equal register values).
    #[must_use]
    pub fn shares_regs_with(&self, other: &AbsState) -> bool {
        Rc::ptr_eq(&self.regs, &other.regs)
    }

    /// Whether the two states share their stack frame spine.
    #[must_use]
    pub fn shares_stack_with(&self, other: &AbsState) -> bool {
        Rc::ptr_eq(&self.stack, &other.stack)
    }

    /// How many of the [`STACK_CHUNKS`] stack chunks the two states share
    /// by pointer — the observable grain of chunked copy-on-write (a
    /// single spill leaves `STACK_CHUNKS - 1` chunks shared).
    #[must_use]
    pub fn shared_stack_chunks(&self, other: &AbsState) -> usize {
        self.stack
            .chunks
            .iter()
            .zip(other.stack.chunks.iter())
            .filter(|(a, b)| Rc::ptr_eq(a, b))
            .count()
    }

    /// Flattens the state into the register file plus **sparse**
    /// per-chunk stack snapshots — plain `Copy` data behind `Box`es with
    /// no `Rc`s, so the result is `Send` and can cross the
    /// program-granular thread boundary of `verifier::batch`. Chunks
    /// that are entirely [`StackSlot::Uninit`] — untouched chunks, and
    /// chunks the liveness pass cleaned to ⊤ — snapshot as `None`
    /// instead of eight dense slots, so a mostly-dead frame crosses the
    /// thread boundary as eight `None`s.
    pub(crate) fn to_parts(&self) -> ([RegValue; REGS], SparseStack) {
        let chunks = std::array::from_fn(|c| {
            let chunk = &self.stack.chunks[c];
            if chunk.vals.iter().all(|s| *s == StackSlot::Uninit) {
                None
            } else {
                Some(Box::new(chunk.vals))
            }
        });
        (self.regs.vals, chunks)
    }

    /// Rebuilds a state from the sparse arrays of
    /// [`to_parts`](AbsState::to_parts) on the receiving thread. Every
    /// `None` chunk maps to *one* shared all-`Uninit` chunk allocation
    /// (the same the empty frame uses), so rebuilt mostly-dead frames
    /// stay as cheap as freshly-forked ones. Fingerprints are
    /// recomputed from the contents — chunk fingerprints are
    /// position-independent, so the shared empty chunk fingerprints
    /// identically to a dense all-`Uninit` one and a round-trip
    /// preserves both equality and [`AbsState::fingerprint`].
    pub(crate) fn from_parts(regs: [RegValue; REGS], chunks: SparseStack) -> AbsState {
        let empty = EMPTY_FRAME.with(|f| Rc::clone(&f.chunks[0]));
        let chunks: [Rc<Chunk>; STACK_CHUNKS] = std::array::from_fn(|c| match &chunks[c] {
            Some(vals) => Rc::new(Chunk::new(**vals)),
            None => Rc::clone(&empty),
        });
        AbsState {
            regs: Rc::new(Cells::new(regs)),
            stack: Rc::new(Frame::from_chunks(chunks, 0)),
        }
    }

    /// Pointwise inclusion of this state in a
    /// [`to_parts`](AbsState::to_parts) snapshot, without rebuilding the
    /// snapshot into a state. This is the probe of the concurrent
    /// visited table: snapshots are `Send` where `AbsState` is not, so
    /// the shared table stores parts and in-flight frontier states test
    /// against them in place. A `None` snapshot chunk is all-`Uninit` —
    /// the ⊤ of the slot safety order — and therefore covers any
    /// arrival chunk.
    pub(crate) fn is_subset_of_parts(&self, regs: &[RegValue; REGS], chunks: &SparseStack) -> bool {
        if !(0..REGS).all(|i| self.regs.vals[i].is_subset_of(regs[i])) {
            return false;
        }
        self.stack
            .chunks
            .iter()
            .zip(chunks.iter())
            .all(|(mine, snap)| match snap {
                // All-Uninit covers everything slotwise.
                None => true,
                Some(vals) => mine
                    .vals
                    .iter()
                    .zip(vals.iter())
                    .all(|(x, y)| x.is_subset_of(*y)),
            })
    }

    /// Pointwise inclusion between two [`to_parts`](AbsState::to_parts)
    /// snapshots — the dominance-eviction test of the concurrent visited
    /// table (is the *stored* snapshot covered by the arriving one?),
    /// again without rebuilding either side. `None` chunks are
    /// all-`Uninit`: they cover everything and are covered only by
    /// chunks whose slots are all `Uninit`-or-covering — i.e. by `None`
    /// (or a dense all-`Uninit` chunk).
    pub(crate) fn parts_subset_of_parts(
        a: (&[RegValue; REGS], &SparseStack),
        b: (&[RegValue; REGS], &SparseStack),
    ) -> bool {
        if !(0..REGS).all(|i| a.0[i].is_subset_of(b.0[i])) {
            return false;
        }
        a.1.iter().zip(b.1.iter()).all(|(x, y)| match (x, y) {
            (_, None) => true,
            (None, Some(vals)) => vals.iter().all(|s| StackSlot::Uninit.is_subset_of(*s)),
            (Some(xs), Some(ys)) => xs.iter().zip(ys.iter()).all(|(p, q)| p.is_subset_of(*q)),
        })
    }
}

/// The 64-bit structural fingerprint of one abstract register value — a
/// pure function of the value's contents (two equal values always
/// fingerprint equally), built from the same SplitMix64 mixing as
/// [`AbsState::fingerprint`] but *without* position salting, so the same
/// value fingerprints identically wherever (and in whichever program) it
/// appears. This is the stable per-value key the fingerprint-keyed
/// transfer memo cache ([`crate::memo::TransferMemo`]) shards on; as with
/// the state fingerprint, collisions are possible and any consumer must
/// confirm equality pointwise before trusting a match.
#[must_use]
pub fn value_fingerprint(v: RegValue) -> u64 {
    v.content_hash()
}

/// Sharing-aware pointwise join of one fingerprinted component array:
/// identical-by-pointer inputs short-circuit, and a join that changes
/// nothing returns the left input's `Rc` instead of allocating.
fn union_cells<T: Component, const N: usize>(
    a: &Rc<Cells<T, N>>,
    b: &Rc<Cells<T, N>>,
) -> Rc<Cells<T, N>> {
    if Rc::ptr_eq(a, b) {
        stats::bump_short_circuited();
        return Rc::clone(a);
    }
    let mut merged: Option<Cells<T, N>> = None;
    for i in 0..N {
        let next = a.vals[i].union(b.vals[i]);
        if next != a.vals[i] {
            merged
                .get_or_insert_with(|| {
                    stats::bump_allocated(size_of::<Cells<T, N>>());
                    (**a).clone()
                })
                .set(i, next);
        }
    }
    match merged {
        Some(m) => Rc::new(m),
        None => Rc::clone(a),
    }
}

/// Chunk-wise join of two stack frames: chunks identical by pointer are
/// shared without pointwise work, and a no-op join returns the left
/// frame's `Rc`.
fn union_frame(a: &Rc<Frame>, b: &Rc<Frame>) -> Rc<Frame> {
    if Rc::ptr_eq(a, b) {
        stats::bump_short_circuited();
        return Rc::clone(a);
    }
    let mut changed = false;
    let chunks: [Rc<Chunk>; STACK_CHUNKS] = std::array::from_fn(|c| {
        if Rc::ptr_eq(&a.chunks[c], &b.chunks[c]) {
            stats::bump_short_circuited();
            return Rc::clone(&a.chunks[c]);
        }
        let merged = union_cells(&a.chunks[c], &b.chunks[c]);
        if !Rc::ptr_eq(&merged, &a.chunks[c]) {
            changed = true;
        }
        merged
    });
    if changed {
        stats::bump_bytes(size_of::<Frame>());
        Rc::new(Frame::from_chunks(chunks, a.generation))
    } else {
        Rc::clone(a)
    }
}

/// In-place flow of `inc` into `dst` with optional per-index delayed
/// widening — the shared half of [`AbsState::flow_join`]. Returns
/// whether `dst` grew; materializes `dst` only on the first real change.
///
/// `widen` carries the counter slice for exactly this array's indices
/// (the register counters, or one chunk's slice of the slot counters).
fn flow_cells<T: Component, const N: usize>(
    dst: &mut Rc<Cells<T, N>>,
    inc: &Rc<Cells<T, N>>,
    mut widen: Option<(&mut [u32], u32, &WidenThresholds)>,
) -> bool {
    if Rc::ptr_eq(dst, inc) {
        stats::bump_short_circuited();
        return false;
    }
    let mut changed = false;
    for i in 0..N {
        let cur = dst.vals[i];
        let incoming = inc.vals[i];
        if incoming == cur || incoming.is_subset_of(cur) {
            continue;
        }
        let grown = cur.union(incoming);
        let next = match &mut widen {
            Some((counters, delay, thresholds)) => {
                let joins = &mut counters[i];
                let next = if *joins >= *delay {
                    stats::bump_widenings();
                    cur.widen_with(grown, thresholds)
                } else {
                    grown
                };
                *joins = joins.saturating_add(1);
                next
            }
            None => grown,
        };
        // The join re-normalizes, which may canonicalize without
        // enlarging; only a real change re-fires the successor.
        if next != cur {
            cells_mut(dst).set(i, next);
            changed = true;
        }
    }
    changed
}

/// Mutable access to a frame spine behind an `Rc`, materializing a
/// private copy if shared. The spine is only the chunk pointer array
/// (the chunks themselves stay shared until they change), so the copy
/// is a few dozen bytes — counted in `bytes_materialized` but not as a
/// component allocation.
fn frame_spine_mut(rc: &mut Rc<Frame>) -> &mut Frame {
    let was_shared = Rc::strong_count(rc) > 1;
    if was_shared {
        stats::bump_bytes(size_of::<Frame>());
    }
    let f = Rc::make_mut(rc);
    if was_shared {
        f.generation += 1;
    }
    f
}

/// The frame half of [`AbsState::flow_join`]: flows chunk by chunk, with
/// `Rc` identity short-circuits per chunk, slicing the slot counters to
/// each chunk's window. The spine is materialized up front once any
/// chunk pair differs by pointer — a deliberate trade against re-scanning
/// every chunk twice (the copy is the pointer array, a few dozen bytes,
/// even when the flow then turns out to change nothing).
fn flow_frame(
    dst: &mut Rc<Frame>,
    inc: &Rc<Frame>,
    widen: Option<(&mut [u32], u32, &WidenThresholds)>,
) -> bool {
    if Rc::ptr_eq(dst, inc) {
        stats::bump_short_circuited();
        return false;
    }
    // All chunks identical by pointer: nothing can flow.
    if dst
        .chunks
        .iter()
        .zip(inc.chunks.iter())
        .all(|(a, b)| Rc::ptr_eq(a, b))
    {
        stats::bump_short_circuited();
        return false;
    }
    let frame = frame_spine_mut(dst);
    let (mut counters, widen_rest) = match widen {
        Some((slots, delay, thresholds)) => (Some(slots), Some((delay, thresholds))),
        None => (None, None),
    };
    let mut changed = false;
    for c in 0..STACK_CHUNKS {
        if Rc::ptr_eq(&frame.chunks[c], &inc.chunks[c]) {
            stats::bump_short_circuited();
            continue;
        }
        let chunk_widen = match (&mut counters, widen_rest) {
            (Some(slots), Some((delay, thresholds))) => Some((
                &mut slots[c * CHUNK_SLOTS..(c + 1) * CHUNK_SLOTS],
                delay,
                thresholds,
            )),
            _ => None,
        };
        let old = chunk_contrib(c, frame.chunks[c].fp);
        if flow_cells(&mut frame.chunks[c], &inc.chunks[c], chunk_widen) {
            frame.fp ^= old ^ chunk_contrib(c, frame.chunks[c].fp);
            changed = true;
        }
    }
    changed
}

/// Maps a stack-relative byte offset (negative) to its slot index.
fn slot_index(offset: i64) -> Option<usize> {
    if (-(STACK_SIZE as i64)..0).contains(&offset) {
        Some(((offset + STACK_SIZE as i64) / 8) as usize)
    } else {
        None
    }
}

fn align_down(off: i64) -> i64 {
    off & !7
}

impl fmt::Debug for AbsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AbsState {{")?;
        for r in Reg::ALL {
            if self.regs.vals[r.index()] != RegValue::Uninit {
                writeln!(f, "  {r}: {}", self.regs.vals[r.index()])?;
            }
        }
        let written = (0..SLOTS)
            .filter(|&i| self.stack.slot(i).is_initialized())
            .count();
        writeln!(f, "  stack: {written}/{SLOTS} slots written")?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_covers_frame() {
        assert_eq!(slot_index(-512), Some(0));
        assert_eq!(slot_index(-8), Some(63));
        assert_eq!(slot_index(-1), Some(63));
        assert_eq!(slot_index(-505), Some(0));
        assert_eq!(slot_index(0), None);
        assert_eq!(slot_index(-513), None);
    }

    #[test]
    fn entry_state_matches_abi() {
        let s = AbsState::entry();
        assert!(matches!(s.reg(Reg::R1), RegValue::CtxPtr { .. }));
        assert!(s.reg(Reg::R2).as_scalar().is_some());
        assert!(matches!(s.reg(Reg::R10), RegValue::StackPtr { .. }));
        for r in [Reg::R0, Reg::R3, Reg::R6, Reg::R9] {
            assert_eq!(s.reg(r), RegValue::Uninit);
        }
        assert_eq!(s.stack_slot(-8), Some(StackSlot::Uninit));
    }

    #[test]
    fn clones_share_until_written() {
        let base = AbsState::entry();
        let mut copy = base.clone();
        assert!(base.shares_regs_with(&copy) && base.shares_stack_with(&copy));
        // Writing a register materializes only the register file…
        copy.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(9)));
        assert!(!base.shares_regs_with(&copy));
        assert!(base.shares_stack_with(&copy), "stack still shared");
        // …and the original is unaffected.
        assert_eq!(base.reg(Reg::R3), RegValue::Uninit);
        // A stack write materializes the spine and exactly one chunk.
        copy.set_stack_slot(-8, StackSlot::Misc);
        assert!(!base.shares_stack_with(&copy));
        assert_eq!(base.stack_slot(-8), Some(StackSlot::Uninit));
        assert_eq!(
            base.shared_stack_chunks(&copy),
            STACK_CHUNKS - 1,
            "one chunk materialized, the rest stay shared"
        );
        // No-op writes keep sharing.
        let mut noop = base.clone();
        noop.set_reg(Reg::R0, RegValue::Uninit);
        noop.set_stack_slot(-16, StackSlot::Uninit);
        assert!(base.shares_regs_with(&noop) && base.shares_stack_with(&noop));
    }

    #[test]
    fn stack_write_read_round_trip() {
        let mut s = AbsState::entry();
        let v = RegValue::Scalar(Scalar::constant(77));
        assert!(s.set_stack_slot(-8, StackSlot::Spill(v)));
        assert_eq!(s.stack_slot(-8), Some(StackSlot::Spill(v)));
        // Out-of-frame writes are refused.
        assert!(!s.set_stack_slot(-520, StackSlot::Misc));
        assert!(!s.set_stack_slot(8, StackSlot::Misc));
    }

    #[test]
    fn smear_marks_touched_slots() {
        let mut s = AbsState::entry();
        s.smear_stack(-20, -10); // touches slots for offsets [-24, -10)
        assert_eq!(s.stack_slot(-17), Some(StackSlot::Misc));
        assert_eq!(s.stack_slot(-12), Some(StackSlot::Misc));
        assert_eq!(s.stack_slot(-30), Some(StackSlot::Uninit));
        assert!(s.stack_range_initialized(-20, -10));
        assert!(!s.stack_range_initialized(-32, -10));
    }

    #[test]
    fn join_of_slots() {
        let spill = StackSlot::Spill(RegValue::Scalar(Scalar::constant(1)));
        assert_eq!(spill.union(StackSlot::Uninit), StackSlot::Uninit);
        assert_eq!(spill.union(StackSlot::Misc), StackSlot::Misc);
        match spill.union(StackSlot::Spill(RegValue::Scalar(Scalar::constant(3)))) {
            StackSlot::Spill(RegValue::Scalar(s)) => {
                assert!(s.contains(1) && s.contains(3));
            }
            other => panic!("unexpected join {other:?}"),
        }
        // Spills of incompatible kinds degrade to Misc, not Uninit: the
        // bytes are initialized on both paths.
        let ptr = StackSlot::Spill(RegValue::StackPtr {
            offset: Scalar::constant(0),
        });
        assert_eq!(spill.union(ptr), StackSlot::Misc);
    }

    #[test]
    fn state_join_and_order() {
        let mut a = AbsState::entry();
        let mut b = AbsState::entry();
        a.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        b.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(2)));
        let j = a.union(&b);
        assert!(a.is_subset_of(&j));
        assert!(b.is_subset_of(&j));
        let r3 = j.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(1) && r3.contains(2));
        // The untouched stack is shared through the join, not copied.
        assert!(j.shares_stack_with(&a));
        // A state with an initialized slot is included in one without.
        let mut with_slot = AbsState::entry();
        with_slot.set_stack_slot(-8, StackSlot::Misc);
        assert!(with_slot.is_subset_of(&AbsState::entry()));
        assert!(!AbsState::entry().is_subset_of(&with_slot));
    }

    #[test]
    fn flow_join_is_per_component_and_reports_growth() {
        let mut head = AbsState::entry();
        head.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(0)));
        let mut incoming = head.clone();
        // Identical states: no growth, no materialization.
        assert!(!head.clone().flow_join(&incoming, None));
        incoming.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        assert!(head.flow_join(&incoming, None));
        let r3 = head.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(0) && r3.contains(1));
    }

    #[test]
    fn fingerprint_is_incremental_and_content_pure() {
        // Same contents reached through different histories fingerprint
        // identically, and the incremental maintenance matches a from-
        // scratch recomputation.
        let mut a = AbsState::entry();
        a.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(7)));
        a.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(9)));
        a.set_stack_slot(-8, StackSlot::Misc);
        let mut b = AbsState::entry();
        b.set_stack_slot(-8, StackSlot::Misc);
        b.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(1)));
        b.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(9))); // overwrite
        b.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(7)));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.regs.fp, a.regs.recomputed_fp());
        assert_eq!(a.stack.fp, Frame::compute_fp(&a.stack.chunks));
        for c in &a.stack.chunks {
            assert_eq!(c.fp, c.recomputed_fp());
        }
        // Divergence flips the fingerprint (and equality) in O(1).
        b.set_stack_slot(-16, StackSlot::Misc);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a, b);
    }

    #[test]
    fn generations_count_materializations() {
        let base = AbsState::entry();
        let mut copy = base.clone();
        assert_eq!(copy.generations(), base.generations());
        copy.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        assert_eq!(copy.generations().0, base.generations().0 + 1);
        copy.set_stack_slot(-8, StackSlot::Misc);
        assert_eq!(copy.generations().1, base.generations().1 + 1);
        // Writes into an already-private component do not bump again.
        copy.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(2)));
        assert_eq!(copy.generations().0, base.generations().0 + 1);
    }

    #[test]
    fn per_register_delay_widens_only_exhausted_components() {
        let th = WidenThresholds::EMPTY;
        let mut counters = JoinCounters::new();
        let mut head = AbsState::entry();
        head.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(0)));
        head.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(0)));
        // r4 churns for 3 rounds while r3 is stable; with delay 2, r4
        // widens on its 3rd changing join but r3's budget stays unburned.
        for k in 1..=3u64 {
            let mut inc = head.clone();
            inc.set_reg(Reg::R4, RegValue::Scalar(Scalar::constant(k)));
            head.flow_join(
                &inc,
                Some(WidenCtx {
                    counters: &mut counters,
                    delay: 2,
                    thresholds: &th,
                }),
            );
        }
        assert_eq!(counters.reg_joins(Reg::R4), 3);
        assert_eq!(counters.reg_joins(Reg::R3), 0, "stable reg burns nothing");
        let r4 = head.reg(Reg::R4).as_scalar().unwrap();
        assert!(r4.bounds().umax() >= 3, "r4 was widened or joined past 3");
        // Now r3 grows once: it still gets a precise join (its own
        // counter is below the delay) even though r4 exhausted its.
        let mut inc = head.clone();
        inc.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        head.flow_join(
            &inc,
            Some(WidenCtx {
                counters: &mut counters,
                delay: 2,
                thresholds: &th,
            }),
        );
        let r3 = head.reg(Reg::R3).as_scalar().unwrap();
        assert_eq!(
            (r3.bounds().umin(), r3.bounds().umax()),
            (0, 1),
            "precise join, not a widening jump"
        );
    }

    #[test]
    fn slot_widening_flows_through_chunk_counters() {
        // A churning spill burns the *slot's* counter, not its chunk
        // neighbours': after `delay` changing joins the slot widens while
        // a stable slot in the same chunk keeps precise joins available.
        let th = WidenThresholds::EMPTY;
        let mut counters = JoinCounters::new();
        let mut head = AbsState::entry();
        head.set_stack_slot(-8, StackSlot::Spill(RegValue::Scalar(Scalar::constant(0))));
        for k in 1..=3u64 {
            let mut inc = head.clone();
            inc.set_stack_slot(-8, StackSlot::Spill(RegValue::Scalar(Scalar::constant(k))));
            head.flow_join(
                &inc,
                Some(WidenCtx {
                    counters: &mut counters,
                    delay: 2,
                    thresholds: &th,
                }),
            );
        }
        assert_eq!(counters.slots[63], 3, "slot -8 is flat index 63");
        assert_eq!(counters.slots[62], 0, "neighbour slot burns nothing");
        match head.stack_slot(-8).unwrap() {
            StackSlot::Spill(RegValue::Scalar(s)) => {
                assert!(s.bounds().umax() >= 3, "widened or joined past 3")
            }
            other => panic!("unexpected slot {other:?}"),
        }
    }
}
