//! The per-program-point abstract machine state: registers and stack.

use core::fmt;

use ebpf::{Reg, STACK_SIZE};

use crate::scalar::Scalar;
use crate::value::RegValue;

/// Number of 8-byte stack slots tracked (512 / 8 = 64).
const SLOTS: usize = (STACK_SIZE / 8) as usize;

/// The abstract contents of one 8-byte stack slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackSlot {
    /// Never written on this path.
    Uninit,
    /// Written with bytes whose value is not tracked (partial or variable
    /// writes, or non-slot-aligned stores). Reads yield unknown scalars.
    Misc,
    /// An aligned 8-byte spill of a tracked value.
    Spill(RegValue),
}

impl StackSlot {
    /// The shared shape of [`StackSlot::union`] and [`StackSlot::widen`]:
    /// agreeing spills merge their values with `f`, and any disagreement
    /// invalidates the slot ([`StackSlot::Misc`] for incompatible
    /// initialized contents, [`StackSlot::Uninit`] when one path never
    /// wrote it).
    fn merge(self, other: StackSlot, f: impl Fn(RegValue, RegValue) -> RegValue) -> StackSlot {
        match (self, other) {
            (StackSlot::Uninit, _) | (_, StackSlot::Uninit) => StackSlot::Uninit,
            (StackSlot::Spill(a), StackSlot::Spill(b)) => match f(a, b) {
                RegValue::Uninit => StackSlot::Misc,
                v => StackSlot::Spill(v),
            },
            _ => StackSlot::Misc,
        }
    }

    /// Join of slot states at merge points.
    #[must_use]
    pub fn union(self, other: StackSlot) -> StackSlot {
        self.merge(other, RegValue::union)
    }

    /// Widening of slot states at a loop head: spills widen their tracked
    /// values; disagreement invalidates the slot exactly as in the join.
    #[must_use]
    pub fn widen(self, newer: StackSlot) -> StackSlot {
        self.merge(newer, RegValue::widen)
    }

    /// Whether reading this slot is allowed.
    #[must_use]
    pub fn is_initialized(self) -> bool {
        !matches!(self, StackSlot::Uninit)
    }
}

/// Abstract machine state at one program point: the eleven registers plus
/// the 64 stack slots.
///
/// # Examples
///
/// ```
/// use verifier::{AbsState, RegValue};
/// use ebpf::Reg;
///
/// let state = AbsState::entry();
/// assert!(matches!(state.reg(Reg::R1), RegValue::CtxPtr { .. }));
/// assert!(matches!(state.reg(Reg::R10), RegValue::StackPtr { .. }));
/// assert!(matches!(state.reg(Reg::R0), RegValue::Uninit));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AbsState {
    regs: [RegValue; 11],
    stack: [StackSlot; SLOTS],
}

impl AbsState {
    /// The state on program entry: `r1` points at the context, `r2` holds
    /// the (unknown) context length, `r10` is the frame pointer, and
    /// everything else — registers and stack — is uninitialized.
    #[must_use]
    pub fn entry() -> AbsState {
        let mut regs = [RegValue::Uninit; 11];
        regs[Reg::R1.index()] = RegValue::CtxPtr {
            offset: Scalar::constant(0),
        };
        regs[Reg::R2.index()] = RegValue::unknown_scalar();
        regs[Reg::R10.index()] = RegValue::StackPtr {
            offset: Scalar::constant(0),
        };
        AbsState {
            regs,
            stack: [StackSlot::Uninit; SLOTS],
        }
    }

    /// The abstract value of a register.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> RegValue {
        self.regs[reg.index()]
    }

    /// Replaces the abstract value of a register.
    pub fn set_reg(&mut self, reg: Reg, value: RegValue) {
        self.regs[reg.index()] = value;
    }

    /// The abstract content of the 8-byte slot covering stack offset
    /// `offset` (negative, relative to the top of the stack).
    ///
    /// Returns `None` when the offset is outside the frame.
    #[must_use]
    pub fn stack_slot(&self, offset: i64) -> Option<StackSlot> {
        Some(self.stack[slot_index(offset)?])
    }

    /// Overwrites the slot covering `offset`.
    ///
    /// Returns `false` (and does nothing) when the offset is outside the
    /// frame.
    pub fn set_stack_slot(&mut self, offset: i64, slot: StackSlot) -> bool {
        match slot_index(offset) {
            Some(i) => {
                self.stack[i] = slot;
                true
            }
            None => false,
        }
    }

    /// Marks every slot intersecting `[start, end)` (stack-relative byte
    /// offsets) as [`StackSlot::Misc`]: the effect of a write whose exact
    /// location or value is not tracked.
    pub fn smear_stack(&mut self, start: i64, end: i64) {
        for off in (align_down(start)..end).step_by(8) {
            if let Some(i) = slot_index(off) {
                self.stack[i] = StackSlot::Misc;
            }
        }
    }

    /// Whether every byte of `[start, end)` has been initialized.
    #[must_use]
    pub fn stack_range_initialized(&self, start: i64, end: i64) -> bool {
        if start >= end {
            return true;
        }
        (align_down(start)..end)
            .step_by(8)
            .all(|off| slot_index(off).is_some_and(|i| self.stack[i].is_initialized()))
    }

    /// The shared shape of [`AbsState::union`] and [`AbsState::widen`]:
    /// registers and stack slots merge pointwise.
    fn merge(
        &self,
        other: &AbsState,
        fr: impl Fn(RegValue, RegValue) -> RegValue,
        fs: impl Fn(StackSlot, StackSlot) -> StackSlot,
    ) -> AbsState {
        let mut regs = [RegValue::Uninit; 11];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = fr(self.regs[i], other.regs[i]);
        }
        let mut stack = [StackSlot::Uninit; SLOTS];
        for (i, slot) in stack.iter_mut().enumerate() {
            *slot = fs(self.stack[i], other.stack[i]);
        }
        AbsState { regs, stack }
    }

    /// Pointwise join of two states at a control-flow merge.
    #[must_use]
    pub fn union(&self, other: &AbsState) -> AbsState {
        self.merge(other, RegValue::union, StackSlot::union)
    }

    /// Pointwise widening `self ∇ newer` at a loop head: registers and
    /// stack slots widen independently, so components that already
    /// stabilized are kept exact while growing ones extrapolate.
    ///
    /// `newer` is expected to be an upper bound of `self` (callers pass
    /// `self.union(incoming)`), mirroring [`domain::WidenDomain::widen`].
    #[must_use]
    pub fn widen(&self, newer: &AbsState) -> AbsState {
        self.merge(newer, RegValue::widen, StackSlot::widen)
    }

    /// Pointwise abstract-order test (state inclusion).
    #[must_use]
    pub fn is_subset_of(&self, other: &AbsState) -> bool {
        let regs_ok = (0..11).all(|i| self.regs[i].is_subset_of(other.regs[i]));
        let stack_ok = self
            .stack
            .iter()
            .zip(other.stack.iter())
            .all(|(a, b)| match (a, b) {
                (_, StackSlot::Uninit) => true,
                (StackSlot::Spill(x), StackSlot::Spill(y)) => x.is_subset_of(*y),
                (StackSlot::Misc | StackSlot::Spill(_), StackSlot::Misc) => true,
                // Misc is not included in a tracked spill.
                (StackSlot::Uninit, _) | (StackSlot::Misc, StackSlot::Spill(_)) => false,
            });
        regs_ok && stack_ok
    }
}

/// Maps a stack-relative byte offset (negative) to its slot index.
fn slot_index(offset: i64) -> Option<usize> {
    if (-(STACK_SIZE as i64)..0).contains(&offset) {
        Some(((offset + STACK_SIZE as i64) / 8) as usize)
    } else {
        None
    }
}

fn align_down(off: i64) -> i64 {
    off & !7
}

impl fmt::Debug for AbsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AbsState {{")?;
        for r in Reg::ALL {
            if self.regs[r.index()] != RegValue::Uninit {
                writeln!(f, "  {r}: {}", self.regs[r.index()])?;
            }
        }
        let written = self.stack.iter().filter(|s| s.is_initialized()).count();
        writeln!(f, "  stack: {written}/{SLOTS} slots written")?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_covers_frame() {
        assert_eq!(slot_index(-512), Some(0));
        assert_eq!(slot_index(-8), Some(63));
        assert_eq!(slot_index(-1), Some(63));
        assert_eq!(slot_index(-505), Some(0));
        assert_eq!(slot_index(0), None);
        assert_eq!(slot_index(-513), None);
    }

    #[test]
    fn entry_state_matches_abi() {
        let s = AbsState::entry();
        assert!(matches!(s.reg(Reg::R1), RegValue::CtxPtr { .. }));
        assert!(s.reg(Reg::R2).as_scalar().is_some());
        assert!(matches!(s.reg(Reg::R10), RegValue::StackPtr { .. }));
        for r in [Reg::R0, Reg::R3, Reg::R6, Reg::R9] {
            assert_eq!(s.reg(r), RegValue::Uninit);
        }
        assert_eq!(s.stack_slot(-8), Some(StackSlot::Uninit));
    }

    #[test]
    fn stack_write_read_round_trip() {
        let mut s = AbsState::entry();
        let v = RegValue::Scalar(Scalar::constant(77));
        assert!(s.set_stack_slot(-8, StackSlot::Spill(v)));
        assert_eq!(s.stack_slot(-8), Some(StackSlot::Spill(v)));
        // Out-of-frame writes are refused.
        assert!(!s.set_stack_slot(-520, StackSlot::Misc));
        assert!(!s.set_stack_slot(8, StackSlot::Misc));
    }

    #[test]
    fn smear_marks_touched_slots() {
        let mut s = AbsState::entry();
        s.smear_stack(-20, -10); // touches slots for offsets [-24, -10)
        assert_eq!(s.stack_slot(-17), Some(StackSlot::Misc));
        assert_eq!(s.stack_slot(-12), Some(StackSlot::Misc));
        assert_eq!(s.stack_slot(-30), Some(StackSlot::Uninit));
        assert!(s.stack_range_initialized(-20, -10));
        assert!(!s.stack_range_initialized(-32, -10));
    }

    #[test]
    fn join_of_slots() {
        let spill = StackSlot::Spill(RegValue::Scalar(Scalar::constant(1)));
        assert_eq!(spill.union(StackSlot::Uninit), StackSlot::Uninit);
        assert_eq!(spill.union(StackSlot::Misc), StackSlot::Misc);
        match spill.union(StackSlot::Spill(RegValue::Scalar(Scalar::constant(3)))) {
            StackSlot::Spill(RegValue::Scalar(s)) => {
                assert!(s.contains(1) && s.contains(3));
            }
            other => panic!("unexpected join {other:?}"),
        }
        // Spills of incompatible kinds degrade to Misc, not Uninit: the
        // bytes are initialized on both paths.
        let ptr = StackSlot::Spill(RegValue::StackPtr {
            offset: Scalar::constant(0),
        });
        assert_eq!(spill.union(ptr), StackSlot::Misc);
    }

    #[test]
    fn state_join_and_order() {
        let mut a = AbsState::entry();
        let mut b = AbsState::entry();
        a.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(1)));
        b.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(2)));
        let j = a.union(&b);
        assert!(a.is_subset_of(&j));
        assert!(b.is_subset_of(&j));
        let r3 = j.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(1) && r3.contains(2));
        // A state with an initialized slot is included in one without.
        let mut with_slot = AbsState::entry();
        with_slot.set_stack_slot(-8, StackSlot::Misc);
        assert!(with_slot.is_subset_of(&AbsState::entry()));
        assert!(!AbsState::entry().is_subset_of(&with_slot));
    }
}
