//! Work-stealing **intra-program** path exploration — the parallel
//! sibling of [`PathSensitive`](crate::explore::PathSensitive).
//!
//! The sequential path explorer walks the branch tree depth-first: at
//! every conditional it pushes both successor states and explores the
//! taken arm first. Past a configurable nesting depth
//! ([`AnalyzerOptions::spawn_depth`]) the *fall-through* arm — the
//! subtree the DFS would walk last — is instead packaged as a stealable
//! **job** and pushed onto a per-worker deque
//! ([`domain::parallel::StealPool`]); idle workers steal the oldest
//! (largest) outstanding subtree. States cross the shard boundary as
//! the same dense `to_parts`/`from_parts` snapshots `verifier::batch`
//! ships finished analyses with, so `AbsState` stays `Rc`-backed and
//! allocation-cheap inside each worker. All workers prune against one
//! [`ConcurrentVisitedTable`], so a subtree explored on one worker
//! prunes re-convergent arrivals on every other
//! (`AnalysisStats::shared_prunes`).
//!
//! ## Determinism contract
//!
//! Verdicts, errors, and per-pc reported joins are **bit-identical** to
//! the sequential explorer at any job count; only visit/prune counters
//! may differ. Three mechanisms carry the contract:
//!
//! * **Structured merge.** Each job accumulates its per-pc report joins
//!   locally, and records its spawned children in order. The
//!   coordinator folds job accumulators in the job tree's pre-order
//!   with children visited in *reverse spawn order* — exactly the
//!   sequential DFS ordering of the same subtrees — so the global fold
//!   regroups, but never reorders, the sequential fold. `Scalar::union`
//!   is insensitive to such regrouping at the representation level
//!   (`flow_join` with a covered operand is the identity on the
//!   accumulator's representation), which the `parallel_explore` fuzz
//!   lock enforces across the whole options matrix.
//! * **Back edges never spawn.** Every lap of a cycle stays inside the
//!   job that entered it, so job-local loop summaries widen and
//!   stabilize exactly like the sequential head summaries, and the
//!   spawn tree stays acyclic.
//! * **Sequential rerun on any error.** Shared pruning can change
//!   *which* unsafe path is discovered first across workers, so the
//!   moment any job errors (including budget exhaustion) the parallel
//!   result is discarded wholesale and the sequential explorer's
//!   verdict is returned verbatim — rejections are reproduced
//!   bit-identically by construction. (Inclusion-monotonicity of the
//!   transfer checks guarantees a parallel run never *accepts* a
//!   program the sequential walk would reject: any pruned arrival is
//!   covered by a recorded state whose own walk errors no later.) The
//!   one caveat: a program within ε of `analysis_budget` may be
//!   accepted in parallel — shared prunes can save just enough visits —
//!   where the sequential walk exhausts; budgets are a resource policy,
//!   not a safety verdict, and the default budget leaves three orders
//!   of magnitude of headroom over every workload in the repo.
//!   *Governance* failures are the exception to the rerun: a contained
//!   job panic ([`VerifierError::InternalFault`]) or a blown deadline
//!   ([`VerifierError::DeadlineExceeded`]) is a fault of the analyzer
//!   run, not a verdict about the program, so it propagates to the
//!   session's [`DegradationPolicy`](crate::DegradationPolicy), which
//!   owns (and counts) the downgrade to the sequential explorer.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use domain::parallel::{default_threads, lock_recover, par_workers, StealPool};
use ebpf::Program;
use interval_domain::WidenThresholds;

use crate::analyzer::AnalyzerOptions;
use crate::cfg::Cfg;
use crate::error::VerifierError;
use crate::explore::{Exploration, ExplorationStrategy, PathSensitive};
use crate::fixpoint::{self, AnalysisStats};
use crate::state::{stats, AbsState, JoinCounters, SparseStack, WidenCtx, REGS};
use crate::transfer::Transfer;
use crate::value::RegValue;
use crate::visited::ConcurrentVisitedTable;

/// One stealable DFS subtree: the frontier state as a dense snapshot
/// plus the path-local trip counts and the branch nesting depth at the
/// subtree root. Everything is `Send` — the receiving worker rebuilds
/// the `AbsState` with one `from_parts`.
struct Job {
    id: usize,
    pc: usize,
    regs: [RegValue; REGS],
    chunks: SparseStack,
    trips: Vec<u32>,
    depth: u32,
}

/// What one job's local walk produced: the per-pc report accumulators
/// (as snapshots — they cross back to the coordinator), the ids of the
/// jobs it spawned in spawn order, and its slice of the counters that
/// are per-job rather than shared.
struct JobResult {
    id: usize,
    children: Vec<usize>,
    report: Vec<(usize, [RegValue; REGS], SparseStack)>,
    error: Option<VerifierError>,
    unrolled_trips: u64,
    dead_components_cleared: u64,
}

/// Everything the workers share: the steal pool, the visited table, the
/// global visit budget, the first-error latch, and the job id counter.
struct SharedCtx<'a> {
    pool: StealPool<Job>,
    visited: ConcurrentVisitedTable,
    visits: AtomicU64,
    /// Exploration start, for the cooperative deadline check every job
    /// runs at its visit site.
    start: std::time::Instant,
    errored: AtomicBool,
    next_id: AtomicUsize,
    results: Mutex<Vec<JobResult>>,
    prog: &'a Program,
    options: &'a AnalyzerOptions,
    thresholds: WidenThresholds,
    /// Dense loop-head index (usize::MAX = not a head), as in the
    /// sequential explorer.
    head_idx: Vec<usize>,
    head_rpo: Vec<usize>,
    heads: usize,
    /// Predecessor counts — checkpoint = loop head or merge point.
    preds: Vec<u32>,
    passes: Option<crate::passes::ProgramPasses>,
    /// `(from, to)` back edges: a fall-through successor reached over a
    /// back edge is never spawned, keeping every cycle inside one job.
    back_edges: Vec<(usize, usize)>,
}

/// The work-stealing path-parallel strategy. Reads
/// [`AnalyzerOptions::explore_jobs`] (0 = all available cores) and
/// [`AnalyzerOptions::spawn_depth`]; at one job the walk degenerates to
/// the sequential DFS order with a shared-table probe sequence, and at
/// any job count the reported analysis is bit-identical to
/// [`PathSensitive`] (see the module docs for the contract).
#[derive(Clone, Copy, Debug, Default)]
pub struct PathParallel;

impl ExplorationStrategy for PathParallel {
    fn name(&self) -> &'static str {
        "parshard"
    }

    fn explore(
        &self,
        prog: &Program,
        options: &AnalyzerOptions,
    ) -> Result<Exploration, VerifierError> {
        let jobs = match options.explore_jobs {
            0 => default_threads(),
            n => n as usize,
        };
        let cfg = Cfg::build(prog);
        let thresholds = if options.harvest_thresholds && !cfg.back_edges().is_empty() {
            fixpoint::harvest_thresholds(prog)
        } else {
            WidenThresholds::EMPTY
        };
        let mut head_idx = vec![usize::MAX; prog.len()];
        let heads: Vec<usize> = (0..prog.len()).filter(|&pc| cfg.is_loop_head(pc)).collect();
        for (i, &h) in heads.iter().enumerate() {
            head_idx[h] = i;
        }
        let head_rpo: Vec<usize> = heads.iter().map(|&h| cfg.rpo_pos(h)).collect();
        let mut preds = vec![0u32; prog.len()];
        for &pc in cfg.rpo() {
            for &s in cfg.successors(pc) {
                preds[s] += 1;
            }
        }
        let passes = options
            .liveness_pruning
            .then(|| crate::passes::ProgramPasses::compute(prog, &cfg));
        let dead_insns = passes
            .as_ref()
            .map_or(0, crate::passes::ProgramPasses::dead_insns);

        let ctx = SharedCtx {
            pool: StealPool::new(jobs),
            visited: ConcurrentVisitedTable::with_cap(prog.len(), options.visited_cap as usize),
            visits: AtomicU64::new(0),
            start: std::time::Instant::now(),
            errored: AtomicBool::new(false),
            next_id: AtomicUsize::new(1), // 0 is the root job below
            results: Mutex::new(Vec::new()),
            prog,
            options,
            thresholds,
            head_idx,
            head_rpo,
            heads: heads.len(),
            preds,
            passes,
            back_edges: cfg.back_edges().to_vec(),
        };
        let (entry_regs, entry_chunks) = AbsState::entry().to_parts();
        ctx.pool.push(
            0,
            Job {
                id: 0,
                pc: 0,
                regs: entry_regs,
                chunks: entry_chunks,
                trips: vec![0; heads.len()],
                depth: 0,
            },
        );

        // The coordinator thread's own state traffic (the merge below)
        // must be counted too: reset here, snapshot after merging.
        stats::reset();
        crate::memo::counters::reset();
        let worker_stats = par_workers(jobs, |worker| {
            stats::reset();
            crate::memo::counters::reset();
            while let Some(job) = ctx.pool.pop(worker) {
                let job_id = job.id;
                let result = if ctx.errored.load(Ordering::SeqCst) {
                    // The run is already doomed to the sequential rerun:
                    // drain remaining jobs without walking them.
                    JobResult {
                        id: job_id,
                        children: Vec::new(),
                        report: Vec::new(),
                        error: None,
                        unrolled_trips: 0,
                        dead_components_cleared: 0,
                    }
                } else {
                    // Containment boundary: a panic inside one job must
                    // not unwind through `par_workers`'s join (which
                    // would take down the whole exploration). It becomes
                    // this job's error, trips the errored latch like any
                    // other job failure, and — crucially — still reaches
                    // `pool.complete()` below, so sibling workers
                    // terminate normally instead of spinning on an
                    // outstanding count that never drains.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_job(&ctx, worker, job)
                    }))
                    .unwrap_or_else(|payload| JobResult {
                        id: job_id,
                        children: Vec::new(),
                        report: Vec::new(),
                        error: Some(VerifierError::from_panic(payload.as_ref())),
                        unrolled_trips: 0,
                        dead_components_cleared: 0,
                    })
                };
                if result.error.is_some() {
                    ctx.errored.store(true, Ordering::SeqCst);
                }
                lock_recover(&ctx.results).push(result);
                ctx.pool.complete();
            }
            (stats::snapshot(), crate::memo::counters::snapshot())
        });

        // Credit the workers' visits to the coordinator's thread-local
        // ledger whether the run succeeds, degrades, or reruns
        // sequentially — the batch engine harvests the ledger around
        // each item so even a doomed parallel attempt's burned work
        // shows up in the roll-up.
        crate::fixpoint::ledger::credit(ctx.visits.load(Ordering::Relaxed));

        if ctx.errored.load(Ordering::SeqCst) {
            // Governance failures — a contained panic or a blown
            // deadline — are faults of the *analyzer run*, not verdicts
            // about the program, so they propagate to the session,
            // whose degradation ladder decides whether (and how) to
            // re-run. Every other error — unsafe path or budget — hands
            // the program to the sequential explorer so the reported
            // rejection (which path, which pc) is the canonical one.
            // See module docs.
            let results = ctx
                .results
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let governance = results
                .iter()
                .filter_map(|r| r.error.as_ref())
                .find(|e| {
                    matches!(
                        e,
                        VerifierError::InternalFault { .. }
                            | VerifierError::DeadlineExceeded { .. }
                    )
                })
                .cloned();
            return match governance {
                Some(e) => Err(e),
                None => PathSensitive.explore(prog, options),
            };
        }

        let results = ctx
            .results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut by_id: Vec<Option<JobResult>> = Vec::new();
        let spawned = results.len() as u64;
        for r in results {
            let id = r.id;
            if by_id.len() <= id {
                by_id.resize_with(id + 1, || None);
            }
            by_id[id] = Some(r);
        }

        // Merge per-job report accumulators in the job tree's pre-order
        // with children in reverse spawn order — the sequential DFS
        // ordering of the same subtrees.
        let mut report: Vec<Option<AbsState>> = vec![None; prog.len()];
        let mut unrolled_trips = 0u64;
        let mut dead_components_cleared = 0u64;
        let mut walk = vec![0usize];
        while let Some(id) = walk.pop() {
            let job = by_id[id].take().expect("every spawned job reported");
            unrolled_trips += job.unrolled_trips;
            dead_components_cleared += job.dead_components_cleared;
            for (pc, regs, chunks) in job.report {
                let rebuilt = AbsState::from_parts(regs, chunks);
                match &mut report[pc] {
                    slot @ None => *slot = Some(rebuilt),
                    Some(existing) => {
                        existing.flow_join(&rebuilt, None);
                    }
                }
            }
            // Reverse spawn order: the DFS walks the *latest* deferred
            // subtree first, so pre-order pushes children as spawned and
            // pops them newest-first.
            walk.extend(job.children.iter().copied());
        }

        let coordinator = stats::snapshot();
        let coordinator_memo = crate::memo::counters::snapshot();
        let mut traffic = coordinator;
        let (mut memo_hits, mut memo_misses, mut memo_evicted) = coordinator_memo;
        for (t, (h, m, e)) in worker_stats {
            traffic.allocated += t.allocated;
            traffic.shared += t.shared;
            traffic.short_circuited += t.short_circuited;
            traffic.widenings += t.widenings;
            traffic.bytes += t.bytes;
            memo_hits += h;
            memo_misses += m;
            memo_evicted += e;
        }
        // The worker threads' thread-local memo counters die with the
        // threads: credit their traffic back onto this (coordinator)
        // thread so outer aggregators — the batch engine snapshots the
        // calling thread around each item — still see it.
        crate::memo::counters::credit(
            memo_hits - coordinator_memo.0,
            memo_misses - coordinator_memo.1,
            memo_evicted - coordinator_memo.2,
        );

        Ok(Exploration {
            states: report,
            stats: AnalysisStats {
                states_allocated: traffic.allocated,
                states_shared: traffic.shared,
                joins_short_circuited: traffic.short_circuited,
                widenings_applied: traffic.widenings,
                visits: ctx.visits.load(Ordering::Relaxed),
                states_pruned: ctx.visited.states_pruned(),
                subset_checks: ctx.visited.subset_checks(),
                unrolled_trips,
                fingerprint_rejects: ctx.visited.fingerprint_rejects(),
                visited_evicted: ctx.visited.visited_evicted(),
                bytes_materialized: traffic.bytes,
                memo_hits,
                memo_misses,
                memo_evicted,
                live_masked_prunes: ctx.visited.masked_prunes(),
                dead_components_cleared,
                dead_insns,
                subtrees_spawned: spawned.saturating_sub(1),
                steals: ctx.pool.steals(),
                shared_prunes: ctx.visited.shared_prunes(),
                degradations: 0,
            },
        })
    }
}

/// Runs one job's local DFS walk — the sequential explorer's loop with
/// job-local summaries and report accumulators, the shared visited
/// table, and the spawn rule at forks.
fn run_job(ctx: &SharedCtx<'_>, worker: usize, job: Job) -> JobResult {
    let transfer = Transfer::new(ctx.options.clone());
    let id = job.id;
    let mut children = Vec::new();
    let mut report: Vec<Option<AbsState>> = vec![None; ctx.prog.len()];
    let mut summaries: Vec<Option<AbsState>> = vec![None; ctx.heads];
    let mut counters: Vec<JoinCounters> = (0..ctx.heads).map(|_| JoinCounters::new()).collect();
    let mut unrolled_trips = 0u64;
    let mut dead_components_cleared = 0u64;
    let mut error = None;

    let mut stack: Vec<(usize, AbsState, std::rc::Rc<Vec<u32>>, u32)> = vec![(
        job.pc,
        AbsState::from_parts(job.regs, job.chunks),
        std::rc::Rc::new(job.trips),
        job.depth,
    )];
    'walk: while let Some((pc, mut state, mut trips, depth)) = stack.pop() {
        if ctx.errored.load(Ordering::Relaxed) {
            // Another worker already doomed the run: stop walking, the
            // sequential rerun will produce the canonical result.
            break;
        }
        if ctx.visits.fetch_add(1, Ordering::Relaxed) + 1 > ctx.options.analysis_budget {
            error = Some(VerifierError::AnalysisBudgetExhausted {
                pc,
                budget: ctx.options.analysis_budget,
            });
            break;
        }
        if let Err(e) = crate::analyzer::check_deadline(ctx.start, ctx.options, pc) {
            error = Some(e);
            break;
        }
        crate::failpoint::fire(crate::failpoint::FaultSite::ParshardJob);
        let h = ctx.head_idx[pc];
        let checkpoint = h != usize::MAX || ctx.preds[pc] > 1;
        if checkpoint {
            if let Some(p) = &ctx.passes {
                let mask = p.live_in(pc);
                dead_components_cleared += u64::from(state.clear_dead(mask.regs, mask.slots));
            }
        }
        if h != usize::MAX {
            let take_trip = trips[h] < ctx.options.unroll_k;
            let needs_reset = ctx
                .head_rpo
                .iter()
                .enumerate()
                .any(|(j, &pos)| pos > ctx.head_rpo[h] && trips[j] != 0);
            if take_trip || needs_reset {
                let t = std::rc::Rc::make_mut(&mut trips);
                for (j, &pos) in ctx.head_rpo.iter().enumerate() {
                    if pos > ctx.head_rpo[h] {
                        t[j] = 0;
                    }
                }
                if take_trip {
                    t[h] += 1;
                }
            }
            if take_trip {
                unrolled_trips += 1;
            } else {
                // Job-local widening summary: every lap of a cycle stays
                // in this job (back edges never spawn), so the summary
                // stabilizes exactly as in the sequential walk.
                match &mut summaries[h] {
                    slot @ None => *slot = Some(state.clone()),
                    Some(summary) => {
                        let grew = summary.flow_join(
                            &state,
                            Some(WidenCtx {
                                counters: &mut counters[h],
                                delay: 0,
                                thresholds: &ctx.thresholds,
                            }),
                        );
                        if !grew {
                            ctx.visited.note_summary_prune();
                            continue;
                        }
                        state = summary.clone();
                    }
                }
            }
        }
        if checkpoint {
            let covered = if ctx.passes.is_some() {
                ctx.visited.is_covered_masked(pc, &state, worker)
            } else {
                ctx.visited.is_covered(pc, &state, worker)
            };
            if covered {
                continue;
            }
            ctx.visited.insert(pc, &state, worker);
        }
        match &mut report[pc] {
            slot @ None => *slot = Some(state.clone()),
            Some(existing) => {
                existing.flow_join(&state, None);
            }
        }
        let succs = match transfer.step(ctx.prog, state, pc) {
            Ok(s) => s,
            Err(e) => {
                error = Some(e);
                break 'walk;
            }
        };
        let mut outs: Vec<(usize, AbsState)> = succs.into_iter().collect();
        if outs.len() == 2 {
            // A fork. The sequential DFS pushes [fall, taken] and walks
            // the taken arm first; past the spawn depth the fall arm —
            // the subtree the DFS would walk *last* — becomes a
            // stealable job, unless its edge is a back edge (cycles stay
            // job-local).
            let ndepth = depth + 1;
            let (taken_pc, taken_state) = outs.pop().expect("two successors");
            let (fall_pc, fall_state) = outs.pop().expect("two successors");
            let spawn =
                depth >= ctx.options.spawn_depth && !ctx.back_edges.contains(&(pc, fall_pc));
            if spawn {
                let (regs, chunks) = fall_state.to_parts();
                let child = ctx.next_id.fetch_add(1, Ordering::Relaxed);
                children.push(child);
                ctx.pool.push(
                    worker,
                    Job {
                        id: child,
                        pc: fall_pc,
                        regs,
                        chunks,
                        trips: (*trips).clone(),
                        depth: ndepth,
                    },
                );
            } else {
                stack.push((fall_pc, fall_state, trips.clone(), ndepth));
            }
            stack.push((taken_pc, taken_state, trips, ndepth));
        } else {
            for (succ, out) in outs {
                stack.push((succ, out, trips.clone(), depth));
            }
        }
    }

    JobResult {
        id,
        children,
        report: report
            .into_iter()
            .enumerate()
            .filter_map(|(pc, acc)| {
                let (regs, chunks) = acc?.to_parts();
                Some((pc, regs, chunks))
            })
            .collect(),
        error,
        unrolled_trips,
        dead_components_cleared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    fn options_with(jobs: u32, spawn_depth: u32) -> AnalyzerOptions {
        AnalyzerOptions {
            explore_jobs: jobs,
            spawn_depth,
            ..AnalyzerOptions::default()
        }
    }

    /// A three-level branch tree over ALU ops feeding one guarded
    /// store: enough forks to spawn subtrees at every tested depth.
    fn branchy() -> ebpf::Program {
        assemble(
            r"
            r2 = *(u8 *)(r1 + 0)
            r3 = *(u8 *)(r1 + 1)
            if r2 > 3 goto a
            r3 += 1
        a:
            if r3 > 7 goto b
            r2 += 2
        b:
            if r2 s> r3 goto c
            r2 ^= r3
        c:
            r2 &= 6
            r4 = r10
            r4 += -16
            r4 += r2
            *(u8 *)(r4 + 0) = 0
            r0 = 0
            exit
        ",
        )
        .expect("assembles")
    }

    fn assert_bit_identical(prog: &ebpf::Program, options: &AnalyzerOptions) {
        let seq = PathSensitive.explore(prog, options);
        let par = PathParallel.explore(prog, options);
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(s.states.len(), p.states.len());
                for (pc, (a, b)) in s.states.iter().zip(p.states.iter()).enumerate() {
                    match (a, b) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert!(
                                a.fingerprint() == b.fingerprint()
                                    && a.is_subset_of(b)
                                    && b.is_subset_of(a),
                                "reported join diverges at pc {pc}"
                            );
                        }
                        _ => panic!("reachability diverges at pc {pc}"),
                    }
                }
            }
            (Err(s), Err(p)) => assert_eq!(s.to_string(), p.to_string()),
            (s, p) => panic!(
                "verdicts diverge: sequential {:?} vs parallel {:?}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }

    #[test]
    fn parallel_matches_sequential_on_branchy_program() {
        let prog = branchy();
        for jobs in [1, 2, 8] {
            for depth in [0, 2, 8] {
                assert_bit_identical(&prog, &options_with(jobs, depth));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_bounded_loop() {
        let prog = assemble(
            r"
            r1 = 0
        loop:
            r3 = r10
            r3 += -16
            r3 += r1
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if r1 < 16 goto loop
            r0 = r1
            exit
        ",
        )
        .expect("assembles");
        for jobs in [1, 2, 8] {
            assert_bit_identical(&prog, &options_with(jobs, 0));
        }
    }

    #[test]
    fn parallel_reproduces_sequential_rejection_verbatim() {
        // The branch tree hides an out-of-bounds store: whichever worker
        // finds it first, the reported rejection is the sequential one.
        let prog = assemble(
            r"
            r2 = *(u8 *)(r1 + 0)
            if r2 > 3 goto bad
            r0 = 0
            exit
        bad:
            r4 = r10
            r4 += -16
            r4 += r2
            *(u8 *)(r4 + 0) = 0
            r0 = 0
            exit
        ",
        )
        .expect("assembles");
        for jobs in [1, 2, 8] {
            let seq = PathSensitive.explore(&prog, &options_with(jobs, 0));
            let par = PathParallel.explore(&prog, &options_with(jobs, 0));
            assert!(seq.is_err() && par.is_err());
            assert_eq!(
                seq.expect_err("rejected").to_string(),
                par.expect_err("rejected").to_string()
            );
        }
    }

    #[test]
    fn spawn_depth_zero_spawns_subtrees_and_counts_them() {
        let prog = branchy();
        let stats = PathParallel
            .explore(&prog, &options_with(4, 0))
            .expect("accepted")
            .stats;
        assert!(stats.subtrees_spawned > 0, "forks past depth 0 must spawn");
        // Sequential strategies never report the parallel counters.
        let seq = PathSensitive
            .explore(&prog, &options_with(1, 0))
            .expect("accepted")
            .stats;
        assert_eq!(
            (seq.subtrees_spawned, seq.steals, seq.shared_prunes),
            (0, 0, 0)
        );
    }

    #[test]
    fn deep_spawn_depth_degenerates_to_local_walk() {
        let prog = branchy();
        let stats = PathParallel
            .explore(&prog, &options_with(4, 64))
            .expect("accepted")
            .stats;
        assert_eq!(stats.subtrees_spawned, 0);
        assert_eq!(stats.steals, 0);
    }
}
