//! The per-pc visited-state table of the path-sensitive explorer —
//! the analogue of the kernel verifier's `explored_states` /
//! `is_state_visited` machinery.
//!
//! The kernel prunes a branch the moment its verifier state is *included
//! in* a state it has already fully explored at the same instruction:
//! everything the new state could do, the old one already proved safe.
//! [`VisitedTable`] provides exactly that primitive on top of
//! [`AbsState::is_subset_of`], whose copy-on-write `Rc` identity
//! short-circuits make the inclusion probe cheap for states that still
//! share components with a recorded one.
//!
//! The table also owns the pruning accounting surfaced through
//! [`crate::AnalysisStats`]: how many inclusion probes ran
//! (`subset_checks`) and how many branch states they killed
//! (`states_pruned`) — the observable effect of kernel-style pruning,
//! benchmarked in `BENCH_PR4.json` and guarded by CI.

use crate::state::AbsState;

/// Per-instruction lists of already-explored abstract states, with
/// inclusion-based pruning ([`VisitedTable::is_covered`]) and the
/// counters behind [`crate::AnalysisStats::states_pruned`] /
/// [`crate::AnalysisStats::subset_checks`].
///
/// Entries are only recorded at *checkpoints* chosen by the explorer
/// (loop heads and control-flow merge points — where paths can actually
/// re-converge); straight-line instructions are never probed.
#[derive(Clone, Debug, Default)]
pub struct VisitedTable {
    buckets: Vec<Vec<AbsState>>,
    subset_checks: u64,
    states_pruned: u64,
}

impl VisitedTable {
    /// An empty table for a program of `len` instructions.
    #[must_use]
    pub fn new(len: usize) -> VisitedTable {
        VisitedTable {
            buckets: vec![Vec::new(); len],
            subset_checks: 0,
            states_pruned: 0,
        }
    }

    /// Whether `state` is included in an already-recorded state at `pc`
    /// — if so, exploring it can prove nothing new and the caller should
    /// prune the path (counted in [`VisitedTable::states_pruned`]).
    ///
    /// Newest entries are probed first: in a loop the most recent trip's
    /// state is the likeliest cover for a re-converging path.
    pub fn is_covered(&mut self, pc: usize, state: &AbsState) -> bool {
        for seen in self.buckets[pc].iter().rev() {
            self.subset_checks += 1;
            if state.is_subset_of(seen) {
                self.states_pruned += 1;
                return true;
            }
        }
        false
    }

    /// Records `state` as fully explored at `pc`, so later arrivals it
    /// covers are pruned.
    pub fn insert(&mut self, pc: usize, state: AbsState) {
        self.buckets[pc].push(state);
    }

    /// The states recorded at `pc`, in insertion order.
    #[must_use]
    pub fn entries(&self, pc: usize) -> &[AbsState] {
        &self.buckets[pc]
    }

    /// The join over every state recorded at `pc`, or `None` when the
    /// instruction was never checkpointed — a single-state summary of a
    /// checkpoint for diagnostics and tooling. (The explorer itself
    /// reports per-pc joins through its own accumulator, which also
    /// covers non-checkpoint instructions.)
    #[must_use]
    pub fn joined(&self, pc: usize) -> Option<AbsState> {
        let mut entries = self.buckets[pc].iter();
        let first = entries.next()?.clone();
        Some(entries.fold(first, |acc, s| acc.union(s)))
    }

    /// Total number of states recorded across all instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether no state has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Inclusion probes performed so far.
    #[must_use]
    pub fn subset_checks(&self) -> u64 {
        self.subset_checks
    }

    /// Arrivals pruned as covered so far.
    #[must_use]
    pub fn states_pruned(&self) -> u64 {
        self.states_pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;
    use crate::value::RegValue;
    use ebpf::Reg;

    fn with_r3(c: u64) -> AbsState {
        let mut s = AbsState::entry();
        s.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(c)));
        s
    }

    #[test]
    fn covers_equal_and_included_states_only() {
        let mut table = VisitedTable::new(4);
        let a = with_r3(1);
        assert!(!table.is_covered(2, &a), "empty bucket covers nothing");
        table.insert(2, a.clone());
        // Identical state: covered (one probe, one prune).
        assert!(table.is_covered(2, &a));
        // A strictly smaller state is covered too…
        let joined = a.union(&with_r3(5));
        table.insert(2, joined);
        assert!(table.is_covered(2, &with_r3(5)));
        // …but a different pc is a different bucket…
        assert!(!table.is_covered(3, &a));
        // …and an incomparable state is not covered.
        assert!(!table.is_covered(2, &with_r3(9)));
        assert_eq!(table.states_pruned(), 2);
        assert!(table.subset_checks() >= table.states_pruned());
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn joined_is_the_union_over_entries() {
        let mut table = VisitedTable::new(2);
        assert!(table.joined(1).is_none());
        table.insert(1, with_r3(1));
        table.insert(1, with_r3(4));
        let j = table.joined(1).expect("two entries");
        let r3 = j.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(1) && r3.contains(4));
        assert_eq!(table.entries(1).len(), 2);
    }
}
