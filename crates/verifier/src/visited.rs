//! The per-pc visited-state table of the path-sensitive explorer —
//! the analogue of the kernel verifier's `explored_states` /
//! `is_state_visited` machinery, rebuilt around **state fingerprints**.
//!
//! The kernel prunes a branch the moment its verifier state is *included
//! in* a state it has already fully explored at the same instruction:
//! everything the new state could do, the old one already proved safe.
//! It also keeps its `explored_states` lists healthy — hashed lookup,
//! capped list lengths (`states_maxlen`-style), and dropping states a
//! newer insertion subsumes — because an unbounded linear scan of full
//! state comparisons grows quadratically on long loops. [`VisitedTable`]
//! applies the same hygiene:
//!
//! * **Fingerprint-indexed probes.** Each chain entry stores the state's
//!   64-bit [`AbsState::fingerprint`] next to it. A probe first compares
//!   fingerprints: a mismatch proves the candidate *unequal* in O(1)
//!   (the property suite pins `equal states ⟹ equal fingerprints`), so
//!   the expensive pointwise [`AbsState::is_subset_of`] runs only for
//!   fingerprint matches — plus a small newest-first budget of
//!   strict-inclusion probes ([`STRICT_PROBES`]), since a strictly
//!   smaller arrival can hide behind any fingerprint. Skipped candidates
//!   are counted as [`VisitedTable::fingerprint_rejects`]. Skipping a
//!   probe is always sound: pruning is an optimization, and the
//!   equality path (which termination of the widening fallback leans
//!   on) is probed against the *entire* chain.
//! * **Dominance eviction.** Inserting a state compares it against the
//!   newest [`DOMINANCE_PROBES`] entries; any entry *included in* the
//!   newcomer is dropped — everything it covered, the newcomer covers.
//!   This is what keeps widening-fallback chains short: each widened
//!   summary subsumes (and evicts) its predecessor.
//! * **Chain caps.** Each pc keeps at most `cap` entries
//!   ([`crate::AnalyzerOptions::visited_cap`], default
//!   [`DEFAULT_CAP`]); a full chain evicts oldest-first, kernel-style.
//!   Evictions of both kinds are counted in
//!   [`VisitedTable::visited_evicted`].
//!
//! The table also owns the pruning accounting surfaced through
//! [`crate::AnalysisStats`]: how many full inclusion probes ran
//! (`subset_checks`), how many candidates were dismissed by fingerprint
//! (`fingerprint_rejects`), how many entries were evicted
//! (`visited_evicted`), and how many branch states were pruned
//! (`states_pruned`) — benchmarked in `BENCH_PR5.json` and guarded by
//! CI (`fixpoint_guard` fails on `subset_checks` regressions at the
//! deep-unroll point).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use domain::parallel::lock_recover;

use crate::state::{AbsState, SparseStack, REGS};
use crate::value::RegValue;

/// Default per-pc chain cap (the kernel caps its `explored_states`
/// lists the same way).
pub const DEFAULT_CAP: usize = 32;

/// Newest-first budget of full strict-inclusion probes per arrival:
/// candidates beyond it whose fingerprint already mismatched are skipped
/// outright. Newest entries are the likeliest covers (the most recent
/// trip or summary), so the budget is spent where pruning actually
/// fires.
const STRICT_PROBES: usize = 2;

/// Newest-first budget of dominance probes per insertion: how many
/// existing entries an insertion checks for being subsumed by the
/// newcomer. Widening chains grow monotonically, so the predecessor a
/// new summary dominates is always the newest entry.
const DOMINANCE_PROBES: usize = 2;

/// Strict-probe budget of the liveness-masked probe path
/// ([`VisitedTable::is_covered_masked`]): zero. Checkpoint cleaning
/// (`AbsState::clear_dead`) sets every dead component to its top, so
/// states that differ only in dead components *fingerprint equally* and
/// take the fingerprint-match probe; a mismatch means the live parts
/// genuinely differ, and spending deep probes on those rarely prunes.
const MASKED_STRICT_PROBES: usize = 0;

/// One recorded exploration: the state plus its cached fingerprint.
#[derive(Clone, Debug)]
struct Entry {
    fp: u64,
    state: AbsState,
}

/// Per-instruction chains of already-explored abstract states, with
/// fingerprint-gated inclusion pruning ([`VisitedTable::is_covered`]),
/// dominance and oldest-first eviction, and the counters behind
/// [`crate::AnalysisStats`].
///
/// Entries are only recorded at *checkpoints* chosen by the explorer
/// (loop heads and control-flow merge points — where paths can actually
/// re-converge); straight-line instructions are never probed.
#[derive(Clone, Debug, Default)]
pub struct VisitedTable {
    buckets: Vec<Vec<Entry>>,
    cap: usize,
    subset_checks: u64,
    states_pruned: u64,
    fingerprint_rejects: u64,
    visited_evicted: u64,
    masked_prunes: u64,
}

impl VisitedTable {
    /// An empty table for a program of `len` instructions, with the
    /// default per-pc chain cap ([`DEFAULT_CAP`]).
    #[must_use]
    pub fn new(len: usize) -> VisitedTable {
        VisitedTable::with_cap(len, DEFAULT_CAP)
    }

    /// An empty table with an explicit per-pc chain cap; `cap == 0`
    /// means unbounded chains (no capacity eviction).
    #[must_use]
    pub fn with_cap(len: usize, cap: usize) -> VisitedTable {
        VisitedTable {
            buckets: vec![Vec::new(); len],
            cap: if cap == 0 { usize::MAX } else { cap },
            subset_checks: 0,
            states_pruned: 0,
            fingerprint_rejects: 0,
            visited_evicted: 0,
            masked_prunes: 0,
        }
    }

    /// Whether `state` is included in an already-recorded state at `pc`
    /// — if so, exploring it can prove nothing new and the caller should
    /// prune the path (counted in [`VisitedTable::states_pruned`]).
    ///
    /// Newest entries are probed first: in a loop the most recent trip's
    /// state is the likeliest cover for a re-converging path. Candidates
    /// whose fingerprint matches get a full inclusion probe wherever
    /// they sit in the chain; mismatched candidates (provably unequal)
    /// get one only within the newest-first [`STRICT_PROBES`] budget and
    /// are otherwise dismissed in O(1).
    pub fn is_covered(&mut self, pc: usize, state: &AbsState) -> bool {
        self.probe(pc, state, STRICT_PROBES)
    }

    /// [`VisitedTable::is_covered`] for liveness-*cleaned* arrivals:
    /// identical semantics, but the strict-probe budget drops to
    /// [`MASKED_STRICT_PROBES`] — after `AbsState::clear_dead` has set
    /// every dead component to its top, arrivals that differ only in
    /// dead components already land on the fingerprint-match path, so
    /// deep probes on mismatched fingerprints buy almost nothing.
    /// Prunes through this path are additionally counted in
    /// [`VisitedTable::masked_prunes`] (the `live_masked_prunes` stat).
    pub fn is_covered_masked(&mut self, pc: usize, state: &AbsState) -> bool {
        let covered = self.probe(pc, state, MASKED_STRICT_PROBES);
        if covered {
            self.masked_prunes += 1;
        }
        covered
    }

    /// The shared probe loop behind both covering checks, with an
    /// explicit newest-first budget of strict (fingerprint-mismatched)
    /// deep probes.
    fn probe(&mut self, pc: usize, state: &AbsState, strict_budget: usize) -> bool {
        let fp = state.fingerprint();
        let mut strict_left = strict_budget;
        for seen in self.buckets[pc].iter().rev() {
            let full_probe = if seen.fp == fp {
                true
            } else if strict_left > 0 {
                strict_left -= 1;
                true
            } else {
                self.fingerprint_rejects += 1;
                false
            };
            if full_probe {
                self.subset_checks += 1;
                if state.is_subset_of(&seen.state) {
                    self.states_pruned += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Records `state` as fully explored at `pc`, so later arrivals it
    /// covers are pruned.
    ///
    /// Insertion performs **dominance eviction** — the newest
    /// [`DOMINANCE_PROBES`] entries are dropped if the newcomer includes
    /// them (their pruning power is subsumed) — and then enforces the
    /// chain cap by evicting the oldest entry.
    pub fn insert(&mut self, pc: usize, state: AbsState) {
        let fp = state.fingerprint();
        let bucket = &mut self.buckets[pc];
        let lo = bucket.len().saturating_sub(DOMINANCE_PROBES);
        for i in (lo..bucket.len()).rev() {
            self.subset_checks += 1;
            if bucket[i].state.is_subset_of(&state) {
                bucket.remove(i);
                self.visited_evicted += 1;
            }
        }
        while bucket.len() >= self.cap {
            bucket.remove(0);
            self.visited_evicted += 1;
        }
        bucket.push(Entry { fp, state });
    }

    /// Notes a prune that happened outside the table — the explorer's
    /// loop-head summary covering an arrival without a chain probe — so
    /// the `states_pruned`/`subset_checks` ledger stays complete (the
    /// cover was established by one inclusion-shaped `flow_join`).
    pub fn note_summary_prune(&mut self) {
        self.subset_checks += 1;
        self.states_pruned += 1;
    }

    /// The surviving states recorded at `pc`, oldest first.
    ///
    /// This is *insertion order minus evictions*: dominance eviction and
    /// the chain cap may have removed entries anywhere in (respectively
    /// the newest and oldest end of) the chain, so consecutive returned
    /// states need not be consecutive insertions.
    pub fn entries(&self, pc: usize) -> impl ExactSizeIterator<Item = &AbsState> {
        self.buckets[pc].iter().map(|e| &e.state)
    }

    /// The join over every surviving state recorded at `pc`, or `None`
    /// when the instruction was never checkpointed — a single-state
    /// summary of a checkpoint for diagnostics and tooling. (The
    /// explorer itself reports per-pc joins through its own accumulator,
    /// which also covers non-checkpoint instructions.)
    #[must_use]
    pub fn joined(&self, pc: usize) -> Option<AbsState> {
        let (first, rest) = self.buckets[pc].split_first()?;
        if rest.is_empty() {
            // The common single-entry checkpoint: an `AbsState` clone is
            // two `Rc` bumps, so the summary *shares* the entry's
            // components outright — zero bytes materialized.
            return Some(first.state.clone());
        }
        // One O(1) clone of the first entry seeds the fold; `union`
        // already shares unchanged components, so the accumulator never
        // deep-copies what the entries agree on.
        Some(
            rest.iter()
                .fold(first.state.clone(), |acc, e| acc.union(&e.state)),
        )
    }

    /// Total number of states recorded across all instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether no state has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Full inclusion probes performed so far (covering probes plus
    /// dominance-eviction probes).
    #[must_use]
    pub fn subset_checks(&self) -> u64 {
        self.subset_checks
    }

    /// Arrivals pruned as covered so far.
    #[must_use]
    pub fn states_pruned(&self) -> u64 {
        self.states_pruned
    }

    /// Probe candidates dismissed in O(1) on fingerprint mismatch
    /// without a full inclusion check.
    #[must_use]
    pub fn fingerprint_rejects(&self) -> u64 {
        self.fingerprint_rejects
    }

    /// Entries dropped from chains: dominated by a newer insertion, or
    /// displaced oldest-first by the chain cap.
    #[must_use]
    pub fn visited_evicted(&self) -> u64 {
        self.visited_evicted
    }

    /// Arrivals pruned through the liveness-masked probe path
    /// ([`VisitedTable::is_covered_masked`]) — a subset of
    /// [`VisitedTable::states_pruned`].
    #[must_use]
    pub fn masked_prunes(&self) -> u64 {
        self.masked_prunes
    }
}

/// How many lock stripes a [`ConcurrentVisitedTable`] spreads its per-pc
/// chains over (bounded by the program length): pc `i` lives in stripe
/// `i % stripes`, so the hot checkpoints of a loop — consecutive pcs —
/// land in *different* stripes and workers probing different program
/// points rarely contend.
const STRIPES: usize = 64;

/// One recorded exploration in the shared table: the fingerprint plus
/// the state's dense [`AbsState::to_parts`] snapshot. `AbsState` is
/// `Rc`-backed and cannot cross threads; its snapshot is plain `Send`
/// data, and probes test arrivals against it in place
/// ([`AbsState::is_subset_of_parts`]) without ever rebuilding a state.
#[derive(Debug)]
struct SharedEntry {
    fp: u64,
    regs: [RegValue; REGS],
    chunks: SparseStack,
    /// The worker that inserted the entry — prunes observed by a
    /// *different* worker count as cross-worker `shared_prunes`.
    worker: usize,
}

/// The concurrent sibling of [`VisitedTable`] for the work-stealing
/// path explorer (`verifier::parshard`): per-pc fingerprint chains
/// sharded over [`STRIPES`] mutex stripes, with **identical**
/// cap/eviction/probe semantics — the same [`STRICT_PROBES`] /
/// [`MASKED_STRICT_PROBES`] budgets, the same newest-first
/// [`DOMINANCE_PROBES`] dominance eviction, the same oldest-first chain
/// cap — so a pruning decision made on one worker is immediately
/// visible to (and byte-for-byte the same decision as on) every other
/// worker.
///
/// States are stored as their dense `to_parts` snapshots (the same
/// representation `verifier::batch` ships finished analyses across
/// threads with), which keeps the table `Send + Sync` while `AbsState`
/// itself stays `Rc`-backed and allocation-cheap inside each worker.
/// Counters are relaxed atomics; they feed the same
/// [`crate::AnalysisStats`] ledger fields as the sequential table, plus
/// the cross-worker [`ConcurrentVisitedTable::shared_prunes`] count.
#[derive(Debug)]
pub struct ConcurrentVisitedTable {
    /// `stripes[s]` holds the chains of pcs `s, s + n, s + 2n, …` where
    /// `n` is the stripe count; chain index within a stripe is `pc / n`.
    stripes: Vec<Mutex<Vec<Vec<SharedEntry>>>>,
    cap: usize,
    subset_checks: AtomicU64,
    states_pruned: AtomicU64,
    fingerprint_rejects: AtomicU64,
    visited_evicted: AtomicU64,
    masked_prunes: AtomicU64,
    shared_prunes: AtomicU64,
}

impl ConcurrentVisitedTable {
    /// An empty shared table for a program of `len` instructions with an
    /// explicit per-pc chain cap; `cap == 0` means unbounded chains,
    /// exactly as in [`VisitedTable::with_cap`].
    #[must_use]
    pub fn with_cap(len: usize, cap: usize) -> ConcurrentVisitedTable {
        let stripes = STRIPES.min(len.max(1));
        ConcurrentVisitedTable {
            stripes: (0..stripes)
                .map(|s| {
                    // Chains for pcs s, s + stripes, … — div_ceil many.
                    let chains = len.saturating_sub(s).div_ceil(stripes);
                    Mutex::new((0..chains).map(|_| Vec::new()).collect())
                })
                .collect(),
            cap: if cap == 0 { usize::MAX } else { cap },
            subset_checks: AtomicU64::new(0),
            states_pruned: AtomicU64::new(0),
            fingerprint_rejects: AtomicU64::new(0),
            visited_evicted: AtomicU64::new(0),
            masked_prunes: AtomicU64::new(0),
            shared_prunes: AtomicU64::new(0),
        }
    }

    /// [`VisitedTable::is_covered`], against the shared chains: whether
    /// `state` is included in a state *any* worker already recorded at
    /// `pc`. `worker` identifies the prober — a hit on an entry inserted
    /// by a different worker additionally counts as a
    /// [`ConcurrentVisitedTable::shared_prunes`] cross-worker prune.
    pub fn is_covered(&self, pc: usize, state: &AbsState, worker: usize) -> bool {
        self.probe(pc, state, STRICT_PROBES, worker)
    }

    /// [`VisitedTable::is_covered_masked`], against the shared chains:
    /// the liveness-cleaned probe path with its zero strict-probe
    /// budget, counted in [`ConcurrentVisitedTable::masked_prunes`] on a
    /// hit.
    pub fn is_covered_masked(&self, pc: usize, state: &AbsState, worker: usize) -> bool {
        let covered = self.probe(pc, state, MASKED_STRICT_PROBES, worker);
        if covered {
            self.masked_prunes.fetch_add(1, Ordering::Relaxed);
        }
        covered
    }

    /// The shared probe loop — the same newest-first fingerprint-gated
    /// walk as [`VisitedTable::probe`], under the pc's stripe lock.
    fn probe(&self, pc: usize, state: &AbsState, strict_budget: usize, worker: usize) -> bool {
        let fp = state.fingerprint();
        let n = self.stripes.len();
        // Poison recovery: a contained worker panic can only have left
        // the stripe's chains structurally intact (entries are appended
        // or removed whole under the lock), so siblings keep probing —
        // at worst a prune opportunity is missing.
        let stripe = lock_recover(&self.stripes[pc % n]);
        // Fired while the stripe lock is held (see FaultSite docs).
        crate::failpoint::fire(crate::failpoint::FaultSite::VisitedProbe);
        let mut strict_left = strict_budget;
        let (mut checks, mut rejects) = (0u64, 0u64);
        let mut hit = None;
        for seen in stripe[pc / n].iter().rev() {
            let full_probe = if seen.fp == fp {
                true
            } else if strict_left > 0 {
                strict_left -= 1;
                true
            } else {
                rejects += 1;
                false
            };
            if full_probe {
                checks += 1;
                if state.is_subset_of_parts(&seen.regs, &seen.chunks) {
                    hit = Some(seen.worker);
                    break;
                }
            }
        }
        drop(stripe);
        self.subset_checks.fetch_add(checks, Ordering::Relaxed);
        self.fingerprint_rejects
            .fetch_add(rejects, Ordering::Relaxed);
        if let Some(inserter) = hit {
            self.states_pruned.fetch_add(1, Ordering::Relaxed);
            if inserter != worker {
                self.shared_prunes.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        false
    }

    /// [`VisitedTable::insert`], against the shared chains: records
    /// `state`'s snapshot at `pc` on behalf of `worker`, with the same
    /// newest-first dominance eviction and oldest-first chain cap.
    pub fn insert(&self, pc: usize, state: &AbsState, worker: usize) {
        let fp = state.fingerprint();
        let (regs, chunks) = state.to_parts();
        let n = self.stripes.len();
        let (mut checks, mut evicted) = (0u64, 0u64);
        {
            let mut stripe = lock_recover(&self.stripes[pc % n]);
            let bucket = &mut stripe[pc / n];
            let lo = bucket.len().saturating_sub(DOMINANCE_PROBES);
            for i in (lo..bucket.len()).rev() {
                checks += 1;
                if crate::state::AbsState::parts_subset_of_parts(
                    (&bucket[i].regs, &bucket[i].chunks),
                    (&regs, &chunks),
                ) {
                    bucket.remove(i);
                    evicted += 1;
                }
            }
            while bucket.len() >= self.cap {
                bucket.remove(0);
                evicted += 1;
            }
            bucket.push(SharedEntry {
                fp,
                regs,
                chunks,
                worker,
            });
        }
        self.subset_checks.fetch_add(checks, Ordering::Relaxed);
        self.visited_evicted.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Notes a prune established outside the table (a worker's job-local
    /// loop-head summary covering an arrival), mirroring
    /// [`VisitedTable::note_summary_prune`].
    pub fn note_summary_prune(&self) {
        self.subset_checks.fetch_add(1, Ordering::Relaxed);
        self.states_pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Full inclusion probes performed so far across all workers.
    #[must_use]
    pub fn subset_checks(&self) -> u64 {
        self.subset_checks.load(Ordering::Relaxed)
    }

    /// Arrivals pruned as covered so far across all workers.
    #[must_use]
    pub fn states_pruned(&self) -> u64 {
        self.states_pruned.load(Ordering::Relaxed)
    }

    /// Probe candidates dismissed in O(1) on fingerprint mismatch.
    #[must_use]
    pub fn fingerprint_rejects(&self) -> u64 {
        self.fingerprint_rejects.load(Ordering::Relaxed)
    }

    /// Entries dropped from shared chains (dominance or chain cap).
    #[must_use]
    pub fn visited_evicted(&self) -> u64 {
        self.visited_evicted.load(Ordering::Relaxed)
    }

    /// Arrivals pruned through the liveness-masked probe path.
    #[must_use]
    pub fn masked_prunes(&self) -> u64 {
        self.masked_prunes.load(Ordering::Relaxed)
    }

    /// Cross-worker prunes: arrivals pruned by an entry a *different*
    /// worker inserted — the observable payoff of sharing the table
    /// instead of giving each worker a private one.
    #[must_use]
    pub fn shared_prunes(&self) -> u64 {
        self.shared_prunes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;
    use crate::value::RegValue;
    use ebpf::Reg;

    fn with_r3(c: u64) -> AbsState {
        let mut s = AbsState::entry();
        s.set_reg(Reg::R3, RegValue::Scalar(Scalar::constant(c)));
        s
    }

    #[test]
    fn covers_equal_and_included_states_only() {
        let mut table = VisitedTable::new(4);
        let a = with_r3(1);
        assert!(!table.is_covered(2, &a), "empty bucket covers nothing");
        table.insert(2, a.clone());
        // Identical state: covered (fingerprint match, one probe).
        assert!(table.is_covered(2, &a));
        // A strictly smaller state is covered too (strict-probe path:
        // its fingerprint differs from the recorded join's)…
        let joined = a.union(&with_r3(5));
        table.insert(2, joined);
        assert!(table.is_covered(2, &with_r3(5)));
        // …but a different pc is a different bucket…
        assert!(!table.is_covered(3, &a));
        // …and an incomparable state is not covered.
        assert!(!table.is_covered(2, &with_r3(9)));
        assert_eq!(table.states_pruned(), 2);
        assert!(table.subset_checks() >= table.states_pruned());
        assert!(!table.is_empty());
    }

    #[test]
    fn dominance_eviction_drops_subsumed_entries() {
        let mut table = VisitedTable::new(2);
        let a = with_r3(1);
        table.insert(1, a.clone());
        assert_eq!(table.entries(1).len(), 1);
        // The join subsumes `a`: inserting it evicts `a`, and anything
        // `a` covered is still covered by the survivor.
        let joined = a.union(&with_r3(5));
        table.insert(1, joined);
        assert_eq!(table.entries(1).len(), 1, "dominated entry evicted");
        assert_eq!(table.visited_evicted(), 1);
        assert!(table.is_covered(1, &a), "survivor still covers");
        // An incomparable insertion evicts nothing.
        table.insert(1, with_r3(9));
        assert_eq!(table.entries(1).len(), 2);
        assert_eq!(table.visited_evicted(), 1);
    }

    #[test]
    fn chain_cap_evicts_oldest_first() {
        let mut table = VisitedTable::with_cap(1, 2);
        table.insert(0, with_r3(1));
        table.insert(0, with_r3(2));
        table.insert(0, with_r3(3)); // displaces with_r3(1)
        assert_eq!(table.entries(0).len(), 2);
        assert_eq!(table.visited_evicted(), 1);
        // The oldest entry is gone: its state no longer covers.
        assert!(!table.is_covered(0, &with_r3(1)));
        assert!(table.is_covered(0, &with_r3(3)), "newest survives");
        // cap == 0 means unbounded.
        let mut unbounded = VisitedTable::with_cap(1, 0);
        for k in 0..100 {
            unbounded.insert(0, with_r3(k));
        }
        assert_eq!(unbounded.entries(0).len(), 100);
        assert_eq!(unbounded.visited_evicted(), 0);
    }

    #[test]
    fn fingerprint_mismatches_skip_deep_probes_past_the_budget() {
        let mut table = VisitedTable::with_cap(1, 0);
        for k in 0..16 {
            table.insert(0, with_r3(100 + k));
        }
        let checks_before = table.subset_checks();
        // An incomparable arrival: every candidate's fingerprint
        // mismatches, so only the strict-probe budget runs deep checks
        // and the rest are O(1) rejects.
        assert!(!table.is_covered(0, &with_r3(7)));
        assert_eq!(table.subset_checks() - checks_before, 2);
        assert_eq!(table.fingerprint_rejects(), 14);
        // An arrival *equal* to the oldest entry is still found: the
        // fingerprint match forces the deep probe wherever it sits.
        assert!(table.is_covered(0, &with_r3(100)));
    }

    #[test]
    fn masked_probes_skip_every_mismatched_fingerprint() {
        let mut table = VisitedTable::with_cap(1, 0);
        for k in 0..16 {
            table.insert(0, with_r3(100 + k));
        }
        let checks_before = table.subset_checks();
        // Incomparable arrival: all fingerprints mismatch, and the
        // masked path spends no strict probes on them at all.
        assert!(!table.is_covered_masked(0, &with_r3(7)));
        assert_eq!(table.subset_checks(), checks_before, "no deep probes");
        assert_eq!(table.fingerprint_rejects(), 16);
        assert_eq!(table.masked_prunes(), 0);
        // The equality path is untouched: a fingerprint match forces
        // the deep probe wherever the entry sits in the chain.
        assert!(table.is_covered_masked(0, &with_r3(100)));
        assert_eq!(table.masked_prunes(), 1);
        assert_eq!(table.states_pruned(), 1);
    }

    #[test]
    fn joined_is_the_union_over_entries() {
        let mut table = VisitedTable::new(2);
        assert!(table.joined(1).is_none());
        table.insert(1, with_r3(1));
        table.insert(1, with_r3(4));
        let j = table.joined(1).expect("two entries");
        let r3 = j.reg(Reg::R3).as_scalar().unwrap();
        assert!(r3.contains(1) && r3.contains(4));
        assert_eq!(table.entries(1).len(), 2);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn joined_single_entry_is_an_rc_share_with_zero_bytes_materialized() {
        let mut table = VisitedTable::new(2);
        table.insert(1, with_r3(7));
        crate::state::stats::reset();
        let j = table.joined(1).expect("one entry");
        let traffic = crate::state::stats::snapshot();
        assert_eq!(
            traffic.bytes, 0,
            "a single-entry join must not materialize anything"
        );
        assert_eq!(traffic.allocated, 0);
        // The summary literally shares the entry's components.
        let entry = table.entries(1).next().unwrap();
        assert!(j.shares_regs_with(entry) && j.shares_stack_with(entry));
    }

    #[test]
    fn concurrent_table_matches_sequential_probe_semantics() {
        // The same insert/probe script against both tables must make the
        // same decisions and count the same ledger (the concurrent table
        // is a drop-in for one worker).
        let mut seq = VisitedTable::with_cap(4, 0);
        let par = ConcurrentVisitedTable::with_cap(4, 0);
        for k in 0..16 {
            seq.insert(0, with_r3(100 + k));
            par.insert(0, &with_r3(100 + k), 0);
        }
        // Incomparable arrival: strict budget + fingerprint rejects.
        assert!(!seq.is_covered(0, &with_r3(7)));
        assert!(!par.is_covered(0, &with_r3(7), 0));
        assert_eq!(seq.subset_checks(), par.subset_checks());
        assert_eq!(seq.fingerprint_rejects(), par.fingerprint_rejects());
        // Equality hit deep in the chain; a strictly smaller arrival hits
        // through the strict budget.
        assert!(par.is_covered(0, &with_r3(100), 0));
        let joined = with_r3(1).union(&with_r3(5));
        seq.insert(1, joined.clone());
        par.insert(1, &joined, 0);
        assert!(par.is_covered(1, &with_r3(5), 0));
        assert_eq!(par.states_pruned(), 2);
        // Same-worker prunes are not "shared".
        assert_eq!(par.shared_prunes(), 0);
        // Masked probes spend no strict probes on mismatches.
        let before = par.subset_checks();
        assert!(!par.is_covered_masked(0, &with_r3(7), 0));
        assert_eq!(par.subset_checks(), before);
        assert_eq!(par.masked_prunes(), 0);
    }

    #[test]
    fn concurrent_table_counts_cross_worker_prunes() {
        let par = ConcurrentVisitedTable::with_cap(2, 0);
        par.insert(1, &with_r3(3), 0);
        // Worker 1 pruned by worker 0's entry: a shared prune.
        assert!(par.is_covered(1, &with_r3(3), 1));
        assert_eq!(par.shared_prunes(), 1);
        // Worker 0 pruned by its own entry: not shared.
        assert!(par.is_covered(1, &with_r3(3), 0));
        assert_eq!(par.shared_prunes(), 1);
        assert_eq!(par.states_pruned(), 2);
    }

    #[test]
    fn concurrent_table_dominance_eviction_and_chain_cap() {
        // Dominance: a covering insertion evicts the newest entries it
        // subsumes, exactly as in the sequential table.
        let par = ConcurrentVisitedTable::with_cap(2, 0);
        par.insert(1, &with_r3(1), 0);
        let joined = with_r3(1).union(&with_r3(5));
        par.insert(1, &joined, 0);
        assert_eq!(par.visited_evicted(), 1);
        assert!(par.is_covered(1, &with_r3(1), 0), "survivor still covers");
        // Chain cap: oldest-first displacement.
        let capped = ConcurrentVisitedTable::with_cap(1, 2);
        capped.insert(0, &with_r3(1), 0);
        capped.insert(0, &with_r3(2), 0);
        capped.insert(0, &with_r3(3), 0);
        assert_eq!(capped.visited_evicted(), 1);
        assert!(!capped.is_covered(0, &with_r3(1), 0), "oldest evicted");
        assert!(capped.is_covered(0, &with_r3(3), 0), "newest survives");
    }

    #[test]
    fn concurrent_table_stripes_cover_every_pc() {
        // More pcs than stripes: every pc must map to its own chain.
        let par = ConcurrentVisitedTable::with_cap(200, 0);
        for pc in 0..200 {
            par.insert(pc, &with_r3(pc as u64), 0);
        }
        for pc in 0..200 {
            assert!(par.is_covered(pc, &with_r3(pc as u64), 0), "pc {pc}");
            assert!(!par.is_covered(pc, &with_r3(pc as u64 + 1000), 0));
        }
    }

    #[test]
    fn concurrent_table_probes_spilled_stack_snapshots() {
        use crate::state::StackSlot;
        // A state with a spilled slot: the snapshot keeps the chunk
        // dense, and probes compare slotwise (Uninit covers everything,
        // a spill covers only included spills).
        let mut spilled = AbsState::entry();
        spilled.set_stack_slot(-8, StackSlot::Spill(RegValue::Scalar(Scalar::constant(9))));
        let par = ConcurrentVisitedTable::with_cap(1, 0);
        par.insert(0, &spilled, 0);
        assert!(par.is_covered(0, &spilled, 0), "equal spill covers");
        // The entry (all-Uninit stack = ⊤) covers the spilled arrival…
        let entry = AbsState::entry();
        par.insert(0, &entry, 0);
        assert!(par.is_covered(0, &spilled, 0));
        // …but the spilled entry does not cover an all-Uninit arrival
        // (Uninit only fits under Uninit): probe a fresh table.
        let only_spill = ConcurrentVisitedTable::with_cap(1, 0);
        only_spill.insert(0, &spilled, 0);
        assert!(!only_spill.is_covered(0, &entry, 0));
    }
}
