//! Deterministic fail-point injection for testing the analyzer's own
//! fault tolerance.
//!
//! The batch and parallel layers promise *containment*: a panic, a
//! poisoned lock, or a blown deadline in one program's analysis must
//! never take down its siblings. That promise is only worth something
//! if it is exercised, so this module lets tests (and operators, via
//! the `TNUM_FAILPOINTS` environment variable) register a
//! [`FaultPlan`] — a deterministic schedule of faults keyed on
//! *site × hit-count* — and have the hot paths trigger them at
//! instrumented [`FaultSite`]s.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disarmed.** Production runs carry no plan; the
//!    only overhead at each site is one relaxed atomic load of
//!    [`ARMED`](struct@std::sync::atomic::AtomicBool) and a predicted
//!    branch. No lock is touched.
//! 2. **Deterministic.** A plan fires at exact hit counts, and the
//!    randomized campaign constructor ([`FaultPlan::scattered`]) is
//!    seeded with the same SplitMix64 generator as the rest of the
//!    workspace's fuzz infrastructure — every failure is replayable.
//! 3. **Serialized.** `cargo test` runs tests on concurrent threads,
//!    and the plan is process-global, so [`install`] hands back an
//!    RAII [`FaultGuard`] that holds a global install lock: two
//!    fault-injection tests never interleave, and dropping the guard
//!    always disarms.
//!
//! The sites are chosen so every containment layer is reachable: the
//! per-visit sites sit on the cooperative budget/deadline checks of
//! each strategy, [`FaultSite::MemoInsert`] and
//! [`FaultSite::VisitedProbe`] fire *while the corresponding shard or
//! stripe lock is held* (so an injected panic poisons a real lock,
//! exercising the poison-recovering accessors), and
//! [`FaultSite::ParshardJob`] fires inside a stealable job on a worker
//! thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use domain::rng::SplitMix64;

/// An instrumented location in the analyzer where a registered fault
/// plan can fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// The widening fixpoint's per-visit budget check
    /// (`fixpoint::run`'s worklist loop).
    FixpointVisit,
    /// The sequential path explorer's per-visit budget check
    /// (`PathSensitive::explore`'s DFS loop).
    PathVisit,
    /// The parallel explorer's per-visit budget check, on a worker
    /// thread inside a stealable job (`parshard::run_job`).
    ParshardJob,
    /// Inside [`TransferMemo::insert`](crate::TransferMemo::insert),
    /// **while the shard lock is held** — a panic here poisons the
    /// shard.
    MemoInsert,
    /// Inside the shared visited-table probe
    /// ([`ConcurrentVisitedTable`](crate::ConcurrentVisitedTable)),
    /// **while the stripe lock is held** — a panic here poisons the
    /// stripe.
    VisitedProbe,
}

/// All sites, for randomized campaigns.
pub const ALL_SITES: [FaultSite; 5] = [
    FaultSite::FixpointVisit,
    FaultSite::PathVisit,
    FaultSite::ParshardJob,
    FaultSite::MemoInsert,
    FaultSite::VisitedProbe,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::FixpointVisit => 0,
            FaultSite::PathVisit => 1,
            FaultSite::ParshardJob => 2,
            FaultSite::MemoInsert => 3,
            FaultSite::VisitedProbe => 4,
        }
    }

    /// The spec-string name used by [`FaultPlan::from_spec`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FixpointVisit => "fixpoint-visit",
            FaultSite::PathVisit => "path-visit",
            FaultSite::ParshardJob => "parshard-job",
            FaultSite::MemoInsert => "memo-insert",
            FaultSite::VisitedProbe => "visited-probe",
        }
    }

    fn from_name(name: &str) -> Option<FaultSite> {
        ALL_SITES.into_iter().find(|s| s.name() == name)
    }
}

/// What happens when a planned fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an `"injected panic …"` string payload. Contained by
    /// the session/batch/parshard `catch_unwind` layers and surfaced
    /// as [`VerifierError::InternalFault`](crate::VerifierError).
    Panic,
    /// Sleep for the given duration — for racing deadlines and
    /// exercising slow-worker paths without changing any verdict.
    Delay(Duration),
    /// Panic like [`FaultAction::Panic`], but the payload says
    /// `"injected poison …"`. Meaningful at the in-lock sites
    /// ([`FaultSite::MemoInsert`], [`FaultSite::VisitedProbe`]), where
    /// the unwind poisons the held lock and the poison-recovering
    /// accessors must carry the siblings through.
    Poison,
}

/// One scheduled fault: fire `action` the `hit`-th time (1-based)
/// execution reaches `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    site: FaultSite,
    hit: u64,
    action: FaultAction,
}

/// A deterministic schedule of faults, built with the chainable
/// constructors and activated with [`install`].
///
/// Hit counts are 1-based and process-global per site: `panic_at(site,
/// 3)` fires on the third time *any* thread reaches `site` after
/// installation.
///
/// # Examples
///
/// ```
/// use verifier::failpoint::{self, FaultPlan, FaultSite};
/// let plan = FaultPlan::new()
///     .panic_at(FaultSite::PathVisit, 10)
///     .delay_at(FaultSite::ParshardJob, 1, std::time::Duration::from_millis(1));
/// let _guard = failpoint::install(plan); // disarmed again on drop
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<Entry>,
}

impl FaultPlan {
    /// An empty plan (fires nothing).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan schedules no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Schedules a panic the `hit`-th time `site` is reached.
    #[must_use]
    pub fn panic_at(mut self, site: FaultSite, hit: u64) -> FaultPlan {
        self.entries.push(Entry {
            site,
            hit,
            action: FaultAction::Panic,
        });
        self
    }

    /// Schedules a sleep of `delay` the `hit`-th time `site` is
    /// reached.
    #[must_use]
    pub fn delay_at(mut self, site: FaultSite, hit: u64, delay: Duration) -> FaultPlan {
        self.entries.push(Entry {
            site,
            hit,
            action: FaultAction::Delay(delay),
        });
        self
    }

    /// Schedules a lock-poisoning panic the `hit`-th time `site` is
    /// reached (see [`FaultAction::Poison`]).
    #[must_use]
    pub fn poison_at(mut self, site: FaultSite, hit: u64) -> FaultPlan {
        self.entries.push(Entry {
            site,
            hit,
            action: FaultAction::Poison,
        });
        self
    }

    /// A randomized campaign plan: `faults` faults scattered over all
    /// sites at hit counts in `[1, max_hit]`, derived deterministically
    /// from `seed` with the workspace's SplitMix64. Panics dominate
    /// (3:1 over 1 ms delays) because they exercise the containment
    /// layers hardest.
    #[must_use]
    pub fn scattered(seed: u64, faults: usize, max_hit: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let site = ALL_SITES[rng.below(ALL_SITES.len() as u64) as usize];
            let hit = rng.range(1, max_hit.max(1) + 1);
            plan = if rng.below(4) == 0 {
                plan.delay_at(site, hit, Duration::from_millis(1))
            } else {
                plan.panic_at(site, hit)
            };
        }
        plan
    }

    /// Parses the `TNUM_FAILPOINTS` spec format: comma-separated
    /// `site:action@hit` clauses, where `site` is a
    /// [`FaultSite::name`], `action` is `panic`, `poison`, or
    /// `delay=<ms>`, and `hit` is the 1-based hit count.
    ///
    /// ```
    /// use verifier::failpoint::FaultPlan;
    /// let plan = FaultPlan::from_spec("path-visit:panic@10,memo-insert:delay=5@1").unwrap();
    /// assert!(!plan.is_empty());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the malformed clause.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let bad = || format!("malformed fail-point clause `{clause}` (want site:action@hit)");
            let (site, rest) = clause.split_once(':').ok_or_else(bad)?;
            let (action, hit) = rest.split_once('@').ok_or_else(bad)?;
            let site = FaultSite::from_name(site)
                .ok_or_else(|| format!("unknown fail-point site `{site}`"))?;
            let hit: u64 = hit.parse().map_err(|_| bad())?;
            plan = if action == "panic" {
                plan.panic_at(site, hit)
            } else if action == "poison" {
                plan.poison_at(site, hit)
            } else if let Some(ms) = action.strip_prefix("delay=") {
                let ms: u64 = ms.parse().map_err(|_| bad())?;
                plan.delay_at(site, hit, Duration::from_millis(ms))
            } else {
                return Err(format!("unknown fail-point action `{action}`"));
            };
        }
        Ok(plan)
    }
}

/// The armed plan plus per-site hit counters (reset on every install).
struct PlanState {
    entries: Vec<Entry>,
    hits: [u64; ALL_SITES.len()],
}

/// Fast-path gate: true only while a non-empty plan is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);
/// Serializes concurrent [`install`]s (the plan is process-global and
/// `cargo test` is multi-threaded).
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A test that fails an assertion while holding the install lock
    // poisons it; the lock data is `()`/plain state, so recovery is
    // always safe.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII handle for an installed [`FaultPlan`]: holds the global
/// install lock (serializing fault-injection tests) and disarms the
/// plan and restores the panic hook when dropped.
#[must_use = "the plan is disarmed when the guard drops"]
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

/// Installs `plan` process-wide and returns the guard keeping it
/// armed. Hit counters start at zero. While armed, a quiet panic hook
/// suppresses the default stderr backtrace for *injected* panics only
/// (their payloads are recognizable strings); genuine panics still
/// reach the previous hook.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let lock = recover(&INSTALL_LOCK);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected "));
        if !injected {
            prev(info);
        }
    }));
    *recover(&PLAN) = Some(PlanState {
        entries: plan.entries,
        hits: [0; ALL_SITES.len()],
    });
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _lock: lock }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *recover(&PLAN) = None;
        // take_hook also reinstates the std default hook, dropping the
        // quiet wrapper installed by `install`.
        drop(std::panic::take_hook());
    }
}

/// Arms a plan from the `TNUM_FAILPOINTS` environment variable, if
/// set and non-empty. Used by the `annotate` CLI so operators can
/// rehearse fault handling without writing a test.
///
/// # Errors
///
/// Propagates [`FaultPlan::from_spec`] parse errors.
pub fn arm_from_env() -> Result<Option<FaultGuard>, String> {
    match std::env::var("TNUM_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => Ok(Some(install(FaultPlan::from_spec(&spec)?))),
        _ => Ok(None),
    }
}

/// The instrumentation hook: called from each [`FaultSite`]. Free when
/// no plan is armed (one relaxed load); otherwise bumps the site's hit
/// counter and performs the scheduled action, if any.
///
/// # Panics
///
/// Panics deliberately when the armed plan schedules
/// [`FaultAction::Panic`] or [`FaultAction::Poison`] for this hit.
#[inline]
pub fn fire(site: FaultSite) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    fire_armed(site);
}

#[cold]
fn fire_armed(site: FaultSite) {
    // Decide under the plan lock, act after releasing it: an injected
    // panic must never poison the plan's own mutex.
    let action = {
        let mut plan = recover(&PLAN);
        let Some(state) = plan.as_mut() else { return };
        state.hits[site.index()] += 1;
        let hit = state.hits[site.index()];
        state
            .entries
            .iter()
            .find(|e| e.site == site && e.hit == hit)
            .map(|e| e.action)
    };
    match action {
        None => {}
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Panic) => {
            std::panic::panic_any(format!("injected panic at {} ", site.name()))
        }
        Some(FaultAction::Poison) => {
            std::panic::panic_any(format!("injected poison at {} ", site.name()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_fire_is_a_no_op() {
        for site in ALL_SITES {
            fire(site); // must not panic, must not block
        }
    }

    #[test]
    fn plan_fires_at_exact_hit_count() {
        let _guard = install(FaultPlan::new().panic_at(FaultSite::MemoInsert, 3));
        fire(FaultSite::MemoInsert);
        fire(FaultSite::MemoInsert);
        fire(FaultSite::VisitedProbe); // different site: own counter
        let caught = std::panic::catch_unwind(|| fire(FaultSite::MemoInsert));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with("injected panic at memo-insert"));
        // Hit 4 and beyond: nothing scheduled.
        fire(FaultSite::MemoInsert);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _guard = install(FaultPlan::new().panic_at(FaultSite::PathVisit, 1));
        }
        fire(FaultSite::PathVisit); // must not panic: plan disarmed
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let plan = FaultPlan::from_spec("path-visit:panic@10, memo-insert:delay=5@1").unwrap();
        assert_eq!(
            plan,
            FaultPlan::new()
                .panic_at(FaultSite::PathVisit, 10)
                .delay_at(FaultSite::MemoInsert, 1, Duration::from_millis(5))
        );
        assert_eq!(FaultPlan::from_spec("").unwrap(), FaultPlan::new());
        assert!(FaultPlan::from_spec("nowhere:panic@1")
            .unwrap_err()
            .contains("unknown fail-point site"));
        assert!(FaultPlan::from_spec("path-visit:explode@1")
            .unwrap_err()
            .contains("unknown fail-point action"));
        assert!(FaultPlan::from_spec("path-visit")
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn scattered_is_deterministic_in_the_seed() {
        let a = FaultPlan::scattered(7, 6, 50);
        let b = FaultPlan::scattered(7, 6, 50);
        assert_eq!(a, b);
        assert_eq!(a.entries.len(), 6);
        assert!(a.entries.iter().all(|e| (1..=50).contains(&e.hit)));
        assert_ne!(a, FaultPlan::scattered(8, 6, 50));
    }

    #[test]
    fn delay_action_sleeps_without_panicking() {
        let _guard = install(FaultPlan::new().delay_at(
            FaultSite::FixpointVisit,
            1,
            Duration::from_millis(1),
        ));
        let before = std::time::Instant::now();
        fire(FaultSite::FixpointVisit);
        assert!(before.elapsed() >= Duration::from_millis(1));
    }
}
