//! Call-site type checking against the shared helper registry
//! ([`ebpf::helpers`]) — the abstract half of the helper subsystem.
//!
//! The kernel's `check_helper_call` resolves a `bpf_func_proto` per
//! helper id and walks the argument registers against its
//! `arg_type`s; this module does the same over [`AbsState`]:
//!
//! * each argument register must hold the [`ArgKind`] the signature
//!   demands (scalar, ctx pointer, map handle, stack region pointer);
//! * a stack-region argument is bounds-checked against the frame and —
//!   for readable regions — every possibly-touched byte must be
//!   initialized, with the region's byte length resolved from a sibling
//!   map-handle argument ([`RegionSize`]), mirroring the kernel's
//!   key/value sizing;
//! * `r0` is typed per the signature's [`RetKind`] — notably
//!   `map_lookup` produces a [`RegValue::MapValuePtr`] with
//!   `or_null: true`, unusable until a NULL check refines it;
//! * `r1`–`r5` are clobbered to [`RegValue::Uninit`].
//!
//! Helper transfers are deliberately **never memoized**: they produce
//! pointers and model impure runtime behaviour, so every call site is
//! re-checked against the live state (see the memo-exclusion test in
//! `tests/helper_calls.rs`).

use ebpf::helpers::{helper_sig, map_def, ArgKind, RegionSize, RetKind};
use ebpf::{Reg, STACK_SIZE};

use crate::error::VerifierError;
use crate::scalar::Scalar;
use crate::state::AbsState;
use crate::value::RegValue;

/// The argument registers in signature order.
const ARG_REGS: [Reg; 5] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];

/// Type-checks one `call helper` site against the registry and applies
/// its effect on `state`: argument kinds, stack-region bounds and
/// initialization, `r0` typing, and the `r1`–`r5` clobber.
///
/// # Errors
///
/// [`VerifierError::UnknownHelper`] for an unregistered id,
/// [`VerifierError::BadHelperArg`] for an argument of the wrong kind,
/// and the existing memory errors ([`VerifierError::OutOfBounds`],
/// [`VerifierError::UninitStackRead`]) for bad stack regions.
pub fn check_call(state: &mut AbsState, helper: u32, pc: usize) -> Result<(), VerifierError> {
    let sig = helper_sig(helper).ok_or(VerifierError::UnknownHelper { helper, pc })?;

    // Writable regions are applied after all arguments check out, so a
    // later argument error cannot leave a half-applied effect.
    let mut writes: Vec<(i64, i64)> = Vec::new();

    for (i, kind) in sig.args.iter().enumerate() {
        let reg = ARG_REGS[i];
        let arg = u8::try_from(i + 1).expect("at most five args");
        let bad = |expected: &'static str| VerifierError::BadHelperArg {
            helper,
            arg,
            expected,
            pc,
        };
        match (kind, state.reg(reg)) {
            (ArgKind::Scalar, RegValue::Scalar(_)) => {}
            (ArgKind::Scalar, _) => return Err(bad("a scalar")),
            (ArgKind::CtxPtr, RegValue::CtxPtr { .. }) => {}
            (ArgKind::CtxPtr, _) => return Err(bad("a context pointer")),
            (ArgKind::MapHandle, RegValue::MapHandle { .. }) => {}
            (ArgKind::MapHandle, _) => return Err(bad("a map handle")),
            (ArgKind::StackRegion { writable, size }, RegValue::StackPtr { offset }) => {
                let len = region_len(state, sig.id, *size, pc)?;
                let (lo, hi) = (offset.bounds().smin(), offset.bounds().smax());
                let end = hi.checked_add(len);
                if lo < -(STACK_SIZE as i64) || !end.is_some_and(|e| e <= 0) {
                    return Err(VerifierError::OutOfBounds {
                        region: "stack",
                        min_off: lo,
                        max_end: end.unwrap_or(i64::MAX),
                        pc,
                    });
                }
                if *writable {
                    // The helper overwrites exactly `len` bytes at the
                    // pointer; a variable offset would force marking
                    // possibly-unwritten bytes initialized, so require a
                    // constant one.
                    if lo != hi {
                        return Err(bad("a constant-offset stack region"));
                    }
                    writes.push((lo, lo + len));
                } else if !state.stack_range_initialized(lo, hi + len) {
                    return Err(VerifierError::UninitStackRead { pc });
                }
            }
            (ArgKind::StackRegion { .. }, _) => return Err(bad("a stack pointer")),
        }
    }

    let ret = match sig.ret {
        RetKind::Scalar => RegValue::unknown_scalar(),
        RetKind::MapValueOrNull { map_arg } => {
            let RegValue::MapHandle { map } = state.reg(ARG_REGS[map_arg]) else {
                unreachable!("map_arg kind was checked above");
            };
            RegValue::MapValuePtr {
                map,
                or_null: true,
                offset: Scalar::constant(0),
            }
        }
    };

    for (lo, end) in writes {
        state.smear_stack(lo, end);
    }
    for r in ARG_REGS {
        state.set_reg(r, RegValue::Uninit);
    }
    state.set_reg(Reg::R0, ret);
    Ok(())
}

/// Resolves the byte length of a stack-region argument from its sibling
/// argument per [`RegionSize`].
fn region_len(
    state: &AbsState,
    helper: u32,
    size: RegionSize,
    pc: usize,
) -> Result<i64, VerifierError> {
    let of_map = |arg: usize, f: fn(&ebpf::MapDef) -> u32| {
        let RegValue::MapHandle { map } = state.reg(ARG_REGS[arg]) else {
            // The registry only sizes regions from MapHandle arguments,
            // which were (or will be) kind-checked; report the sibling.
            return Err(VerifierError::BadHelperArg {
                helper,
                arg: u8::try_from(arg + 1).expect("at most five args"),
                expected: "a map handle",
                pc,
            });
        };
        let def = map_def(map).ok_or(VerifierError::UnknownMap { map, pc })?;
        Ok(i64::from(f(def)))
    };
    match size {
        RegionSize::KeyOf { arg } => of_map(arg, |d| d.key_size),
        RegionSize::ValueOf { arg } => of_map(arg, |d| d.value_size),
        RegionSize::Fixed(n) => Ok(i64::from(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::helpers::HELPER_MAP_LOOKUP;

    fn state_with(regs: &[(Reg, RegValue)]) -> AbsState {
        let mut s = AbsState::entry();
        for &(r, v) in regs {
            s.set_reg(r, v);
        }
        s
    }

    #[test]
    fn unknown_helper_is_rejected() {
        let mut s = AbsState::entry();
        assert_eq!(
            check_call(&mut s, 99, 5),
            Err(VerifierError::UnknownHelper { helper: 99, pc: 5 })
        );
    }

    #[test]
    fn lookup_requires_a_map_handle_in_r1() {
        let mut s = state_with(&[
            (Reg::R1, RegValue::unknown_scalar()),
            (
                Reg::R2,
                RegValue::StackPtr {
                    offset: Scalar::constant((-8i64) as u64),
                },
            ),
        ]);
        assert_eq!(
            check_call(&mut s, HELPER_MAP_LOOKUP, 3),
            Err(VerifierError::BadHelperArg {
                helper: HELPER_MAP_LOOKUP,
                arg: 1,
                expected: "a map handle",
                pc: 3
            })
        );
    }

    #[test]
    fn lookup_types_r0_and_clobbers_args() {
        let mut s = state_with(&[
            (Reg::R1, RegValue::MapHandle { map: 0 }),
            (
                Reg::R2,
                RegValue::StackPtr {
                    offset: Scalar::constant((-8i64) as u64),
                },
            ),
        ]);
        // Initialize the 4-byte key region at [-8, -4).
        s.smear_stack(-8, -4);
        check_call(&mut s, HELPER_MAP_LOOKUP, 0).expect("well-typed call");
        assert_eq!(
            s.reg(Reg::R0),
            RegValue::MapValuePtr {
                map: 0,
                or_null: true,
                offset: Scalar::constant(0)
            }
        );
        for r in ARG_REGS {
            assert_eq!(s.reg(r), RegValue::Uninit, "{r} clobbered");
        }
    }

    #[test]
    fn lookup_key_region_must_be_initialized_and_in_bounds() {
        let key_at = |off: i64| {
            state_with(&[
                (Reg::R1, RegValue::MapHandle { map: 0 }),
                (
                    Reg::R2,
                    RegValue::StackPtr {
                        offset: Scalar::constant(off as u64),
                    },
                ),
            ])
        };
        // Uninitialized key bytes.
        let mut s = key_at(-8);
        assert_eq!(
            check_call(&mut s, HELPER_MAP_LOOKUP, 2),
            Err(VerifierError::UninitStackRead { pc: 2 })
        );
        // Key region runs past the frame top.
        let mut s = key_at(-2);
        s.smear_stack(-8, 0);
        assert!(matches!(
            check_call(&mut s, HELPER_MAP_LOOKUP, 2),
            Err(VerifierError::OutOfBounds {
                region: "stack",
                ..
            })
        ));
    }
}
