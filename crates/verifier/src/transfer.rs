//! The transfer layer: abstract semantics of individual instructions —
//! ALU arithmetic (including pointer arithmetic), conditional branches
//! with two-sided refinement, and bounds/alignment-checked memory access.
//!
//! [`Transfer`] is deliberately *stateless across instructions*: it maps
//! one `(state, instruction)` pair to successor contributions and knows
//! nothing about iteration order, joins, or widening — that is
//! [`crate::fixpoint`]'s job. The split mirrors the paper's architecture
//! (abstract operators vs. the analysis driving them) and keeps every
//! safety check in one place regardless of how the engine schedules it.
//!
//! Two properties keep the per-visit hot path cheap for both engines:
//! successor contributions come back in the inline, allocation-free
//! [`Successors`] pair (an instruction has at most a fall-through and a
//! jump target), and every state write goes through the copy-on-write
//! layer — a stack store materializes one ~0.5 KiB chunk of the frame,
//! never the whole 4 KiB array, and a no-op write (a refinement that
//! derived the same value) keeps components shared, which preserves both
//! the `Rc` short-circuits and the state fingerprints downstream pruning
//! probes lean on.

use ebpf::{AluOp, Insn, JmpOp, MemSize, Program, Reg, Src, Width, STACK_SIZE};

use crate::analyzer::AnalyzerOptions;
use crate::branch::{refine, refine32};
use crate::error::VerifierError;
use crate::memo::{MemoEffect, MemoKey};
use crate::scalar::Scalar;
use crate::state::{value_fingerprint, AbsState, StackSlot};
use crate::value::RegValue;

/// The successor contributions of one abstract step: at most two
/// (the fall-through and a jump target), stored inline so the hottest
/// path of both exploration engines — one `step` per visit — performs
/// no heap allocation.
///
/// Iterate it like the `Vec` it replaces:
///
/// ```
/// use ebpf::asm::assemble;
/// use verifier::transfer::Transfer;
/// use verifier::{AbsState, AnalyzerOptions};
///
/// let prog = assemble("r0 = 0\nexit")?;
/// let transfer = Transfer::new(AnalyzerOptions::default());
/// for (succ, _state) in transfer.step(&prog, AbsState::entry(), 0)? {
///     assert_eq!(succ, 1);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Successors {
    slots: [Option<(usize, AbsState)>; 2],
}

impl Successors {
    /// No successors (`exit`, or a branch with both edges infeasible).
    fn none() -> Successors {
        Successors::default()
    }

    /// A single successor.
    fn one(pc: usize, state: AbsState) -> Successors {
        Successors {
            slots: [Some((pc, state)), None],
        }
    }

    /// Fall-through and/or taken edge of a conditional jump, either of
    /// which may have been refined away as infeasible.
    fn branch(fall: Option<(usize, AbsState)>, taken: Option<(usize, AbsState)>) -> Successors {
        Successors {
            slots: [fall, taken],
        }
    }
}

impl IntoIterator for Successors {
    type Item = (usize, AbsState);
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<(usize, AbsState)>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter().flatten()
    }
}

/// The instruction-semantics half of the analyzer: one abstract step.
#[derive(Clone, Debug)]
pub struct Transfer {
    options: AnalyzerOptions,
}

/// The abstract value produced by a load of `size` bytes whose content is
/// not tracked: zero-extended, so the high `64 - 8·size` bits are known
/// zero (the kernel's `coerce_reg_to_size`). Bounding a `u8` load to
/// `[0, 255]` is what lets a 32-bit guard on it transfer range facts to
/// the full register.
fn loaded_value(size: MemSize) -> RegValue {
    if size == MemSize::DW {
        return RegValue::unknown_scalar();
    }
    let low = u64::MAX >> (64 - 8 * size.bytes());
    RegValue::Scalar(Scalar::from_tnum(tnum::Tnum::masked(0, low)))
}

impl Transfer {
    /// Builds the transfer layer for one analysis configuration.
    #[must_use]
    pub fn new(options: AnalyzerOptions) -> Transfer {
        Transfer { options }
    }

    /// Executes one instruction abstractly: runs every safety check and
    /// returns the `(successor, out-state)` contributions.
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] when the instruction is provably unsafe under
    /// `state` — the program must be rejected.
    pub fn step(
        &self,
        prog: &Program,
        state: AbsState,
        pc: usize,
    ) -> Result<Successors, VerifierError> {
        let insn = prog.insns()[pc];
        self.check_reads(&state, insn, pc)?;
        match insn {
            Insn::Jmp {
                width,
                op,
                dst,
                src,
                off,
            } => {
                let taken_target = prog.jump_target(pc, off).expect("validated");
                let (fall, taken) = self.branch_states(&state, width, op, dst, src)?;
                Ok(Successors::branch(
                    fall.map(|s| (pc + 1, s)),
                    taken.map(|s| (taken_target, s)),
                ))
            }
            Insn::Ja { off } => {
                let target = prog.jump_target(pc, off).expect("validated");
                Ok(Successors::one(target, state))
            }
            Insn::Exit => match state.reg(Reg::R0) {
                RegValue::Uninit => Err(VerifierError::NoReturnValue { pc }),
                RegValue::Scalar(_) => Ok(Successors::none()),
                _ => Err(VerifierError::PointerLeak { pc }),
            },
            _ => {
                let next = self.transfer(state, insn, pc)?;
                Ok(Successors::one(pc + 1, next))
            }
        }
    }

    /// Rejects reads of uninitialized registers.
    fn check_reads(&self, state: &AbsState, insn: Insn, pc: usize) -> Result<(), VerifierError> {
        // Helper calls are checked argument-by-argument against the
        // registry in [`crate::helpers::check_call`], which knows each
        // helper's arity — `use_regs` would over-approximate with all of
        // r1–r5.
        if matches!(insn, Insn::Call { .. }) {
            return Ok(());
        }
        for reg in insn.use_regs() {
            if !state.reg(reg).is_readable() {
                return Err(VerifierError::UninitRead { reg, pc });
            }
        }
        Ok(())
    }

    /// Transfer function for non-control-flow instructions.
    fn transfer(
        &self,
        mut state: AbsState,
        insn: Insn,
        pc: usize,
    ) -> Result<AbsState, VerifierError> {
        match insn {
            Insn::Alu {
                width,
                op,
                dst,
                src,
            } => {
                let new = self.alu_value(&state, width, op, dst, src, pc)?;
                state.set_reg(dst, new);
            }
            Insn::LoadImm64 { dst, imm } => {
                // A tagged immediate (`rD = map N`) loads a map handle —
                // the analogue of the kernel's BPF_PSEUDO_MAP_FD lddw,
                // whose fd the loader resolves before verification.
                let value = match ebpf::helpers::map_id_of_imm(imm) {
                    Some(map) if ebpf::helpers::map_def(map).is_some() => {
                        RegValue::MapHandle { map }
                    }
                    Some(map) => return Err(VerifierError::UnknownMap { map, pc }),
                    None => RegValue::Scalar(Scalar::constant(imm)),
                };
                state.set_reg(dst, value);
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                let value = self.check_load(&mut state, size, base, off, pc)?;
                state.set_reg(dst, value);
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                let value = match src {
                    Src::Reg(r) => state.reg(r),
                    Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
                };
                self.check_store(&mut state, size, base, off, value, pc)?;
            }
            Insn::Call { helper } => {
                // Never memoized: helper transfers produce pointers and
                // model impure runtime behaviour, so every call site is
                // re-checked against the live state.
                crate::helpers::check_call(&mut state, helper, pc)?;
            }
            Insn::Ja { .. } | Insn::Jmp { .. } | Insn::Exit => unreachable!("handled by caller"),
        }
        Ok(state)
    }

    /// Computes the new value of `dst` for an ALU instruction, modeling
    /// pointer arithmetic on `add`/`sub`/`mov`.
    fn alu_value(
        &self,
        state: &AbsState,
        width: Width,
        op: AluOp,
        dst: Reg,
        src: Src,
        pc: usize,
    ) -> Result<RegValue, VerifierError> {
        let rhs: RegValue = match src {
            Src::Reg(r) => state.reg(r),
            Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
        };
        let lhs = state.reg(dst);

        // Mov just propagates the source value (pointers included) at
        // 64-bit width; 32-bit mov truncates and hence scalarizes.
        if op == AluOp::Mov {
            return Ok(match (width, rhs) {
                (Width::W64, v) => v,
                (Width::W32, RegValue::Scalar(s)) => RegValue::Scalar(s.subreg()),
                (Width::W32, _) => RegValue::unknown_scalar(),
            });
        }

        match (lhs, rhs) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) => {
                Ok(RegValue::Scalar(self.memo_alu(width, op, a, b)))
            }
            // Pointer ± scalar keeps the region, shifting the offset.
            (RegValue::StackPtr { offset }, RegValue::Scalar(b))
                if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) =>
            {
                Ok(RegValue::StackPtr {
                    offset: offset.alu64(op, b),
                })
            }
            (RegValue::CtxPtr { offset }, RegValue::Scalar(b))
                if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) =>
            {
                Ok(RegValue::CtxPtr {
                    offset: offset.alu64(op, b),
                })
            }
            // Only a NULL-checked map value pointer may be shifted;
            // arithmetic on an `or_null` pointer (or on a map handle)
            // falls through to the rejection below, like the kernel's
            // "pointer arithmetic on map_value_or_null prohibited".
            (
                RegValue::MapValuePtr {
                    map,
                    or_null: false,
                    offset,
                },
                RegValue::Scalar(b),
            ) if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) => {
                Ok(RegValue::MapValuePtr {
                    map,
                    or_null: false,
                    offset: offset.alu64(op, b),
                })
            }
            // Same-region pointer difference yields a scalar.
            (RegValue::StackPtr { offset: a }, RegValue::StackPtr { offset: b })
            | (RegValue::CtxPtr { offset: a }, RegValue::CtxPtr { offset: b })
                if width == Width::W64 && op == AluOp::Sub =>
            {
                Ok(RegValue::Scalar(a.alu64(AluOp::Sub, b)))
            }
            (
                RegValue::MapValuePtr {
                    map: ma,
                    or_null: false,
                    offset: a,
                },
                RegValue::MapValuePtr {
                    map: mb,
                    or_null: false,
                    offset: b,
                },
            ) if ma == mb && width == Width::W64 && op == AluOp::Sub => {
                Ok(RegValue::Scalar(a.alu64(AluOp::Sub, b)))
            }
            (RegValue::Uninit, _) | (_, RegValue::Uninit) => {
                unreachable!("checked by check_reads")
            }
            _ => Err(VerifierError::BadPointerArithmetic { pc }),
        }
    }

    /// Scalar × scalar ALU arithmetic, through the transfer memo cache
    /// when [`AnalyzerOptions::memo_cache`] is set: a pure function of
    /// `(width, op, a, b)`, so a verified cache hit returns the
    /// bit-identical scalar the computation would have produced.
    fn memo_alu(&self, width: Width, op: AluOp, a: Scalar, b: Scalar) -> Scalar {
        let Some(cache) = &self.options.memo_cache else {
            return a.alu(width, op, b);
        };
        let key = MemoKey::alu(
            width,
            op,
            value_fingerprint(RegValue::Scalar(a)),
            value_fingerprint(RegValue::Scalar(b)),
        );
        if let Some(MemoEffect::Alu(out)) = cache.lookup(key, a, b) {
            return out;
        }
        let out = a.alu(width, op, b);
        cache.insert(key, a, b, MemoEffect::Alu(out));
        out
    }

    /// Both refined edges (`[fall, taken]`) of a scalar × scalar
    /// comparison, through the memo cache when enabled. Infeasible edges
    /// (`None`) are part of the cached effect — they are verdict-relevant
    /// and must reproduce exactly.
    fn memo_refine(
        &self,
        width: Width,
        op: JmpOp,
        a: Scalar,
        b: Scalar,
    ) -> [Option<(Scalar, Scalar)>; 2] {
        let compute = || {
            let edge = |taken| match width {
                Width::W64 => refine(op, taken, a, b),
                Width::W32 => refine32(op, taken, a, b),
            };
            [edge(false), edge(true)]
        };
        let Some(cache) = &self.options.memo_cache else {
            return compute();
        };
        let key = MemoKey::branch(
            width,
            op,
            value_fingerprint(RegValue::Scalar(a)),
            value_fingerprint(RegValue::Scalar(b)),
        );
        if let Some(MemoEffect::Branch(edges)) = cache.lookup(key, a, b) {
            return edges;
        }
        let edges = compute();
        cache.insert(key, a, b, MemoEffect::Branch(edges));
        edges
    }

    /// Produces the fall-through and taken states of a conditional jump
    /// (`None` for provably infeasible edges).
    ///
    /// 64-bit scalar/scalar comparisons refine through
    /// [`refine`]; 32-bit ones through [`refine32`], which sharpens the
    /// zero-extended low words (so `if w1 < 16` now bounds a 32-bit
    /// counter exactly instead of passing both edges through unrefined).
    #[allow(clippy::type_complexity)]
    fn branch_states(
        &self,
        state: &AbsState,
        width: Width,
        op: JmpOp,
        dst: Reg,
        src: Src,
    ) -> Result<(Option<AbsState>, Option<AbsState>), VerifierError> {
        let rhs: RegValue = match src {
            Src::Reg(r) => state.reg(r),
            Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
        };
        let lhs = state.reg(dst);

        // A NULL check on a may-be-NULL map value pointer splits it: the
        // nonzero edge carries a dereferenceable pointer, the zero edge a
        // known-NULL scalar (the kernel's `mark_ptr_or_null_reg`). This is
        // a safety-typing transition, not a precision refinement, so it is
        // not gated on `refine_branches` — and never memoized: it changes
        // a register's *kind*, outside the scalar-effect cache's domain.
        if let RegValue::MapValuePtr {
            map,
            or_null: true,
            offset,
        } = lhs
        {
            let vs_zero = matches!(rhs, RegValue::Scalar(s) if s.as_constant() == Some(0));
            if width == Width::W64 && vs_zero && matches!(op, JmpOp::Eq | JmpOp::Ne) {
                let with = |v: RegValue| {
                    let mut out = state.clone();
                    out.set_reg(dst, v);
                    Some(out)
                };
                let null = RegValue::Scalar(Scalar::constant(0));
                let ptr = RegValue::MapValuePtr {
                    map,
                    or_null: false,
                    offset,
                };
                return Ok(if op == JmpOp::Eq {
                    (with(ptr), with(null))
                } else {
                    (with(null), with(ptr))
                });
            }
        }

        // Refinement applies to scalar/scalar comparisons; pointers pass
        // both states through unchanged (sound).
        let (lhs_s, rhs_s) = match (lhs, rhs) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) if self.options.refine_branches => (a, b),
            _ => return Ok((Some(state.clone()), Some(state.clone()))),
        };

        let edges = self.memo_refine(width, op, lhs_s, rhs_s);
        let make = |edge: Option<(Scalar, Scalar)>| -> Option<AbsState> {
            let (d, s) = edge?;
            let mut out = state.clone();
            out.set_reg(dst, RegValue::Scalar(d));
            if let Src::Reg(r) = src {
                out.set_reg(r, RegValue::Scalar(s));
            }
            Some(out)
        };
        Ok((make(edges[0]), make(edges[1])))
    }

    /// Bounds- and alignment-checks a load, returning the loaded value.
    fn check_load(
        &self,
        state: &mut AbsState,
        size: MemSize,
        base: Reg,
        off: i16,
        pc: usize,
    ) -> Result<RegValue, VerifierError> {
        match state.reg(base) {
            RegValue::StackPtr { offset } => {
                let (lo, hi) =
                    self.check_region("stack", offset, off, size, -(STACK_SIZE as i64), 0, pc)?;
                if lo == hi && (lo % 8 == 0 || (lo - (lo & !7)) + size.bytes() as i64 <= 8) {
                    // Constant offset: consult the slot contents.
                    match state.stack_slot(lo).expect("in range") {
                        StackSlot::Uninit => Err(VerifierError::UninitStackRead { pc }),
                        StackSlot::Spill(v) if size == MemSize::DW && lo % 8 == 0 => Ok(v),
                        _ => Ok(loaded_value(size)),
                    }
                } else {
                    // Variable offset: every possibly-read byte must be
                    // initialized.
                    if state.stack_range_initialized(lo, hi + size.bytes() as i64) {
                        Ok(loaded_value(size))
                    } else {
                        Err(VerifierError::UninitStackRead { pc })
                    }
                }
            }
            RegValue::CtxPtr { offset } => {
                self.check_region(
                    "ctx",
                    offset,
                    off,
                    size,
                    0,
                    self.options.ctx_size as i64,
                    pc,
                )?;
                Ok(loaded_value(size))
            }
            RegValue::MapValuePtr { or_null: true, .. } => {
                Err(VerifierError::NullMapValue { reg: base, pc })
            }
            RegValue::MapValuePtr {
                map,
                or_null: false,
                offset,
            } => {
                self.check_map_value_region(map, offset, off, size, pc)?;
                Ok(loaded_value(size))
            }
            RegValue::Uninit => Err(VerifierError::UninitRead { reg: base, pc }),
            RegValue::Scalar(_) | RegValue::MapHandle { .. } => {
                Err(VerifierError::BadPointer { reg: base, pc })
            }
        }
    }

    /// Bounds- and alignment-checks a store, updating the stack state.
    fn check_store(
        &self,
        state: &mut AbsState,
        size: MemSize,
        base: Reg,
        off: i16,
        value: RegValue,
        pc: usize,
    ) -> Result<(), VerifierError> {
        // Uninitialized store *values* are already rejected by
        // check_reads: a store's use_regs() includes its source register.
        debug_assert!(value.is_readable());
        match state.reg(base) {
            RegValue::StackPtr { offset } => {
                let (lo, hi) =
                    self.check_region("stack", offset, off, size, -(STACK_SIZE as i64), 0, pc)?;
                if lo == hi && size == MemSize::DW && lo % 8 == 0 {
                    state.set_stack_slot(lo, StackSlot::Spill(value));
                } else {
                    state.smear_stack(lo, hi + size.bytes() as i64);
                }
                Ok(())
            }
            RegValue::CtxPtr { offset } => {
                self.check_region(
                    "ctx",
                    offset,
                    off,
                    size,
                    0,
                    self.options.ctx_size as i64,
                    pc,
                )?;
                Ok(())
            }
            RegValue::MapValuePtr { or_null: true, .. } => {
                Err(VerifierError::NullMapValue { reg: base, pc })
            }
            RegValue::MapValuePtr {
                map,
                or_null: false,
                offset,
            } => {
                // Map values are shared with user space: storing a
                // pointer into one would publish a kernel address (the
                // kernel's "leaks addr into map" rejection).
                if value.is_pointer() {
                    return Err(VerifierError::PointerLeak { pc });
                }
                self.check_map_value_region(map, offset, off, size, pc)?;
                Ok(())
            }
            RegValue::Uninit => Err(VerifierError::UninitRead { reg: base, pc }),
            RegValue::Scalar(_) | RegValue::MapHandle { .. } => {
                Err(VerifierError::BadPointer { reg: base, pc })
            }
        }
    }

    /// Bounds- and alignment-checks an access through a NULL-checked map
    /// value pointer against its map's `[0, value_size)` region.
    fn check_map_value_region(
        &self,
        map: u32,
        offset: Scalar,
        off: i16,
        size: MemSize,
        pc: usize,
    ) -> Result<(i64, i64), VerifierError> {
        // The map id was validated when the handle was loaded, and the
        // pointer kind only arises from a checked handle.
        let def = ebpf::helpers::map_def(map).expect("handle validated at lddw");
        self.check_region(
            "map_value",
            offset,
            off,
            size,
            0,
            i64::from(def.value_size),
            pc,
        )
    }

    /// Proves `region_lo <= offset + off` and
    /// `offset + off + size <= region_hi` for every possible offset, plus
    /// alignment under strict mode, through the memo cache when enabled:
    /// the verdict is a pure function of the offset scalar and the
    /// packed remaining inputs ([`Self::mem_check_params`]), so batches
    /// of similar programs (and repeated loop trips) skip the bounds
    /// arithmetic on their recurring accesses. Only `Ok` verdicts are
    /// cached — errors carry the failing `pc` and abort the walk.
    /// Returns the extreme byte offsets of the access start.
    #[allow(clippy::too_many_arguments)]
    fn check_region(
        &self,
        region: &'static str,
        offset: Scalar,
        off: i16,
        size: MemSize,
        region_lo: i64,
        region_hi: i64,
        pc: usize,
    ) -> Result<(i64, i64), VerifierError> {
        if let (Some(cache), Some(params)) = (
            &self.options.memo_cache,
            self.mem_check_params(region, off, size, region_hi),
        ) {
            let key = MemoKey::mem(value_fingerprint(RegValue::Scalar(offset)), params);
            let rhs = Scalar::constant(params);
            if let Some(MemoEffect::Mem(extremes)) = cache.lookup(key, offset, rhs) {
                return Ok(extremes);
            }
            let extremes =
                self.check_region_uncached(region, offset, off, size, region_lo, region_hi, pc)?;
            cache.insert(key, offset, rhs, MemoEffect::Mem(extremes));
            return Ok(extremes);
        }
        self.check_region_uncached(region, offset, off, size, region_lo, region_hi, pc)
    }

    /// Packs every input of a region check except the offset scalar into
    /// one verification word — the memo `rhs` operand — or `None` when
    /// the region extent is too large to pack losslessly (then the check
    /// simply runs uncached). The two-bit kind fixes `region_lo` (the
    /// stack frame's `-512`, zero otherwise) and the packed `region_hi`
    /// the extent, so the word determines the whole check — in
    /// particular a stack verdict can never satisfy a `map_value` check
    /// that happens to share an offset scalar.
    fn mem_check_params(
        &self,
        region: &'static str,
        off: i16,
        size: MemSize,
        region_hi: i64,
    ) -> Option<u64> {
        if !(0..1 << 40).contains(&region_hi) {
            return None;
        }
        let kind = match region {
            "stack" => 0u64,
            "ctx" => 1,
            _ => 2, // map_value
        };
        Some(
            u64::from(off as u16)
                | size.bytes() << 16
                | u64::from(self.options.strict_alignment) << 20
                | kind << 21
                | (region_hi as u64) << 23,
        )
    }

    /// The unmemoized region check: the bounds and alignment arithmetic
    /// itself.
    #[allow(clippy::too_many_arguments)]
    fn check_region_uncached(
        &self,
        region: &'static str,
        offset: Scalar,
        off: i16,
        size: MemSize,
        region_lo: i64,
        region_hi: i64,
        pc: usize,
    ) -> Result<(i64, i64), VerifierError> {
        let total = offset.alu64(AluOp::Add, Scalar::constant(off as i64 as u64));
        let lo = total.bounds().smin();
        let hi = total.bounds().smax();
        let end = hi.checked_add(size.bytes() as i64);
        let in_bounds = lo >= region_lo && end.is_some_and(|e| e <= region_hi);
        if !in_bounds {
            return Err(VerifierError::OutOfBounds {
                region,
                min_off: lo,
                max_end: end.unwrap_or(i64::MAX),
                pc,
            });
        }
        if self.options.strict_alignment && !total.tnum().is_aligned(size.bytes()) {
            return Err(VerifierError::Misaligned {
                region,
                size: size.bytes(),
                pc,
            });
        }
        Ok((lo, hi))
    }
}
