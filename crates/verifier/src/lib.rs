//! # verifier — a BPF-style static analyzer built on tnums
//!
//! This crate reproduces the *context* of the tnum paper: the Linux
//! kernel's eBPF verifier, which uses abstract interpretation to prove that
//! untrusted programs are memory-safe before they run in kernel context
//! (§I of the paper). Registers are tracked in a reduced product of two
//! domains:
//!
//! * the **tnum domain** ([`tnum::Tnum`]) for bit-level knowledge — the
//!   paper's subject, driving masking, alignment, and bitwise reasoning;
//! * the **bounds domain** ([`interval_domain::Bounds`]) for unsigned and
//!   signed ranges — driving comparisons and access-bounds checks.
//!
//! The two are coupled by the generic reduced product [`Product`], whose
//! [`normalize`](Product::normalize) drives the kernel's
//! `reg_bounds_sync` cross-refinement through the `domain::RefineFrom`
//! hooks; [`Scalar`] is the `Product<Tnum, Bounds>` instance the
//! analyzer tracks registers with. The entry point is the builder-style
//! [`VerificationSession`], which carries the [`AnalyzerOptions`] and
//! selects a pluggable exploration [`Strategy`] over three layers:
//!
//! * [`transfer`] — the abstract semantics of one instruction: ALU and
//!   pointer arithmetic, conditional branches with two-sided refinement
//!   at **both** widths (64-bit and zero-extended 32-bit sub-register
//!   compares), and bounds/alignment-checked memory access;
//! * [`explore`] — *how* those steps are scheduled, behind the
//!   [`ExplorationStrategy`] trait: [`Strategy::WideningFixpoint`]
//!   joins every path at merge points and widens at loop heads, while
//!   [`Strategy::PathSensitive`] DFS-walks branch paths kernel-style,
//!   prunes any state included in an already-explored one
//!   (`is_state_visited`, via a per-pc [`VisitedTable`]), unrolls the
//!   first [`AnalyzerOptions::unroll_k`] trips of each loop with exact
//!   per-trip precision, and falls back to widening past the bound;
//!   [`Strategy::PathParallel`] ([`parshard`]) shards that same walk
//!   over work-stealing workers with a shared
//!   [`ConcurrentVisitedTable`], bit-identical to the sequential walk;
//! * [`fixpoint`] — the reverse-postorder priority worklist behind the
//!   fixpoint strategy: joins at merge points, **per-register delayed
//!   widening** at loop heads (each register and stack slot burns its
//!   own [`AnalyzerOptions::widen_delay`]), widening thresholds
//!   harvested from the program's comparison immediates, one narrowing
//!   pass after stabilization, and a total-visit budget.
//!
//! The per-program-point state ([`state::AbsState`]) is **copy-on-write**:
//! the register file and the stack frame — itself [`STACK_CHUNKS`]
//! independently-`Rc`'d chunks of [`CHUNK_SLOTS`] slots — live behind
//! `Rc`s, so forking a state at a branch is two refcount bumps, a
//! transfer that writes one register shares all 64 stack slots
//! untouched, and a single spill materializes one ~0.5 KiB chunk, not a
//! 4 KiB frame. Every state also carries an incrementally maintained
//! 64-bit structural **fingerprint** ([`AbsState::fingerprint`]): equal
//! states always fingerprint equally, so the [`VisitedTable`] dismisses
//! unequal pruning candidates in O(1) and keeps its per-pc chains short
//! with dominance eviction and the [`AnalyzerOptions::visited_cap`]
//! chain cap. Joins and inclusion checks short-circuit components and
//! chunks on pointer identity — which is what makes path-sensitive
//! exploration (many live states) and its subset-based pruning
//! affordable — and [`AnalysisStats`] (on every [`Analysis`]) counts
//! the saved allocations, the copied bytes, and the pruning ledger
//! (probes, fingerprint rejects, evictions). Every memory access is
//! checked against its region — including tnum-based alignment
//! (`tnum_is_aligned`) under [`AnalyzerOptions::strict_alignment`] —
//! and the classic all-loops rejection survives under
//! [`AnalyzerOptions::reject_loops`].
//!
//! A bounded loop end to end — and because the path-sensitive strategy
//! unrolls the 16 trips instead of joining them at the loop head, it
//! proves the exit counter *exactly*, without a single widening:
//!
//! ```
//! use ebpf::asm::assemble;
//! use ebpf::Reg;
//! use verifier::{Strategy, VerificationSession};
//!
//! // memset(buf[0..16], 0), i bounded by its own exit test.
//! let prog = assemble(r"
//!     r1 = 0
//! loop:
//!     r3 = r10
//!     r3 += -16
//!     r3 += r1
//!     *(u8 *)(r3 + 0) = 0
//!     r1 += 1
//!     if r1 < 16 goto loop
//!     r0 = r1
//!     exit
//! ")?;
//! let analysis = VerificationSession::new()
//!     .with_strategy(Strategy::PathSensitive)
//!     .run(&prog)?;
//! assert!(analysis.is_accepted());
//! let r0 = analysis.state_before(8).unwrap().reg(Reg::R0).as_scalar().unwrap();
//! assert_eq!(r0.as_constant(), Some(16)); // exact, per-trip precision
//! assert_eq!(analysis.stats().widenings_applied, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The motivating example from §I of the paper works end to end under
//! the default session (the widening fixpoint):
//!
//! ```
//! use ebpf::asm::assemble;
//! use verifier::{Strategy, VerificationSession};
//!
//! // A value masked to 0b01x0 can be at most 6 <= 8, so an access at
//! // [r10 - 16 + idx] stays inside a 16-byte stack window.
//! let prog = assemble(r"
//!     r2 = *(u8 *)(r1 + 0)   ; untrusted byte
//!     r2 &= 6                ; tnum: 0000_0xx0, so r2 <= 6
//!     r3 = r10
//!     r3 += -16
//!     r3 += r2               ; within [r10-16, r10-10]
//!     *(u8 *)(r3 + 0) = 0    ; provably in bounds
//!     r0 = 0
//!     exit
//! ")?;
//! let analysis = VerificationSession::new().run(&prog)?;
//! assert!(analysis.is_accepted());
//! assert_eq!(analysis.strategy(), Strategy::WideningFixpoint);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::manual_checked_ops)]

mod analyzer;
pub mod batch;
mod branch;
pub mod cfg;
mod error;
pub mod explore;
pub mod failpoint;
pub mod fixpoint;
pub mod helpers;
pub mod memo;
pub mod parshard;
pub mod passes;
mod product;
mod scalar;
pub mod state;
pub mod transfer;
mod value;
pub mod visited;

pub use analyzer::{Analysis, Analyzer, AnalyzerOptions, DegradationPolicy, VerificationSession};
pub use batch::{BatchItem, BatchReport, BatchStats};
pub use branch::refine as refine_branch;
pub use branch::refine32 as refine_branch32;
pub use cfg::Cfg;
pub use error::VerifierError;
pub use explore::{Exploration, ExplorationStrategy, PathSensitive, Strategy, WideningFixpoint};
pub use failpoint::{FaultPlan, FaultSite};
pub use fixpoint::AnalysisStats;
pub use helpers::check_call;
pub use memo::{MemoEffect, MemoKey, TransferMemo};
pub use parshard::PathParallel;
pub use passes::{LiveSet, ProgramPasses};
pub use product::Product;
pub use scalar::Scalar;
pub use state::value_fingerprint;
pub use state::{AbsState, JoinCounters, StackSlot, CHUNK_SLOTS, STACK_CHUNKS};
pub use value::RegValue;
pub use visited::{ConcurrentVisitedTable, VisitedTable};
