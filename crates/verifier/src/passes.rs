//! Static-analysis passes over the [`Cfg`]: a reusable forward/backward
//! dataflow solver plus the three passes the analyzer ships with —
//! per-pc register/stack-slot **liveness**, **reaching definitions**,
//! and **unreachable/dead-code** detection.
//!
//! The kernel's eBPF verifier owes its single biggest pruning lever not
//! to a smarter join but to a *static* fact: per-pc liveness marks
//! (`mark_reg_read` / `clean_verifier_state`) let `is_state_visited`
//! ignore registers no future instruction can read, collapsing
//! exponentially many path states into equivalence classes. This module
//! computes those facts ahead of exploration so both engines can *clean*
//! dead components at checkpoints ([`crate::state::AbsState::clear_dead`])
//! — a cleaned component is [`crate::RegValue::Uninit`], the top of the
//! safety order, so it compares as covered in every inclusion probe and
//! hashes as a fixed salt in every fingerprint. Two states that differ
//! only in dead components become *equal* after cleaning and prune each
//! other for free.
//!
//! The framework half is deliberately generic: [`DataflowPass`] couples
//! a per-point fact with a join and a transfer, and [`solve`] runs the
//! classic priority worklist — reverse postorder for forward passes,
//! post-order (reversed RPO priority) for backward ones — until the
//! facts stabilize. All built-in passes use bitset facts (`u16` over
//! registers, `u64` over the 64 stack slots, `Vec<u64>` over definition
//! sites), so one solver iteration is a handful of word operations.
//!
//! Soundness of the liveness facts is calibrated against the transfer
//! layer's *actual* read surface, over-approximated where the static
//! pass cannot know better:
//!
//! * helper calls read the argument registers their registry signature
//!   names (`r1..r1+n` per [`ebpf::helpers::helper_sig`]; all of
//!   `r1`–`r5` for an unknown id) — and when the signature takes a
//!   stack-region argument, conservatively any stack slot — then
//!   clobber `r0`–`r5`; `exit` reads `r0` (return-value and
//!   pointer-leak checks);
//! * a load through `r10` at a constant offset reads exactly the slots
//!   covering its byte range (including the whole-slot reads of
//!   `stack_range_initialized`); a load through any register that *may*
//!   hold a derived stack pointer reads **all** slots — a dedicated
//!   forward [`StackTaint`] pass tracks which registers may be
//!   stack-derived, including spilled-and-reloaded pointers;
//! * a store through `r10` overwrites every slot its byte range
//!   intersects (both the tracked-spill and the `Misc`-smear paths
//!   replace the old contents wholesale), so those slots are *killed*;
//!   stores never read slot contents;
//! * `r10` is pinned live everywhere — it is the frame pointer every
//!   stack access re-derives from.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebpf::{AluOp, Insn, Program, Reg, Src, Width, STACK_SIZE};

use crate::cfg::Cfg;
use crate::state::SLOTS;

/// Bitmask of all architectural registers (`r0`–`r10`).
const ALL_REGS: u16 = (1 << 11) - 1;

/// Bitmask of the helper-call clobbers `r0`–`r5`.
const CALL_CLOBBERS: u16 = (1 << 6) - 1;

/// The direction facts flow in a [`DataflowPass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow with control flow (entry → exits); the solver
    /// processes instructions in reverse-postorder priority.
    Forward,
    /// Facts flow against control flow (exits → entry); the solver
    /// processes instructions in post-order priority.
    Backward,
}

/// One dataflow problem over the instruction-level [`Cfg`]: a per-point
/// fact, a join, and a per-instruction transfer. [`solve`] runs it to a
/// fixpoint.
pub trait DataflowPass {
    /// The per-program-point fact (a bitset in every built-in pass).
    type Fact: Clone + PartialEq;

    /// Whether facts flow with or against control flow.
    const DIRECTION: Direction;

    /// The fact at the flow boundary: program entry for forward passes,
    /// every exit for backward ones.
    fn boundary_fact(&self) -> Self::Fact;

    /// The neutral element of [`DataflowPass::join`] — the fact of an
    /// edge never taken.
    fn empty_fact(&self) -> Self::Fact;

    /// Accumulates `from` into `into`, reporting whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Transfers the fact across instruction `pc`: from the point before
    /// it for forward passes, from the point after it for backward ones.
    fn transfer(&self, pc: usize, insn: Insn, fact: &Self::Fact) -> Self::Fact;
}

/// The stabilized facts of one [`solve`] run, indexed by pc in program
/// orientation regardless of the pass direction: `before[pc]` is the
/// fact at the point *preceding* the instruction, `after[pc]` at the
/// point following it. Unreachable instructions keep the empty fact.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// Fact at the program point before each instruction.
    pub before: Vec<F>,
    /// Fact at the program point after each instruction.
    pub after: Vec<F>,
}

/// Runs `pass` over `prog` to a fixpoint with a priority worklist:
/// reverse-postorder order for forward passes, reversed-RPO (post-order)
/// for backward ones, so facts propagate in long runs instead of
/// ping-ponging across back edges.
pub fn solve<P: DataflowPass>(pass: &P, prog: &Program, cfg: &Cfg) -> Solution<P::Fact> {
    let n = prog.len();
    let mut before = vec![pass.empty_fact(); n];
    let mut after = vec![pass.empty_fact(); n];

    // Predecessor lists over the *reachable* subgraph (successors of
    // reachable instructions are reachable by construction).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &pc in cfg.rpo() {
        for &s in cfg.successors(pc) {
            preds[s].push(pc);
        }
    }

    let total = cfg.rpo().len();
    let priority = |pc: usize| match P::DIRECTION {
        Direction::Forward => cfg.rpo_pos(pc),
        Direction::Backward => total - 1 - cfg.rpo_pos(pc),
    };

    let mut queue: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    let mut queued = vec![false; n];
    for &pc in cfg.rpo() {
        queue.push(Reverse((priority(pc), pc)));
        queued[pc] = true;
    }

    while let Some(Reverse((_, pc))) = queue.pop() {
        queued[pc] = false;
        let insn = prog.insns()[pc];
        match P::DIRECTION {
            Direction::Forward => {
                let mut input = if pc == 0 {
                    pass.boundary_fact()
                } else {
                    pass.empty_fact()
                };
                for &p in &preds[pc] {
                    pass.join(&mut input, &after[p]);
                }
                let output = pass.transfer(pc, insn, &input);
                before[pc] = input;
                if output != after[pc] {
                    after[pc] = output;
                    for &s in cfg.successors(pc) {
                        if !queued[s] {
                            queued[s] = true;
                            queue.push(Reverse((priority(s), s)));
                        }
                    }
                }
            }
            Direction::Backward => {
                let succs = cfg.successors(pc);
                let mut output = if succs.is_empty() {
                    pass.boundary_fact()
                } else {
                    pass.empty_fact()
                };
                for &s in succs {
                    pass.join(&mut output, &before[s]);
                }
                let input = pass.transfer(pc, insn, &output);
                after[pc] = output;
                if input != before[pc] {
                    before[pc] = input;
                    for &p in &preds[pc] {
                        if !queued[p] {
                            queued[p] = true;
                            queue.push(Reverse((priority(p), p)));
                        }
                    }
                }
            }
        }
    }

    Solution { before, after }
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

/// A per-pc liveness fact: which registers (bits `0..=10`) and 8-byte
/// stack slots (one bit per slot, bit `i` = slot `i` = bytes
/// `[-512 + 8i, -512 + 8i + 8)`) may still be read before being
/// overwritten.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveSet {
    /// Live registers, bit `r.index()`.
    pub regs: u16,
    /// Live stack slots, bit per slot index.
    pub slots: u64,
}

impl LiveSet {
    /// Everything live — the mask that cleans nothing (used for
    /// unreachable instructions, where no fact was computed).
    pub const ALL: LiveSet = LiveSet {
        regs: ALL_REGS,
        slots: u64::MAX,
    };

    /// Whether register `r` is live.
    #[must_use]
    pub const fn contains_reg(self, r: Reg) -> bool {
        self.regs & (1 << r.index()) != 0
    }

    /// Whether stack slot `i` is live.
    #[must_use]
    pub const fn contains_slot(self, i: usize) -> bool {
        i < SLOTS && self.slots & (1 << i) != 0
    }

    /// Number of live registers.
    #[must_use]
    pub const fn reg_count(self) -> u32 {
        self.regs.count_ones()
    }

    /// Number of live stack slots.
    #[must_use]
    pub const fn slot_count(self) -> u32 {
        self.slots.count_ones()
    }
}

/// The slot-index bitmask of every slot intersecting the byte range
/// `[start, start + bytes)` of the stack frame (offsets negative,
/// relative to `r10`). Offsets outside the frame contribute nothing —
/// such an access is rejected by the transfer layer anyway.
fn covering_slots(start: i64, bytes: i64) -> u64 {
    let frame = STACK_SIZE as i64;
    let mut mask = 0u64;
    let mut off = start & !7;
    while off < start + bytes {
        if (-frame..0).contains(&off) {
            mask |= 1 << ((off + frame) / 8);
        }
        off += 8;
    }
    mask
}

/// Forward may-alias pass: which registers *may* hold a stack-derived
/// pointer at each point. Fact: `u16` register bitset.
///
/// `r10` seeds the set; 64-bit `mov` copies propagate it, other ALU ops
/// keep a destination tainted when either operand is (pointer ± scalar
/// keeps the region), and **every load taints its destination** — a
/// spilled stack pointer reloads through an arbitrary slot, and this
/// pass does not track slot contents. Immediate loads and 32-bit moves
/// scalarize and clear; helper calls clobber `r0`–`r5`. Over-tainting is
/// always sound here: taint only ever *adds* stack-slot liveness.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackTaint;

impl DataflowPass for StackTaint {
    type Fact = u16;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary_fact(&self) -> u16 {
        1 << Reg::R10.index()
    }

    fn empty_fact(&self) -> u16 {
        0
    }

    fn join(&self, into: &mut u16, from: &u16) -> bool {
        let merged = *into | *from;
        let changed = merged != *into;
        *into = merged;
        changed
    }

    fn transfer(&self, _pc: usize, insn: Insn, fact: &u16) -> u16 {
        let bit = |r: Reg| 1u16 << r.index();
        let mut t = *fact;
        match insn {
            Insn::Alu {
                op: AluOp::Mov,
                width: Width::W64,
                dst,
                src: Src::Reg(r),
            } => {
                if t & bit(r) != 0 {
                    t |= bit(dst);
                } else {
                    t &= !bit(dst);
                }
            }
            // Immediate and 32-bit moves scalarize the destination.
            Insn::Alu {
                op: AluOp::Mov,
                dst,
                ..
            } => t &= !bit(dst),
            Insn::Alu { dst, src, .. } => {
                // Pointer ± scalar keeps the region; anything else with
                // a tainted operand conservatively stays tainted.
                if let Src::Reg(r) = src {
                    if t & bit(r) != 0 {
                        t |= bit(dst);
                    }
                }
            }
            Insn::LoadImm64 { dst, .. } => t &= !bit(dst),
            // A load may reload a spilled stack pointer.
            Insn::Load { dst, .. } => t |= bit(dst),
            Insn::Call { .. } => t &= !CALL_CLOBBERS,
            Insn::Store { .. } | Insn::Jmp { .. } | Insn::Ja { .. } | Insn::Exit => {}
        }
        t | bit(Reg::R10)
    }
}

/// Backward may-use liveness over registers *and* stack slots, the
/// kernel's `mark_reg_read` analogue. Fact: [`LiveSet`].
///
/// Uses mirror the transfer layer's checks exactly — a helper call
/// reads its registry arity's argument registers (`r1..r1+n` per
/// [`ebpf::helpers::helper_sig`]; all of `r1`–`r5` for an unknown
/// helper) and, when its signature takes a stack-region argument, may
/// read any stack slot; `exit` reads `r0` — plus the slot reads of
/// stack loads (exact covering slots through `r10`, all slots through a
/// possibly-stack-derived base per [`StackTaint`]). Kills are the
/// register writes of `def_reg`, the `r0`–`r5` clobber of a call, and
/// the wholesale slot overwrites of `r10`-relative stores.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Per-pc [`StackTaint`] facts at the point *before* each
    /// instruction.
    taint_in: Vec<u16>,
}

impl Liveness {
    /// Builds the pass for one program, running the [`StackTaint`]
    /// prerequisite pass.
    #[must_use]
    pub fn new(prog: &Program, cfg: &Cfg) -> Liveness {
        Liveness {
            taint_in: solve(&StackTaint, prog, cfg).before,
        }
    }
}

impl DataflowPass for Liveness {
    type Fact = LiveSet;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary_fact(&self) -> LiveSet {
        // Nothing is live after an exit; `exit`'s own `r0` read is part
        // of its transfer.
        LiveSet::default()
    }

    fn empty_fact(&self) -> LiveSet {
        LiveSet::default()
    }

    fn join(&self, into: &mut LiveSet, from: &LiveSet) -> bool {
        let merged = LiveSet {
            regs: into.regs | from.regs,
            slots: into.slots | from.slots,
        };
        let changed = merged != *into;
        *into = merged;
        changed
    }

    fn transfer(&self, pc: usize, insn: Insn, fact: &LiveSet) -> LiveSet {
        let bit = |r: Reg| 1u16 << r.index();
        let mut live = *fact;

        // Kills first (live-in = (live-out ∖ defs) ∪ uses).
        match insn {
            Insn::Call { .. } => live.regs &= !CALL_CLOBBERS,
            _ => {
                if let Some(d) = insn.def_reg() {
                    live.regs &= !bit(d);
                }
            }
        }
        if let Insn::Store {
            size,
            base,
            off,
            src: _,
        } = insn
        {
            if base == Reg::R10 {
                // Both store paths (tracked spill and `Misc` smear)
                // replace every intersecting slot wholesale.
                live.slots &= !covering_slots(off as i64, size.bytes() as i64);
            }
        }

        // Uses: a call reads its helper's argument registers per the
        // registry arity (conservatively all of r1–r5 when the id is
        // unknown — the verifier will reject it anyway), and any
        // stack-region argument may read arbitrary slots through the
        // passed pointer; everything else reads its `use_regs`. `exit`
        // reads `r0` directly (return-value and pointer-leak checks).
        if let Insn::Call { helper } = insn {
            match ebpf::helpers::helper_sig(helper) {
                Some(sig) => {
                    for i in 0..sig.args.len() {
                        live.regs |= 1 << (i + 1);
                    }
                    if sig
                        .args
                        .iter()
                        .any(|a| matches!(a, ebpf::helpers::ArgKind::StackRegion { .. }))
                    {
                        live.slots = u64::MAX;
                    }
                }
                None => {
                    live.regs |= CALL_CLOBBERS & !bit(Reg::R0);
                    live.slots = u64::MAX;
                }
            }
        } else {
            for r in insn.use_regs() {
                live.regs |= bit(r);
            }
        }
        if matches!(insn, Insn::Exit) {
            live.regs |= bit(Reg::R0);
        }
        if let Insn::Load {
            size, base, off, ..
        } = insn
        {
            if base == Reg::R10 {
                live.slots |= covering_slots(off as i64, size.bytes() as i64);
            } else if self.taint_in[pc] & bit(base) != 0 {
                // A derived stack pointer may read anywhere in the
                // frame (variable offsets probe whole byte ranges).
                live.slots = u64::MAX;
            }
        }

        // The frame pointer is pinned live: every stack access
        // re-derives from it.
        live.regs |= bit(Reg::R10);
        live
    }
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

/// Forward reaching-definitions pass over register definition sites.
/// Fact: `Vec<u64>` bitset with one bit per definition site (an
/// instruction with a `def_reg`); a set bit means that definition may
/// reach the point uncobbered.
///
/// A helper call is the definition site of `r0` and additionally kills
/// every reaching definition of the clobbered `r1`–`r5`.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// pc of each definition site, indexed by site id.
    site_pcs: Vec<usize>,
    /// Definition-site id of each pc (`None` for non-defining insns).
    site_of_pc: Vec<Option<u32>>,
    /// Per-register kill mask over site ids.
    kill: Vec<Vec<u64>>,
    /// Words per fact.
    words: usize,
}

impl ReachingDefs {
    /// Builds the definition-site tables for one program.
    #[must_use]
    pub fn new(prog: &Program) -> ReachingDefs {
        let mut site_pcs = Vec::new();
        let mut site_of_pc = vec![None; prog.len()];
        for (pc, insn) in prog.insns().iter().enumerate() {
            if insn.def_reg().is_some() {
                site_of_pc[pc] = Some(u32::try_from(site_pcs.len()).expect("program fits u32"));
                site_pcs.push(pc);
            }
        }
        let words = site_pcs.len().div_ceil(64).max(1);
        let mut kill = vec![vec![0u64; words]; 11];
        for (site, &pc) in site_pcs.iter().enumerate() {
            let reg = prog.insns()[pc].def_reg().expect("site defines");
            kill[reg.index()][site / 64] |= 1 << (site % 64);
        }
        ReachingDefs {
            site_pcs,
            site_of_pc,
            kill,
            words,
        }
    }

    /// Number of definition sites in the program.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.site_pcs.len()
    }

    /// The pc of definition site `id`.
    #[must_use]
    pub fn site_pc(&self, id: usize) -> usize {
        self.site_pcs[id]
    }
}

impl DataflowPass for ReachingDefs {
    type Fact = Vec<u64>;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary_fact(&self) -> Vec<u64> {
        // Entry registers (`r1`, `r2`, `r10`) are implicit, not sites.
        vec![0; self.words]
    }

    fn empty_fact(&self) -> Vec<u64> {
        vec![0; self.words]
    }

    fn join(&self, into: &mut Vec<u64>, from: &Vec<u64>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let merged = *a | *b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    fn transfer(&self, pc: usize, insn: Insn, fact: &Vec<u64>) -> Vec<u64> {
        let Some(site) = self.site_of_pc[pc] else {
            return fact.clone();
        };
        let mut f = fact.clone();
        let kill_reg = |r: Reg, f: &mut Vec<u64>| {
            for (w, k) in f.iter_mut().zip(&self.kill[r.index()]) {
                *w &= !k;
            }
        };
        match insn {
            Insn::Call { .. } => {
                for r in [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                    kill_reg(r, &mut f);
                }
            }
            _ => kill_reg(insn.def_reg().expect("site defines"), &mut f),
        }
        let site = site as usize;
        f[site / 64] |= 1 << (site % 64);
        f
    }
}

// ---------------------------------------------------------------------
// The bundled per-program pass results
// ---------------------------------------------------------------------

/// The stabilized results of every built-in pass over one program — the
/// package the exploration engines and the `annotate --passes` dump
/// consume. Computed once per analysis, before exploration starts.
#[derive(Clone, Debug)]
pub struct ProgramPasses {
    live_in: Vec<LiveSet>,
    live_out: Vec<LiveSet>,
    reach_counts: Vec<u32>,
    unreachable: Vec<bool>,
    dead_def: Vec<bool>,
    dead_insns: u64,
}

impl ProgramPasses {
    /// Runs liveness (with its [`StackTaint`] prerequisite), reaching
    /// definitions, and dead-code detection over `prog`.
    #[must_use]
    pub fn compute(prog: &Program, cfg: &Cfg) -> ProgramPasses {
        let liveness = Liveness::new(prog, cfg);
        let live = solve(&liveness, prog, cfg);
        let reach = solve(&ReachingDefs::new(prog), prog, cfg);

        let mut live_in = live.before;
        let live_out = live.after;
        let mut unreachable = vec![false; prog.len()];
        let mut dead_def = vec![false; prog.len()];
        let mut dead_insns = 0u64;
        for pc in 0..prog.len() {
            if cfg.rpo_pos(pc) == usize::MAX {
                unreachable[pc] = true;
                // No fact was computed; never clean anything here.
                live_in[pc] = LiveSet::ALL;
                dead_insns += 1;
                continue;
            }
            // A side-effect-free definition whose result is dead: the
            // pure ALU and immediate-load forms (loads can fault and
            // calls clobber, so neither is flagged). Diagnostic only —
            // the instruction still runs its safety checks.
            let insn = prog.insns()[pc];
            if let (Some(d), Insn::Alu { .. } | Insn::LoadImm64 { .. }) = (insn.def_reg(), insn) {
                if !live_out[pc].contains_reg(d) {
                    dead_def[pc] = true;
                    dead_insns += 1;
                }
            }
        }
        let reach_counts = reach
            .before
            .iter()
            .map(|f| f.iter().map(|w| w.count_ones()).sum())
            .collect();
        ProgramPasses {
            live_in,
            live_out,
            reach_counts,
            unreachable,
            dead_def,
            dead_insns,
        }
    }

    /// The liveness mask at the point *before* `pc` — what a state
    /// arriving at `pc` may still have read. Everything is live at an
    /// unreachable pc (no fact was computed, so nothing may be cleaned).
    #[must_use]
    pub fn live_in(&self, pc: usize) -> LiveSet {
        self.live_in.get(pc).copied().unwrap_or(LiveSet::ALL)
    }

    /// The liveness mask at the point *after* `pc`.
    #[must_use]
    pub fn live_out(&self, pc: usize) -> LiveSet {
        self.live_out.get(pc).copied().unwrap_or(LiveSet::ALL)
    }

    /// How many register definitions may reach the point before `pc`.
    #[must_use]
    pub fn reaching_defs_in(&self, pc: usize) -> u32 {
        self.reach_counts.get(pc).copied().unwrap_or(0)
    }

    /// Whether `pc` is statically unreachable from the entry.
    #[must_use]
    pub fn is_unreachable(&self, pc: usize) -> bool {
        self.unreachable.get(pc).copied().unwrap_or(false)
    }

    /// Whether `pc` is a side-effect-free definition whose result is
    /// never read (diagnostic; the instruction still runs its checks).
    #[must_use]
    pub fn is_dead_def(&self, pc: usize) -> bool {
        self.dead_def.get(pc).copied().unwrap_or(false)
    }

    /// Total dead instructions: statically unreachable plus dead
    /// definitions — the `dead_insns` counter of
    /// [`crate::AnalysisStats`].
    #[must_use]
    pub fn dead_insns(&self) -> u64 {
        self.dead_insns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    fn passes(src: &str) -> (Program, ProgramPasses) {
        let prog = assemble(src).expect("assembles");
        let cfg = Cfg::build(&prog);
        let p = ProgramPasses::compute(&prog, &cfg);
        (prog, p)
    }

    #[test]
    fn straight_line_liveness_kills_overwritten_registers() {
        // r3 is written then overwritten before any read: dead before
        // pc 1. r0 is live into `exit`.
        let (_, p) = passes("r3 = 1\nr3 = 2\nr0 = r3\nexit");
        assert!(!p.live_in(0).contains_reg(Reg::R3));
        assert!(!p.live_in(1).contains_reg(Reg::R3), "about to be killed");
        assert!(p.live_in(2).contains_reg(Reg::R3));
        assert!(p.live_in(3).contains_reg(Reg::R0), "exit reads r0");
        assert!(!p.live_in(3).contains_reg(Reg::R3));
        assert!(p.live_in(0).contains_reg(Reg::R10), "r10 pinned live");
        assert!(p.is_dead_def(0), "r3 = 1 is overwritten unread");
        assert!(!p.is_dead_def(1));
        assert_eq!(p.dead_insns(), 1);
    }

    #[test]
    fn branches_union_liveness_over_both_edges() {
        // r4 is read only on the taken edge; it must stay live at the
        // branch even though the fall-through kills it.
        let (_, p) = passes(
            "r4 = 7\n\
             if r1 > 0 goto use\n\
             r0 = 0\n\
             exit\n\
             use:\n\
             r0 = r4\n\
             exit",
        );
        assert!(p.live_in(1).contains_reg(Reg::R4), "live through branch");
        assert!(!p.live_in(2).contains_reg(Reg::R4), "dead on fall-through");
        assert!(p.live_in(4).contains_reg(Reg::R4), "read on taken edge");
        assert!(p.live_in(1).contains_reg(Reg::R1), "branch reads r1");
    }

    #[test]
    fn stack_slots_live_through_spill_and_reload() {
        // A spill to [r10-8] is reloaded later: slot 63 is live between
        // the store and the load, dead after the load.
        let (_, p) = passes(
            "r3 = 42\n\
             *(u64 *)(r10 - 8) = r3\n\
             r4 = *(u64 *)(r10 - 8)\n\
             r0 = r4\n\
             exit",
        );
        assert!(!p.live_in(1).contains_slot(63), "not yet written");
        assert!(p.live_in(2).contains_slot(63), "awaiting the reload");
        assert!(!p.live_in(3).contains_slot(63), "consumed");
        // The store kills the slot: it is not live *into* the store.
        assert!(!p.live_out(1).contains_slot(62), "neighbors untouched");
    }

    #[test]
    fn derived_stack_pointers_make_all_slots_live() {
        // The load goes through r3 = r10 - 16: a derived pointer, so the
        // pass must assume any slot may be read.
        let (_, p) = passes(
            "r3 = r10\n\
             r3 += -16\n\
             *(u64 *)(r10 - 16) = r1\n\
             r0 = *(u64 *)(r3 + 0)\n\
             r0 = 0\n\
             exit",
        );
        assert_eq!(p.live_in(3).slots, u64::MAX, "tainted base reads all");
        assert_eq!(p.live_out(2).slots, u64::MAX, "all slots await the read");
        // The store fully defines slot 62, so its *old* value is dead
        // into pc 2 even though the derived read keeps everything else.
        assert!(!p.live_in(2).contains_slot(62), "killed by the spill");
        assert!(p.live_in(2).contains_slot(61), "neighbors stay live");
    }

    #[test]
    fn taint_tracks_copies_and_clears_on_scalarization() {
        let prog = assemble(
            "r3 = r10\n\
             r4 = r3\n\
             r4 = 5\n\
             r0 = 0\n\
             exit",
        )
        .expect("assembles");
        let cfg = Cfg::build(&prog);
        let taint = solve(&StackTaint, &prog, &cfg);
        let bit = |r: Reg| 1u16 << r.index();
        assert_eq!(taint.before[1] & bit(Reg::R3), bit(Reg::R3));
        assert_eq!(taint.before[2] & bit(Reg::R4), bit(Reg::R4), "copy");
        assert_eq!(taint.before[3] & bit(Reg::R4), 0, "imm mov clears");
        assert_ne!(taint.before[0] & bit(Reg::R10), 0, "r10 seeded");
    }

    #[test]
    fn calls_clobber_and_define() {
        let (_, p) = passes(
            "r6 = 1\n\
             r3 = 2\n\
             call 1\n\
             r0 += r6\n\
             exit",
        );
        // r3 dies at the call (clobbered, never read); r6 survives it.
        assert!(!p.live_in(2).contains_reg(Reg::R3), "clobbered unread");
        assert!(p.live_in(2).contains_reg(Reg::R6), "callee-saved use");
        assert!(!p.live_in(0).contains_reg(Reg::R0), "call defines r0");
        assert!(p.live_in(3).contains_reg(Reg::R0));
    }

    #[test]
    fn reaching_defs_count_joined_paths() {
        let (_, p) = passes(
            "r0 = 1\n\
             if r1 > 0 goto other\n\
             r0 = 2\n\
             other:\n\
             exit",
        );
        // Before exit both r0 definitions may reach (taken edge keeps
        // pc 0, fall-through replaced it at pc 2).
        assert_eq!(p.reaching_defs_in(3), 2);
        assert_eq!(p.reaching_defs_in(2), 1);
        assert_eq!(p.reaching_defs_in(0), 0, "entry has no sites");
    }

    #[test]
    fn unreachable_instructions_are_flagged_and_never_cleaned() {
        let (_, p) = passes(
            "r0 = 0\n\
             goto done\n\
             r0 = 9\n\
             done:\n\
             exit",
        );
        assert!(p.is_unreachable(2));
        assert!(!p.is_unreachable(1));
        assert_eq!(p.live_in(2), LiveSet::ALL, "no fact ⇒ clean nothing");
        assert_eq!(p.dead_insns(), 1);
    }

    #[test]
    fn loop_liveness_carries_the_counter_around_the_back_edge() {
        // The memset loop: r1 (counter) must stay live at the head; the
        // stored-to slots are never read, so they stay dead everywhere.
        let (_, p) = passes(
            "r1 = 0\n\
             loop:\n\
             r3 = r10\n\
             r3 += -16\n\
             r3 += r1\n\
             *(u8 *)(r3 + 0) = 0\n\
             r1 += 1\n\
             if r1 < 16 goto loop\n\
             r0 = r1\n\
             exit",
        );
        assert!(p.live_in(1).contains_reg(Reg::R1), "counter live at head");
        assert!(!p.live_in(1).contains_reg(Reg::R0), "r0 dead until set");
        assert_eq!(p.live_in(1).slots, 0, "stores are never read back");
    }

    #[test]
    fn covering_slots_spans_unaligned_ranges() {
        assert_eq!(covering_slots(-8, 8), 1 << 63);
        assert_eq!(covering_slots(-16, 8), 1 << 62);
        // An unaligned 8-byte range touches two slots.
        assert_eq!(covering_slots(-12, 8), (1 << 62) | (1 << 63));
        assert_eq!(covering_slots(-512, 1), 1);
        assert_eq!(covering_slots(-520, 4), 0, "out of frame ignored");
    }

    #[test]
    fn reaching_defs_site_tables_round_trip() {
        let prog = assemble("r0 = 1\nr3 = 2\nexit").expect("assembles");
        let rd = ReachingDefs::new(&prog);
        assert_eq!(rd.sites(), 2);
        assert_eq!(rd.site_pc(0), 0);
        assert_eq!(rd.site_pc(1), 1);
    }
}
