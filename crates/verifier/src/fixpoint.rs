//! The fixpoint layer: the reverse-postorder priority worklist, the
//! per-register delayed-widening/narrowing schedule, the visit budget,
//! and the [`AnalysisStats`] accounting of copy-on-write state traffic.
//!
//! The engine knows nothing about instruction semantics — it asks
//! [`crate::transfer::Transfer`] for successor contributions and owns
//! only *how* states flow: joins at merge points
//! ([`crate::AbsState::flow_join`]), per-component widening at loop heads
//! (each register and stack slot burns its own
//! [`crate::AnalyzerOptions::widen_delay`], see
//! [`crate::state::JoinCounters`]), widening thresholds harvested from
//! the program's comparison immediates, and one narrowing pass after
//! stabilization.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebpf::{Insn, Program, Src};
use interval_domain::WidenThresholds;

use crate::analyzer::AnalyzerOptions;
use crate::cfg::Cfg;
use crate::error::VerifierError;
use crate::state::{stats, AbsState, JoinCounters, WidenCtx};
use crate::transfer::Transfer;

/// Thread-local visit ledger: every strategy bumps it once per
/// instruction visit (the parallel explorer credits its shared atomic
/// back on the coordinator thread), and [`crate::batch::run`] resets
/// and harvests it around each program so a *rejected* run's partial
/// walk still lands in `BatchStats::per_worker_visits` — an
/// error return discards the strategy's local counters, and before
/// this ledger existed that burned work silently vanished from the
/// batch roll-up.
pub(crate) mod ledger {
    use std::cell::Cell;

    thread_local! {
        static VISITS: Cell<u64> = const { Cell::new(0) };
    }

    /// Counts one instruction visit on this thread.
    pub(crate) fn bump() {
        VISITS.with(|v| v.set(v.get() + 1));
    }

    /// Credits `n` visits performed elsewhere (parallel explorer jobs)
    /// to this thread's ledger.
    pub(crate) fn credit(n: u64) {
        VISITS.with(|v| v.set(v.get() + n));
    }

    /// Zeroes the ledger (start of one batch item).
    pub(crate) fn reset() {
        VISITS.with(|v| v.set(0));
    }

    /// Reads the ledger (end of one batch item, `Ok` or `Err`).
    pub(crate) fn snapshot() -> u64 {
        VISITS.with(Cell::get)
    }
}

/// Counters describing one analysis run — the observable effect of the
/// copy-on-write state layer and (under the path-sensitive strategy) of
/// kernel-style visited-state pruning, emitted by the fixpoint bench
/// (`BENCH_PR5.json`) and guarded by CI against regression.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Deep copies of a register file or stack frame actually performed
    /// (materializations of shared components plus fresh allocations).
    /// The clone-everything engine of PR 2 performed two of these for
    /// *every* state clone and join.
    pub states_allocated: u64,
    /// `AbsState` clones that only bumped refcounts — each one is a
    /// full-state deep copy the previous engine would have made.
    pub states_shared: u64,
    /// Joins/inclusion checks that resolved a whole component (register
    /// file or stack frame) by pointer identity without pointwise work.
    pub joins_short_circuited: u64,
    /// Widening operator applications to individual registers or stack
    /// slots at loop heads.
    pub widenings_applied: u64,
    /// Instruction visits consumed from the analysis budget.
    pub visits: u64,
    /// Branch states discarded because they were included in an
    /// already-explored state at the same instruction (the kernel's
    /// `is_state_visited` pruning). Always zero under the widening
    /// fixpoint, which joins instead of pruning.
    pub states_pruned: u64,
    /// Full `AbsState::is_subset_of` probes run against the
    /// visited-state table (covering probes plus dominance-eviction
    /// probes) — the cost side of the pruning ledger, and the counter
    /// the `fixpoint_guard` deep-unroll gate regresses on.
    pub subset_checks: u64,
    /// Loop-head arrivals explored with full per-trip precision, within
    /// the path-sensitive strategy's
    /// [`AnalyzerOptions::unroll_k`](crate::AnalyzerOptions::unroll_k)
    /// unroll bound.
    pub unrolled_trips: u64,
    /// Visited-table probe candidates dismissed in O(1) on fingerprint
    /// mismatch, without a full inclusion check — each one is a
    /// pointwise `is_subset_of` the pre-fingerprint table would have
    /// run.
    pub fingerprint_rejects: u64,
    /// Visited-table entries dropped from pruning chains: dominated by
    /// a newer insertion, or displaced oldest-first by the per-pc chain
    /// cap ([`AnalyzerOptions::visited_cap`](crate::AnalyzerOptions::visited_cap)).
    pub visited_evicted: u64,
    /// Bytes copied by all state materializations (register files,
    /// stack chunks, and chunk spines) — the working-set proxy showing
    /// what chunked copy-on-write frames save over whole-frame copies.
    pub bytes_materialized: u64,
    /// Transfer memo cache lookups served from a verified entry
    /// (operand equality confirmed — see [`crate::memo::TransferMemo`]).
    /// Zero when [`AnalyzerOptions::memo_cache`] is `None`.
    pub memo_hits: u64,
    /// Transfer memo cache lookups that found no entry (or only a
    /// colliding one with different operands) and computed afresh.
    pub memo_misses: u64,
    /// Transfer memo entries this run's inserts displaced through the
    /// per-shard capacity caps.
    pub memo_evicted: u64,
    /// Arrivals pruned through the liveness-masked visited probe
    /// ([`crate::VisitedTable::is_covered_masked`]) — the pruning wins
    /// attributable to checkpoint cleaning under
    /// [`AnalyzerOptions::liveness_pruning`]. A subset of
    /// `states_pruned`; always zero under the widening fixpoint and
    /// with masking off.
    pub live_masked_prunes: u64,
    /// Registers and stack slots reset to their uninitialized top by
    /// checkpoint cleaning (`AbsState::clear_dead`) because the
    /// liveness pass proved them dead.
    pub dead_components_cleared: u64,
    /// Statically dead instructions the pass framework found:
    /// unreachable from the entry, or side-effect-free definitions
    /// whose result is never read. Zero with
    /// [`AnalyzerOptions::liveness_pruning`] off (the passes never
    /// run).
    pub dead_insns: u64,
    /// DFS subtrees packaged as stealable jobs by the parallel path
    /// explorer ([`Strategy::PathParallel`](crate::Strategy)). Zero for
    /// the sequential strategies.
    pub subtrees_spawned: u64,
    /// Jobs an idle worker took from another worker's deque
    /// ([`StealPool`](domain::parallel::StealPool) steals). Zero for
    /// the sequential strategies.
    pub steals: u64,
    /// Path prunes where the covering entry in the shared
    /// [`ConcurrentVisitedTable`](crate::visited::ConcurrentVisitedTable)
    /// was inserted by a *different* worker — exploration one worker did
    /// that saved another worker's walk. Zero for the sequential
    /// strategies.
    pub shared_prunes: u64,
    /// Strategy downgrades the session's
    /// [`DegradationPolicy::Ladder`](crate::DegradationPolicy) took to
    /// produce this result after a governance failure (contained panic
    /// or blown deadline): `0` means the requested strategy succeeded
    /// directly, `1` that one re-run with the next-simpler strategy was
    /// needed, and so on. Set by the session, not the strategies (which
    /// always report `0`).
    pub degradations: u64,
}

impl AnalysisStats {
    /// Deep component copies an engine without structural sharing would
    /// have performed for the same run: two (register file + stack) per
    /// state clone, on top of what this engine still materialized.
    #[must_use]
    pub fn clone_everything_equivalent(&self) -> u64 {
        self.states_allocated + 2 * self.states_shared
    }

    /// Renders the counters as a JSON object fragment (hand-rolled — the
    /// workspace is dependency-free), for bench baselines.
    #[must_use]
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"states_allocated\": {}, \"states_shared\": {}, \
             \"joins_short_circuited\": {}, \"widenings_applied\": {}, \
             \"visits\": {}, \"states_pruned\": {}, \"subset_checks\": {}, \
             \"unrolled_trips\": {}, \"fingerprint_rejects\": {}, \
             \"visited_evicted\": {}, \"bytes_materialized\": {}, \
             \"memo_hits\": {}, \"memo_misses\": {}, \"memo_evicted\": {}, \
             \"live_masked_prunes\": {}, \"dead_components_cleared\": {}, \
             \"dead_insns\": {}, \"subtrees_spawned\": {}, \
             \"steals\": {}, \"shared_prunes\": {}, \"degradations\": {}}}",
            self.states_allocated,
            self.states_shared,
            self.joins_short_circuited,
            self.widenings_applied,
            self.visits,
            self.states_pruned,
            self.subset_checks,
            self.unrolled_trips,
            self.fingerprint_rejects,
            self.visited_evicted,
            self.bytes_materialized,
            self.memo_hits,
            self.memo_misses,
            self.memo_evicted,
            self.live_masked_prunes,
            self.dead_components_cleared,
            self.dead_insns,
            self.subtrees_spawned,
            self.steals,
            self.shared_prunes,
            self.degradations
        )
    }
}

/// Harvests widening thresholds from the program's conditional-jump
/// immediates — the constants of `if rX op N` guards — so a widened
/// bound can land on the loop's actual exit test (classic "widening with
/// thresholds") instead of a register-width extreme.
///
/// Immediates are widened exactly as the comparison will see them:
/// sign-extended for 64-bit jumps, **zero-extended** for 32-bit jumps
/// (`if w8 < -5` compares against `0xffff_fffb` on the zero-extended
/// sub-register, so that is the useful rung, not the sign-extended
/// 64-bit pattern).
///
/// Shared with the path-sensitive explorer's widening fallback
/// ([`crate::explore::PathSensitive`]), so both strategies extrapolate
/// through the same program-derived ladder.
pub(crate) fn harvest_thresholds(prog: &Program) -> WidenThresholds {
    WidenThresholds::harvest(prog.insns().iter().filter_map(|insn| match insn {
        Insn::Jmp {
            width,
            src: Src::Imm(v),
            ..
        } => Some(match width {
            ebpf::Width::W64 => *v as i64,
            ebpf::Width::W32 => i64::from(*v as u32),
        }),
        _ => None,
    }))
}

/// Runs the worklist to a (widened) post-fixpoint and applies one
/// narrowing pass, returning per-instruction states and the run's
/// sharing statistics.
///
/// # Errors
///
/// A [`VerifierError`] from the transfer layer (the program is unsafe)
/// or [`VerifierError::AnalysisBudgetExhausted`] when the iteration
/// exceeds its visit budget.
pub fn run(
    transfer: &Transfer,
    prog: &Program,
    cfg: &Cfg,
    options: &AnalyzerOptions,
) -> Result<(Vec<Option<AbsState>>, AnalysisStats), VerifierError> {
    stats::reset();
    crate::memo::counters::reset();
    // Thresholds only matter where widening can fire; acyclic programs
    // (the bulk of real workloads) skip the harvest scan entirely.
    let thresholds = if options.harvest_thresholds && !cfg.back_edges().is_empty() {
        harvest_thresholds(prog)
    } else {
        WidenThresholds::EMPTY
    };

    // The pass framework feeds checkpoint cleaning: states flowing into
    // a loop head or merge point drop their dead components first, so
    // contributions differing only in dead registers/slots subset-skip
    // instead of re-joining, and dead components never burn widening
    // delay. Cleaning to `Uninit` (the join/order top) is monotone, so
    // the fixpoint stays a sound over-approximation on live components.
    let passes = options
        .liveness_pruning
        .then(|| crate::passes::ProgramPasses::compute(prog, cfg));
    let mut preds = vec![0u32; prog.len()];
    for &pc in cfg.rpo() {
        for &s in cfg.successors(pc) {
            preds[s] += 1;
        }
    }
    let mut dead_components_cleared: u64 = 0;

    let mut entry = AbsState::entry();
    if let Some(p) = &passes {
        if cfg.is_loop_head(0) || preds[0] > 1 {
            let mask = p.live_in(0);
            dead_components_cleared += u64::from(entry.clear_dead(mask.regs, mask.slots));
        }
    }
    let mut states: Vec<Option<AbsState>> = vec![None; prog.len()];
    states[0] = Some(entry);
    // Per-loop-head, per-component changing-join counters driving the
    // per-register delayed widening (allocated lazily: only heads join).
    let mut counters: Vec<Option<Box<JoinCounters>>> = vec![None; prog.len()];

    // Priority worklist: always pop the pending instruction earliest
    // in reverse postorder, so inner regions settle before outer ones
    // re-fire (the classic weak-topological iteration strategy).
    let mut queue: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    let mut queued = vec![false; prog.len()];
    queue.push(Reverse((cfg.rpo_pos(0), 0)));
    queued[0] = true;

    let start = std::time::Instant::now();
    let mut visits: u64 = 0;
    while let Some(Reverse((_, pc))) = queue.pop() {
        queued[pc] = false;
        visits += 1;
        ledger::bump();
        if visits > options.analysis_budget {
            return Err(VerifierError::AnalysisBudgetExhausted {
                pc,
                budget: options.analysis_budget,
            });
        }
        crate::analyzer::check_deadline(start, options, pc)?;
        crate::failpoint::fire(crate::failpoint::FaultSite::FixpointVisit);
        let state = states[pc]
            .clone()
            .expect("queued instructions have a state");
        for (succ, mut out) in transfer.step(prog, state, pc)? {
            if let Some(p) = &passes {
                if cfg.is_loop_head(succ) || preds[succ] > 1 {
                    let mask = p.live_in(succ);
                    dead_components_cleared += u64::from(out.clear_dead(mask.regs, mask.slots));
                }
            }
            let changed = match &mut states[succ] {
                slot @ None => {
                    *slot = Some(out);
                    true
                }
                Some(existing) => {
                    if out.is_subset_of(existing) {
                        false
                    } else {
                        let widen = cfg.is_loop_head(succ).then(|| WidenCtx {
                            counters: counters[succ].get_or_insert_with(Default::default),
                            delay: options.widen_delay,
                            thresholds: &thresholds,
                        });
                        existing.flow_join(&out, widen)
                    }
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                queue.push(Reverse((cfg.rpo_pos(succ), succ)));
            }
        }
    }

    // Acyclic programs never widen: the single worklist pass already
    // computed the exact join states, and narrowing would reproduce
    // them verbatim at the cost of re-running every transfer.
    let states = if cfg.back_edges().is_empty() {
        states
    } else {
        narrow(
            transfer,
            prog,
            cfg,
            &states,
            passes.as_ref(),
            &preds,
            &mut dead_components_cleared,
        )?
    };

    let traffic = stats::snapshot();
    let (memo_hits, memo_misses, memo_evicted) = crate::memo::counters::snapshot();
    Ok((
        states,
        AnalysisStats {
            states_allocated: traffic.allocated,
            states_shared: traffic.shared,
            joins_short_circuited: traffic.short_circuited,
            widenings_applied: traffic.widenings,
            visits,
            // The fixpoint joins instead of pruning and never unrolls;
            // the pruning-table counters belong to the path-sensitive
            // strategy.
            states_pruned: 0,
            subset_checks: 0,
            unrolled_trips: 0,
            fingerprint_rejects: 0,
            visited_evicted: 0,
            bytes_materialized: traffic.bytes,
            memo_hits,
            memo_misses,
            memo_evicted,
            live_masked_prunes: 0,
            dead_components_cleared,
            dead_insns: passes
                .as_ref()
                .map_or(0, super::passes::ProgramPasses::dead_insns),
            subtrees_spawned: 0,
            steals: 0,
            shared_prunes: 0,
            degradations: 0,
        },
    ))
}

/// The narrowing pass: one plain-join recomputation of every reachable
/// state from the stabilized `states`. From a post-fixpoint, one
/// application of the (monotone) transfer functions stays a
/// post-fixpoint while undoing over-extrapolated widening jumps — e.g. a
/// loop head re-tightens to `entry ⊔ refined back-edge`.
fn narrow(
    transfer: &Transfer,
    prog: &Program,
    cfg: &Cfg,
    states: &[Option<AbsState>],
    passes: Option<&crate::passes::ProgramPasses>,
    preds: &[u32],
    dead_components_cleared: &mut u64,
) -> Result<Vec<Option<AbsState>>, VerifierError> {
    let mut narrowed: Vec<Option<AbsState>> = vec![None; prog.len()];
    let mut entry = AbsState::entry();
    if let Some(p) = passes {
        if cfg.is_loop_head(0) || preds[0] > 1 {
            let mask = p.live_in(0);
            *dead_components_cleared += u64::from(entry.clear_dead(mask.regs, mask.slots));
        }
    }
    narrowed[0] = Some(entry);
    for &pc in cfg.rpo() {
        let Some(state) = states[pc].clone() else {
            continue;
        };
        for (succ, mut out) in transfer.step(prog, state, pc)? {
            // The same checkpoint cleaning the widened pass applied:
            // narrowing must not resurrect dead components the
            // fixpoint already dropped.
            if let Some(p) = passes {
                if cfg.is_loop_head(succ) || preds[succ] > 1 {
                    let mask = p.live_in(succ);
                    *dead_components_cleared += u64::from(out.clear_dead(mask.regs, mask.slots));
                }
            }
            match &mut narrowed[succ] {
                slot @ None => *slot = Some(out),
                // In-place join: the cell materializes once and then
                // absorbs later edges without fresh allocations.
                Some(existing) => {
                    existing.flow_join(&out, None);
                }
            }
        }
    }
    Ok(narrowed)
}
