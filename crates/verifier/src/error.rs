//! Rejection reasons reported by the analyzer.

use core::fmt;

use ebpf::Reg;

/// Why a program was rejected by the [`Analyzer`](crate::Analyzer).
///
/// Every variant carries the instruction index (`pc`) at fault, so callers
/// can point at the offending line of disassembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifierError {
    /// The control-flow graph contains a cycle and the analyzer was
    /// configured with
    /// [`AnalyzerOptions::reject_loops`](crate::AnalyzerOptions::reject_loops)
    /// — the classic pre-bounded-loop verifier behaviour.
    LoopDetected {
        /// An instruction participating in the cycle (a loop head).
        pc: usize,
    },
    /// The exploration exceeded its total-visits budget (the analogue of
    /// the kernel's one-million-instruction complexity limit) before
    /// finishing — the fixpoint iteration failed to stabilize, or the
    /// path-sensitive explorer's branch fan-out outran both pruning and
    /// the unroll fallback (the kernel rejects such programs as "too
    /// complex" for the same reason).
    AnalysisBudgetExhausted {
        /// The instruction being processed when the budget ran out.
        pc: usize,
        /// The configured budget
        /// ([`AnalyzerOptions::analysis_budget`](crate::AnalyzerOptions::analysis_budget)).
        budget: u64,
    },
    /// An instruction reads a register that may be uninitialized.
    UninitRead {
        /// The register read.
        reg: Reg,
        /// Faulting instruction.
        pc: usize,
    },
    /// A load or store dereferences a non-pointer value.
    BadPointer {
        /// The register used as a base address.
        reg: Reg,
        /// Faulting instruction.
        pc: usize,
    },
    /// A memory access cannot be proven inside its region.
    OutOfBounds {
        /// Region name (`"stack"` or `"ctx"`).
        region: &'static str,
        /// Smallest possible byte offset of the access within the region
        /// coordinates used in diagnostics.
        min_off: i64,
        /// Largest possible end offset of the access.
        max_end: i64,
        /// Faulting instruction.
        pc: usize,
    },
    /// Strict alignment checking failed: the access offset cannot be
    /// proven aligned to the access size (via `tnum_is_aligned`).
    Misaligned {
        /// Region name.
        region: &'static str,
        /// Access size in bytes.
        size: u64,
        /// Faulting instruction.
        pc: usize,
    },
    /// A read from a stack slot that was never written.
    UninitStackRead {
        /// Faulting instruction.
        pc: usize,
    },
    /// Arithmetic on pointers that the analyzer does not track
    /// (e.g. multiplying a pointer, or adding two pointers).
    BadPointerArithmetic {
        /// Faulting instruction.
        pc: usize,
    },
    /// The program exits without initializing `r0`.
    NoReturnValue {
        /// Index of the offending `exit`.
        pc: usize,
    },
    /// The program returns a pointer in `r0`, leaking a kernel address.
    PointerLeak {
        /// Index of the offending `exit`.
        pc: usize,
    },
    /// A load or store dereferences a map value pointer that may still
    /// be NULL (no `== 0` / `!= 0` check dominates the access).
    NullMapValue {
        /// The register holding the unchecked pointer.
        reg: Reg,
        /// Faulting instruction.
        pc: usize,
    },
    /// A `call` names a helper that is not in the registry
    /// ([`ebpf::helpers::HELPERS`]).
    UnknownHelper {
        /// The helper id.
        helper: u32,
        /// Index of the offending `call`.
        pc: usize,
    },
    /// A helper argument does not match the kind its signature demands
    /// (e.g. a scalar where a map handle is required, or an
    /// uninitialized stack region passed as a key).
    BadHelperArg {
        /// The helper id.
        helper: u32,
        /// 1-based argument number (the register is `r{arg}`).
        arg: u8,
        /// What the signature expects there.
        expected: &'static str,
        /// Index of the offending `call`.
        pc: usize,
    },
    /// A tagged `lddw` references a map id outside
    /// [`ebpf::DEFAULT_MAPS`].
    UnknownMap {
        /// The invalid map id.
        map: u32,
        /// Index of the offending `lddw`.
        pc: usize,
    },
    /// The exploration ran past its wall-clock deadline
    /// ([`AnalyzerOptions::deadline`](crate::AnalyzerOptions::deadline)).
    /// Checked cooperatively at the same points as the visit budget, so
    /// `elapsed` is at least the configured deadline but may overshoot
    /// by one transfer's worth of work.
    DeadlineExceeded {
        /// Wall-clock time spent when the deadline check fired.
        elapsed: std::time::Duration,
        /// The instruction being processed when time ran out.
        pc: usize,
    },
    /// The analyzer itself faulted: a panic inside a batch worker or a
    /// parallel-exploration job was contained by `catch_unwind` and
    /// converted into a per-program rejection instead of taking down
    /// the whole batch. `detail` carries the panic payload when it was
    /// a string.
    InternalFault {
        /// Human-readable description of the contained fault.
        detail: String,
    },
}

impl VerifierError {
    /// The faulting instruction index.
    #[must_use]
    pub fn pc(&self) -> usize {
        match *self {
            VerifierError::LoopDetected { pc }
            | VerifierError::AnalysisBudgetExhausted { pc, .. }
            | VerifierError::UninitRead { pc, .. }
            | VerifierError::BadPointer { pc, .. }
            | VerifierError::OutOfBounds { pc, .. }
            | VerifierError::Misaligned { pc, .. }
            | VerifierError::UninitStackRead { pc }
            | VerifierError::BadPointerArithmetic { pc }
            | VerifierError::NoReturnValue { pc }
            | VerifierError::PointerLeak { pc }
            | VerifierError::NullMapValue { pc, .. }
            | VerifierError::UnknownHelper { pc, .. }
            | VerifierError::BadHelperArg { pc, .. }
            | VerifierError::UnknownMap { pc, .. }
            | VerifierError::DeadlineExceeded { pc, .. } => pc,
            // A contained panic has no faulting instruction — the fault
            // is in the analyzer, not the program. Point at entry.
            VerifierError::InternalFault { .. } => 0,
        }
    }

    /// Converts a payload caught by `std::panic::catch_unwind` into an
    /// [`VerifierError::InternalFault`], extracting the message when
    /// the payload is a string (the overwhelmingly common case:
    /// `panic!`, `assert!`, `expect`, and the fail-point injector all
    /// produce string payloads).
    #[must_use]
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> VerifierError {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        VerifierError::InternalFault { detail }
    }
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::LoopDetected { pc } => {
                write!(
                    f,
                    "back-edge detected at instruction {pc}: loops are not allowed"
                )
            }
            VerifierError::AnalysisBudgetExhausted { pc, budget } => {
                write!(
                    f,
                    "analysis budget of {budget} instruction visits exhausted at instruction {pc}"
                )
            }
            VerifierError::UninitRead { reg, pc } => {
                write!(f, "instruction {pc} reads uninitialized register {reg}")
            }
            VerifierError::BadPointer { reg, pc } => {
                write!(
                    f,
                    "instruction {pc} dereferences non-pointer register {reg}"
                )
            }
            VerifierError::OutOfBounds {
                region,
                min_off,
                max_end,
                pc,
            } => write!(
                f,
                "instruction {pc}: cannot prove {region} access in bounds \
                 (offset may span [{min_off}, {max_end}))"
            ),
            VerifierError::Misaligned { region, size, pc } => write!(
                f,
                "instruction {pc}: cannot prove {size}-byte alignment of {region} access"
            ),
            VerifierError::UninitStackRead { pc } => {
                write!(f, "instruction {pc} reads uninitialized stack memory")
            }
            VerifierError::BadPointerArithmetic { pc } => {
                write!(
                    f,
                    "instruction {pc} performs unsupported pointer arithmetic"
                )
            }
            VerifierError::NoReturnValue { pc } => {
                write!(f, "exit at instruction {pc} without a value in r0")
            }
            VerifierError::PointerLeak { pc } => {
                write!(f, "exit at instruction {pc} would leak a pointer in r0")
            }
            VerifierError::NullMapValue { reg, pc } => {
                write!(
                    f,
                    "instruction {pc} dereferences map value pointer {reg} \
                     that may be NULL (no NULL check on this path)"
                )
            }
            VerifierError::UnknownHelper { helper, pc } => {
                write!(f, "call at instruction {pc} names unknown helper {helper}")
            }
            VerifierError::BadHelperArg {
                helper,
                arg,
                expected,
                pc,
            } => {
                write!(
                    f,
                    "call to helper {helper} at instruction {pc}: \
                     argument r{arg} is not {expected}"
                )
            }
            VerifierError::UnknownMap { map, pc } => {
                write!(f, "instruction {pc} references unknown map {map}")
            }
            VerifierError::DeadlineExceeded { elapsed, pc } => {
                write!(
                    f,
                    "analysis deadline exceeded after {:.3} ms at instruction {pc}",
                    elapsed.as_secs_f64() * 1e3
                )
            }
            VerifierError::InternalFault { detail } => {
                write!(f, "internal analyzer fault (contained): {detail}")
            }
        }
    }
}

impl std::error::Error for VerifierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_accessor_and_display() {
        let e = VerifierError::OutOfBounds {
            region: "stack",
            min_off: -520,
            max_end: -512,
            pc: 4,
        };
        assert_eq!(e.pc(), 4);
        assert!(e.to_string().contains("stack"));
        let e = VerifierError::UninitRead {
            reg: Reg::R3,
            pc: 1,
        };
        assert!(e.to_string().contains("r3"));
        assert_eq!(e.pc(), 1);
    }

    #[test]
    fn governance_variants_report_pc_and_display() {
        let e = VerifierError::DeadlineExceeded {
            elapsed: std::time::Duration::from_millis(7),
            pc: 9,
        };
        assert_eq!(e.pc(), 9);
        assert!(e.to_string().contains("deadline"));
        assert!(e.to_string().contains("7.000 ms"));
        let e = VerifierError::InternalFault {
            detail: "worker panicked: boom".to_string(),
        };
        assert_eq!(e.pc(), 0);
        assert!(e.to_string().contains("contained"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<VerifierError>();
    }
}
