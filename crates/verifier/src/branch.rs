//! Branch refinement: sharpening register states along the taken and
//! fall-through edges of a conditional jump — the crate-level analogue of
//! the kernel's `reg_set_min_max` and friends.

use ebpf::JmpOp;
use interval_domain::{Bounds, SInterval, UInterval};
use tnum::Tnum;

use crate::scalar::Scalar;

/// Refines `(dst, src)` assuming the **64-bit** comparison `dst op src`
/// evaluated to `taken`.
///
/// Returns `None` when the assumption is contradictory — the edge is
/// infeasible and the analyzer skips it (path-sensitive dead-code
/// elimination, exactly how the kernel prunes impossible branches).
/// 32-bit comparisons go through [`refine32`].
#[must_use]
pub fn refine(op: JmpOp, taken: bool, dst: Scalar, src: Scalar) -> Option<(Scalar, Scalar)> {
    let effective = if taken { Some(op) } else { op.negated() };
    let Some(op) = effective else {
        // !(dst & src): all common bits are zero.
        return refine_not_set(dst, src);
    };
    match op {
        JmpOp::Eq => {
            let both = dst.intersect(src)?;
            Some((both, both))
        }
        JmpOp::Ne => refine_ne(dst, src),
        JmpOp::Gt => refine_unsigned(dst, src, 1),
        JmpOp::Ge => refine_unsigned(dst, src, 0),
        JmpOp::Lt => refine_unsigned_lt(dst, src, 1),
        JmpOp::Le => refine_unsigned_lt(dst, src, 0),
        JmpOp::Sgt => refine_signed(dst, src, 1),
        JmpOp::Sge => refine_signed(dst, src, 0),
        JmpOp::Slt => refine_signed_lt(dst, src, 1),
        JmpOp::Sle => refine_signed_lt(dst, src, 0),
        JmpOp::Set => refine_set(dst, src),
    }
}

/// Refines `(dst, src)` assuming the **32-bit** comparison
/// `dst.w op src.w` evaluated to `taken` — the kernel's
/// `reg_set_min_max` on the `u32`/`s32` sub-register bounds.
///
/// A 32-bit comparison reads only the zero-extended low halves, so the
/// full [`refine`] machinery runs on [`Scalar::subreg`] of both sides and
/// the refined low-32 knowledge is merged back into the 64-bit values by
/// [`merge_subreg`]: tnum low bits always transfer; range facts transfer
/// exactly when the 64-bit value provably fits in the low word (then the
/// value *is* its sub-register). `None` still means the edge is
/// infeasible — sound, because an unsigned/equality 32-bit compare is
/// precisely the 64-bit compare of the two sub-register abstractions.
///
/// Signed 32-bit comparisons read the sign at **bit 31**, which the
/// zero-extended sub-register misplaces (`0xffff_ffff` is −1 as `i32`
/// but positive as `i64`), so they refine only when both low words are
/// provably non-negative as `i32` — then the signed compare coincides
/// with the unsigned one — and pass through unrefined otherwise (sound,
/// exactly the pre-PR 3 behaviour).
#[must_use]
pub fn refine32(op: JmpOp, taken: bool, dst: Scalar, src: Scalar) -> Option<(Scalar, Scalar)> {
    let (d, s) = (dst.subreg(), src.subreg());
    let op = match op {
        JmpOp::Sgt | JmpOp::Sge | JmpOp::Slt | JmpOp::Sle => {
            let sign_free =
                d.bounds().umax() <= i32::MAX as u64 && s.bounds().umax() <= i32::MAX as u64;
            if !sign_free {
                return Some((dst, src));
            }
            match op {
                JmpOp::Sgt => JmpOp::Gt,
                JmpOp::Sge => JmpOp::Ge,
                JmpOp::Slt => JmpOp::Lt,
                JmpOp::Sle => JmpOp::Le,
                _ => unreachable!(),
            }
        }
        unsigned_or_eq => unsigned_or_eq,
    };
    let (d32, s32) = refine(op, taken, d, s)?;
    Some((merge_subreg(dst, d32)?, merge_subreg(src, s32)?))
}

/// Folds refined sub-register knowledge back into the full 64-bit value;
/// `None` when the combination is contradictory (infeasible edge).
fn merge_subreg(full: Scalar, sub: Scalar) -> Option<Scalar> {
    const LOW: u64 = u32::MAX as u64;
    // Bit level: the low 32 bits obey the refined subreg, the high 32
    // bits keep whatever the full value knew. Both inputs are
    // well-formed per bit, so the spliced pair is too.
    let (ft, st) = (full.tnum(), sub.tnum());
    let tnum = Tnum::new(
        (ft.value() & !LOW) | (st.value() & LOW),
        (ft.mask() & !LOW) | (st.mask() & LOW),
    )
    .expect("per-bit splice of well-formed tnums is well-formed");
    // Range level: only transferable when the full value provably equals
    // its zero-extended low word.
    let fits_low_word = full.bounds().umax() <= LOW && full.bounds().smin() >= 0;
    let bounds = if fits_low_word {
        full.bounds().intersect(sub.bounds())?
    } else {
        full.bounds()
    };
    Scalar::from_parts(tnum, bounds)
}

/// `dst > src` (strict=1) or `dst >= src` (strict=0):
/// `dst.umin >= src.umin + strict`, `src.umax <= dst.umax - strict`.
fn refine_unsigned(dst: Scalar, src: Scalar, strict: u64) -> Option<(Scalar, Scalar)> {
    let dmin = src.bounds().umin().checked_add(strict)?;
    let smax = dst.bounds().umax().checked_sub(strict)?;
    let d = clamp_u(dst, dmin, u64::MAX)?;
    let s = clamp_u(src, 0, smax)?;
    Some((d, s))
}

/// `dst < src` (strict=1) or `dst <= src` (strict=0).
fn refine_unsigned_lt(dst: Scalar, src: Scalar, strict: u64) -> Option<(Scalar, Scalar)> {
    let (s, d) = refine_unsigned(src, dst, strict)?;
    Some((d, s))
}

/// Signed `dst > src` (strict=1) or `dst >= src` (strict=0).
fn refine_signed(dst: Scalar, src: Scalar, strict: i64) -> Option<(Scalar, Scalar)> {
    let dmin = src.bounds().smin().checked_add(strict)?;
    let smax = dst.bounds().smax().checked_sub(strict)?;
    let d = clamp_s(dst, dmin, i64::MAX)?;
    let s = clamp_s(src, i64::MIN, smax)?;
    Some((d, s))
}

fn refine_signed_lt(dst: Scalar, src: Scalar, strict: i64) -> Option<(Scalar, Scalar)> {
    let (s, d) = refine_signed(src, dst, strict)?;
    Some((d, s))
}

/// `dst != src`: ranges cannot be narrowed in general, but when one side
/// is a constant at the edge of the other's range, the range shrinks by
/// one; and equal constants are contradictory.
fn refine_ne(dst: Scalar, src: Scalar) -> Option<(Scalar, Scalar)> {
    match (dst.as_constant(), src.as_constant()) {
        (Some(a), Some(b)) if a == b => None,
        (_, Some(c)) => Some((shave(dst, c)?, src)),
        (Some(c), _) => Some((dst, shave(src, c)?)),
        _ => Some((dst, src)),
    }
}

/// Removes a constant from a scalar's range when it sits at an endpoint —
/// of **either** view. A constant strictly inside `[umin, umax]` can
/// still sit at `smin`/`smax` (and vice versa), so both views are shaved;
/// the product's normalization then propagates the tightening across.
fn shave(s: Scalar, c: u64) -> Option<Scalar> {
    let b = s.bounds();
    let mut out = s;
    if b.umin() == c {
        out = clamp_u(out, c.checked_add(1)?, u64::MAX)?;
    } else if b.umax() == c {
        out = clamp_u(out, 0, c.checked_sub(1)?)?;
    }
    let (b, ci) = (out.bounds(), c as i64);
    if b.smin() == ci {
        out = clamp_s(out, ci.checked_add(1)?, i64::MAX)?;
    } else if b.smax() == ci {
        out = clamp_s(out, i64::MIN, ci.checked_sub(1)?)?;
    }
    Some(out)
}

/// `dst & src != 0`: when the mask is a single known bit, that bit of dst
/// is known 1.
fn refine_set(dst: Scalar, src: Scalar) -> Option<(Scalar, Scalar)> {
    if let Some(mask) = src.as_constant() {
        if mask == 0 {
            // dst & 0 != 0 is impossible.
            return None;
        }
        if mask.is_power_of_two() {
            let bit_known_one = Tnum::masked(mask, !mask);
            let d = Scalar::from_parts(dst.tnum().intersect(bit_known_one)?, dst.bounds())?;
            return Some((d, src));
        }
    }
    Some((dst, src))
}

/// `dst & src == 0`: every possibly-set bit of the mask is known 0 in dst.
fn refine_not_set(dst: Scalar, src: Scalar) -> Option<(Scalar, Scalar)> {
    if let Some(mask) = src.as_constant() {
        let bits_zero = Tnum::masked(0, !mask);
        let d = Scalar::from_parts(dst.tnum().intersect(bits_zero)?, dst.bounds())?;
        return Some((d, src));
    }
    Some((dst, src))
}

fn clamp_u(s: Scalar, lo: u64, hi: u64) -> Option<Scalar> {
    let range = Bounds::from_unsigned(UInterval::new(lo, hi)?);
    Scalar::from_parts(s.tnum(), s.bounds().intersect(range)?)
}

fn clamp_s(s: Scalar, lo: i64, hi: i64) -> Option<Scalar> {
    let range = Bounds::from_signed(SInterval::new(lo, hi)?);
    Scalar::from_parts(s.tnum(), s.bounds().intersect(range)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unknown() -> Scalar {
        Scalar::unknown()
    }

    fn konst(v: u64) -> Scalar {
        Scalar::constant(v)
    }

    /// Soundness oracle: refined abstractions must keep every concrete
    /// pair that satisfies the branch condition.
    fn check_sound(op: JmpOp, dst: Scalar, src: Scalar, samples: &[(u64, u64)]) {
        for taken in [true, false] {
            let refined = refine(op, taken, dst, src);
            for &(x, y) in samples {
                if !dst.contains(x) || !src.contains(y) {
                    continue;
                }
                if op.eval64(x, y) == taken {
                    let (d, s) = refined
                        .unwrap_or_else(|| panic!("{op:?}/{taken}: feasible but refined to ⊥"));
                    assert!(d.contains(x), "{op:?}/{taken}: lost dst={x}");
                    assert!(s.contains(y), "{op:?}/{taken}: lost src={y}");
                }
            }
        }
    }

    #[test]
    fn all_ops_sound_on_samples() {
        let values = [
            0u64,
            1,
            2,
            5,
            7,
            8,
            100,
            u64::MAX,
            u64::MAX - 1,
            1 << 63,
            (1 << 63) - 1,
            // Signed-boundary members: the endpoints (and their
            // neighbours) of the signed abstractions below, locking in
            // the signed half of `shave`.
            (-5i64) as u64,
            (-4i64) as u64,
            (-1i64) as u64,
            3,
            4,
        ];
        let mut samples = Vec::new();
        for &x in &values {
            for &y in &values {
                samples.push((x, y));
            }
        }
        let abstractions = [
            unknown(),
            konst(5),
            konst(0),
            konst(u64::MAX),
            konst((-5i64) as u64),
            Scalar::from_tnum("1xx".parse().unwrap()),
            Scalar::from_parts(
                Tnum::UNKNOWN,
                Bounds::from_unsigned(UInterval::new(2, 100).unwrap()),
            )
            .unwrap(),
            // Straddles zero: its signed endpoints are strictly inside
            // the unsigned view, the case the signed shave exists for.
            Scalar::from_parts(
                Tnum::UNKNOWN,
                Bounds::from_signed(SInterval::new(-5, 4).unwrap()),
            )
            .unwrap(),
        ];
        for op in JmpOp::ALL {
            for &d in &abstractions {
                for &s in &abstractions {
                    check_sound(op, d, s, &samples);
                }
            }
        }
    }

    /// The 32-bit soundness oracle: refined abstractions must keep every
    /// concrete pair whose *low words* satisfy the branch condition.
    fn check_sound32(op: JmpOp, dst: Scalar, src: Scalar, samples: &[(u64, u64)]) {
        for taken in [true, false] {
            let refined = refine32(op, taken, dst, src);
            for &(x, y) in samples {
                if !dst.contains(x) || !src.contains(y) {
                    continue;
                }
                if op.eval32(x, y) == taken {
                    let (d, s) = refined
                        .unwrap_or_else(|| panic!("{op:?}/{taken} w32: feasible but refined to ⊥"));
                    assert!(d.contains(x), "{op:?}/{taken} w32: lost dst={x:#x}");
                    assert!(s.contains(y), "{op:?}/{taken} w32: lost src={y:#x}");
                }
            }
        }
    }

    #[test]
    fn all_ops_sound_on_samples_w32() {
        // Values whose high and low words stress the subreg split: equal
        // low words with different high words, sign-boundary low words,
        // and plain small values.
        let values = [
            0u64,
            1,
            7,
            8,
            0xffff_ffff,
            0x1_0000_0000,
            0x1_0000_0007,
            0xdead_beef_0000_0008,
            u64::MAX,
            (1 << 31) - 1,
            1 << 31,
            (-5i64) as u64,
        ];
        let mut samples = Vec::new();
        for &x in &values {
            for &y in &values {
                samples.push((x, y));
            }
        }
        let abstractions = [
            unknown(),
            konst(5),
            konst(0xffff_ffff),
            konst(0x1_0000_0007),
            konst((-5i64) as u64),
            Scalar::from_tnum("1xx".parse().unwrap()),
            // High bits unknown, low byte masked: only the tnum can carry
            // the refinement back.
            Scalar::from_tnum(Tnum::masked(0, 0xff)),
            Scalar::from_parts(
                Tnum::UNKNOWN,
                Bounds::from_unsigned(UInterval::new(2, 100).unwrap()),
            )
            .unwrap(),
        ];
        for op in JmpOp::ALL {
            for &d in &abstractions {
                for &s in &abstractions {
                    check_sound32(op, d, s, &samples);
                }
            }
        }
    }

    #[test]
    fn refine32_bounds_small_values_exactly() {
        // A value known to fit the low word transfers range facts fully.
        let byte = Scalar::from_tnum(Tnum::masked(0, 0xff));
        let (d, _) = refine32(JmpOp::Lt, true, byte, konst(16)).unwrap();
        assert_eq!(d.bounds().umax(), 15);
        let (d, _) = refine32(JmpOp::Gt, false, byte, konst(7)).unwrap();
        assert_eq!(d.bounds().umax(), 7);
        // Equal-constant low words with a contradictory condition prune.
        assert!(refine32(JmpOp::Ne, true, konst(3), konst(3)).is_none());
        assert!(refine32(JmpOp::Gt, true, konst(3), konst(9)).is_none());
    }

    #[test]
    fn refine32_keeps_unrelated_high_bits() {
        // dst = 0x1_0000_00xx: the compare sees only the low word, so the
        // taken edge of `w < 16` keeps the high bit and caps the low byte.
        let high_plus_byte =
            Scalar::from_parts(Tnum::masked(1 << 32, 0xff), interval_domain::Bounds::FULL).unwrap();
        let (d, _) = refine32(JmpOp::Lt, true, high_plus_byte, konst(16)).unwrap();
        assert!(d.contains(0x1_0000_0005));
        assert!(!d.contains(0x1_0000_0020), "low word capped below 16");
        assert_eq!(d.tnum().value() & (1 << 32), 1 << 32, "high bit kept");
        // The full-range bounds must NOT be intersected with the subreg
        // range (the value does not fit the low word).
        assert!(d.bounds().umax() >= 1 << 32);
    }

    #[test]
    fn lt_refines_upper_bound() {
        // if r < 8: range becomes [0, 7] on the taken edge.
        let (d, _) = refine(JmpOp::Lt, true, unknown(), konst(8)).unwrap();
        assert_eq!(d.bounds().umax(), 7);
        // ... and [8, MAX] on the fall-through edge.
        let (d, _) = refine(JmpOp::Lt, false, unknown(), konst(8)).unwrap();
        assert_eq!(d.bounds().umin(), 8);
    }

    #[test]
    fn eq_pins_constant_and_detects_dead_branch() {
        let (d, s) = refine(JmpOp::Eq, true, unknown(), konst(42)).unwrap();
        assert_eq!(d.as_constant(), Some(42));
        assert_eq!(s.as_constant(), Some(42));
        // 3 == 4 taken: infeasible.
        assert_eq!(refine(JmpOp::Eq, true, konst(3), konst(4)), None);
        // 3 != 3 taken: infeasible.
        assert_eq!(refine(JmpOp::Ne, true, konst(3), konst(3)), None);
    }

    #[test]
    fn signed_refinement() {
        // if r s< 0 not taken: r >= 0 in the signed view.
        let (d, _) = refine(JmpOp::Slt, false, unknown(), konst(0)).unwrap();
        assert_eq!(d.bounds().smin(), 0);
        // That also fixes the unsigned range below the sign boundary.
        assert!(d.bounds().umax() <= i64::MAX as u64);
    }

    #[test]
    fn set_refines_tnum_bits() {
        // if r & 0x8 taken with single-bit mask: bit 3 known one.
        let (d, _) = refine(JmpOp::Set, true, unknown(), konst(8)).unwrap();
        assert_eq!(d.tnum().value() & 8, 8);
        // Fall-through: bit 3 known zero; multi-bit masks clear all bits.
        let (d, _) = refine(JmpOp::Set, false, unknown(), konst(0b1010)).unwrap();
        assert_eq!(d.tnum().mask() & 0b1010, 0);
        assert_eq!(d.tnum().value() & 0b1010, 0);
        assert!(d.bounds().umax() <= !0b1010u64);
        // dst & 0 is never nonzero.
        assert_eq!(refine(JmpOp::Set, true, unknown(), konst(0)), None);
    }

    #[test]
    fn ne_shaves_range_endpoints() {
        let ranged = Scalar::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_unsigned(UInterval::new(0, 10).unwrap()),
        )
        .unwrap();
        let (d, _) = refine(JmpOp::Ne, true, ranged, konst(10)).unwrap();
        assert_eq!(d.bounds().umax(), 9);
        let (d, _) = refine(JmpOp::Ne, true, ranged, konst(0)).unwrap();
        assert_eq!(d.bounds().umin(), 1);
        // Interior constants do not shrink the range.
        let (d, _) = refine(JmpOp::Ne, true, ranged, konst(5)).unwrap();
        assert_eq!((d.bounds().umin(), d.bounds().umax()), (0, 10));
    }

    #[test]
    fn ne_shaves_signed_endpoints() {
        // [-5, 4] signed: both signed endpoints are strictly inside the
        // unsigned view ([0, u64::MAX]-ish), so the unsigned-only shave
        // used to keep them silently.
        let straddling = Scalar::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_signed(SInterval::new(-5, 4).unwrap()),
        )
        .unwrap();
        let (d, _) = refine(JmpOp::Ne, true, straddling, konst((-5i64) as u64)).unwrap();
        assert_eq!(d.bounds().smin(), -4, "smin endpoint shaved");
        let (d, _) = refine(JmpOp::Ne, true, straddling, konst(4)).unwrap();
        assert_eq!(d.bounds().smax(), 3, "smax endpoint shaved");
        // Signed-interior constants still leave the range alone.
        let (d, _) = refine(JmpOp::Ne, true, straddling, konst(0)).unwrap();
        assert_eq!((d.bounds().smin(), d.bounds().smax()), (-5, 4));
        // A negative-range abstraction whose unsigned endpoints coincide
        // with the signed ones shaves exactly once, from both views.
        let negative = Scalar::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_signed(SInterval::new(-9, -3).unwrap()),
        )
        .unwrap();
        let (d, _) = refine(JmpOp::Ne, true, negative, konst((-3i64) as u64)).unwrap();
        assert_eq!(d.bounds().smax(), -4);
        assert_eq!(d.bounds().umax(), (-4i64) as u64);
    }

    #[test]
    fn gt_between_two_unknowns_refines_both() {
        let lowish = Scalar::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_unsigned(UInterval::new(0, 50).unwrap()),
        )
        .unwrap();
        let highish = Scalar::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_unsigned(UInterval::new(40, 100).unwrap()),
        )
        .unwrap();
        // lowish > highish on the taken edge: lowish in [41, 50],
        // highish in [40, 49].
        let (d, s) = refine(JmpOp::Gt, true, lowish, highish).unwrap();
        assert_eq!((d.bounds().umin(), d.bounds().umax()), (41, 50));
        assert_eq!((s.bounds().umin(), s.bounds().umax()), (40, 49));
        // Infeasible direction: highish <= lowish impossible when disjoint.
        let low = clamp_u(unknown(), 0, 3).unwrap();
        let high = clamp_u(unknown(), 10, 20).unwrap();
        assert!(refine(JmpOp::Gt, true, low, high).is_none());
    }
}
