//! Control-flow graph construction, back-edge classification, and the
//! weak-topological iteration order of the fixpoint engine.
//!
//! Earlier revisions rejected every cyclic program here, like the
//! pre-5.3 kernel verifier. Loops are now first-class: a depth-first
//! pass computes a reverse postorder (RPO) over the reachable
//! instructions, and every *retreating* edge with respect to that order
//! — an edge from a later to an earlier position, which every cycle must
//! contain — is classified as a back-edge whose target is a **loop
//! head**, the widening point of [`crate::Analyzer`]'s worklist. The
//! classic all-loops-rejected behaviour survives behind
//! [`crate::AnalyzerOptions::reject_loops`].

use ebpf::{Insn, Program};

/// The control-flow graph of a program: successor lists per instruction,
/// the reverse-postorder iteration schedule, and the back-edge/loop-head
/// classification driving widening.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    rpo: Vec<usize>,
    /// Position of each instruction in `rpo`; `usize::MAX` marks
    /// unreachable instructions.
    rpo_pos: Vec<usize>,
    loop_head: Vec<bool>,
    back_edges: Vec<(usize, usize)>,
}

impl Cfg {
    /// Builds the CFG, classifying back-edges instead of rejecting them.
    #[must_use]
    pub fn build(prog: &Program) -> Cfg {
        let n = prog.len();
        let mut succs = vec![Vec::new(); n];
        for (i, insn) in prog.insns().iter().enumerate() {
            match *insn {
                Insn::Exit => {}
                Insn::Ja { off } => {
                    succs[i].push(prog.jump_target(i, off).expect("validated jump"));
                }
                Insn::Jmp { off, .. } => {
                    // Fall-through first, then the taken edge.
                    succs[i].push(i + 1);
                    succs[i].push(prog.jump_target(i, off).expect("validated jump"));
                }
                _ => succs[i].push(i + 1),
            }
        }

        // Iterative DFS producing a postorder of the reachable subgraph;
        // its reverse is the RPO the worklist iterates in.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < succs[node].len() {
                let s = succs[node][*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        let mut rpo_pos = vec![usize::MAX; n];
        for (pos, &pc) in rpo.iter().enumerate() {
            rpo_pos[pc] = pos;
        }

        // Retreating edges w.r.t. the RPO: robust for irreducible CFGs
        // too, and every cycle necessarily contains one, so widening at
        // their targets guarantees termination.
        let mut loop_head = vec![false; n];
        let mut back_edges = Vec::new();
        for &i in &rpo {
            for &s in &succs[i] {
                if rpo_pos[s] <= rpo_pos[i] {
                    loop_head[s] = true;
                    back_edges.push((i, s));
                }
            }
        }

        Cfg {
            succs,
            rpo,
            rpo_pos,
            loop_head,
            back_edges,
        }
    }

    /// Successor instruction indices of instruction `i`. For conditional
    /// jumps the fall-through edge comes first, then the taken edge.
    /// Used by the path-sensitive explorer to find merge points (its
    /// pruning checkpoints).
    #[must_use]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Instructions reachable from the entry, in reverse postorder — a
    /// weak-topological iteration schedule: acyclic regions come in
    /// dependency order, loop bodies after their head.
    #[must_use]
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// The RPO position of instruction `i` — the worklist priority
    /// (`usize::MAX` for unreachable instructions, which are never
    /// queued).
    #[must_use]
    pub fn rpo_pos(&self, i: usize) -> usize {
        self.rpo_pos[i]
    }

    /// Whether instruction `i` is the target of a back-edge — a widening
    /// point of the fixpoint iteration.
    #[must_use]
    pub fn is_loop_head(&self, i: usize) -> bool {
        self.loop_head[i]
    }

    /// Every retreating edge `(from, to)` in RPO terms. Empty exactly for
    /// the loop-free programs the classic verifier accepted.
    #[must_use]
    pub fn back_edges(&self) -> &[(usize, usize)] {
        &self.back_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    #[test]
    fn straight_line_rpo_is_identity() {
        let prog = assemble("r0 = 1\nr0 += 1\nexit").unwrap();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.rpo(), &[0, 1, 2]);
        assert_eq!(cfg.successors(0), &[1]);
        assert!(cfg.successors(2).is_empty());
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    fn diamond_orders_merge_last() {
        let prog = assemble(
            r"
                r0 = 0
                if r1 == 0 goto other
                r0 = 1
                goto end
            other:
                r0 = 2
            end:
                exit
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        let pos = |i: usize| cfg.rpo_pos(i);
        // The merge (exit, index 5) comes after both arms.
        assert!(pos(5) > pos(2) && pos(5) > pos(4));
        // Conditional successors: fall-through then taken.
        assert_eq!(cfg.successors(1), &[2, 4]);
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    fn back_edges_are_classified_not_rejected() {
        let prog = assemble("loop:\nr0 = 0\nif r1 > 0 goto loop\nexit").unwrap();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.back_edges(), &[(1, 0)]);
        assert!(cfg.is_loop_head(0));
        assert!(!cfg.is_loop_head(1));
        // The head precedes its body in the iteration order.
        assert!(cfg.rpo_pos(0) < cfg.rpo_pos(1));

        // A self-loop is its own head.
        let prog = assemble("self:\ngoto self\nexit").unwrap();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.back_edges(), &[(0, 0)]);
        assert!(cfg.is_loop_head(0));
    }

    #[test]
    fn unreachable_code_is_not_ordered() {
        let prog = assemble("goto end\nr0 = 9\nend:\nr0 = 0\nexit").unwrap();
        let cfg = Cfg::build(&prog);
        assert!(!cfg.rpo().contains(&1), "dead insn not in rpo");
        assert_eq!(cfg.rpo_pos(1), usize::MAX);
    }

    #[test]
    fn nested_loops_mark_both_heads() {
        let prog = assemble(
            r"
                r0 = 0
            outer:
                r1 = 0
            inner:
                r1 += 1
                if r1 < 4 goto inner
                r0 += 1
                if r0 < 4 goto outer
                exit
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog);
        assert!(cfg.is_loop_head(1), "outer head");
        assert!(cfg.is_loop_head(2), "inner head");
        assert_eq!(cfg.back_edges().len(), 2);
    }
}
