//! Control-flow graph construction, cycle rejection, and topological
//! ordering.

use ebpf::{Insn, Program};

use crate::error::VerifierError;

/// The control-flow graph of a program: successor lists per instruction,
/// plus a topological order (programs with cycles are rejected, as in the
/// classic BPF verifier).
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    topo: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG and rejects cyclic programs.
    ///
    /// # Errors
    ///
    /// [`VerifierError::LoopDetected`] when a back-edge exists.
    pub fn build(prog: &Program) -> Result<Cfg, VerifierError> {
        let n = prog.len();
        let mut succs = vec![Vec::new(); n];
        for (i, insn) in prog.insns().iter().enumerate() {
            match *insn {
                Insn::Exit => {}
                Insn::Ja { off } => {
                    succs[i].push(prog.jump_target(i, off).expect("validated jump"));
                }
                Insn::Jmp { off, .. } => {
                    // Fall-through first, then the taken edge.
                    succs[i].push(i + 1);
                    succs[i].push(prog.jump_target(i, off).expect("validated jump"));
                }
                _ => succs[i].push(i + 1),
            }
        }

        // Iterative DFS with colors for cycle detection and post-order.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < succs[node].len() {
                let s = succs[node][*next];
                *next += 1;
                match color[s] {
                    Color::White => {
                        color[s] = Color::Gray;
                        stack.push((s, 0));
                    }
                    Color::Gray => return Err(VerifierError::LoopDetected { pc: s }),
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        Ok(Cfg { succs, topo: post })
    }

    /// Successor instruction indices of instruction `i`. For conditional
    /// jumps the fall-through edge comes first, then the taken edge.
    #[cfg_attr(not(test), allow(dead_code))]
    #[must_use]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Instructions reachable from the entry, in topological order.
    #[must_use]
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    #[test]
    fn straight_line_topo_is_identity() {
        let prog = assemble("r0 = 1\nr0 += 1\nexit").unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        assert_eq!(cfg.topo_order(), &[0, 1, 2]);
        assert_eq!(cfg.successors(0), &[1]);
        assert!(cfg.successors(2).is_empty());
    }

    #[test]
    fn diamond_orders_merge_last() {
        let prog = assemble(
            r"
                r0 = 0
                if r1 == 0 goto other
                r0 = 1
                goto end
            other:
                r0 = 2
            end:
                exit
            ",
        )
        .unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let topo = cfg.topo_order();
        let pos = |i: usize| topo.iter().position(|&x| x == i).expect("all reachable");
        // The merge (exit, index 5) comes after both arms.
        assert!(pos(5) > pos(2) && pos(5) > pos(4));
        // Conditional successors: fall-through then taken.
        assert_eq!(cfg.successors(1), &[2, 4]);
    }

    #[test]
    fn loops_are_rejected() {
        let prog = assemble("loop:\nr0 = 0\nif r1 > 0 goto loop\nexit").unwrap();
        assert!(matches!(
            Cfg::build(&prog),
            Err(VerifierError::LoopDetected { .. })
        ));
        let prog = assemble("self:\ngoto self\nexit").unwrap();
        assert!(matches!(
            Cfg::build(&prog),
            Err(VerifierError::LoopDetected { .. })
        ));
    }

    #[test]
    fn unreachable_code_is_not_ordered() {
        let prog = assemble("goto end\nr0 = 9\nend:\nr0 = 0\nexit").unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        assert!(
            !cfg.topo_order().contains(&1),
            "dead insn not in topo order"
        );
    }
}
