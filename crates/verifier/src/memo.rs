//! The fingerprint-keyed **transfer memo cache**: cross-program sharing
//! of pure transfer-function results for the batched throughput engine
//! ([`crate::batch`]).
//!
//! `AbsState` is `Rc`-backed and `!Send`, so batch parallelism is
//! program-granular — workers never share states. What they *can* share
//! is the arithmetic: the scalar halves of the transfer layer
//! ([`crate::transfer`]) are pure functions of their operand values, and
//! real batches (64 variants of a packet filter, a fleet of similar
//! loops) recompute the same `(operands, operation)` pairs constantly.
//! [`TransferMemo`] caches exactly those:
//!
//! * **ALU**: `(width, op, lhs, rhs) → result` for scalar × scalar
//!   arithmetic ([`MemoEffect::Alu`]);
//! * **branches**: `(width, op, lhs, rhs) → both refined edges`
//!   ([`MemoEffect::Branch`]) — including edges proven infeasible, which
//!   is verdict-relevant and reproduced exactly;
//! * **memory checks**: `(offset scalar, packed check parameters) →
//!   proven access extremes` ([`MemoEffect::Mem`]) — the region kind,
//!   static displacement, access size, strictness flag, and region
//!   extent are packed losslessly into the `rhs` operand
//!   ([`MemoKey::mem`]), so the cached verdict is still a pure function
//!   of its two operands.
//!
//! Pointer arithmetic and errors are never cached: pointer ops depend on
//! more than the operand values, and errors carry the failing `pc` and
//! terminate the walk — caching only total functions of the stored
//! operands is what makes a hit unconditionally sound.
//!
//! Keys are [`MemoKey`]s — a packed instruction word plus the
//! XOR-mixed operand fingerprints ([`crate::state::value_fingerprint`]).
//! Fingerprints can collide, so every entry stores its exact operands
//! and [`TransferMemo::lookup`] verifies full operand equality before
//! reuse; a key match with unequal operands is a miss, never a wrong
//! answer. The table is split into [`SHARDS`] independently-locked
//! shards (selected by key hash) so concurrent workers rarely contend,
//! and each shard evicts oldest-first past its cap — the same bounded
//! "LRU-ish" hygiene as the visited table's chain cap.
//!
//! Per-run traffic is counted in thread-local [`counters`] the
//! exploration engines snapshot into
//! [`AnalysisStats`](crate::AnalysisStats)
//! (`memo_hits` / `memo_misses` / `memo_evicted`).

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use domain::parallel::lock_recover;
use ebpf::{AluOp, JmpOp, Width};

use crate::scalar::Scalar;
use crate::state::mix;

/// Number of independently-locked shards. A power of two so shard
/// selection is a mask; 16 keeps contention negligible at the jobs
/// counts the batch engine targets (≤ 8 on typical hosts).
pub const SHARDS: usize = 16;

/// Default per-shard entry cap (≈ 16 K entries across the cache).
const DEFAULT_SHARD_CAP: usize = 1024;

/// Thread-local memo traffic counters, reset per analysis run and
/// snapshotted into `AnalysisStats` — same pattern as
/// [`crate::state::stats`].
pub(crate) mod counters {
    use std::cell::Cell;

    thread_local! {
        static HITS: Cell<u64> = const { Cell::new(0) };
        static MISSES: Cell<u64> = const { Cell::new(0) };
        static EVICTED: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn bump_hit() {
        HITS.with(|v| v.set(v.get() + 1));
    }

    pub(crate) fn bump_miss() {
        MISSES.with(|v| v.set(v.get() + 1));
    }

    pub(crate) fn bump_evicted() {
        EVICTED.with(|v| v.set(v.get() + 1));
    }

    /// Adds externally-accumulated traffic to this thread's counters —
    /// how the parallel explorer folds its worker threads' totals back
    /// onto the coordinator before outer aggregators snapshot it.
    pub(crate) fn credit(hits: u64, misses: u64, evicted: u64) {
        HITS.with(|v| v.set(v.get() + hits));
        MISSES.with(|v| v.set(v.get() + misses));
        EVICTED.with(|v| v.set(v.get() + evicted));
    }

    /// Zeroes the counters (start of an analysis run).
    pub(crate) fn reset() {
        for c in [&HITS, &MISSES, &EVICTED] {
            c.with(|v| v.set(0));
        }
    }

    /// `(hits, misses, evicted)` accumulated since the last [`reset`].
    pub(crate) fn snapshot() -> (u64, u64, u64) {
        (
            HITS.with(Cell::get),
            MISSES.with(Cell::get),
            EVICTED.with(Cell::get),
        )
    }
}

/// A memo cache key: the packed instruction word plus the mixed operand
/// fingerprints.
///
/// The instruction word packs the *semantic* identity of the operation —
/// kind (ALU vs. branch), opcode, and width — and deliberately omits
/// register numbers and jump offsets: the cached results are pure value
/// functions, so `r3 += r1` and `r7 += r2` over equal operand values hit
/// the same entry, across programs. The fields are public so tests can
/// forge colliding keys and prove the operand-equality check holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Packed operation word: kind tag, opcode, and width.
    pub insn: u64,
    /// Mixed fingerprints of both operand values.
    pub fp: u64,
}

/// Order-sensitive combination of the two operand fingerprints (ALU and
/// comparisons are not commutative in general).
const fn mix_operands(lhs_fp: u64, rhs_fp: u64) -> u64 {
    mix(lhs_fp ^ mix(rhs_fp ^ 0x4d45_4d4f_5f52_4853)) // "MEMO_RHS"
}

const fn width_bit(width: Width) -> u64 {
    match width {
        Width::W64 => 0,
        Width::W32 => 1,
    }
}

impl MemoKey {
    /// The key of a scalar × scalar ALU computation.
    #[must_use]
    pub fn alu(width: Width, op: AluOp, lhs_fp: u64, rhs_fp: u64) -> MemoKey {
        MemoKey {
            insn: 0x100 | (op as u64) << 1 | width_bit(width),
            fp: mix_operands(lhs_fp, rhs_fp),
        }
    }

    /// The key of a scalar × scalar conditional-branch refinement.
    #[must_use]
    pub fn branch(width: Width, op: JmpOp, lhs_fp: u64, rhs_fp: u64) -> MemoKey {
        MemoKey {
            insn: 0x200 | (op as u64) << 1 | width_bit(width),
            fp: mix_operands(lhs_fp, rhs_fp),
        }
    }

    /// The key of a memory region check: the variable offset scalar's
    /// fingerprint mixed with the packed remaining check inputs (region
    /// kind, static displacement, access size, strict-alignment flag,
    /// region extent) — the word the caller also passes as the entry's
    /// `rhs` operand, so a hit verifies *every* input of the check by
    /// exact equality. Tagged disjointly from ALU and branch keys.
    #[must_use]
    pub fn mem(offset_fp: u64, params: u64) -> MemoKey {
        MemoKey {
            insn: 0x400,
            fp: mix_operands(offset_fp, params),
        }
    }

    /// The shard this key lands in.
    fn shard(self) -> usize {
        (mix(self.fp ^ self.insn) as usize) & (SHARDS - 1)
    }
}

/// The verdict-relevant output of one memoized transfer computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoEffect {
    /// The result scalar of an ALU operation.
    Alu(Scalar),
    /// Both refined edges of a conditional branch, `[fall, taken]`:
    /// each edge's refined `(dst, src)` scalar pair, or `None` for an
    /// edge proven infeasible.
    Branch([Option<(Scalar, Scalar)>; 2]),
    /// The `(lo, hi)` extreme byte offsets of a memory access proven in
    /// bounds (and aligned, under strict alignment) by the transfer
    /// layer's region check. Only successful checks are cached —
    /// rejections abort the walk and are never replayed.
    Mem((i64, i64)),
}

/// One cached computation: the *exact* operands (for collision-proof
/// verification on lookup) and the effect they produced.
#[derive(Clone, Copy, Debug)]
struct MemoEntry {
    lhs: Scalar,
    rhs: Scalar,
    effect: MemoEffect,
}

/// One locked shard: the key → entry map plus insertion order for
/// oldest-first eviction.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<MemoKey, MemoEntry>,
    order: VecDeque<MemoKey>,
}

/// The sharded, fingerprint-keyed transfer memo cache shared across the
/// programs of a batch (via `Arc` in
/// [`AnalyzerOptions::memo_cache`](crate::AnalyzerOptions::memo_cache)).
///
/// Thread-safe: shards are `Mutex`-protected and selected by key hash,
/// so workers verifying different programs contend only when they touch
/// the same shard at the same instant.
#[derive(Debug)]
pub struct TransferMemo {
    shards: [Mutex<Shard>; SHARDS],
    shard_cap: usize,
}

impl Default for TransferMemo {
    fn default() -> TransferMemo {
        TransferMemo::new()
    }
}

impl TransferMemo {
    /// A cache with the default per-shard capacity.
    #[must_use]
    pub fn new() -> TransferMemo {
        TransferMemo::with_shard_capacity(DEFAULT_SHARD_CAP)
    }

    /// A cache holding at most `shard_cap` entries per shard (evicting
    /// oldest-first past the cap). A cap of 0 disables insertion — every
    /// lookup misses — which is occasionally useful for ablations.
    #[must_use]
    pub fn with_shard_capacity(shard_cap: usize) -> TransferMemo {
        TransferMemo {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            shard_cap,
        }
    }

    /// Looks up `key`, returning the cached effect only when the stored
    /// operands are *exactly equal* to `(lhs, rhs)` — a fingerprint
    /// collision therefore reads as a miss, never as a wrong result.
    /// Counts a hit or miss in the calling thread's [`counters`].
    #[must_use]
    pub fn lookup(&self, key: MemoKey, lhs: Scalar, rhs: Scalar) -> Option<MemoEffect> {
        // Poison recovery, not unwrap: a worker that panicked (and was
        // contained) mid-insert leaves at worst an absent entry — the
        // map itself is updated atomically under the lock — so siblings
        // sharing the cache keep working.
        let shard = lock_recover(&self.shards[key.shard()]);
        match shard.map.get(&key) {
            Some(entry) if entry.lhs == lhs && entry.rhs == rhs => {
                counters::bump_hit();
                Some(entry.effect)
            }
            _ => {
                counters::bump_miss();
                None
            }
        }
    }

    /// Records a computed effect under `key`, evicting the shard's
    /// oldest entry when full. A later insert under an existing key
    /// overwrites in place (the colliding-operand case), keeping map and
    /// eviction order consistent.
    pub fn insert(&self, key: MemoKey, lhs: Scalar, rhs: Scalar, effect: MemoEffect) {
        if self.shard_cap == 0 {
            return;
        }
        let mut shard = lock_recover(&self.shards[key.shard()]);
        // Fired while the shard lock is held, so an injected panic
        // poisons a real lock — the scenario the `lock_recover`
        // accessors exist for.
        crate::failpoint::fire(crate::failpoint::FaultSite::MemoInsert);
        let entry = MemoEntry { lhs, rhs, effect };
        if shard.map.insert(key, entry).is_some() {
            return; // overwrote in place; key already in `order`
        }
        shard.order.push_back(key);
        while shard.map.len() > self.shard_cap {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            if shard.map.remove(&oldest).is_some() {
                counters::bump_evicted();
            }
        }
    }

    /// Total number of live entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> Scalar {
        Scalar::constant(v)
    }

    #[test]
    fn round_trips_an_alu_entry() {
        counters::reset();
        let memo = TransferMemo::new();
        let key = MemoKey::alu(Width::W64, AluOp::Add, 11, 22);
        assert_eq!(memo.lookup(key, s(1), s(2)), None);
        memo.insert(key, s(1), s(2), MemoEffect::Alu(s(3)));
        assert_eq!(memo.lookup(key, s(1), s(2)), Some(MemoEffect::Alu(s(3))));
        let (hits, misses, _) = counters::snapshot();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn forged_key_collision_is_rejected_by_operand_equality() {
        // Two *distinct* operand pairs under the very same key: the
        // cache must refuse to serve the first pair's effect to the
        // second — full operand equality is checked before reuse.
        let memo = TransferMemo::new();
        let key = MemoKey {
            insn: 0x101,
            fp: 42,
        }; // forged: same for both
        memo.insert(key, s(1), s(2), MemoEffect::Alu(s(3)));
        assert_eq!(memo.lookup(key, s(1), s(2)), Some(MemoEffect::Alu(s(3))));
        assert_eq!(
            memo.lookup(key, s(9), s(2)),
            None,
            "colliding key with different lhs must miss"
        );
        assert_eq!(
            memo.lookup(key, s(1), s(7)),
            None,
            "colliding key with different rhs must miss"
        );
    }

    #[test]
    fn alu_branch_and_mem_keys_never_overlap() {
        // Same opcode byte value, same operands — the kind tag keeps the
        // key spaces disjoint.
        let a = MemoKey::alu(Width::W64, AluOp::Add, 5, 6);
        let b = MemoKey::branch(Width::W64, JmpOp::Eq, 5, 6);
        let m = MemoKey::mem(5, 6);
        assert_ne!(a.insn & 0x700, b.insn & 0x700);
        assert_ne!(a.insn & 0x700, m.insn & 0x700);
        assert_ne!(b.insn & 0x700, m.insn & 0x700);
    }

    #[test]
    fn mem_entries_verify_both_operands_on_hit() {
        // A forged collision: one key, two different (offset, params)
        // pairs — the equality check must keep them apart.
        let memo = TransferMemo::new();
        let key = MemoKey::mem(77, 88);
        memo.insert(key, s(8), s(100), MemoEffect::Mem((-8, -8)));
        assert_eq!(
            memo.lookup(key, s(8), s(100)),
            Some(MemoEffect::Mem((-8, -8)))
        );
        assert_eq!(
            memo.lookup(key, s(16), s(100)),
            None,
            "different offset scalar under a colliding key must miss"
        );
        assert_eq!(
            memo.lookup(key, s(8), s(101)),
            None,
            "different packed check parameters must miss"
        );
    }

    #[test]
    fn operand_order_matters_in_the_key() {
        let ab = MemoKey::alu(Width::W64, AluOp::Sub, 1, 2);
        let ba = MemoKey::alu(Width::W64, AluOp::Sub, 2, 1);
        assert_ne!(ab, ba, "sub is not commutative; keys must differ");
    }

    #[test]
    fn shard_cap_evicts_oldest_first() {
        counters::reset();
        let memo = TransferMemo::with_shard_capacity(2);
        // Generate enough distinct keys that some shard overflows.
        for i in 0..(SHARDS as u64 * 8) {
            let key = MemoKey::alu(Width::W64, AluOp::Add, i, i + 1);
            memo.insert(key, s(i), s(i), MemoEffect::Alu(s(i)));
        }
        assert!(memo.len() <= SHARDS * 2, "caps hold: {}", memo.len());
        let (_, _, evicted) = counters::snapshot();
        assert!(evicted > 0, "overflow evicted oldest entries");
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let memo = TransferMemo::with_shard_capacity(0);
        let key = MemoKey::alu(Width::W64, AluOp::Add, 1, 2);
        memo.insert(key, s(1), s(2), MemoEffect::Alu(s(3)));
        assert!(memo.is_empty());
        assert_eq!(memo.lookup(key, s(1), s(2)), None);
    }

    #[test]
    fn concurrent_use_is_safe_and_coherent() {
        let memo = TransferMemo::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let memo = &memo;
                scope.spawn(move || {
                    for i in 0..256 {
                        let key = MemoKey::alu(Width::W64, AluOp::Add, i, t % 2);
                        let (l, r) = (s(i), s(t % 2));
                        if let Some(MemoEffect::Alu(out)) = memo.lookup(key, l, r) {
                            assert_eq!(out, s(i + t % 2), "hits are coherent");
                        } else {
                            memo.insert(key, l, r, MemoEffect::Alu(s(i + t % 2)));
                        }
                    }
                });
            }
        });
        assert!(!memo.is_empty());
    }
}
