//! Pluggable exploration strategies: *how* the analyzer walks a program
//! is a first-class choice, not a hardwired worklist.
//!
//! The [`ExplorationStrategy`] trait is the seam between the transfer
//! layer (one abstract instruction step, [`crate::transfer`]) and the
//! driver that schedules those steps. Two built-in strategies implement
//! it, selectable through [`Strategy`] on a
//! [`VerificationSession`](crate::VerificationSession):
//!
//! * [`WideningFixpoint`] — the reverse-postorder priority worklist of
//!   [`crate::fixpoint`]: joins every path at merge points, widens at
//!   loop heads (per-register delay + harvested thresholds), narrows
//!   once. One state cell per instruction; cost is near-linear in the
//!   program, precision pays the join/widening toll.
//! * [`PathSensitive`] — a kernel-style depth-first branch walker: each
//!   conditional forks an O(1) copy-on-write state, a per-pc
//!   [`VisitedTable`](crate::visited::VisitedTable) prunes any arrival
//!   included in an already-explored state (the kernel's
//!   `is_state_visited`), the first
//!   [`AnalyzerOptions::unroll_k`](crate::AnalyzerOptions::unroll_k)
//!   trips of every loop are unrolled with full per-trip precision, and
//!   past the bound the loop head falls back to widening (with the same
//!   harvested thresholds), so unbounded loops still terminate.
//!
//! A third strategy, [`PathParallel`](crate::parshard::PathParallel)
//! (`Strategy::PathParallel`), is the work-stealing parallel sibling of
//! [`PathSensitive`]: independent DFS subtrees become stealable jobs,
//! pruning runs against a shared
//! [`ConcurrentVisitedTable`](crate::visited::ConcurrentVisitedTable),
//! and verdicts/errors/reported joins stay bit-identical to the
//! sequential walk — see [`crate::parshard`].
//!
//! All return an [`Exploration`] — per-instruction states plus
//! [`AnalysisStats`] — which the session tags with its [`Strategy`] into
//! an [`Analysis`](crate::Analysis). Every future scaling direction
//! (per-function caching, strategy portfolios) plugs in behind the same
//! trait.

use ebpf::Program;
use interval_domain::WidenThresholds;

use crate::analyzer::AnalyzerOptions;
use crate::cfg::Cfg;
use crate::error::VerifierError;
use crate::fixpoint::{self, AnalysisStats};
use crate::state::{stats, AbsState, JoinCounters, WidenCtx};
use crate::transfer::Transfer;
use crate::visited::VisitedTable;

/// The raw result of one exploration run: the abstract state *before*
/// every instruction (`None` for instructions proven unreachable) and
/// the run's counters. Wrapped into a strategy-tagged
/// [`Analysis`](crate::Analysis) by
/// [`VerificationSession::run`](crate::VerificationSession::run).
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Per-instruction abstract states; under [`PathSensitive`] each is
    /// the *join over the explored path states* reaching that pc.
    pub states: Vec<Option<AbsState>>,
    /// The run's sharing, widening, and pruning counters.
    pub stats: AnalysisStats,
}

/// An exploration strategy: a driver that schedules
/// [`Transfer`] steps over a program until every reachable instruction
/// has a sound abstract state — or the program is rejected.
///
/// Implementations own iteration order, state storage, pruning, and
/// termination (widening and/or budgets); they share the transfer layer,
/// so every safety check is identical across strategies.
pub trait ExplorationStrategy {
    /// A short stable name for logs, bench labels, and baselines.
    fn name(&self) -> &'static str;

    /// Runs the strategy over `prog`.
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] from the transfer layer (the program is
    /// unsafe) or [`VerifierError::AnalysisBudgetExhausted`] when the
    /// exploration exceeds
    /// [`AnalyzerOptions::analysis_budget`].
    fn explore(
        &self,
        prog: &Program,
        options: &AnalyzerOptions,
    ) -> Result<Exploration, VerifierError>;
}

/// Built-in strategy selector for
/// [`VerificationSession`](crate::VerificationSession) — enum dispatch
/// over the two [`ExplorationStrategy`] implementations, and the tag an
/// [`Analysis`](crate::Analysis) carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The widening fixpoint worklist ([`WideningFixpoint`]) — the
    /// default, and the only engine previous revisions had.
    #[default]
    WideningFixpoint,
    /// The kernel-style path-sensitive explorer ([`PathSensitive`]).
    PathSensitive,
    /// The work-stealing parallel path explorer
    /// ([`PathParallel`](crate::parshard::PathParallel)): the
    /// path-sensitive walk sharded over
    /// [`AnalyzerOptions::explore_jobs`] workers with bit-identical
    /// verdicts, errors, and reported joins.
    PathParallel,
}

impl Strategy {
    /// Every built-in strategy, for sweeps and differential campaigns.
    pub const ALL: [Strategy; 3] = [
        Strategy::WideningFixpoint,
        Strategy::PathSensitive,
        Strategy::PathParallel,
    ];

    /// The implementation behind this selector.
    #[must_use]
    pub fn implementation(self) -> &'static dyn ExplorationStrategy {
        match self {
            Strategy::WideningFixpoint => &WideningFixpoint,
            Strategy::PathSensitive => &PathSensitive,
            Strategy::PathParallel => &crate::parshard::PathParallel,
        }
    }

    /// The strategy's stable name (`"fixpoint"` / `"path"` /
    /// `"parshard"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        self.implementation().name()
    }
}

/// The widening-fixpoint strategy: the RPO priority worklist with joins
/// at merge points, per-register delayed widening with harvested
/// thresholds at loop heads, one narrowing pass, and the visit budget —
/// see [`crate::fixpoint`] for the engine itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct WideningFixpoint;

impl ExplorationStrategy for WideningFixpoint {
    fn name(&self) -> &'static str {
        "fixpoint"
    }

    fn explore(
        &self,
        prog: &Program,
        options: &AnalyzerOptions,
    ) -> Result<Exploration, VerifierError> {
        let cfg = Cfg::build(prog);
        let transfer = Transfer::new(options.clone());
        let (states, stats) = fixpoint::run(&transfer, prog, &cfg, options)?;
        Ok(Exploration { states, stats })
    }
}

/// The kernel-style path-sensitive strategy: DFS over branch paths with
/// visited-state pruning and bounded loop unrolling.
///
/// Per arrival at an instruction the explorer:
///
/// 1. at a loop head, charges the path's per-head trip counter; within
///    [`AnalyzerOptions::unroll_k`] the trip is explored with full
///    per-trip precision (no join, no widening — this is what recovers
///    exact exit bounds the fixpoint's loop-head join destroys), past it
///    the arrival is widened into the head's *summary* state (delay 0,
///    harvested thresholds) and exploration continues from the summary —
///    the widening fallback that bounds the state space. An arrival that
///    does not grow the summary is pruned on the spot: the recorded
///    re-entry state's walk already covers it (this is what keeps a
///    second back-edge from re-walking the body every trip);
/// 2. at a *checkpoint* (loop head or merge point), probes the
///    [`VisitedTable`]: an arrival included in an already-explored state
///    is pruned (`is_state_visited`), otherwise it is recorded. Probes
///    are fingerprint-indexed — chains are scanned by 64-bit state
///    fingerprint with full inclusion checks reserved for fingerprint
///    matches plus a small newest-first budget — and chains are kept
///    short by dominance eviction and the
///    [`AnalyzerOptions::visited_cap`] chain cap;
/// 3. joins the arrival into the per-pc reported state (so
///    [`Analysis::state_before`](crate::Analysis::state_before) is the
///    join over explored paths), then steps the transfer layer and
///    pushes every successor contribution with an O(1) state clone.
///
/// Termination: acyclic path segments are finite, every cycle passes a
/// loop head, and past the unroll bound the head's summary chain is a
/// widening sequence — once it stabilizes, the next arrival is included
/// in the recorded summary and pruned. The
/// [`AnalyzerOptions::analysis_budget`] still bounds the total work
/// (path explosion on branch-heavy programs surfaces as
/// [`VerifierError::AnalysisBudgetExhausted`], the kernel's complexity
/// limit).
#[derive(Clone, Copy, Debug, Default)]
pub struct PathSensitive;

impl ExplorationStrategy for PathSensitive {
    fn name(&self) -> &'static str {
        "path"
    }

    fn explore(
        &self,
        prog: &Program,
        options: &AnalyzerOptions,
    ) -> Result<Exploration, VerifierError> {
        let cfg = Cfg::build(prog);
        let transfer = Transfer::new(options.clone());
        stats::reset();
        crate::memo::counters::reset();
        let thresholds = if options.harvest_thresholds && !cfg.back_edges().is_empty() {
            fixpoint::harvest_thresholds(prog)
        } else {
            WidenThresholds::EMPTY
        };

        // Dense loop-head indexing for the per-path trip counters and
        // the per-head widening summaries.
        let mut head_idx = vec![usize::MAX; prog.len()];
        let heads: Vec<usize> = (0..prog.len()).filter(|&pc| cfg.is_loop_head(pc)).collect();
        for (i, &h) in heads.iter().enumerate() {
            head_idx[h] = i;
        }
        // RPO position per head: heads *later* in RPO are (for reducible
        // CFGs) nested inside or sequenced after earlier ones, and get
        // their unroll budget reset when an earlier head takes a trip —
        // an inner loop is unrolled per *entry*, not once per program.
        let head_rpo: Vec<usize> = heads.iter().map(|&h| cfg.rpo_pos(h)).collect();
        // Checkpoints — where paths can re-converge, so where pruning
        // can fire: loop heads plus merge points (≥ 2 predecessors).
        let mut preds = vec![0u32; prog.len()];
        for &pc in cfg.rpo() {
            for &s in cfg.successors(pc) {
                preds[s] += 1;
            }
        }
        // The pass framework feeds checkpoint cleaning: every arrival
        // at a checkpoint drops its dead components (kernel
        // `clean_verifier_state`) *before* the summary join and the
        // visited probe, so paths differing only in dead registers or
        // slots fingerprint equally and prune each other, and loop-head
        // summaries never widen (or burn delay on) dead components.
        let passes = options
            .liveness_pruning
            .then(|| crate::passes::ProgramPasses::compute(prog, &cfg));
        let mut dead_components_cleared: u64 = 0;

        let mut visited = VisitedTable::with_cap(prog.len(), options.visited_cap as usize);
        let mut report: Vec<Option<AbsState>> = vec![None; prog.len()];
        let mut summaries: Vec<Option<AbsState>> = vec![None; heads.len()];
        let mut counters: Vec<JoinCounters> = heads.iter().map(|_| JoinCounters::new()).collect();
        let mut unrolled_trips: u64 = 0;

        // The DFS worklist: `(pc, in-state, per-head trip counts)`.
        // Pushing a fork clones the state (two refcount bumps) and the
        // `Rc`'d trip vector (one more) — the copy-on-write layer is
        // what makes the multiplied live states affordable; the trip
        // counts only materialize at loop heads, where they change.
        let mut stack: Vec<(usize, AbsState, std::rc::Rc<Vec<u32>>)> =
            vec![(0, AbsState::entry(), std::rc::Rc::new(vec![0; heads.len()]))];
        let start = std::time::Instant::now();
        let mut visits: u64 = 0;
        while let Some((pc, mut state, mut trips)) = stack.pop() {
            visits += 1;
            crate::fixpoint::ledger::bump();
            if visits > options.analysis_budget {
                return Err(VerifierError::AnalysisBudgetExhausted {
                    pc,
                    budget: options.analysis_budget,
                });
            }
            crate::analyzer::check_deadline(start, options, pc)?;
            crate::failpoint::fire(crate::failpoint::FaultSite::PathVisit);
            let h = head_idx[pc];
            let checkpoint = h != usize::MAX || preds[pc] > 1;
            if checkpoint {
                if let Some(p) = &passes {
                    let mask = p.live_in(pc);
                    dead_components_cleared += u64::from(state.clear_dead(mask.regs, mask.slots));
                }
            }
            if h != usize::MAX {
                // A new trip of this loop restarts the unroll budget of
                // every head nested inside it (later in RPO), so an
                // 8×8 nested loop unrolls 8 fresh inner trips per outer
                // trip instead of exhausting the inner budget across
                // outer iterations. Termination is untouched: in any
                // cycle, the head earliest in RPO is never reset by the
                // others, saturates, and drives the widening fallback.
                // (Resets never touch `h` itself — only heads later in
                // RPO — so the trip test below is unaffected by them.)
                let take_trip = trips[h] < options.unroll_k;
                let needs_reset = head_rpo
                    .iter()
                    .enumerate()
                    .any(|(j, &pos)| pos > head_rpo[h] && trips[j] != 0);
                if take_trip || needs_reset {
                    let t = std::rc::Rc::make_mut(&mut trips);
                    for (j, &pos) in head_rpo.iter().enumerate() {
                        if pos > head_rpo[h] {
                            t[j] = 0;
                        }
                    }
                    if take_trip {
                        t[h] += 1;
                    }
                }
                if take_trip {
                    // Unrolled trip: keep the path state exact.
                    unrolled_trips += 1;
                } else {
                    // Past the unroll bound: widen into the head's
                    // summary and continue from it. The trip counter
                    // stays saturated, so this path keeps flowing
                    // through the summary on every further lap.
                    match &mut summaries[h] {
                        slot @ None => *slot = Some(state.clone()),
                        Some(summary) => {
                            let grew = summary.flow_join(
                                &state,
                                Some(WidenCtx {
                                    counters: &mut counters[h],
                                    delay: 0,
                                    thresholds: &thresholds,
                                }),
                            );
                            // The widened re-entry state is recorded at
                            // the head (inserted below whenever it
                            // grows), so an arrival that adds nothing —
                            // typically the *second* back-edge of the
                            // same trip — is covered by the walk the
                            // summary already took: prune it here
                            // instead of re-walking the body. This is
                            // also what keeps the fallback terminating
                            // even if cap eviction dropped the recorded
                            // summary from the chain.
                            if !grew {
                                visited.note_summary_prune();
                                continue;
                            }
                            state = summary.clone();
                        }
                    }
                }
            }
            if checkpoint {
                let covered = if passes.is_some() {
                    visited.is_covered_masked(pc, &state)
                } else {
                    visited.is_covered(pc, &state)
                };
                if covered {
                    continue;
                }
                visited.insert(pc, state.clone());
            }
            match &mut report[pc] {
                slot @ None => *slot = Some(state.clone()),
                // In-place join: the accumulator materializes once and
                // then absorbs later paths without fresh allocations.
                Some(existing) => {
                    existing.flow_join(&state, None);
                }
            }
            for (succ, out) in transfer.step(prog, state, pc)? {
                stack.push((succ, out, trips.clone()));
            }
        }

        let traffic = stats::snapshot();
        let (memo_hits, memo_misses, memo_evicted) = crate::memo::counters::snapshot();
        Ok(Exploration {
            states: report,
            stats: AnalysisStats {
                states_allocated: traffic.allocated,
                states_shared: traffic.shared,
                joins_short_circuited: traffic.short_circuited,
                widenings_applied: traffic.widenings,
                visits,
                states_pruned: visited.states_pruned(),
                subset_checks: visited.subset_checks(),
                unrolled_trips,
                fingerprint_rejects: visited.fingerprint_rejects(),
                visited_evicted: visited.visited_evicted(),
                bytes_materialized: traffic.bytes,
                memo_hits,
                memo_misses,
                memo_evicted,
                live_masked_prunes: visited.masked_prunes(),
                dead_components_cleared,
                dead_insns: passes
                    .as_ref()
                    .map_or(0, crate::passes::ProgramPasses::dead_insns),
                subtrees_spawned: 0,
                steals: 0,
                shared_prunes: 0,
                degradations: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_selector_round_trips_names() {
        assert_eq!(Strategy::default(), Strategy::WideningFixpoint);
        assert_eq!(Strategy::WideningFixpoint.name(), "fixpoint");
        assert_eq!(Strategy::PathSensitive.name(), "path");
        assert_eq!(Strategy::PathParallel.name(), "parshard");
        for s in Strategy::ALL {
            assert_eq!(s.implementation().name(), s.name());
        }
    }
}
