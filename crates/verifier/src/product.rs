//! The generic reduced product of two abstract domains.
//!
//! The BPF verifier tracks each scalar register in *two* domains at once
//! — bit-level tnums and value ranges — and keeps them mutually
//! consistent with `reg_bounds_sync`. [`Product`] captures that pattern
//! once, for any pair of [`AbstractDomain`]s wired together with
//! [`RefineFrom`] in both directions: the product of the lattices, with
//! [`normalize`](Product::normalize) driving the cross-refinement to a
//! fixpoint. [`crate::Scalar`] is the `Product<Tnum, Bounds>` instance
//! the analyzer uses; a future domain (say, congruences) joins the
//! product by implementing the two `RefineFrom` directions.

use domain::{AbstractDomain, RefineFrom, WidenDomain};

/// The reduced product `A × B`: a conjunction of two abstractions of the
/// same value. A concrete `x` is a member iff both components contain it;
/// the *reduction* ([`normalize`](Product::normalize)) lets each
/// component sharpen the other through [`RefineFrom`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Product<A, B> {
    pub(crate) a: A,
    pub(crate) b: B,
}

impl<A, B> Product<A, B>
where
    A: AbstractDomain + RefineFrom<B>,
    B: AbstractDomain + RefineFrom<A>,
{
    /// A completely unknown 64-bit value: ⊤ in both components.
    #[must_use]
    pub fn unknown() -> Self {
        Product {
            a: A::top(),
            b: B::top(),
        }
    }

    /// The exact abstraction of one concrete value.
    #[must_use]
    pub fn constant(v: u64) -> Self {
        Product {
            a: A::constant(v),
            b: B::constant(v),
        }
    }

    /// Builds a product from both components, reconciling them.
    ///
    /// Returns `None` when they are contradictory (empty concretization).
    #[must_use]
    pub fn from_parts(a: A, b: B) -> Option<Self> {
        Product { a, b }.normalize()
    }

    /// Builds a product from both components **without** reconciling
    /// them. Sound (membership is the conjunction either way) but
    /// possibly unreduced; callers normalize before exposing the value.
    #[must_use]
    pub fn raw(a: A, b: B) -> Self {
        Product { a, b }
    }

    /// The first component.
    #[must_use]
    pub fn first(self) -> A {
        self.a
    }

    /// The second component.
    #[must_use]
    pub fn second(self) -> B {
        self.b
    }

    /// Both components.
    #[must_use]
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }

    /// Whether the value is a known constant, and if so which.
    #[must_use]
    pub fn as_constant(self) -> Option<u64> {
        self.a.as_constant().or_else(|| self.b.as_constant())
    }

    /// Membership: a concrete value must satisfy both components.
    #[must_use]
    pub fn contains(self, x: u64) -> bool {
        self.a.contains(x) && self.b.contains(x)
    }

    /// Abstract-order test used for join convergence: both components
    /// must be included.
    #[must_use]
    pub fn is_subset_of(self, other: Self) -> bool {
        self.a.le(other.a) && self.b.le(other.b)
    }

    /// Join (least upper bound in both components), re-reduced.
    ///
    /// Short-circuits on [`AbstractDomain::fast_eq`] of both components:
    /// `x ⊔ x = x` needs neither the joins nor the reduction loop, and
    /// self-joins dominate fixpoint iteration once a loop head begins to
    /// stabilize.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        if self.a.fast_eq(&other.a) && self.b.fast_eq(&other.b) {
            return self;
        }
        Product {
            a: self.a.join(other.a),
            b: self.b.join(other.b),
        }
        .normalize()
        .expect("join of non-empty products is non-empty")
    }

    /// Meet; `None` when the two abstractions are contradictory (the
    /// branch being refined is infeasible).
    #[must_use]
    pub fn intersect(self, other: Self) -> Option<Self> {
        Product {
            a: self.a.meet(other.a)?,
            b: self.b.meet(other.b)?,
        }
        .normalize()
    }

    /// Cross-refines the two components to a fixpoint — the generic
    /// rendering of the kernel's `reg_bounds_sync`. Returns `None` on
    /// contradiction.
    ///
    /// Iterates until **neither component changes**: `RefineFrom` is
    /// reductive (each round shrinks or keeps both components), so the
    /// loop terminates, and the result is a true reduction fixpoint —
    /// re-refining it in either direction is the identity. A fixed round
    /// count (the kernel's deduce/sync cadence, used here previously) can
    /// publish an under-reduced product when one direction's gain enables
    /// another round of the other's.
    #[must_use]
    pub fn normalize(self) -> Option<Self> {
        let mut a = self.a;
        let mut b = self.b;
        loop {
            let nb = b.refine_from(&a)?;
            let na = a.refine_from(&nb)?;
            if na == a && nb == b {
                return Some(Product { a, b });
            }
            a = na;
            b = nb;
        }
    }
}

impl<A, B> Product<A, B>
where
    A: WidenDomain,
    B: WidenDomain,
{
    /// Widening `self ∇ newer`, componentwise.
    ///
    /// The result is deliberately **not** re-normalized: normalization is
    /// reductive, and re-sharpening a freshly widened component from the
    /// other one could undo the extrapolation jump and re-open the slow
    /// ascent widening exists to cut short. The analyzer re-normalizes
    /// naturally at the next join and during its narrowing pass.
    #[must_use]
    pub fn widen(self, newer: Self) -> Self {
        Product {
            a: self.a.widen(newer.a),
            b: self.b.widen(newer.b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interval_domain::{Bounds, UInterval};
    use tnum::Tnum;

    type P = Product<Tnum, Bounds>;

    #[test]
    fn product_reduction_is_bidirectional() {
        // Tnum knowledge flows into the bounds…
        let masked = P::from_parts("xx0".parse().unwrap(), Bounds::FULL).unwrap();
        assert_eq!(masked.second().umax(), 6);
        // …and range knowledge flows into the tnum.
        let ranged = P::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_unsigned(UInterval::new(8, 11).unwrap()),
        )
        .unwrap();
        assert_eq!(ranged.first(), "10xx".parse().unwrap());
    }

    #[test]
    fn contradiction_is_bottom() {
        let r = P::from_parts(
            "1xxx".parse().unwrap(),
            Bounds::from_unsigned(UInterval::new(0, 3).unwrap()),
        );
        assert!(r.is_none(), "disjoint components must reduce to ⊥");
    }

    #[test]
    fn lattice_operations_are_componentwise_then_reduced() {
        let four = P::constant(4);
        let six = P::constant(6);
        let j = four.union(six);
        assert!(four.is_subset_of(j) && six.is_subset_of(j));
        assert!(j.contains(4) && j.contains(6));
        assert_eq!(j.intersect(four), Some(four));
        assert_eq!(four.intersect(six), None);
        assert_eq!(P::unknown().as_constant(), None);
        assert_eq!(P::constant(42).as_constant(), Some(42));
    }

    #[test]
    fn normalize_is_idempotent_and_a_true_reduction_fixpoint_w6() {
        // Exhaustive over every width-≤6 component pair (the width-6
        // enumerations subsume all narrower elements): a published
        // product must be a fixpoint of both refinement directions, so
        // normalizing twice is the same as normalizing once. The old
        // fixed two-round cadence under-reduced some pairs.
        use domain::{AbstractDomain, RefineFrom};
        let tnums = <Tnum as AbstractDomain>::enumerate_at_width(6);
        let bounds = <Bounds as AbstractDomain>::enumerate_at_width(6);
        for &t in &tnums {
            for &b in &bounds {
                let Some(p) = P::from_parts(t, b) else {
                    continue;
                };
                assert_eq!(p.normalize(), Some(p), "idempotence on {t} × {b:?}");
                assert_eq!(
                    p.a.refine_from(&p.b),
                    Some(p.a),
                    "tnum side of {t} × {b:?} not at the reduction fixpoint"
                );
                assert_eq!(
                    p.b.refine_from(&p.a),
                    Some(p.b),
                    "bounds side of {t} × {b:?} not at the reduction fixpoint"
                );
            }
        }
    }

    #[test]
    fn union_and_from_parts_publish_reduced_products() {
        // The public constructors go through normalize, so whatever they
        // return must already be fully reduced.
        let a = P::from_parts("x1x".parse().unwrap(), Bounds::FULL).unwrap();
        let b = P::from_parts(
            Tnum::UNKNOWN,
            Bounds::from_unsigned(UInterval::new(2, 6).unwrap()),
        )
        .unwrap();
        for p in [a, b, a.union(b), a.intersect(b).unwrap()] {
            assert_eq!(p.normalize(), Some(p), "{p:?} left under-reduced");
        }
    }

    #[test]
    fn raw_is_unreduced_until_normalized() {
        let raw = P::raw("xx0".parse().unwrap(), Bounds::FULL);
        assert!(raw.second().is_full(), "raw performs no reduction");
        let n = raw.normalize().unwrap();
        assert_eq!(n.second().umax(), 6);
    }
}
