//! The abstract interpreter: a topological pass over the (acyclic) CFG
//! with joins at merge points, branch refinement, and memory-safety
//! checks.

use ebpf::{AluOp, Insn, JmpOp, MemSize, Program, Reg, Src, Width, STACK_SIZE};

use crate::branch::refine;
use crate::cfg::Cfg;
use crate::error::VerifierError;
use crate::scalar::Scalar;
use crate::state::{AbsState, StackSlot};
use crate::value::RegValue;

/// Tunable analysis behaviour — each toggle corresponds to a design
/// choice called out for ablation in `DESIGN.md`.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzerOptions {
    /// Size of the context buffer the program may access via `r1`.
    pub ctx_size: u64,
    /// Require every memory access to be provably aligned to its size,
    /// via the tnum alignment test (`tnum_is_aligned`).
    pub strict_alignment: bool,
    /// Sharpen both edges of conditional jumps. Disabling shows how much
    /// path sensitivity the range analysis contributes.
    pub refine_branches: bool,
}

impl Default for AnalyzerOptions {
    fn default() -> AnalyzerOptions {
        AnalyzerOptions {
            ctx_size: 64,
            strict_alignment: false,
            refine_branches: true,
        }
    }
}

/// The result of a successful analysis: the abstract state *before* every
/// reachable instruction, for inspection by tests, examples, and tools.
#[derive(Clone, Debug)]
pub struct Analysis {
    states: Vec<Option<AbsState>>,
}

impl Analysis {
    /// The program was accepted (an `Analysis` is only produced on
    /// acceptance; this always returns `true` and exists for readable
    /// call sites).
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        true
    }

    /// The abstract state before instruction `index`, or `None` when the
    /// instruction is unreachable.
    #[must_use]
    pub fn state_before(&self, index: usize) -> Option<&AbsState> {
        self.states.get(index).and_then(Option::as_ref)
    }

    /// Indices of instructions proven unreachable.
    #[must_use]
    pub fn unreachable(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect()
    }

    /// Renders the program's disassembly with each instruction annotated
    /// by the registers the analyzer tracks at that point — the
    /// human-readable verifier log, in the spirit of the kernel's
    /// `verbose()` output.
    ///
    /// Unreachable instructions are marked `; unreachable`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ebpf::asm::assemble;
    /// use verifier::{Analyzer, AnalyzerOptions};
    ///
    /// let prog = assemble("r2 = 5\nr2 <<= 1\nr0 = r2\nexit")?;
    /// let analysis = Analyzer::new(AnalyzerOptions::default()).analyze(&prog)?;
    /// let log = analysis.annotate(&prog);
    /// assert!(log.contains("r2 <<= 1"));
    /// assert!(log.contains("r2=5"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn annotate(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, insn) in prog.insns().iter().enumerate() {
            let note = match self.state_before(i) {
                None => "; unreachable".to_string(),
                Some(state) => {
                    let mut parts = Vec::new();
                    for reg in Reg::ALL {
                        let v = state.reg(reg);
                        if v != RegValue::Uninit && reg != Reg::R10 {
                            parts.push(format!("{reg}={v}"));
                        }
                    }
                    format!("; {}", parts.join(" "))
                }
            };
            let _ = writeln!(out, "{i:>3}: {insn:<40} {note}");
        }
        out
    }
}

/// The BPF-style static analyzer.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    options: AnalyzerOptions,
}

impl Analyzer {
    /// Creates an analyzer with the given options.
    #[must_use]
    pub fn new(options: AnalyzerOptions) -> Analyzer {
        Analyzer { options }
    }

    /// Abstractly interprets the program, returning the per-instruction
    /// states on acceptance.
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] describing the first problem found; the
    /// program must be rejected.
    pub fn analyze(&self, prog: &Program) -> Result<Analysis, VerifierError> {
        let cfg = Cfg::build(prog)?;
        let mut states: Vec<Option<AbsState>> = vec![None; prog.len()];
        states[0] = Some(AbsState::entry());

        for &i in cfg.topo_order() {
            // Unreachable via infeasible branches: skip.
            let Some(state) = states[i].clone() else {
                continue;
            };
            let insn = prog.insns()[i];
            self.check_reads(&state, insn, i)?;
            match insn {
                Insn::Jmp {
                    width,
                    op,
                    dst,
                    src,
                    off,
                } => {
                    let taken_target = prog.jump_target(i, off).expect("validated");
                    let outcomes = self.branch_states(&state, width, op, dst, src);
                    let (fall, taken) = outcomes?;
                    if let Some(fall) = fall {
                        join_into(&mut states[i + 1], fall);
                    }
                    if let Some(taken) = taken {
                        join_into(&mut states[taken_target], taken);
                    }
                }
                Insn::Ja { off } => {
                    let target = prog.jump_target(i, off).expect("validated");
                    join_into(&mut states[target], state);
                }
                Insn::Exit => match state.reg(Reg::R0) {
                    RegValue::Uninit => return Err(VerifierError::NoReturnValue { pc: i }),
                    RegValue::Scalar(_) => {}
                    _ => return Err(VerifierError::PointerLeak { pc: i }),
                },
                _ => {
                    let next = self.transfer(state, insn, i)?;
                    join_into(&mut states[i + 1], next);
                }
            }
        }
        Ok(Analysis { states })
    }

    /// Rejects reads of uninitialized registers.
    fn check_reads(&self, state: &AbsState, insn: Insn, pc: usize) -> Result<(), VerifierError> {
        // Helper calls are handled leniently: our model's helpers take no
        // required arguments.
        if matches!(insn, Insn::Call { .. }) {
            return Ok(());
        }
        for reg in insn.use_regs() {
            if !state.reg(reg).is_readable() {
                return Err(VerifierError::UninitRead { reg, pc });
            }
        }
        Ok(())
    }

    /// Transfer function for non-control-flow instructions.
    fn transfer(
        &self,
        mut state: AbsState,
        insn: Insn,
        pc: usize,
    ) -> Result<AbsState, VerifierError> {
        match insn {
            Insn::Alu {
                width,
                op,
                dst,
                src,
            } => {
                let new = self.alu_value(&state, width, op, dst, src, pc)?;
                state.set_reg(dst, new);
            }
            Insn::LoadImm64 { dst, imm } => {
                state.set_reg(dst, RegValue::Scalar(Scalar::constant(imm)));
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                let value = self.check_load(&mut state, size, base, off, pc)?;
                state.set_reg(dst, value);
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                let value = match src {
                    Src::Reg(r) => state.reg(r),
                    Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
                };
                self.check_store(&mut state, size, base, off, value, pc)?;
            }
            Insn::Call { .. } => {
                state.set_reg(Reg::R0, RegValue::unknown_scalar());
                for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                    state.set_reg(r, RegValue::Uninit);
                }
            }
            Insn::Ja { .. } | Insn::Jmp { .. } | Insn::Exit => unreachable!("handled by caller"),
        }
        Ok(state)
    }

    /// Computes the new value of `dst` for an ALU instruction, modeling
    /// pointer arithmetic on `add`/`sub`/`mov`.
    fn alu_value(
        &self,
        state: &AbsState,
        width: Width,
        op: AluOp,
        dst: Reg,
        src: Src,
        pc: usize,
    ) -> Result<RegValue, VerifierError> {
        let rhs: RegValue = match src {
            Src::Reg(r) => state.reg(r),
            Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
        };
        let lhs = state.reg(dst);

        // Mov just propagates the source value (pointers included) at
        // 64-bit width; 32-bit mov truncates and hence scalarizes.
        if op == AluOp::Mov {
            return Ok(match (width, rhs) {
                (Width::W64, v) => v,
                (Width::W32, RegValue::Scalar(s)) => RegValue::Scalar(s.subreg()),
                (Width::W32, _) => RegValue::unknown_scalar(),
            });
        }

        match (lhs, rhs) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) => Ok(RegValue::Scalar(a.alu(width, op, b))),
            // Pointer ± scalar keeps the region, shifting the offset.
            (RegValue::StackPtr { offset }, RegValue::Scalar(b))
                if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) =>
            {
                Ok(RegValue::StackPtr {
                    offset: offset.alu64(op, b),
                })
            }
            (RegValue::CtxPtr { offset }, RegValue::Scalar(b))
                if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) =>
            {
                Ok(RegValue::CtxPtr {
                    offset: offset.alu64(op, b),
                })
            }
            // Same-region pointer difference yields a scalar.
            (RegValue::StackPtr { offset: a }, RegValue::StackPtr { offset: b })
            | (RegValue::CtxPtr { offset: a }, RegValue::CtxPtr { offset: b })
                if width == Width::W64 && op == AluOp::Sub =>
            {
                Ok(RegValue::Scalar(a.alu64(AluOp::Sub, b)))
            }
            (RegValue::Uninit, _) | (_, RegValue::Uninit) => {
                unreachable!("checked by check_reads")
            }
            _ => Err(VerifierError::BadPointerArithmetic { pc }),
        }
    }

    /// Produces the fall-through and taken states of a conditional jump
    /// (`None` for provably infeasible edges).
    #[allow(clippy::type_complexity)]
    fn branch_states(
        &self,
        state: &AbsState,
        width: Width,
        op: JmpOp,
        dst: Reg,
        src: Src,
    ) -> Result<(Option<AbsState>, Option<AbsState>), VerifierError> {
        let rhs: RegValue = match src {
            Src::Reg(r) => state.reg(r),
            Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
        };
        let lhs = state.reg(dst);

        // Refinement applies to 64-bit scalar/scalar comparisons only;
        // everything else passes both states through unchanged (sound).
        let refinable = width == Width::W64 && self.options.refine_branches;
        let (lhs_s, rhs_s) = match (lhs, rhs) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) if refinable => (a, b),
            _ => return Ok((Some(state.clone()), Some(state.clone()))),
        };

        let make = |taken: bool| -> Option<AbsState> {
            let (d, s) = refine(op, taken, lhs_s, rhs_s)?;
            let mut out = state.clone();
            out.set_reg(dst, RegValue::Scalar(d));
            if let Src::Reg(r) = src {
                out.set_reg(r, RegValue::Scalar(s));
            }
            Some(out)
        };
        Ok((make(false), make(true)))
    }

    /// Bounds- and alignment-checks a load, returning the loaded value.
    fn check_load(
        &self,
        state: &mut AbsState,
        size: MemSize,
        base: Reg,
        off: i16,
        pc: usize,
    ) -> Result<RegValue, VerifierError> {
        match state.reg(base) {
            RegValue::StackPtr { offset } => {
                let (lo, hi) =
                    self.check_region("stack", offset, off, size, -(STACK_SIZE as i64), 0, pc)?;
                if lo == hi && (lo % 8 == 0 || (lo - (lo & !7)) + size.bytes() as i64 <= 8) {
                    // Constant offset: consult the slot contents.
                    match state.stack_slot(lo).expect("in range") {
                        StackSlot::Uninit => Err(VerifierError::UninitStackRead { pc }),
                        StackSlot::Spill(v) if size == MemSize::DW && lo % 8 == 0 => Ok(v),
                        _ => Ok(RegValue::unknown_scalar()),
                    }
                } else {
                    // Variable offset: every possibly-read byte must be
                    // initialized.
                    if state.stack_range_initialized(lo, hi + size.bytes() as i64) {
                        Ok(RegValue::unknown_scalar())
                    } else {
                        Err(VerifierError::UninitStackRead { pc })
                    }
                }
            }
            RegValue::CtxPtr { offset } => {
                self.check_region(
                    "ctx",
                    offset,
                    off,
                    size,
                    0,
                    self.options.ctx_size as i64,
                    pc,
                )?;
                Ok(RegValue::unknown_scalar())
            }
            RegValue::Uninit => Err(VerifierError::UninitRead { reg: base, pc }),
            RegValue::Scalar(_) => Err(VerifierError::BadPointer { reg: base, pc }),
        }
    }

    /// Bounds- and alignment-checks a store, updating the stack state.
    fn check_store(
        &self,
        state: &mut AbsState,
        size: MemSize,
        base: Reg,
        off: i16,
        value: RegValue,
        pc: usize,
    ) -> Result<(), VerifierError> {
        if !value.is_readable() {
            // Storing an uninitialized register.
            if let RegValue::Uninit = value {
                return Err(VerifierError::UninitRead { reg: base, pc });
            }
        }
        match state.reg(base) {
            RegValue::StackPtr { offset } => {
                let (lo, hi) =
                    self.check_region("stack", offset, off, size, -(STACK_SIZE as i64), 0, pc)?;
                if lo == hi && size == MemSize::DW && lo % 8 == 0 {
                    state.set_stack_slot(lo, StackSlot::Spill(value));
                } else {
                    state.smear_stack(lo, hi + size.bytes() as i64);
                }
                Ok(())
            }
            RegValue::CtxPtr { offset } => {
                self.check_region(
                    "ctx",
                    offset,
                    off,
                    size,
                    0,
                    self.options.ctx_size as i64,
                    pc,
                )?;
                Ok(())
            }
            RegValue::Uninit => Err(VerifierError::UninitRead { reg: base, pc }),
            RegValue::Scalar(_) => Err(VerifierError::BadPointer { reg: base, pc }),
        }
    }

    /// Proves `region_lo <= offset + off` and
    /// `offset + off + size <= region_hi` for every possible offset, plus
    /// alignment under strict mode. Returns the extreme byte offsets of
    /// the access start.
    #[allow(clippy::too_many_arguments)]
    fn check_region(
        &self,
        region: &'static str,
        offset: Scalar,
        off: i16,
        size: MemSize,
        region_lo: i64,
        region_hi: i64,
        pc: usize,
    ) -> Result<(i64, i64), VerifierError> {
        let total = offset.alu64(AluOp::Add, Scalar::constant(off as i64 as u64));
        let lo = total.bounds().smin();
        let hi = total.bounds().smax();
        let end = hi.checked_add(size.bytes() as i64);
        let in_bounds = lo >= region_lo && end.is_some_and(|e| e <= region_hi);
        if !in_bounds {
            return Err(VerifierError::OutOfBounds {
                region,
                min_off: lo,
                max_end: end.unwrap_or(i64::MAX),
                pc,
            });
        }
        if self.options.strict_alignment && !total.tnum().is_aligned(size.bytes()) {
            return Err(VerifierError::Misaligned {
                region,
                size: size.bytes(),
                pc,
            });
        }
        Ok((lo, hi))
    }
}

/// Joins `incoming` into the slot, widening any existing state.
fn join_into(slot: &mut Option<AbsState>, incoming: AbsState) {
    match slot {
        None => *slot = Some(incoming),
        Some(existing) => *existing = existing.union(&incoming),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    fn accept(src: &str) -> Analysis {
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&assemble(src).unwrap())
            .unwrap_or_else(|e| panic!("expected accept, got: {e}"))
    }

    fn reject(src: &str) -> VerifierError {
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&assemble(src).unwrap())
            .expect_err("expected reject")
    }

    #[test]
    fn accepts_trivial_program() {
        accept("r0 = 0\nexit");
    }

    #[test]
    fn rejects_uninit_r0_at_exit() {
        assert!(matches!(
            reject("exit"),
            VerifierError::NoReturnValue { pc: 0 }
        ));
    }

    #[test]
    fn rejects_uninit_register_read() {
        assert!(matches!(
            reject("r0 = r5\nexit"),
            VerifierError::UninitRead {
                reg: Reg::R5,
                pc: 0
            }
        ));
    }

    #[test]
    fn rejects_pointer_return() {
        assert!(matches!(
            reject("r0 = r10\nexit"),
            VerifierError::PointerLeak { pc: 1 }
        ));
    }

    #[test]
    fn rejects_loops() {
        assert!(matches!(
            reject("l:\nr0 = 0\ngoto l"),
            VerifierError::LoopDetected { .. }
        ));
    }

    #[test]
    fn accepts_stack_round_trip_and_tracks_spill() {
        let analysis = accept(
            r"
                r1 = 42
                *(u64 *)(r10 - 8) = r1
                r2 = *(u64 *)(r10 - 8)
                r0 = r2
                exit
            ",
        );
        // Before exit, r0 is exactly 42: the spill was tracked.
        let state = analysis.state_before(4).unwrap();
        assert_eq!(
            state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(42)
        );
    }

    #[test]
    fn rejects_uninit_stack_read() {
        assert!(matches!(
            reject("r0 = *(u64 *)(r10 - 8)\nexit"),
            VerifierError::UninitStackRead { pc: 0 }
        ));
    }

    #[test]
    fn rejects_oob_stack_access() {
        assert!(matches!(
            reject("*(u64 *)(r10 - 520) = 0\nr0 = 0\nexit"),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
        assert!(matches!(
            reject("*(u8 *)(r10 + 0) = 0\nr0 = 0\nexit"),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn rejects_oob_ctx_access() {
        // Default ctx_size is 64.
        assert!(matches!(
            reject("r0 = *(u8 *)(r1 + 64)\nexit"),
            VerifierError::OutOfBounds { region: "ctx", .. }
        ));
        accept("r0 = *(u8 *)(r1 + 63)\nexit");
    }

    #[test]
    fn rejects_scalar_dereference() {
        assert!(matches!(
            reject("r2 = 100\nr0 = *(u8 *)(r2 + 0)\nexit"),
            VerifierError::BadPointer {
                reg: Reg::R2,
                pc: 1
            }
        ));
    }

    #[test]
    fn masked_index_bounds_stack_access() {
        // The paper's §I pattern: mask an untrusted value, then index.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                r3 = r10
                r3 += -8
                r3 += r2
                *(u8 *)(r3 - 1) = 0     ; offsets [-9, -2] ⊂ [-512, 0)
                r0 = 0
                exit
            ",
        );
        // Without the mask the same program must be rejected.
        assert!(matches!(
            reject(
                r"
                    r2 = *(u8 *)(r1 + 0)
                    r3 = r10
                    r3 += -8
                    r3 += r2
                    *(u8 *)(r3 - 1) = 0
                    r0 = 0
                    exit
                ",
            ),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn branch_refinement_proves_bounds() {
        // if r2 > 7 we bail; otherwise r2 <= 7 makes the access safe.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                if r2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        );
    }

    #[test]
    fn disabling_branch_refinement_loses_the_proof() {
        let opts = AnalyzerOptions {
            refine_branches: false,
            ..AnalyzerOptions::default()
        };
        let prog = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                if r2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        )
        .unwrap();
        assert!(Analyzer::new(opts).analyze(&prog).is_err());
        assert!(Analyzer::new(AnalyzerOptions::default())
            .analyze(&prog)
            .is_ok());
    }

    #[test]
    fn strict_alignment_uses_tnum() {
        // r2 = byte & ~3 is 4-aligned; a u32 access through it is fine.
        let strict = AnalyzerOptions {
            strict_alignment: true,
            ..AnalyzerOptions::default()
        };
        let aligned = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 60             ; 4-aligned, <= 60
                r3 = r1
                r3 += r2
                r0 = *(u32 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        Analyzer::new(AnalyzerOptions {
            ctx_size: 64,
            ..strict
        })
        .analyze(&aligned)
        .expect("aligned access accepted");

        // Without the mask's low bits cleared, alignment is unprovable.
        let misaligned = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 63
                r3 = r1
                r3 += r2
                r0 = *(u32 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        let err = Analyzer::new(AnalyzerOptions {
            ctx_size: 68,
            ..strict
        })
        .analyze(&misaligned)
        .unwrap_err();
        assert!(matches!(err, VerifierError::Misaligned { size: 4, .. }));
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        // r2 == 3 and r2 > 7 cannot both hold; the bad access is dead.
        let analysis = accept(
            r"
                r2 = 3
                if r2 > 7 goto bad
                r0 = 0
                exit
            bad:
                r3 = 0
                r0 = *(u8 *)(r3 + 0)   ; would be rejected if reachable
                exit
            ",
        );
        assert!(analysis.unreachable().contains(&4));
    }

    #[test]
    fn join_widens_at_merge_points() {
        let analysis = accept(
            r"
                r2 = 4
                if r1 == 0 goto other
                r2 = 8
                goto end
            other:
                r2 = 4
            end:
                r0 = r2
                exit
            ",
        );
        let state = analysis.state_before(6).unwrap();
        let r2 = state.reg(Reg::R2).as_scalar().unwrap();
        assert!(r2.contains(4) && r2.contains(8));
        assert!(!r2.contains(5), "tnum knows low bits are 0: {r2:?}");
    }

    #[test]
    fn call_clobbers_caller_saved() {
        assert!(matches!(
            reject("r1 = 1\ncall 7\nr0 = r1\nexit"),
            VerifierError::UninitRead {
                reg: Reg::R1,
                pc: 2
            }
        ));
        accept("call 7\nexit"); // r0 defined by the call
    }

    #[test]
    fn variable_stack_write_smears_then_reads_ok() {
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                *(u64 *)(r10 - 8) = 0
                *(u64 *)(r10 - 16) = 0
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 9     ; variable offset within [-16, -9]
                r4 = *(u64 *)(r10 - 8)  ; still initialized (now Misc)
                r0 = r4
                exit
            ",
        );
    }

    #[test]
    fn pointer_minus_pointer_is_scalar() {
        let analysis = accept(
            r"
                r3 = r10
                r3 += -8
                r4 = r10
                r4 -= r3
                r0 = r4
                exit
            ",
        );
        let state = analysis.state_before(5).unwrap();
        assert_eq!(
            state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(8)
        );
    }

    #[test]
    fn pointer_times_scalar_rejected() {
        assert!(matches!(
            reject("r3 = r10\nr3 *= 2\nr0 = 0\nexit"),
            VerifierError::BadPointerArithmetic { pc: 1 }
        ));
    }
}
