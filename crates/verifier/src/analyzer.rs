//! The driver API: configuration ([`AnalyzerOptions`]), the
//! builder-style [`VerificationSession`] entry point that selects an
//! exploration [`Strategy`], the strategy-tagged [`Analysis`] result
//! with its annotated verifier log and statistics, and the thin
//! [`Analyzer`] compatibility facade.
//!
//! The actual work is split across three layers, mirroring the kernel's
//! separation of `check_*` semantics from the verifier's state graph:
//!
//! * [`crate::transfer`] — the abstract semantics of one instruction
//!   (ALU, branches with two-sided 64-*and* 32-bit refinement, memory
//!   safety checks);
//! * [`crate::explore`] — the pluggable exploration strategies driving
//!   those steps: the widening fixpoint worklist and the path-sensitive
//!   pruning explorer;
//! * [`crate::fixpoint`] — the reverse-postorder worklist engine behind
//!   [`Strategy::WideningFixpoint`], and the [`AnalysisStats`]
//!   accounting both strategies report.

use std::sync::Arc;
use std::time::Duration;

use ebpf::{Program, Reg};

use crate::batch::{self, BatchReport};
use crate::cfg::Cfg;
use crate::error::VerifierError;
use crate::explore::{Exploration, ExplorationStrategy, Strategy};
use crate::fixpoint::AnalysisStats;
use crate::memo::TransferMemo;
use crate::state::AbsState;
use crate::value::RegValue;

/// Tunable analysis behaviour — each toggle corresponds to a design
/// choice called out for ablation in `DESIGN.md`.
#[derive(Clone, Debug)]
pub struct AnalyzerOptions {
    /// Size of the context buffer the program may access via `r1`.
    pub ctx_size: u64,
    /// Require every memory access to be provably aligned to its size,
    /// via the tnum alignment test (`tnum_is_aligned`).
    pub strict_alignment: bool,
    /// Sharpen both edges of conditional jumps. Disabling shows how much
    /// path sensitivity the range analysis contributes.
    pub refine_branches: bool,
    /// Reject every program whose CFG contains a back-edge with
    /// [`VerifierError::LoopDetected`] — the classic
    /// pre-bounded-loop verifier behaviour. Off by default: loops are
    /// analyzed by fixpoint iteration.
    pub reject_loops: bool,
    /// How many *changing* joins each register (and stack slot) absorbs
    /// exactly at a loop head before that component widens. The budget is
    /// per component — an accumulator that keeps churning no longer
    /// burns the delay a bounded counter needs to reach its exit-test
    /// fixpoint (PR 2 shared one counter per head).
    pub widen_delay: u32,
    /// Harvest the comparison immediates of the program into the
    /// interval widening ladders ("widening with thresholds"), so a
    /// widened bound lands on the loop's `i < N` guard instead of
    /// jumping to a register-width extreme. Disable to measure what the
    /// delay alone buys.
    pub harvest_thresholds: bool,
    /// Upper bound on total instruction visits during the exploration
    /// (worklist pops for the fixpoint, DFS arrivals for the
    /// path-sensitive explorer); exceeding it aborts with
    /// [`VerifierError::AnalysisBudgetExhausted`].
    pub analysis_budget: u64,
    /// How many trips of each loop the **path-sensitive** strategy
    /// unrolls with full per-trip precision before that loop head falls
    /// back to widening. The budget is charged per loop *entry* (a
    /// nested loop unrolls afresh on every outer trip). When `unroll_k`
    /// is at least a bounded loop's actual trip count, the loop
    /// verifies with *exact* per-trip states — no widening at all;
    /// past the bound the head behaves like an eagerly widened fixpoint
    /// head with harvested thresholds. Ignored by
    /// [`Strategy::WideningFixpoint`].
    pub unroll_k: u32,
    /// Per-pc chain cap of the **path-sensitive** strategy's visited
    /// table: each checkpoint keeps at most this many explored states,
    /// evicting oldest-first (after dominance eviction) once full —
    /// the kernel's `explored_states` list-length hygiene. `0` means
    /// unbounded chains. Capping bounds the per-arrival probe cost on
    /// deep unrolls at the price of occasionally re-exploring a path an
    /// evicted entry would have pruned; verdicts are unaffected
    /// (pruning is a pure optimization). Ignored by
    /// [`Strategy::WideningFixpoint`].
    pub visited_cap: u32,
    /// The fingerprint-keyed transfer memo cache
    /// ([`TransferMemo`]): pure scalar ALU results and branch
    /// refinements are cached by `(operation, operand fingerprints)` and
    /// shared — across the programs of a [`batch`](crate::batch) run
    /// when sessions share one `Arc` — with full operand equality
    /// verified before every reuse, so hits can never change a verdict.
    /// `Some` (a fresh cache) by default; `None` disables memoization
    /// entirely (for ablations and differential tests).
    pub memo_cache: Option<Arc<TransferMemo>>,
    /// Liveness-aware state pruning (on by default): run the
    /// [`crate::passes`] framework before exploration and *clean* dead
    /// registers and stack slots — components no future instruction can
    /// read — from every state arriving at a checkpoint (the kernel's
    /// `clean_verifier_state`). Cleaned components are
    /// [`crate::RegValue::Uninit`], the top of the safety order, so
    /// path states differing only in dead components fingerprint
    /// equally and prune each other, loop-head summaries stop widening
    /// dead components, and the fixpoint's merge-point joins
    /// subset-skip contributions that differ only in dead state.
    /// Sound by construction (cleaning only weakens states the
    /// analysis has proven it will never read); disable for ablations
    /// and the masking-soundness differential campaign.
    pub liveness_pruning: bool,
    /// Worker threads for the parallel path explorer
    /// ([`Strategy::PathParallel`]): `0` (the default) uses
    /// [`domain::parallel::default_threads`] — every available core, or
    /// the `TNUM_THREADS` pin. Ignored by the sequential strategies.
    /// The batch engine ([`crate::batch`]) overrides `0` with its share
    /// of the batch thread budget so outer × inner parallelism never
    /// oversubscribes.
    pub explore_jobs: u32,
    /// Branch nesting depth below which the parallel path explorer
    /// keeps both arms of a fork local instead of spawning the
    /// fall-through subtree as a stealable job. Small depths spawn a
    /// few huge subtrees (low overhead, poor balance); large depths
    /// spawn many small ones. The default `2` spawns at most
    /// one job per branch past the first two nesting levels — enough
    /// subtrees to feed eight workers on branchy programs while keeping
    /// snapshot traffic negligible. Ignored by the sequential
    /// strategies; verdicts are identical at every setting.
    pub spawn_depth: u32,
    /// Wall-clock budget for one exploration, checked cooperatively at
    /// the same points as [`AnalyzerOptions::analysis_budget`] (worklist
    /// pops, DFS arrivals, parallel job visits); exceeding it aborts
    /// with [`VerifierError::DeadlineExceeded`]. Unlike the visit
    /// budget, this bounds *time*, so a program whose individual
    /// transfers are slow (huge join chains, memo-hostile workloads)
    /// cannot hold a service thread hostage. `None` (the default)
    /// disables the check; the only overhead when disabled is one
    /// `Option` test per visit. Under the degradation ladder each
    /// re-run gets a fresh deadline window.
    pub deadline: Option<Duration>,
}

impl Default for AnalyzerOptions {
    fn default() -> AnalyzerOptions {
        AnalyzerOptions {
            ctx_size: 64,
            strict_alignment: false,
            refine_branches: true,
            reject_loops: false,
            widen_delay: 16,
            harvest_thresholds: true,
            analysis_budget: 1_000_000,
            unroll_k: 32,
            visited_cap: 32,
            memo_cache: Some(Arc::new(TransferMemo::new())),
            liveness_pruning: true,
            explore_jobs: 0,
            spawn_depth: 2,
            deadline: None,
        }
    }
}

/// What a [`VerificationSession`] does when an exploration fails for a
/// *governance* reason — [`VerifierError::InternalFault`] (a contained
/// panic) or [`VerifierError::DeadlineExceeded`] — rather than for a
/// fault in the program under analysis.
///
/// Program faults (out-of-bounds access, uninitialized reads, budget
/// exhaustion, …) are deterministic verdicts about the *program* and
/// always propagate unchanged, whatever the policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Walk down the strategy ladder and re-run:
    /// [`Strategy::PathParallel`] degrades to
    /// [`Strategy::PathSensitive`] (shedding threads, shared locks, and
    /// snapshot traffic), which degrades to
    /// [`Strategy::WideningFixpoint`] (shedding path fan-out — the
    /// cheapest, most predictable engine). A failure on the last rung
    /// is final. Every downgrade increments
    /// [`AnalysisStats::degradations`] on the eventual result, so
    /// operators can see that a verdict was produced in degraded mode.
    /// This formalizes (and makes observable) the parallel explorer's
    /// long-standing error→sequential re-run. The default.
    #[default]
    Ladder,
    /// Return the governance error to the caller unchanged. For tests
    /// and deployments that prefer a loud failure over a slower,
    /// simpler re-run.
    FailFast,
}

/// The cooperative deadline check every strategy runs at the same
/// points as its visit-budget check: errors with
/// [`VerifierError::DeadlineExceeded`] once `start` is at least
/// [`AnalyzerOptions::deadline`] old. One `Option` test when no
/// deadline is configured.
#[inline]
pub(crate) fn check_deadline(
    start: std::time::Instant,
    options: &AnalyzerOptions,
    pc: usize,
) -> Result<(), VerifierError> {
    if let Some(deadline) = options.deadline {
        let elapsed = start.elapsed();
        if elapsed >= deadline {
            return Err(VerifierError::DeadlineExceeded { elapsed, pc });
        }
    }
    Ok(())
}

/// The result of a successful analysis: the abstract state *before* every
/// reachable instruction plus the run's statistics, tagged with the
/// [`Strategy`] that produced it, for inspection by tests, examples,
/// benches, and tools.
#[derive(Clone, Debug)]
pub struct Analysis {
    strategy: Strategy,
    states: Vec<Option<AbsState>>,
    stats: AnalysisStats,
}

impl Analysis {
    /// Assembles an analysis from its parts — used by the batch engine
    /// to rebuild results on the submitting thread after their dense
    /// `Send` snapshots crossed the worker boundary.
    pub(crate) fn from_raw(
        strategy: Strategy,
        states: Vec<Option<AbsState>>,
        stats: AnalysisStats,
    ) -> Analysis {
        Analysis {
            strategy,
            states,
            stats,
        }
    }

    /// The raw per-instruction states, for the batch engine's snapshot
    /// conversion.
    pub(crate) fn raw_states(&self) -> &[Option<AbsState>] {
        &self.states
    }

    /// The program was accepted (an `Analysis` is only produced on
    /// acceptance; this always returns `true` and exists for readable
    /// call sites).
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        true
    }

    /// The exploration strategy that produced this analysis.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The abstract state before instruction `index`, or `None` when the
    /// instruction is unreachable.
    ///
    /// Under [`Strategy::WideningFixpoint`] this is the engine's single
    /// (narrowed) state cell for the instruction. Under
    /// [`Strategy::PathSensitive`] there *is* no single cell — the
    /// explorer keeps one state per visited path — so the reported state
    /// is the **join over the explored path states** reaching the
    /// instruction, which is the tightest single-state summary the
    /// strategy can offer.
    #[must_use]
    pub fn state_before(&self, index: usize) -> Option<&AbsState> {
        self.states.get(index).and_then(Option::as_ref)
    }

    /// Indices of instructions proven unreachable — never reached by the
    /// fixpoint's propagation, or (path-sensitively) by any explored
    /// path, which includes branches refined infeasible on every path.
    #[must_use]
    pub fn unreachable(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect()
    }

    /// State-sharing, widening, and pruning counters of this run — the
    /// observable effect of the copy-on-write state layer and (under
    /// [`Strategy::PathSensitive`]) of visited-state pruning.
    #[must_use]
    pub fn stats(&self) -> AnalysisStats {
        self.stats
    }

    /// Renders the program's disassembly with each instruction annotated
    /// by the registers the analyzer tracks at that point — the
    /// human-readable verifier log, in the spirit of the kernel's
    /// `verbose()` output.
    ///
    /// Unreachable instructions are marked `; unreachable`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ebpf::asm::assemble;
    /// use verifier::VerificationSession;
    ///
    /// let prog = assemble("r2 = 5\nr2 <<= 1\nr0 = r2\nexit")?;
    /// let analysis = VerificationSession::new().run(&prog)?;
    /// let log = analysis.annotate(&prog);
    /// assert!(log.contains("r2 <<= 1"));
    /// assert!(log.contains("r2=5"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn annotate(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, insn) in prog.insns().iter().enumerate() {
            let note = match self.state_before(i) {
                None => "; unreachable".to_string(),
                Some(state) => {
                    let mut parts = Vec::new();
                    for reg in Reg::ALL {
                        let v = state.reg(reg);
                        if v != RegValue::Uninit && reg != Reg::R10 {
                            parts.push(format!("{reg}={v}"));
                        }
                    }
                    format!("; {}", parts.join(" "))
                }
            };
            let _ = writeln!(out, "{i:>3}: {insn:<40} {note}");
        }
        out
    }
}

/// The builder-style entry point of the analyzer: carries the
/// [`AnalyzerOptions`], selects the exploration [`Strategy`], and runs
/// programs into strategy-tagged [`Analysis`] results.
///
/// This replaces the bare `Analyzer::new(options).analyze(prog)` pair
/// as the primary API (that pair survives as a thin facade); it is the
/// seam future scaling directions — sharded exploration, per-function
/// caching, multi-strategy portfolios — plug into via
/// [`ExplorationStrategy`].
///
/// # Examples
///
/// ```
/// use ebpf::asm::assemble;
/// use verifier::{AnalyzerOptions, Strategy, VerificationSession};
///
/// let prog = assemble("r2 = 5\nr2 <<= 1\nr0 = r2\nexit")?;
/// let analysis = VerificationSession::new()
///     .with_options(AnalyzerOptions { strict_alignment: true, ..AnalyzerOptions::default() })
///     .with_strategy(Strategy::PathSensitive)
///     .run(&prog)?;
/// assert!(analysis.is_accepted());
/// assert_eq!(analysis.strategy(), Strategy::PathSensitive);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct VerificationSession {
    options: AnalyzerOptions,
    strategy: Strategy,
    degradation: DegradationPolicy,
}

impl VerificationSession {
    /// A session with default options and the default strategy
    /// ([`Strategy::WideningFixpoint`]).
    #[must_use]
    pub fn new() -> VerificationSession {
        VerificationSession::default()
    }

    /// Replaces the analysis options.
    #[must_use]
    pub fn with_options(mut self, options: AnalyzerOptions) -> VerificationSession {
        self.options = options;
        self
    }

    /// Selects the exploration strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> VerificationSession {
        self.strategy = strategy;
        self
    }

    /// Selects the [`DegradationPolicy`] applied when an exploration
    /// fails with a governance error (contained panic or blown
    /// deadline).
    #[must_use]
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> VerificationSession {
        self.degradation = degradation;
        self
    }

    /// The session's analysis options (the memo cache `Arc` is shared,
    /// not deep-copied).
    #[must_use]
    pub fn options(&self) -> AnalyzerOptions {
        self.options.clone()
    }

    /// The session's selected strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The session's degradation policy.
    #[must_use]
    pub fn degradation(&self) -> DegradationPolicy {
        self.degradation
    }

    /// Explores the program with the selected strategy, returning the
    /// strategy-tagged per-instruction states on acceptance.
    ///
    /// The exploration runs under `catch_unwind`: a panic anywhere in
    /// the analyzer is contained and surfaces as
    /// [`VerifierError::InternalFault`] instead of unwinding into the
    /// caller. Under the default [`DegradationPolicy::Ladder`], a
    /// governance failure (contained panic or blown deadline) re-runs
    /// the program with the next-simpler strategy; the returned
    /// [`Analysis`] is then tagged with the strategy that actually
    /// produced it and carries the downgrade count in
    /// [`AnalysisStats::degradations`].
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] describing the first problem found; the
    /// program must be rejected.
    pub fn run(&self, prog: &Program) -> Result<Analysis, VerifierError> {
        let mut strategy = self.strategy;
        let mut degradations = 0u64;
        loop {
            match self.explore_contained(strategy, prog) {
                Ok(Exploration { states, mut stats }) => {
                    stats.degradations += degradations;
                    return Ok(Analysis {
                        strategy,
                        states,
                        stats,
                    });
                }
                Err(err) => {
                    let governance = matches!(
                        err,
                        VerifierError::InternalFault { .. }
                            | VerifierError::DeadlineExceeded { .. }
                    );
                    let next = match strategy {
                        Strategy::PathParallel => Some(Strategy::PathSensitive),
                        Strategy::PathSensitive => Some(Strategy::WideningFixpoint),
                        Strategy::WideningFixpoint => None,
                    };
                    match next {
                        Some(next)
                            if governance && self.degradation == DegradationPolicy::Ladder =>
                        {
                            strategy = next;
                            degradations += 1;
                        }
                        _ => return Err(err),
                    }
                }
            }
        }
    }

    /// One rung of [`VerificationSession::run`]: explore with
    /// `strategy`, converting a panic into
    /// [`VerifierError::InternalFault`].
    ///
    /// `AssertUnwindSafe` is sound here: the closure borrows only
    /// `self` (read-only) and `prog`, and every structure shared with
    /// other threads (memo shards, visited stripes, result vectors) is
    /// lock-protected with poison-recovering accessors, so an unwind
    /// cannot leave observable broken invariants behind.
    fn explore_contained(
        &self,
        strategy: Strategy,
        prog: &Program,
    ) -> Result<Exploration, VerifierError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.explore_with(strategy.implementation(), prog)
        }))
        .unwrap_or_else(|payload| Err(VerifierError::from_panic(payload.as_ref())))
    }

    /// Verifies a batch of programs concurrently on `jobs` worker
    /// threads, returning per-program results **in submission order**
    /// plus a [`BatchStats`](crate::batch::BatchStats) roll-up
    /// (programs/sec, per-worker distribution, memo traffic).
    ///
    /// Every program runs under this session's options and strategy; in
    /// particular all workers share the session's
    /// [`AnalyzerOptions::memo_cache`], so scalar transfer results
    /// computed for one program are reused by the others. Parallelism is
    /// program-granular (abstract states are `Rc`-backed and never cross
    /// threads); workers claim programs from a shared queue, so a worker
    /// that drew cheap programs steals the remaining ones. `jobs == 0`
    /// selects [`domain::parallel::default_threads`] (which honors the
    /// `TNUM_THREADS` environment variable).
    ///
    /// Per-program heterogeneity (different options or strategies per
    /// program) goes through [`batch::run`](crate::batch::run) directly.
    ///
    /// # Examples
    ///
    /// ```
    /// use ebpf::asm::assemble;
    /// use verifier::VerificationSession;
    ///
    /// let progs = vec![
    ///     assemble("r0 = 1\nexit")?,
    ///     assemble("r0 = 2\nexit")?,
    /// ];
    /// let report = VerificationSession::new().run_batch(&progs, 2);
    /// assert_eq!(report.results.len(), 2);
    /// assert!(report.results.iter().all(|r| r.is_ok()));
    /// assert_eq!(report.stats.accepted, 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn run_batch(&self, progs: &[Program], jobs: usize) -> BatchReport {
        let items: Vec<batch::BatchItem> = progs
            .iter()
            .map(|prog| batch::BatchItem {
                prog: prog.clone(),
                options: self.options.clone(),
                strategy: self.strategy,
                degradation: self.degradation,
            })
            .collect();
        batch::run(&items, jobs)
    }

    /// Explores the program with a caller-supplied
    /// [`ExplorationStrategy`] — the plug-in seam for strategies beyond
    /// the built-in [`Strategy`] pair — returning the raw
    /// [`Exploration`].
    ///
    /// The session-level policy checks (currently
    /// [`AnalyzerOptions::reject_loops`]) run before the strategy, so
    /// every strategy sees the same admission rules.
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] from the policy checks or the strategy.
    pub fn explore_with(
        &self,
        strategy: &dyn ExplorationStrategy,
        prog: &Program,
    ) -> Result<Exploration, VerifierError> {
        if self.options.reject_loops {
            let cfg = Cfg::build(prog);
            if let Some(&(_, head)) = cfg.back_edges().first() {
                return Err(VerifierError::LoopDetected { pc: head });
            }
        }
        strategy.explore(prog, &self.options)
    }
}

/// The classic two-call facade over [`VerificationSession`], kept for
/// compatibility with pre-session callers. Soft-deprecated: prefer
/// `VerificationSession::new().with_options(..).run(prog)`, which also
/// exposes strategy selection — `Analyzer` always runs the default
/// [`Strategy::WideningFixpoint`].
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    options: AnalyzerOptions,
}

impl Analyzer {
    /// Creates an analyzer with the given options.
    #[must_use]
    pub fn new(options: AnalyzerOptions) -> Analyzer {
        Analyzer { options }
    }

    /// Abstractly interprets the program with the widening fixpoint,
    /// returning the (narrowed) per-instruction states on acceptance.
    /// Equivalent to `VerificationSession::new().with_options(..).run`.
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] describing the first problem found; the
    /// program must be rejected.
    pub fn analyze(&self, prog: &Program) -> Result<Analysis, VerifierError> {
        VerificationSession::new()
            .with_options(self.options.clone())
            .run(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    fn accept(src: &str) -> Analysis {
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&assemble(src).unwrap())
            .unwrap_or_else(|e| panic!("expected accept, got: {e}"))
    }

    fn reject(src: &str) -> VerifierError {
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&assemble(src).unwrap())
            .expect_err("expected reject")
    }

    #[test]
    fn accepts_trivial_program() {
        accept("r0 = 0\nexit");
    }

    #[test]
    fn rejects_uninit_r0_at_exit() {
        assert!(matches!(
            reject("exit"),
            VerifierError::NoReturnValue { pc: 0 }
        ));
    }

    #[test]
    fn rejects_uninit_register_read() {
        assert!(matches!(
            reject("r0 = r5\nexit"),
            VerifierError::UninitRead {
                reg: Reg::R5,
                pc: 0
            }
        ));
    }

    #[test]
    fn rejects_pointer_return() {
        assert!(matches!(
            reject("r0 = r10\nexit"),
            VerifierError::PointerLeak { pc: 1 }
        ));
    }

    #[test]
    fn reject_loops_flag_preserves_classic_behaviour() {
        let prog = assemble("l:\nr0 = 0\ngoto l").unwrap();
        let classic = Analyzer::new(AnalyzerOptions {
            reject_loops: true,
            ..AnalyzerOptions::default()
        });
        assert!(matches!(
            classic.analyze(&prog).unwrap_err(),
            VerifierError::LoopDetected { .. }
        ));
        // The default engine instead runs the loop to a fixpoint; this
        // one never exits, so it is accepted with the exit unreachable.
        let analysis = accept("l:\nr0 = 0\ngoto l\nexit");
        assert!(analysis.unreachable().contains(&2));
        // Loop-free programs are unaffected by the flag.
        classic
            .analyze(&assemble("r0 = 0\nexit").unwrap())
            .expect("acyclic program accepted under reject_loops");
    }

    #[test]
    fn bounded_loop_accepted_with_exact_counter_range() {
        // for i in 0..16 { buf[i] = i; sum += i }, returning the counter.
        let analysis = accept(
            r"
                r1 = 0              ; i
                r6 = 0              ; sum
            loop:
                r3 = r10
                r3 += -16
                r3 += r1
                *(u8 *)(r3 + 0) = 7 ; in bounds iff i <= 15
                r6 += r1
                r1 += 1
                if r1 < 16 goto loop
                r0 = r1
                exit
            ",
        );
        // The exit test pins the counter exactly; the loop body sees the
        // full [0, 15] window.
        let exit_state = analysis.state_before(10).unwrap();
        let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
        assert_eq!(r0.as_constant(), Some(16), "narrowed exit counter");
        let head = analysis.state_before(2).unwrap();
        let i = head.reg(Reg::R1).as_scalar().unwrap();
        assert_eq!((i.bounds().umin(), i.bounds().umax()), (0, 15));
    }

    #[test]
    fn unbounded_loop_terminates_by_widening() {
        // No exit test bounds r1: the analysis must widen to ⊤ and
        // stabilize instead of diverging one trip at a time.
        let analysis = accept(
            r"
                r1 = 0
            loop:
                r1 += 1
                if r2 > 0 goto loop
                r0 = 0
                exit
            ",
        );
        let exit_state = analysis.state_before(3).unwrap();
        let r1 = exit_state.reg(Reg::R1).as_scalar().unwrap();
        assert!(r1.contains(1) && r1.contains(1 << 40), "widened to ⊤-ish");
        assert!(analysis.stats().widenings_applied > 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let tiny = Analyzer::new(AnalyzerOptions {
            analysis_budget: 4,
            ..AnalyzerOptions::default()
        });
        let prog = assemble("r1 = 0\nloop:\nr1 += 1\nif r2 > 0 goto loop\nr0 = 0\nexit").unwrap();
        assert!(matches!(
            tiny.analyze(&prog).unwrap_err(),
            VerifierError::AnalysisBudgetExhausted { budget: 4, .. }
        ));
    }

    /// The 13-trip memset whose safety hinges on the interval bound
    /// `i <= 12` (13 is not a power of two, so the tnum half can offer no
    /// better than [0, 15], which overruns the buffer).
    const MEMSET_13: &str = r"
        r1 = 0
    loop:
        r3 = r10
        r3 += -13
        r3 += r1
        *(u8 *)(r3 + 0) = 0
        r1 += 1
        if r1 < 13 goto loop
        r0 = 0
        exit
    ";

    #[test]
    fn eager_widening_loses_the_loop_proof_delay_keeps() {
        // The head needs 12 precise joins before the exit test caps the
        // counter. Widening eagerly (delay 0, thresholds off) jumps the
        // interval to the built-in ladder before the test can cap it, so
        // the store check fails; the default delay keeps the bound.
        let prog = assemble(MEMSET_13).unwrap();
        let eager = Analyzer::new(AnalyzerOptions {
            widen_delay: 0,
            harvest_thresholds: false,
            ..AnalyzerOptions::default()
        });
        assert!(matches!(
            eager.analyze(&prog).unwrap_err(),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
        Analyzer::new(AnalyzerOptions {
            harvest_thresholds: false,
            ..AnalyzerOptions::default()
        })
        .analyze(&prog)
        .expect("delayed widening keeps the bound");
    }

    #[test]
    fn harvested_thresholds_rescue_eager_widening() {
        // With "widening with thresholds", the `if r1 < 13` immediate is
        // planted in the ladder, so even the eager configuration lands
        // the counter on [0, 12] instead of [0, i32::MAX] — the same
        // program the previous test shows eager widening losing.
        let prog = assemble(MEMSET_13).unwrap();
        let eager = Analyzer::new(AnalyzerOptions {
            widen_delay: 0,
            ..AnalyzerOptions::default()
        });
        let analysis = eager
            .analyze(&prog)
            .expect("thresholds recover the bound without any delay");
        assert!(analysis.stats().widenings_applied > 0, "widening did fire");
        let head = analysis.state_before(1).unwrap();
        let i = head.reg(Reg::R1).as_scalar().unwrap();
        assert_eq!((i.bounds().umin(), i.bounds().umax()), (0, 12));
    }

    #[test]
    fn per_register_delay_verifies_counter_plus_accumulator() {
        // A continue-style loop with two back-edges: every round the head
        // absorbs one changing join from each edge (the accumulator r6
        // differs on the two paths), so PR 2's shared per-head counter
        // burned its delay twice per trip and widened the counter r1
        // mid-ascent at trip ~9 — rejecting the store. Per-register
        // counters charge r1 only for its own 12 changing joins (one per
        // round: the second edge's r1 is already included), which fit the
        // default delay of 16. Thresholds are disabled so the regression
        // isolates the per-register accounting.
        let prog = assemble(
            r"
                r1 = 0              ; i
                r6 = 0              ; sum
            loop:
                r3 = r10
                r3 += -13
                r3 += r1
                *(u8 *)(r3 + 0) = 0 ; in bounds iff i <= 12
                r1 += 1
                r6 += 1
                if r1 > 12 goto out
                if r2 > 0 goto loop ; back-edge 1
                r6 += 7
                goto loop           ; back-edge 2
            out:
                r0 = r1
                exit
            ",
        )
        .unwrap();
        let analyzer = Analyzer::new(AnalyzerOptions {
            harvest_thresholds: false,
            ..AnalyzerOptions::default()
        });
        let analysis = analyzer
            .analyze(&prog)
            .expect("per-register delay keeps the counter bound");
        let exit_state = analysis.state_before(prog.len() - 1).unwrap();
        let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
        assert_eq!(r0.as_constant(), Some(13), "narrowed exit counter");
        // Sanity: the delay still matters — a tiny per-register budget
        // widens the counter before its 12 precise joins and loses the
        // proof, exactly as the shared counter did.
        let tiny = Analyzer::new(AnalyzerOptions {
            widen_delay: 4,
            harvest_thresholds: false,
            ..AnalyzerOptions::default()
        });
        assert!(matches!(
            tiny.analyze(&prog).unwrap_err(),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn w32_guarded_loop_verifies_via_subreg_refinement() {
        // The 13-memset guarded by a 32-bit compare: without `refine32`
        // both edges of `if w1 < 13` passed through unrefined, the
        // counter widened to ⊤, and the store was rejected — where the
        // 64-bit form verified exactly (ROADMAP "32-bit branch
        // refinement"). Thresholds are off to prove the refinement alone
        // carries it.
        let prog = assemble(
            r"
                r1 = 0
            loop:
                r3 = r10
                r3 += -13
                r3 += r1
                *(u8 *)(r3 + 0) = 0
                r1 += 1
                if w1 < 13 goto loop
                r0 = r1
                exit
            ",
        )
        .unwrap();
        let analysis = Analyzer::new(AnalyzerOptions {
            harvest_thresholds: false,
            ..AnalyzerOptions::default()
        })
        .analyze(&prog)
        .expect("32-bit guard refines the counter");
        let head = analysis.state_before(1).unwrap();
        let i = head.reg(Reg::R1).as_scalar().unwrap();
        assert_eq!((i.bounds().umin(), i.bounds().umax()), (0, 12));
        // And the refinement is ablatable like its 64-bit sibling.
        let unrefined = Analyzer::new(AnalyzerOptions {
            refine_branches: false,
            harvest_thresholds: false,
            ..AnalyzerOptions::default()
        });
        assert!(unrefined.analyze(&prog).is_err());
    }

    #[test]
    fn w32_branch_refinement_proves_bounds() {
        // 32-bit guard on an untrusted byte: `if w2 > 7` must bound the
        // (32-bit-clean) index for the store.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                if w2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        );
    }

    #[test]
    fn analysis_stats_expose_sharing() {
        let analysis = accept(MEMSET_13);
        let stats = analysis.stats();
        assert!(stats.states_shared > 0, "clones were shared");
        assert!(stats.states_allocated > 0, "some materialization happens");
        assert!(stats.visits > 0);
        // The whole point: far fewer deep copies than a clone-everything
        // engine would have performed.
        assert!(
            stats.states_allocated < stats.clone_everything_equivalent() / 2,
            "sharing must beat clone-everything: {stats:?}"
        );
    }

    #[test]
    fn nested_loops_reach_a_fixpoint() {
        let analysis = accept(
            r"
                r6 = 0
            outer:
                r1 = 0
            inner:
                r1 += 1
                if r1 < 4 goto inner
                r6 += 1
                if r6 < 4 goto outer
                r0 = r6
                exit
            ",
        );
        let exit_state = analysis.state_before(7).unwrap();
        let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
        assert_eq!(r0.as_constant(), Some(4));
    }

    #[test]
    fn loop_carried_spill_stays_tracked() {
        // A spill written before the loop and only read inside it keeps
        // its value across the back-edge join.
        let analysis = accept(
            r"
                r1 = 99
                *(u64 *)(r10 - 8) = r1
                r2 = 0
            loop:
                r3 = *(u64 *)(r10 - 8)
                r2 += 1
                if r2 < 8 goto loop
                r0 = r3
                exit
            ",
        );
        let exit_state = analysis.state_before(7).unwrap();
        assert_eq!(
            exit_state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(99)
        );
    }

    #[test]
    fn accepts_stack_round_trip_and_tracks_spill() {
        let analysis = accept(
            r"
                r1 = 42
                *(u64 *)(r10 - 8) = r1
                r2 = *(u64 *)(r10 - 8)
                r0 = r2
                exit
            ",
        );
        // Before exit, r0 is exactly 42: the spill was tracked.
        let state = analysis.state_before(4).unwrap();
        assert_eq!(
            state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(42)
        );
    }

    #[test]
    fn rejects_uninit_stack_read() {
        assert!(matches!(
            reject("r0 = *(u64 *)(r10 - 8)\nexit"),
            VerifierError::UninitStackRead { pc: 0 }
        ));
    }

    #[test]
    fn rejects_oob_stack_access() {
        assert!(matches!(
            reject("*(u64 *)(r10 - 520) = 0\nr0 = 0\nexit"),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
        assert!(matches!(
            reject("*(u8 *)(r10 + 0) = 0\nr0 = 0\nexit"),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn rejects_oob_ctx_access() {
        // Default ctx_size is 64.
        assert!(matches!(
            reject("r0 = *(u8 *)(r1 + 64)\nexit"),
            VerifierError::OutOfBounds { region: "ctx", .. }
        ));
        accept("r0 = *(u8 *)(r1 + 63)\nexit");
    }

    #[test]
    fn rejects_scalar_dereference() {
        assert!(matches!(
            reject("r2 = 100\nr0 = *(u8 *)(r2 + 0)\nexit"),
            VerifierError::BadPointer {
                reg: Reg::R2,
                pc: 1
            }
        ));
    }

    #[test]
    fn masked_index_bounds_stack_access() {
        // The paper's §I pattern: mask an untrusted value, then index.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                r3 = r10
                r3 += -8
                r3 += r2
                *(u8 *)(r3 - 1) = 0     ; offsets [-9, -2] ⊂ [-512, 0)
                r0 = 0
                exit
            ",
        );
        // Without the mask the same program must be rejected.
        assert!(matches!(
            reject(
                r"
                    r2 = *(u8 *)(r1 + 0)
                    r3 = r10
                    r3 += -8
                    r3 += r2
                    *(u8 *)(r3 - 1) = 0
                    r0 = 0
                    exit
                ",
            ),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn branch_refinement_proves_bounds() {
        // if r2 > 7 we bail; otherwise r2 <= 7 makes the access safe.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                if r2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        );
    }

    #[test]
    fn disabling_branch_refinement_loses_the_proof() {
        let opts = AnalyzerOptions {
            refine_branches: false,
            ..AnalyzerOptions::default()
        };
        let prog = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                if r2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        )
        .unwrap();
        assert!(Analyzer::new(opts).analyze(&prog).is_err());
        assert!(Analyzer::new(AnalyzerOptions::default())
            .analyze(&prog)
            .is_ok());
    }

    #[test]
    fn strict_alignment_uses_tnum() {
        // r2 = byte & ~3 is 4-aligned; a u32 access through it is fine.
        let strict = AnalyzerOptions {
            strict_alignment: true,
            ..AnalyzerOptions::default()
        };
        let aligned = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 60             ; 4-aligned, <= 60
                r3 = r1
                r3 += r2
                r0 = *(u32 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        Analyzer::new(AnalyzerOptions {
            ctx_size: 64,
            ..strict.clone()
        })
        .analyze(&aligned)
        .expect("aligned access accepted");

        // Without the mask's low bits cleared, alignment is unprovable.
        let misaligned = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 63
                r3 = r1
                r3 += r2
                r0 = *(u32 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        let err = Analyzer::new(AnalyzerOptions {
            ctx_size: 68,
            ..strict
        })
        .analyze(&misaligned)
        .unwrap_err();
        assert!(matches!(err, VerifierError::Misaligned { size: 4, .. }));
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        // r2 == 3 and r2 > 7 cannot both hold; the bad access is dead.
        let analysis = accept(
            r"
                r2 = 3
                if r2 > 7 goto bad
                r0 = 0
                exit
            bad:
                r3 = 0
                r0 = *(u8 *)(r3 + 0)   ; would be rejected if reachable
                exit
            ",
        );
        assert!(analysis.unreachable().contains(&4));
    }

    #[test]
    fn infeasible_w32_branches_are_pruned() {
        // The 32-bit view of r2 is 3; `w2 > 7` is impossible.
        let analysis = accept(
            r"
                r2 = 3
                if w2 > 7 goto bad
                r0 = 0
                exit
            bad:
                r3 = 0
                r0 = *(u8 *)(r3 + 0)   ; would be rejected if reachable
                exit
            ",
        );
        assert!(analysis.unreachable().contains(&4));
    }

    #[test]
    fn join_widens_at_merge_points() {
        let analysis = accept(
            r"
                r2 = 4
                if r1 == 0 goto other
                r2 = 8
                goto end
            other:
                r2 = 4
            end:
                r0 = r2
                exit
            ",
        );
        let state = analysis.state_before(6).unwrap();
        let r2 = state.reg(Reg::R2).as_scalar().unwrap();
        assert!(r2.contains(4) && r2.contains(8));
        assert!(!r2.contains(5), "tnum knows low bits are 0: {r2:?}");
    }

    #[test]
    fn call_clobbers_caller_saved() {
        assert!(matches!(
            reject("r1 = 1\ncall 7\nr0 = r1\nexit"),
            VerifierError::UninitRead {
                reg: Reg::R1,
                pc: 2
            }
        ));
        accept("call 7\nexit"); // r0 defined by the call
    }

    #[test]
    fn variable_stack_write_smears_then_reads_ok() {
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                *(u64 *)(r10 - 8) = 0
                *(u64 *)(r10 - 16) = 0
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 9     ; variable offset within [-16, -9]
                r4 = *(u64 *)(r10 - 8)  ; still initialized (now Misc)
                r0 = r4
                exit
            ",
        );
    }

    #[test]
    fn pointer_minus_pointer_is_scalar() {
        let analysis = accept(
            r"
                r3 = r10
                r3 += -8
                r4 = r10
                r4 -= r3
                r0 = r4
                exit
            ",
        );
        let state = analysis.state_before(5).unwrap();
        assert_eq!(
            state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(8)
        );
    }

    #[test]
    fn pointer_times_scalar_rejected() {
        assert!(matches!(
            reject("r3 = r10\nr3 *= 2\nr0 = 0\nexit"),
            VerifierError::BadPointerArithmetic { pc: 1 }
        ));
    }

    // ---- VerificationSession and the path-sensitive strategy ----

    fn path_session() -> VerificationSession {
        VerificationSession::new().with_strategy(Strategy::PathSensitive)
    }

    const MEMSET_16: &str = r"
        r1 = 0
    loop:
        r3 = r10
        r3 += -16
        r3 += r1
        *(u8 *)(r3 + 0) = 0
        r1 += 1
        if r1 < 16 goto loop
        r0 = r1
        exit
    ";

    #[test]
    fn facade_and_session_agree_and_tag_strategies() {
        let prog = assemble("r0 = 3\nexit").unwrap();
        let via_facade = Analyzer::new(AnalyzerOptions::default())
            .analyze(&prog)
            .unwrap();
        assert_eq!(via_facade.strategy(), Strategy::WideningFixpoint);
        let via_session = path_session().run(&prog).unwrap();
        assert_eq!(via_session.strategy(), Strategy::PathSensitive);
        // Both report the same exit state on this trivial program.
        let c = |a: &Analysis| {
            a.state_before(1)
                .unwrap()
                .reg(Reg::R0)
                .as_scalar()
                .unwrap()
                .as_constant()
        };
        assert_eq!(c(&via_facade), Some(3));
        assert_eq!(c(&via_session), Some(3));
    }

    #[test]
    fn path_sensitive_unrolls_memset16_exactly_without_widening() {
        // unroll_k (default 32) >= 16 trips: every trip is explored with
        // its own exact state — no join at the head, no widening at all —
        // and the exit bound is *exact*, where the fixpoint needs
        // widening + narrowing to recover it.
        let prog = assemble(MEMSET_16).unwrap();
        let analysis = path_session().run(&prog).expect("unrolled memset");
        let stats = analysis.stats();
        assert_eq!(stats.widenings_applied, 0, "pure unrolling: {stats:?}");
        assert!(stats.unrolled_trips >= 16, "{stats:?}");
        let r0 = analysis
            .state_before(8)
            .unwrap()
            .reg(Reg::R0)
            .as_scalar()
            .unwrap();
        assert_eq!(r0.as_constant(), Some(16), "exact exit counter");
        // The reported head state is the join over the 16 per-trip
        // states: the full counter window.
        let i = analysis
            .state_before(1)
            .unwrap()
            .reg(Reg::R1)
            .as_scalar()
            .unwrap();
        assert_eq!((i.bounds().umin(), i.bounds().umax()), (0, 15));
    }

    /// The two-back-edge counter+accumulator loop of
    /// `per_register_delay_verifies_counter_plus_accumulator`, shared by
    /// the path-sensitive tests below.
    const TWO_BACK_EDGE: &str = r"
        r1 = 0              ; i
        r6 = 0              ; sum
    loop:
        r3 = r10
        r3 += -13
        r3 += r1
        *(u8 *)(r3 + 0) = 0 ; in bounds iff i <= 12
        r1 += 1
        r6 += 1
        if r1 > 12 goto out
        if r2 > 0 goto loop ; back-edge 1
        r6 += 7
        goto loop           ; back-edge 2
    out:
        r0 = r1
        exit
    ";

    #[test]
    fn path_sensitive_unrolls_counter_plus_accumulator_exactly() {
        // 13 trips <= default unroll_k: exact per-trip states, no
        // widening — the per-register delay machinery the fixpoint needs
        // for this program is not even consulted.
        let prog = assemble(TWO_BACK_EDGE).unwrap();
        let analysis = path_session().run(&prog).expect("unrolled loop");
        assert_eq!(analysis.stats().widenings_applied, 0);
        let r0 = analysis
            .state_before(prog.len() - 1)
            .unwrap()
            .reg(Reg::R0)
            .as_scalar()
            .unwrap();
        assert_eq!(r0.as_constant(), Some(13), "exact exit counter");
    }

    #[test]
    fn path_sensitive_prunes_and_widens_past_the_unroll_bound() {
        // With unroll_k = 4 < 13 trips, the head falls back to widening
        // (landing on the harvested `12` threshold, so the program still
        // verifies with the exact exit bound) and the stabilized summary
        // prunes every later arrival — the `is_state_visited` effect.
        let prog = assemble(TWO_BACK_EDGE).unwrap();
        let analysis = path_session()
            .with_options(AnalyzerOptions {
                unroll_k: 4,
                ..AnalyzerOptions::default()
            })
            .run(&prog)
            .expect("widening fallback keeps the bound via thresholds");
        let stats = analysis.stats();
        assert!(stats.widenings_applied > 0, "fallback widened: {stats:?}");
        assert!(stats.states_pruned > 0, "summary pruned: {stats:?}");
        assert!(stats.subset_checks >= stats.states_pruned);
        let r0 = analysis
            .state_before(prog.len() - 1)
            .unwrap()
            .reg(Reg::R0)
            .as_scalar()
            .unwrap();
        assert_eq!(r0.as_constant(), Some(13), "branch refinement pins exit");
    }

    #[test]
    fn path_sensitive_unrolls_nested_loops_freshly_per_entry() {
        // The inner head's unroll budget restarts on every outer trip:
        // 8 outer × 8 inner arrivals stay well inside unroll_k = 32
        // *per entry* (cumulatively they would exhaust it mid-run and
        // silently widen — the regression this test pins down).
        let analysis = path_session()
            .run(
                &assemble(
                    r"
                    r6 = 0
                outer:
                    r1 = 0
                inner:
                    r1 += 1
                    if r1 < 8 goto inner
                    r6 += 1
                    if r6 < 8 goto outer
                    r0 = r6
                    exit
                ",
                )
                .unwrap(),
            )
            .expect("nested bounded loops unroll");
        assert_eq!(
            analysis.stats().widenings_applied,
            0,
            "per-entry budgets: {:?}",
            analysis.stats()
        );
        let r0 = analysis
            .state_before(7)
            .unwrap()
            .reg(Reg::R0)
            .as_scalar()
            .unwrap();
        assert_eq!(r0.as_constant(), Some(8), "exact nested exit");
    }

    #[test]
    fn path_sensitive_reports_joined_merge_states_and_unreachable() {
        // The reported state at a merge point is the join over the
        // explored paths, and branches infeasible on every path stay
        // unreachable — `unreachable()`/`state_before()` behave exactly
        // as under the fixpoint.
        let prog = assemble(
            r"
                r2 = 4
                if r1 == 0 goto other
                r2 = 8
                goto end
            other:
                r2 = 4
            end:
                r0 = r2
                exit
            ",
        )
        .unwrap();
        let analysis = path_session().run(&prog).unwrap();
        let r2 = analysis
            .state_before(6)
            .unwrap()
            .reg(Reg::R2)
            .as_scalar()
            .unwrap();
        assert!(r2.contains(4) && r2.contains(8), "join over both paths");

        let prog = assemble(
            r"
                r2 = 3
                if r2 > 7 goto bad
                r0 = 0
                exit
            bad:
                r3 = 0
                r0 = *(u8 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        let analysis = path_session().run(&prog).unwrap();
        assert!(analysis.unreachable().contains(&4));
        assert!(analysis.state_before(4).is_none());
    }

    #[test]
    fn path_sensitive_terminates_unbounded_loops_by_fallback_widening() {
        // No exit test: unrolling alone would diverge. Past unroll_k the
        // head widens the counter to ⊤ and the unbounded store is
        // rejected — same verdict as the fixpoint, reached path-wise.
        let prog = assemble(
            r"
                r1 = 0
            loop:
                r3 = r10
                r3 += -13
                r3 += r1
                *(u8 *)(r3 + 0) = 0
                r1 += 1
                goto loop
            ",
        )
        .unwrap();
        assert!(matches!(
            path_session().run(&prog).unwrap_err(),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
        // A harmless unbounded loop is *accepted*: the summary
        // stabilizes and prunes the lap.
        let analysis = path_session()
            .run(&assemble("l:\nr0 = 0\ngoto l\nexit").unwrap())
            .unwrap();
        assert!(analysis.unreachable().contains(&2));
        assert!(analysis.stats().states_pruned > 0);
    }

    #[test]
    fn path_sensitive_budget_exhaustion_is_reported() {
        let prog = assemble(MEMSET_16).unwrap();
        let err = path_session()
            .with_options(AnalyzerOptions {
                analysis_budget: 6,
                ..AnalyzerOptions::default()
            })
            .run(&prog)
            .unwrap_err();
        assert!(matches!(
            err,
            VerifierError::AnalysisBudgetExhausted { budget: 6, .. }
        ));
    }

    #[test]
    fn reject_loops_is_a_session_policy_for_every_strategy() {
        let prog = assemble("l:\nr0 = 0\ngoto l\nexit").unwrap();
        for strategy in Strategy::ALL {
            let err = VerificationSession::new()
                .with_strategy(strategy)
                .with_options(AnalyzerOptions {
                    reject_loops: true,
                    ..AnalyzerOptions::default()
                })
                .run(&prog)
                .unwrap_err();
            assert!(
                matches!(err, VerifierError::LoopDetected { .. }),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn custom_strategies_plug_in_through_explore_with() {
        // The trait is the extension seam: a portfolio strategy that
        // runs path-sensitively and falls back to the fixpoint composes
        // from the outside, no engine changes needed.
        struct PathThenFixpoint;
        impl crate::explore::ExplorationStrategy for PathThenFixpoint {
            fn name(&self) -> &'static str {
                "path-then-fixpoint"
            }
            fn explore(
                &self,
                prog: &Program,
                options: &AnalyzerOptions,
            ) -> Result<Exploration, VerifierError> {
                crate::explore::PathSensitive
                    .explore(prog, options)
                    .or_else(|_| crate::explore::WideningFixpoint.explore(prog, options))
            }
        }
        let strategy = PathThenFixpoint;
        assert_eq!(strategy.name(), "path-then-fixpoint");
        let session = VerificationSession::new();
        let prog = assemble(MEMSET_16).unwrap();
        let exploration = session
            .explore_with(&strategy, &prog)
            .expect("path-sensitive leg accepts");
        assert_eq!(exploration.stats.widenings_applied, 0, "path leg ran");
        // Session policies still apply to custom strategies.
        let strict = session.with_options(AnalyzerOptions {
            reject_loops: true,
            ..AnalyzerOptions::default()
        });
        assert!(matches!(
            strict.explore_with(&strategy, &prog).unwrap_err(),
            VerifierError::LoopDetected { .. }
        ));
    }
}
