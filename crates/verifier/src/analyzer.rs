//! The abstract interpreter: a worklist **fixpoint engine** over the CFG
//! — reverse-postorder priorities, joins at merge points, delayed
//! widening and one narrowing pass at loop heads, branch refinement, and
//! memory-safety checks.
//!
//! Acyclic programs take the same single topological pass as before (no
//! state ever changes twice, so the worklist degenerates). Cyclic
//! programs — bounded loops, the workload the kernel gained with
//! `bounded loop support` — iterate to a post-fixpoint: loop heads
//! absorb [`AnalyzerOptions::widen_delay`] precise joins before the
//! widening operator extrapolates growing bounds to the threshold
//! ladder, a budget of [`AnalyzerOptions::analysis_budget`] instruction
//! visits bounds the iteration (the kernel's one-million-instruction
//! analogue), and a single narrowing pass afterwards re-applies every
//! transfer function once to claw back precision the widening jumps
//! gave away (sound: one decreasing application from a post-fixpoint is
//! still a post-fixpoint).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ebpf::{AluOp, Insn, JmpOp, MemSize, Program, Reg, Src, Width, STACK_SIZE};

use crate::branch::refine;
use crate::cfg::Cfg;
use crate::error::VerifierError;
use crate::scalar::Scalar;
use crate::state::{AbsState, StackSlot};
use crate::value::RegValue;

/// Tunable analysis behaviour — each toggle corresponds to a design
/// choice called out for ablation in `DESIGN.md`.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzerOptions {
    /// Size of the context buffer the program may access via `r1`.
    pub ctx_size: u64,
    /// Require every memory access to be provably aligned to its size,
    /// via the tnum alignment test (`tnum_is_aligned`).
    pub strict_alignment: bool,
    /// Sharpen both edges of conditional jumps. Disabling shows how much
    /// path sensitivity the range analysis contributes.
    pub refine_branches: bool,
    /// Reject every program whose CFG contains a back-edge with
    /// [`VerifierError::LoopDetected`] — the classic
    /// pre-bounded-loop verifier behaviour. Off by default: loops are
    /// analyzed by fixpoint iteration.
    pub reject_loops: bool,
    /// How many *changing* joins a loop head absorbs exactly before
    /// widening kicks in. Loops whose abstract state stabilizes within
    /// this many trips (e.g. a counted `for i in 0..16` loop bounded by
    /// its own exit test) are analyzed with full precision; longer-lived
    /// growth is extrapolated to the widening thresholds.
    pub widen_delay: u32,
    /// Upper bound on total instruction visits during the fixpoint
    /// iteration; exceeding it aborts with
    /// [`VerifierError::AnalysisBudgetExhausted`].
    pub analysis_budget: u64,
}

impl Default for AnalyzerOptions {
    fn default() -> AnalyzerOptions {
        AnalyzerOptions {
            ctx_size: 64,
            strict_alignment: false,
            refine_branches: true,
            reject_loops: false,
            widen_delay: 16,
            analysis_budget: 1_000_000,
        }
    }
}

/// The result of a successful analysis: the abstract state *before* every
/// reachable instruction, for inspection by tests, examples, and tools.
#[derive(Clone, Debug)]
pub struct Analysis {
    states: Vec<Option<AbsState>>,
}

impl Analysis {
    /// The program was accepted (an `Analysis` is only produced on
    /// acceptance; this always returns `true` and exists for readable
    /// call sites).
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        true
    }

    /// The abstract state before instruction `index`, or `None` when the
    /// instruction is unreachable.
    #[must_use]
    pub fn state_before(&self, index: usize) -> Option<&AbsState> {
        self.states.get(index).and_then(Option::as_ref)
    }

    /// Indices of instructions proven unreachable.
    #[must_use]
    pub fn unreachable(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect()
    }

    /// Renders the program's disassembly with each instruction annotated
    /// by the registers the analyzer tracks at that point — the
    /// human-readable verifier log, in the spirit of the kernel's
    /// `verbose()` output.
    ///
    /// Unreachable instructions are marked `; unreachable`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ebpf::asm::assemble;
    /// use verifier::{Analyzer, AnalyzerOptions};
    ///
    /// let prog = assemble("r2 = 5\nr2 <<= 1\nr0 = r2\nexit")?;
    /// let analysis = Analyzer::new(AnalyzerOptions::default()).analyze(&prog)?;
    /// let log = analysis.annotate(&prog);
    /// assert!(log.contains("r2 <<= 1"));
    /// assert!(log.contains("r2=5"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn annotate(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, insn) in prog.insns().iter().enumerate() {
            let note = match self.state_before(i) {
                None => "; unreachable".to_string(),
                Some(state) => {
                    let mut parts = Vec::new();
                    for reg in Reg::ALL {
                        let v = state.reg(reg);
                        if v != RegValue::Uninit && reg != Reg::R10 {
                            parts.push(format!("{reg}={v}"));
                        }
                    }
                    format!("; {}", parts.join(" "))
                }
            };
            let _ = writeln!(out, "{i:>3}: {insn:<40} {note}");
        }
        out
    }
}

/// The BPF-style static analyzer.
///
/// See the crate docs for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    options: AnalyzerOptions,
}

impl Analyzer {
    /// Creates an analyzer with the given options.
    #[must_use]
    pub fn new(options: AnalyzerOptions) -> Analyzer {
        Analyzer { options }
    }

    /// Abstractly interprets the program to a fixpoint, returning the
    /// (narrowed) per-instruction states on acceptance.
    ///
    /// # Errors
    ///
    /// A [`VerifierError`] describing the first problem found; the
    /// program must be rejected.
    pub fn analyze(&self, prog: &Program) -> Result<Analysis, VerifierError> {
        let cfg = Cfg::build(prog);
        if self.options.reject_loops {
            if let Some(&(_, head)) = cfg.back_edges().first() {
                return Err(VerifierError::LoopDetected { pc: head });
            }
        }

        let mut states: Vec<Option<AbsState>> = vec![None; prog.len()];
        states[0] = Some(AbsState::entry());
        // Changing-join counters per loop head, driving delayed widening.
        let mut joins: Vec<u32> = vec![0; prog.len()];

        // Priority worklist: always pop the pending instruction earliest
        // in reverse postorder, so inner regions settle before outer ones
        // re-fire (the classic weak-topological iteration strategy).
        let mut queue: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        let mut queued = vec![false; prog.len()];
        queue.push(Reverse((cfg.rpo_pos(0), 0)));
        queued[0] = true;

        let mut visits: u64 = 0;
        while let Some(Reverse((_, pc))) = queue.pop() {
            queued[pc] = false;
            visits += 1;
            if visits > self.options.analysis_budget {
                return Err(VerifierError::AnalysisBudgetExhausted {
                    pc,
                    budget: self.options.analysis_budget,
                });
            }
            let state = states[pc]
                .clone()
                .expect("queued instructions have a state");
            for (succ, out) in self.step(prog, state, pc)? {
                let changed = flow_into(
                    &mut states[succ],
                    out,
                    cfg.is_loop_head(succ),
                    &mut joins[succ],
                    self.options.widen_delay,
                );
                if changed && !queued[succ] {
                    queued[succ] = true;
                    queue.push(Reverse((cfg.rpo_pos(succ), succ)));
                }
            }
        }

        // Acyclic programs never widen: the single worklist pass already
        // computed the exact join states, and narrowing would reproduce
        // them verbatim at the cost of re-running every transfer.
        if cfg.back_edges().is_empty() {
            return Ok(Analysis { states });
        }

        // One narrowing pass: recompute every state from its
        // predecessors' stabilized states. From a post-fixpoint, one
        // application of the (monotone) transfer functions stays a
        // post-fixpoint while undoing over-extrapolated widening jumps —
        // e.g. a loop head re-tightens to `entry ⊔ refined back-edge`.
        let narrowed = self.narrow(prog, &cfg, &states)?;
        Ok(Analysis { states: narrowed })
    }

    /// Executes one instruction abstractly: runs every safety check and
    /// returns the `(successor, out-state)` contributions.
    fn step(
        &self,
        prog: &Program,
        state: AbsState,
        pc: usize,
    ) -> Result<Vec<(usize, AbsState)>, VerifierError> {
        let insn = prog.insns()[pc];
        self.check_reads(&state, insn, pc)?;
        match insn {
            Insn::Jmp {
                width,
                op,
                dst,
                src,
                off,
            } => {
                let taken_target = prog.jump_target(pc, off).expect("validated");
                let (fall, taken) = self.branch_states(&state, width, op, dst, src)?;
                let mut out = Vec::with_capacity(2);
                if let Some(fall) = fall {
                    out.push((pc + 1, fall));
                }
                if let Some(taken) = taken {
                    out.push((taken_target, taken));
                }
                Ok(out)
            }
            Insn::Ja { off } => {
                let target = prog.jump_target(pc, off).expect("validated");
                Ok(vec![(target, state)])
            }
            Insn::Exit => match state.reg(Reg::R0) {
                RegValue::Uninit => Err(VerifierError::NoReturnValue { pc }),
                RegValue::Scalar(_) => Ok(Vec::new()),
                _ => Err(VerifierError::PointerLeak { pc }),
            },
            _ => {
                let next = self.transfer(state, insn, pc)?;
                Ok(vec![(pc + 1, next)])
            }
        }
    }

    /// The narrowing pass: one plain-join recomputation of every
    /// reachable state from the stabilized `states`.
    fn narrow(
        &self,
        prog: &Program,
        cfg: &Cfg,
        states: &[Option<AbsState>],
    ) -> Result<Vec<Option<AbsState>>, VerifierError> {
        let mut narrowed: Vec<Option<AbsState>> = vec![None; prog.len()];
        narrowed[0] = Some(AbsState::entry());
        for &pc in cfg.rpo() {
            let Some(state) = states[pc].clone() else {
                continue;
            };
            for (succ, out) in self.step(prog, state, pc)? {
                match &mut narrowed[succ] {
                    slot @ None => *slot = Some(out),
                    Some(existing) => *existing = existing.union(&out),
                }
            }
        }
        Ok(narrowed)
    }

    /// Rejects reads of uninitialized registers.
    fn check_reads(&self, state: &AbsState, insn: Insn, pc: usize) -> Result<(), VerifierError> {
        // Helper calls are handled leniently: our model's helpers take no
        // required arguments.
        if matches!(insn, Insn::Call { .. }) {
            return Ok(());
        }
        for reg in insn.use_regs() {
            if !state.reg(reg).is_readable() {
                return Err(VerifierError::UninitRead { reg, pc });
            }
        }
        Ok(())
    }

    /// Transfer function for non-control-flow instructions.
    fn transfer(
        &self,
        mut state: AbsState,
        insn: Insn,
        pc: usize,
    ) -> Result<AbsState, VerifierError> {
        match insn {
            Insn::Alu {
                width,
                op,
                dst,
                src,
            } => {
                let new = self.alu_value(&state, width, op, dst, src, pc)?;
                state.set_reg(dst, new);
            }
            Insn::LoadImm64 { dst, imm } => {
                state.set_reg(dst, RegValue::Scalar(Scalar::constant(imm)));
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                let value = self.check_load(&mut state, size, base, off, pc)?;
                state.set_reg(dst, value);
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                let value = match src {
                    Src::Reg(r) => state.reg(r),
                    Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
                };
                self.check_store(&mut state, size, base, off, value, pc)?;
            }
            Insn::Call { .. } => {
                state.set_reg(Reg::R0, RegValue::unknown_scalar());
                for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5] {
                    state.set_reg(r, RegValue::Uninit);
                }
            }
            Insn::Ja { .. } | Insn::Jmp { .. } | Insn::Exit => unreachable!("handled by caller"),
        }
        Ok(state)
    }

    /// Computes the new value of `dst` for an ALU instruction, modeling
    /// pointer arithmetic on `add`/`sub`/`mov`.
    fn alu_value(
        &self,
        state: &AbsState,
        width: Width,
        op: AluOp,
        dst: Reg,
        src: Src,
        pc: usize,
    ) -> Result<RegValue, VerifierError> {
        let rhs: RegValue = match src {
            Src::Reg(r) => state.reg(r),
            Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
        };
        let lhs = state.reg(dst);

        // Mov just propagates the source value (pointers included) at
        // 64-bit width; 32-bit mov truncates and hence scalarizes.
        if op == AluOp::Mov {
            return Ok(match (width, rhs) {
                (Width::W64, v) => v,
                (Width::W32, RegValue::Scalar(s)) => RegValue::Scalar(s.subreg()),
                (Width::W32, _) => RegValue::unknown_scalar(),
            });
        }

        match (lhs, rhs) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) => Ok(RegValue::Scalar(a.alu(width, op, b))),
            // Pointer ± scalar keeps the region, shifting the offset.
            (RegValue::StackPtr { offset }, RegValue::Scalar(b))
                if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) =>
            {
                Ok(RegValue::StackPtr {
                    offset: offset.alu64(op, b),
                })
            }
            (RegValue::CtxPtr { offset }, RegValue::Scalar(b))
                if width == Width::W64 && (op == AluOp::Add || op == AluOp::Sub) =>
            {
                Ok(RegValue::CtxPtr {
                    offset: offset.alu64(op, b),
                })
            }
            // Same-region pointer difference yields a scalar.
            (RegValue::StackPtr { offset: a }, RegValue::StackPtr { offset: b })
            | (RegValue::CtxPtr { offset: a }, RegValue::CtxPtr { offset: b })
                if width == Width::W64 && op == AluOp::Sub =>
            {
                Ok(RegValue::Scalar(a.alu64(AluOp::Sub, b)))
            }
            (RegValue::Uninit, _) | (_, RegValue::Uninit) => {
                unreachable!("checked by check_reads")
            }
            _ => Err(VerifierError::BadPointerArithmetic { pc }),
        }
    }

    /// Produces the fall-through and taken states of a conditional jump
    /// (`None` for provably infeasible edges).
    #[allow(clippy::type_complexity)]
    fn branch_states(
        &self,
        state: &AbsState,
        width: Width,
        op: JmpOp,
        dst: Reg,
        src: Src,
    ) -> Result<(Option<AbsState>, Option<AbsState>), VerifierError> {
        let rhs: RegValue = match src {
            Src::Reg(r) => state.reg(r),
            Src::Imm(v) => RegValue::Scalar(Scalar::constant(v as i64 as u64)),
        };
        let lhs = state.reg(dst);

        // Refinement applies to 64-bit scalar/scalar comparisons only;
        // everything else passes both states through unchanged (sound).
        let refinable = width == Width::W64 && self.options.refine_branches;
        let (lhs_s, rhs_s) = match (lhs, rhs) {
            (RegValue::Scalar(a), RegValue::Scalar(b)) if refinable => (a, b),
            _ => return Ok((Some(state.clone()), Some(state.clone()))),
        };

        let make = |taken: bool| -> Option<AbsState> {
            let (d, s) = refine(op, taken, lhs_s, rhs_s)?;
            let mut out = state.clone();
            out.set_reg(dst, RegValue::Scalar(d));
            if let Src::Reg(r) = src {
                out.set_reg(r, RegValue::Scalar(s));
            }
            Some(out)
        };
        Ok((make(false), make(true)))
    }

    /// Bounds- and alignment-checks a load, returning the loaded value.
    fn check_load(
        &self,
        state: &mut AbsState,
        size: MemSize,
        base: Reg,
        off: i16,
        pc: usize,
    ) -> Result<RegValue, VerifierError> {
        match state.reg(base) {
            RegValue::StackPtr { offset } => {
                let (lo, hi) =
                    self.check_region("stack", offset, off, size, -(STACK_SIZE as i64), 0, pc)?;
                if lo == hi && (lo % 8 == 0 || (lo - (lo & !7)) + size.bytes() as i64 <= 8) {
                    // Constant offset: consult the slot contents.
                    match state.stack_slot(lo).expect("in range") {
                        StackSlot::Uninit => Err(VerifierError::UninitStackRead { pc }),
                        StackSlot::Spill(v) if size == MemSize::DW && lo % 8 == 0 => Ok(v),
                        _ => Ok(RegValue::unknown_scalar()),
                    }
                } else {
                    // Variable offset: every possibly-read byte must be
                    // initialized.
                    if state.stack_range_initialized(lo, hi + size.bytes() as i64) {
                        Ok(RegValue::unknown_scalar())
                    } else {
                        Err(VerifierError::UninitStackRead { pc })
                    }
                }
            }
            RegValue::CtxPtr { offset } => {
                self.check_region(
                    "ctx",
                    offset,
                    off,
                    size,
                    0,
                    self.options.ctx_size as i64,
                    pc,
                )?;
                Ok(RegValue::unknown_scalar())
            }
            RegValue::Uninit => Err(VerifierError::UninitRead { reg: base, pc }),
            RegValue::Scalar(_) => Err(VerifierError::BadPointer { reg: base, pc }),
        }
    }

    /// Bounds- and alignment-checks a store, updating the stack state.
    fn check_store(
        &self,
        state: &mut AbsState,
        size: MemSize,
        base: Reg,
        off: i16,
        value: RegValue,
        pc: usize,
    ) -> Result<(), VerifierError> {
        if !value.is_readable() {
            // Storing an uninitialized register.
            if let RegValue::Uninit = value {
                return Err(VerifierError::UninitRead { reg: base, pc });
            }
        }
        match state.reg(base) {
            RegValue::StackPtr { offset } => {
                let (lo, hi) =
                    self.check_region("stack", offset, off, size, -(STACK_SIZE as i64), 0, pc)?;
                if lo == hi && size == MemSize::DW && lo % 8 == 0 {
                    state.set_stack_slot(lo, StackSlot::Spill(value));
                } else {
                    state.smear_stack(lo, hi + size.bytes() as i64);
                }
                Ok(())
            }
            RegValue::CtxPtr { offset } => {
                self.check_region(
                    "ctx",
                    offset,
                    off,
                    size,
                    0,
                    self.options.ctx_size as i64,
                    pc,
                )?;
                Ok(())
            }
            RegValue::Uninit => Err(VerifierError::UninitRead { reg: base, pc }),
            RegValue::Scalar(_) => Err(VerifierError::BadPointer { reg: base, pc }),
        }
    }

    /// Proves `region_lo <= offset + off` and
    /// `offset + off + size <= region_hi` for every possible offset, plus
    /// alignment under strict mode. Returns the extreme byte offsets of
    /// the access start.
    #[allow(clippy::too_many_arguments)]
    fn check_region(
        &self,
        region: &'static str,
        offset: Scalar,
        off: i16,
        size: MemSize,
        region_lo: i64,
        region_hi: i64,
        pc: usize,
    ) -> Result<(i64, i64), VerifierError> {
        let total = offset.alu64(AluOp::Add, Scalar::constant(off as i64 as u64));
        let lo = total.bounds().smin();
        let hi = total.bounds().smax();
        let end = hi.checked_add(size.bytes() as i64);
        let in_bounds = lo >= region_lo && end.is_some_and(|e| e <= region_hi);
        if !in_bounds {
            return Err(VerifierError::OutOfBounds {
                region,
                min_off: lo,
                max_end: end.unwrap_or(i64::MAX),
                pc,
            });
        }
        if self.options.strict_alignment && !total.tnum().is_aligned(size.bytes()) {
            return Err(VerifierError::Misaligned {
                region,
                size: size.bytes(),
                pc,
            });
        }
        Ok((lo, hi))
    }
}

/// Merges `incoming` into the slot and reports whether the stored state
/// actually grew (the worklist only re-fires on growth).
///
/// At a loop head, the first `delay` changing joins are precise; every
/// later one widens (`existing ∇ (existing ⊔ incoming)`), which
/// extrapolates still-growing components to the threshold ladder while
/// keeping already-stable ones exact — the delayed-widening recipe that
/// preserves bounds a counted loop reaches within `delay` trips.
fn flow_into(
    slot: &mut Option<AbsState>,
    incoming: AbsState,
    is_loop_head: bool,
    joins: &mut u32,
    delay: u32,
) -> bool {
    match slot {
        None => {
            *slot = Some(incoming);
            true
        }
        Some(existing) => {
            if incoming.is_subset_of(existing) {
                return false;
            }
            let grown = existing.union(&incoming);
            let next = if is_loop_head && *joins >= delay {
                existing.widen(&grown)
            } else {
                grown
            };
            if is_loop_head {
                *joins = joins.saturating_add(1);
            }
            // The join re-normalizes, which may canonicalize without
            // enlarging; only a real change re-fires the successor.
            if next == *existing {
                return false;
            }
            *existing = next;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf::asm::assemble;

    fn accept(src: &str) -> Analysis {
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&assemble(src).unwrap())
            .unwrap_or_else(|e| panic!("expected accept, got: {e}"))
    }

    fn reject(src: &str) -> VerifierError {
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&assemble(src).unwrap())
            .expect_err("expected reject")
    }

    #[test]
    fn accepts_trivial_program() {
        accept("r0 = 0\nexit");
    }

    #[test]
    fn rejects_uninit_r0_at_exit() {
        assert!(matches!(
            reject("exit"),
            VerifierError::NoReturnValue { pc: 0 }
        ));
    }

    #[test]
    fn rejects_uninit_register_read() {
        assert!(matches!(
            reject("r0 = r5\nexit"),
            VerifierError::UninitRead {
                reg: Reg::R5,
                pc: 0
            }
        ));
    }

    #[test]
    fn rejects_pointer_return() {
        assert!(matches!(
            reject("r0 = r10\nexit"),
            VerifierError::PointerLeak { pc: 1 }
        ));
    }

    #[test]
    fn reject_loops_flag_preserves_classic_behaviour() {
        let prog = assemble("l:\nr0 = 0\ngoto l").unwrap();
        let classic = Analyzer::new(AnalyzerOptions {
            reject_loops: true,
            ..AnalyzerOptions::default()
        });
        assert!(matches!(
            classic.analyze(&prog).unwrap_err(),
            VerifierError::LoopDetected { .. }
        ));
        // The default engine instead runs the loop to a fixpoint; this
        // one never exits, so it is accepted with the exit unreachable.
        let analysis = accept("l:\nr0 = 0\ngoto l\nexit");
        assert!(analysis.unreachable().contains(&2));
        // Loop-free programs are unaffected by the flag.
        classic
            .analyze(&assemble("r0 = 0\nexit").unwrap())
            .expect("acyclic program accepted under reject_loops");
    }

    #[test]
    fn bounded_loop_accepted_with_exact_counter_range() {
        // for i in 0..16 { buf[i] = i; sum += i }, returning the counter.
        let analysis = accept(
            r"
                r1 = 0              ; i
                r6 = 0              ; sum
            loop:
                r3 = r10
                r3 += -16
                r3 += r1
                *(u8 *)(r3 + 0) = 7 ; in bounds iff i <= 15
                r6 += r1
                r1 += 1
                if r1 < 16 goto loop
                r0 = r1
                exit
            ",
        );
        // The exit test pins the counter exactly; the loop body sees the
        // full [0, 15] window.
        let exit_state = analysis.state_before(10).unwrap();
        let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
        assert_eq!(r0.as_constant(), Some(16), "narrowed exit counter");
        let head = analysis.state_before(2).unwrap();
        let i = head.reg(Reg::R1).as_scalar().unwrap();
        assert_eq!((i.bounds().umin(), i.bounds().umax()), (0, 15));
    }

    #[test]
    fn unbounded_loop_terminates_by_widening() {
        // No exit test bounds r1: the analysis must widen to ⊤ and
        // stabilize instead of diverging one trip at a time.
        let analysis = accept(
            r"
                r1 = 0
            loop:
                r1 += 1
                if r2 > 0 goto loop
                r0 = 0
                exit
            ",
        );
        let exit_state = analysis.state_before(3).unwrap();
        let r1 = exit_state.reg(Reg::R1).as_scalar().unwrap();
        assert!(r1.contains(1) && r1.contains(1 << 40), "widened to ⊤-ish");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let tiny = Analyzer::new(AnalyzerOptions {
            analysis_budget: 4,
            ..AnalyzerOptions::default()
        });
        let prog = assemble("r1 = 0\nloop:\nr1 += 1\nif r2 > 0 goto loop\nr0 = 0\nexit").unwrap();
        assert!(matches!(
            tiny.analyze(&prog).unwrap_err(),
            VerifierError::AnalysisBudgetExhausted { budget: 4, .. }
        ));
    }

    #[test]
    fn eager_widening_loses_the_loop_proof_delay_keeps() {
        // A 13-byte buffer memset over 13 trips: the store is safe only
        // because the exit test keeps i <= 12 — an *interval* fact the
        // head reaches after 12 precise joins (the tnum half can say no
        // better than [0, 15], which overruns the buffer). Widening
        // eagerly (delay 0) jumps the interval to the threshold ladder
        // before the test can cap it, so the store check fails.
        let prog = assemble(
            r"
                r1 = 0
            loop:
                r3 = r10
                r3 += -13
                r3 += r1
                *(u8 *)(r3 + 0) = 0
                r1 += 1
                if r1 < 13 goto loop
                r0 = 0
                exit
            ",
        )
        .unwrap();
        let eager = Analyzer::new(AnalyzerOptions {
            widen_delay: 0,
            ..AnalyzerOptions::default()
        });
        assert!(matches!(
            eager.analyze(&prog).unwrap_err(),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
        Analyzer::new(AnalyzerOptions::default())
            .analyze(&prog)
            .expect("delayed widening keeps the bound");
    }

    #[test]
    fn nested_loops_reach_a_fixpoint() {
        let analysis = accept(
            r"
                r6 = 0
            outer:
                r1 = 0
            inner:
                r1 += 1
                if r1 < 4 goto inner
                r6 += 1
                if r6 < 4 goto outer
                r0 = r6
                exit
            ",
        );
        let exit_state = analysis.state_before(7).unwrap();
        let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
        assert_eq!(r0.as_constant(), Some(4));
    }

    #[test]
    fn loop_carried_spill_stays_tracked() {
        // A spill written before the loop and only read inside it keeps
        // its value across the back-edge join.
        let analysis = accept(
            r"
                r1 = 99
                *(u64 *)(r10 - 8) = r1
                r2 = 0
            loop:
                r3 = *(u64 *)(r10 - 8)
                r2 += 1
                if r2 < 8 goto loop
                r0 = r3
                exit
            ",
        );
        let exit_state = analysis.state_before(7).unwrap();
        assert_eq!(
            exit_state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(99)
        );
    }

    #[test]
    fn accepts_stack_round_trip_and_tracks_spill() {
        let analysis = accept(
            r"
                r1 = 42
                *(u64 *)(r10 - 8) = r1
                r2 = *(u64 *)(r10 - 8)
                r0 = r2
                exit
            ",
        );
        // Before exit, r0 is exactly 42: the spill was tracked.
        let state = analysis.state_before(4).unwrap();
        assert_eq!(
            state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(42)
        );
    }

    #[test]
    fn rejects_uninit_stack_read() {
        assert!(matches!(
            reject("r0 = *(u64 *)(r10 - 8)\nexit"),
            VerifierError::UninitStackRead { pc: 0 }
        ));
    }

    #[test]
    fn rejects_oob_stack_access() {
        assert!(matches!(
            reject("*(u64 *)(r10 - 520) = 0\nr0 = 0\nexit"),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
        assert!(matches!(
            reject("*(u8 *)(r10 + 0) = 0\nr0 = 0\nexit"),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn rejects_oob_ctx_access() {
        // Default ctx_size is 64.
        assert!(matches!(
            reject("r0 = *(u8 *)(r1 + 64)\nexit"),
            VerifierError::OutOfBounds { region: "ctx", .. }
        ));
        accept("r0 = *(u8 *)(r1 + 63)\nexit");
    }

    #[test]
    fn rejects_scalar_dereference() {
        assert!(matches!(
            reject("r2 = 100\nr0 = *(u8 *)(r2 + 0)\nexit"),
            VerifierError::BadPointer {
                reg: Reg::R2,
                pc: 1
            }
        ));
    }

    #[test]
    fn masked_index_bounds_stack_access() {
        // The paper's §I pattern: mask an untrusted value, then index.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                r3 = r10
                r3 += -8
                r3 += r2
                *(u8 *)(r3 - 1) = 0     ; offsets [-9, -2] ⊂ [-512, 0)
                r0 = 0
                exit
            ",
        );
        // Without the mask the same program must be rejected.
        assert!(matches!(
            reject(
                r"
                    r2 = *(u8 *)(r1 + 0)
                    r3 = r10
                    r3 += -8
                    r3 += r2
                    *(u8 *)(r3 - 1) = 0
                    r0 = 0
                    exit
                ",
            ),
            VerifierError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn branch_refinement_proves_bounds() {
        // if r2 > 7 we bail; otherwise r2 <= 7 makes the access safe.
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                if r2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        );
    }

    #[test]
    fn disabling_branch_refinement_loses_the_proof() {
        let opts = AnalyzerOptions {
            refine_branches: false,
            ..AnalyzerOptions::default()
        };
        let prog = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                if r2 > 7 goto out
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        )
        .unwrap();
        assert!(Analyzer::new(opts).analyze(&prog).is_err());
        assert!(Analyzer::new(AnalyzerOptions::default())
            .analyze(&prog)
            .is_ok());
    }

    #[test]
    fn strict_alignment_uses_tnum() {
        // r2 = byte & ~3 is 4-aligned; a u32 access through it is fine.
        let strict = AnalyzerOptions {
            strict_alignment: true,
            ..AnalyzerOptions::default()
        };
        let aligned = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 60             ; 4-aligned, <= 60
                r3 = r1
                r3 += r2
                r0 = *(u32 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        Analyzer::new(AnalyzerOptions {
            ctx_size: 64,
            ..strict
        })
        .analyze(&aligned)
        .expect("aligned access accepted");

        // Without the mask's low bits cleared, alignment is unprovable.
        let misaligned = assemble(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 63
                r3 = r1
                r3 += r2
                r0 = *(u32 *)(r3 + 0)
                exit
            ",
        )
        .unwrap();
        let err = Analyzer::new(AnalyzerOptions {
            ctx_size: 68,
            ..strict
        })
        .analyze(&misaligned)
        .unwrap_err();
        assert!(matches!(err, VerifierError::Misaligned { size: 4, .. }));
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        // r2 == 3 and r2 > 7 cannot both hold; the bad access is dead.
        let analysis = accept(
            r"
                r2 = 3
                if r2 > 7 goto bad
                r0 = 0
                exit
            bad:
                r3 = 0
                r0 = *(u8 *)(r3 + 0)   ; would be rejected if reachable
                exit
            ",
        );
        assert!(analysis.unreachable().contains(&4));
    }

    #[test]
    fn join_widens_at_merge_points() {
        let analysis = accept(
            r"
                r2 = 4
                if r1 == 0 goto other
                r2 = 8
                goto end
            other:
                r2 = 4
            end:
                r0 = r2
                exit
            ",
        );
        let state = analysis.state_before(6).unwrap();
        let r2 = state.reg(Reg::R2).as_scalar().unwrap();
        assert!(r2.contains(4) && r2.contains(8));
        assert!(!r2.contains(5), "tnum knows low bits are 0: {r2:?}");
    }

    #[test]
    fn call_clobbers_caller_saved() {
        assert!(matches!(
            reject("r1 = 1\ncall 7\nr0 = r1\nexit"),
            VerifierError::UninitRead {
                reg: Reg::R1,
                pc: 2
            }
        ));
        accept("call 7\nexit"); // r0 defined by the call
    }

    #[test]
    fn variable_stack_write_smears_then_reads_ok() {
        accept(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                *(u64 *)(r10 - 8) = 0
                *(u64 *)(r10 - 16) = 0
                r3 = r10
                r3 += -16
                r3 += r2
                *(u8 *)(r3 + 0) = 9     ; variable offset within [-16, -9]
                r4 = *(u64 *)(r10 - 8)  ; still initialized (now Misc)
                r0 = r4
                exit
            ",
        );
    }

    #[test]
    fn pointer_minus_pointer_is_scalar() {
        let analysis = accept(
            r"
                r3 = r10
                r3 += -8
                r4 = r10
                r4 -= r3
                r0 = r4
                exit
            ",
        );
        let state = analysis.state_before(5).unwrap();
        assert_eq!(
            state.reg(Reg::R0).as_scalar().unwrap().as_constant(),
            Some(8)
        );
    }

    #[test]
    fn pointer_times_scalar_rejected() {
        assert!(matches!(
            reject("r3 = r10\nr3 *= 2\nr0 = 0\nexit"),
            VerifierError::BadPointerArithmetic { pc: 1 }
        ));
    }
}
