//! Randomized property tests for the verifier's scalar reduced product,
//! branch refinement at full width, and the `AbsState` inclusion order
//! that path-sensitive pruning leans on, driven by the workspace's
//! deterministic SplitMix64 stream.

// Explicit BPF division semantics (`x / 0 = 0`, `x % 0 = x`) throughout.
#![allow(clippy::manual_checked_ops)]
use domain::rng::SplitMix64;
use ebpf::{AluOp, JmpOp, Reg, Width};
use tnum::Tnum;
use verifier::{AbsState, RegValue, Scalar, StackSlot};

const CASES: u32 = 256;

/// A random scalar abstraction together with a member.
fn scalar_and_member(rng: &mut SplitMix64) -> (Scalar, u64) {
    let t = Tnum::masked(rng.next_u64(), rng.next_u64());
    let x = t.value() | (rng.next_u64() & t.mask());
    (Scalar::from_tnum(t), x)
}

fn concrete_alu(width: Width, op: AluOp, x: u64, y: u64) -> u64 {
    match width {
        Width::W64 => match op {
            AluOp::Add => x.wrapping_add(y),
            AluOp::Sub => x.wrapping_sub(y),
            AluOp::Mul => x.wrapping_mul(y),
            AluOp::Div => {
                if y == 0 {
                    0
                } else {
                    x / y
                }
            }
            AluOp::Mod => {
                if y == 0 {
                    x
                } else {
                    x % y
                }
            }
            AluOp::Or => x | y,
            AluOp::And => x & y,
            AluOp::Xor => x ^ y,
            AluOp::Lsh => x.wrapping_shl(y as u32 & 63),
            AluOp::Rsh => x.wrapping_shr(y as u32 & 63),
            AluOp::Arsh => ((x as i64).wrapping_shr(y as u32 & 63)) as u64,
            AluOp::Neg => x.wrapping_neg(),
            AluOp::Mov => y,
        },
        Width::W32 => {
            let (a, b) = (x as u32, y as u32);
            u64::from(match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a / b
                    }
                }
                AluOp::Mod => {
                    if b == 0 {
                        a
                    } else {
                        a % b
                    }
                }
                AluOp::Or => a | b,
                AluOp::And => a & b,
                AluOp::Xor => a ^ b,
                AluOp::Lsh => a.wrapping_shl(b & 31),
                AluOp::Rsh => a.wrapping_shr(b & 31),
                AluOp::Arsh => ((a as i32).wrapping_shr(b & 31)) as u32,
                AluOp::Neg => a.wrapping_neg(),
                AluOp::Mov => b,
            })
        }
    }
}

#[test]
fn scalar_alu_sound() {
    let mut rng = SplitMix64::new(0x40);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, y) = scalar_and_member(&mut rng);
        for op in AluOp::ALL {
            for width in [Width::W64, Width::W32] {
                let r = a.alu(width, op, b);
                let z = concrete_alu(width, op, x, y);
                assert!(
                    r.contains(z),
                    "{op:?}/{width:?}: {x} op {y} = {z} not in {r:?}"
                );
            }
        }
    }
}

#[test]
fn normalize_keeps_members() {
    let mut rng = SplitMix64::new(0x41);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let n = a.normalize().expect("non-empty");
        assert!(n.contains(x));
    }
}

#[test]
fn union_keeps_members() {
    let mut rng = SplitMix64::new(0x42);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, y) = scalar_and_member(&mut rng);
        let j = a.union(b);
        assert!(j.contains(x));
        assert!(j.contains(y));
        assert!(a.is_subset_of(j));
        assert!(b.is_subset_of(j));
    }
}

#[test]
fn intersect_keeps_common_members() {
    let mut rng = SplitMix64::new(0x43);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, _) = scalar_and_member(&mut rng);
        match a.intersect(b) {
            Some(m) => {
                if b.contains(x) {
                    assert!(m.contains(x));
                }
            }
            None => assert!(!b.contains(x) || !a.contains(x)),
        }
    }
}

#[test]
fn branch_refinement_sound() {
    let mut rng = SplitMix64::new(0x44);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, y) = scalar_and_member(&mut rng);
        // Whatever the concrete comparison outcome, the corresponding
        // refined edge must keep the witnessing pair (and hence must not
        // be reported infeasible).
        for op in JmpOp::ALL {
            let taken = op.eval64(x, y);
            match verifier::refine_branch(op, taken, a, b) {
                Some((d, s)) => {
                    assert!(d.contains(x), "{op:?}/{taken}: lost dst {x}");
                    assert!(s.contains(y), "{op:?}/{taken}: lost src {y}");
                }
                None => panic!("{op:?}/{taken}: feasible edge refined to bottom"),
            }
        }
    }
}

#[test]
fn branch_refinement_shrinks_or_keeps() {
    let mut rng = SplitMix64::new(0x45);
    for _ in 0..CASES {
        let (a, _) = scalar_and_member(&mut rng);
        let (b, _) = scalar_and_member(&mut rng);
        // Refinement never widens either side.
        for op in JmpOp::ALL {
            for taken in [false, true] {
                if let Some((d, s)) = verifier::refine_branch(op, taken, a, b) {
                    assert!(d.is_subset_of(a), "{op:?}/{taken} widened dst");
                    assert!(s.is_subset_of(b), "{op:?}/{taken} widened src");
                }
            }
        }
    }
}

// ---- `AbsState::is_subset_of`: the pruning soundness argument ----
//
// The path-sensitive explorer discards a branch state the moment it is
// included in an already-explored one, so `is_subset_of` must be a real
// abstract order: reflexive, absorbed by `union`, and — the load-bearing
// half — it must imply *concrete-state containment*: every concrete
// register/stack assignment the pruned state admits, the covering state
// admits too (otherwise pruning would skip genuinely new behaviour).

/// Registers the random-state generator populates.
const STATE_REGS: [Reg; 5] = [Reg::R0, Reg::R3, Reg::R4, Reg::R6, Reg::R9];

/// Stack offsets (one per distinct slot) the generator populates.
const STATE_SLOTS: [i64; 3] = [-8, -16, -24];

/// Sampled concrete members of a random state: one witness value per
/// scalar register and per tracked spill slot.
type Members = (Vec<(Reg, u64)>, Vec<(i64, u64)>);

/// A random abstract state together with its sampled concrete members.
fn state_and_members(rng: &mut SplitMix64) -> (AbsState, Members) {
    let mut state = AbsState::entry();
    let mut reg_members = Vec::new();
    for reg in STATE_REGS {
        match rng.below(4) {
            0 => {} // stays Uninit
            1 => {
                let (s, x) = scalar_and_member(rng);
                state.set_reg(reg, RegValue::Scalar(s));
                reg_members.push((reg, x));
            }
            2 => {
                let (offset, _) = scalar_and_member(rng);
                state.set_reg(reg, RegValue::StackPtr { offset });
            }
            _ => {
                let (offset, _) = scalar_and_member(rng);
                state.set_reg(reg, RegValue::CtxPtr { offset });
            }
        }
    }
    let mut slot_members = Vec::new();
    for off in STATE_SLOTS {
        match rng.below(3) {
            0 => {} // stays Uninit
            1 => {
                state.set_stack_slot(off, StackSlot::Misc);
            }
            _ => {
                let (s, x) = scalar_and_member(rng);
                state.set_stack_slot(off, StackSlot::Spill(RegValue::Scalar(s)));
                slot_members.push((off, x));
            }
        }
    }
    (state, (reg_members, slot_members))
}

#[test]
fn state_inclusion_is_reflexive_and_union_absorbed() {
    let mut rng = SplitMix64::new(0x50);
    for _ in 0..CASES {
        let (a, _) = state_and_members(&mut rng);
        let (b, _) = state_and_members(&mut rng);
        assert!(a.is_subset_of(&a), "reflexivity");
        let j = a.union(&b);
        assert!(a.is_subset_of(&j), "a below a ⊔ b");
        assert!(b.is_subset_of(&j), "b below a ⊔ b");
        // Absorption: joining an included state changes nothing (up to
        // mutual inclusion) — re-processing a pruned arrival would be
        // pure waste, which is exactly why pruning is safe to do.
        let jj = j.union(&a);
        assert!(jj.is_subset_of(&j) && j.is_subset_of(&jj), "absorption");
    }
}

#[test]
fn state_inclusion_implies_concrete_containment() {
    let mut rng = SplitMix64::new(0x51);
    for _ in 0..CASES {
        let (a, (reg_members, slot_members)) = state_and_members(&mut rng);
        let (c, _) = state_and_members(&mut rng);
        // `b` is a constructed superset (how visited-table covers arise:
        // the covering state saw at least everything the arrival did).
        let b = a.union(&c);
        assert!(a.is_subset_of(&b));
        // Every sampled concrete register value of `a` is admitted by
        // `b`: either b tracks a scalar that contains it, or b gave the
        // register up entirely (Uninit — the top of the safety order,
        // which only *forbids* reads and so admits any concrete value).
        for &(reg, x) in &reg_members {
            match b.reg(reg) {
                RegValue::Uninit => {}
                RegValue::Scalar(s) => {
                    assert!(s.contains(x), "{reg}: member {x:#x} escapes cover")
                }
                other => panic!("{reg}: scalar joined into pointer {other:?}"),
            }
        }
        // Same for spilled stack slots: Spill must still contain the
        // member; Misc ("some initialized bytes") and Uninit admit any.
        for &(off, x) in &slot_members {
            match b.stack_slot(off).expect("in frame") {
                StackSlot::Uninit | StackSlot::Misc => {}
                StackSlot::Spill(RegValue::Scalar(s)) => {
                    assert!(s.contains(x), "slot {off}: member {x:#x} escapes cover")
                }
                StackSlot::Spill(other) => {
                    panic!("slot {off}: scalar spill joined into {other:?}")
                }
            }
        }
    }
}

#[test]
fn subreg_contains_low_half() {
    let mut rng = SplitMix64::new(0x46);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        assert!(a.subreg().contains(x & 0xffff_ffff));
    }
}

// ---- Fingerprints: soundness of the O(1) equality reject ----
//
// The visited table dismisses probe candidates whose fingerprint differs
// from the arrival's without running the pointwise comparison. That is
// sound exactly when fingerprint inequality implies state inequality —
// equivalently (contrapositive), when equal states always fingerprint
// equally, regardless of the write history that produced them.

#[test]
fn fingerprint_inequality_implies_state_inequality() {
    let mut rng = SplitMix64::new(0xF1A9);
    for _ in 0..CASES {
        // Two random states: the fingerprint comparison must never
        // contradict structural equality in either direction.
        let (a, _) = state_and_members(&mut rng);
        let (b, _) = state_and_members(&mut rng);
        if a.fingerprint() != b.fingerprint() {
            assert_ne!(a, b, "fingerprint mismatch on equal states");
        }
        if a == b {
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }
}

#[test]
fn equal_states_fingerprint_equally_across_histories() {
    // The same contents reached through different write orders,
    // overwrites, clone-then-materialize chains, and joins must
    // fingerprint identically — the incremental maintenance may never
    // depend on history.
    let mut rng = SplitMix64::new(0xF1B0);
    for _ in 0..CASES {
        let (target, _) = state_and_members(&mut rng);
        // Rebuild the same contents in shuffled order with decoy writes.
        let mut rebuilt = AbsState::entry();
        for &reg in STATE_REGS.iter().rev() {
            let (decoy, _) = scalar_and_member(&mut rng);
            rebuilt.set_reg(reg, RegValue::Scalar(decoy));
        }
        for &off in &STATE_SLOTS {
            rebuilt.set_stack_slot(off, StackSlot::Misc);
        }
        for &off in STATE_SLOTS.iter().rev() {
            rebuilt.set_stack_slot(off, target.stack_slot(off).unwrap());
        }
        for &reg in &STATE_REGS {
            rebuilt.set_reg(reg, target.reg(reg));
        }
        assert_eq!(rebuilt, target);
        assert_eq!(
            rebuilt.fingerprint(),
            target.fingerprint(),
            "history-dependent fingerprint"
        );
        // A materialized clone keeps the fingerprint of its contents.
        let mut cloned = target.clone();
        cloned.set_reg(Reg::R3, RegValue::unknown_scalar());
        cloned.set_reg(Reg::R3, target.reg(Reg::R3));
        assert_eq!(cloned.fingerprint(), target.fingerprint());
        // Self-join is a no-op on contents, hence on the fingerprint.
        assert_eq!(target.union(&target).fingerprint(), target.fingerprint());
    }
}

// ---- Chunked frames: bit-identical to whole-frame semantics ----
//
// The stack frame is stored as 8 copy-on-write chunks of 8 slots. The
// reference model below is the *old* whole-frame semantics: a flat
// 64-slot array with every lattice operation applied pointwise. The
// chunked representation must be observationally identical, slot for
// slot, on every operation — chunk routing, boundary straddling, and
// per-chunk short-circuits may never change a result.

/// All well-formed tnums of width `w` (value and mask within the low
/// `w` bits, no overlap): the 3^w patterns of the exhaustive campaigns.
fn tnums_of_width(w: u32) -> Vec<Tnum> {
    let top = 1u64 << w;
    let mut out = Vec::new();
    for value in 0..top {
        for mask in 0..top {
            if value & mask == 0 {
                out.push(Tnum::masked(value, mask));
            }
        }
    }
    out
}

/// The whole-frame reference for one slot of [`AbsState::flow_join`]:
/// mirror of the engine's per-component flow (skip included arrivals,
/// otherwise join, with optional delay-0 widening).
fn flat_flow(cur: StackSlot, inc: StackSlot, widen: bool) -> StackSlot {
    if inc == cur || inc.is_subset_of(cur) {
        return cur;
    }
    let grown = cur.union(inc);
    if widen {
        cur.widen(grown)
    } else {
        grown
    }
}

/// Offset of flat slot index `i` (0..64), covering both chunk interiors
/// and boundaries.
fn slot_offset(i: usize) -> i64 {
    (i as i64) * 8 - 512
}

#[test]
fn chunked_frame_matches_flat_model_exhaustively() {
    // Exhaustive w ≤ 6 slot campaign: every pair of width-≤6 tnum spills
    // (3^6 = 729 patterns, 531 441 ordered pairs) flows through
    // union / inclusion / join-flow / widen at the *state* level, packed
    // 64 pairs per state so chunk boundaries and interiors are both
    // exercised, and every slot of the result is compared against the
    // flat whole-frame model.
    let tnums = tnums_of_width(6);
    let pairs: Vec<(StackSlot, StackSlot)> = tnums
        .iter()
        .flat_map(|&a| {
            tnums.iter().map(move |&b| {
                (
                    StackSlot::Spill(RegValue::Scalar(Scalar::from_tnum(a))),
                    StackSlot::Spill(RegValue::Scalar(Scalar::from_tnum(b))),
                )
            })
        })
        .collect();
    // Sprinkle the non-spill variants into the stream at a fixed cadence
    // so Uninit/Misc routing is part of the same campaign.
    let variant = |slot: StackSlot, k: usize| match k % 16 {
        3 => StackSlot::Uninit,
        11 => StackSlot::Misc,
        _ => slot,
    };
    for (batch_idx, batch) in pairs.chunks(64).enumerate() {
        let mut a = AbsState::entry();
        let mut b = AbsState::entry();
        for (i, &(sa, sb)) in batch.iter().enumerate() {
            a.set_stack_slot(slot_offset(i), variant(sa, batch_idx + i));
            b.set_stack_slot(slot_offset(i), variant(sb, batch_idx + i + 7));
        }
        let union = a.union(&b);
        let widened = a.widen(&b);
        let mut flowed = a.clone();
        flowed.flow_join(&b, None);
        let mut subset_expected = true;
        for (i, &(sa, sb)) in batch.iter().enumerate() {
            let (sa, sb) = (variant(sa, batch_idx + i), variant(sb, batch_idx + i + 7));
            let off = slot_offset(i);
            assert_eq!(
                union.stack_slot(off).unwrap(),
                sa.union(sb),
                "slot {i}: chunked union diverges from flat model"
            );
            assert_eq!(
                flowed.stack_slot(off).unwrap(),
                flat_flow(sa, sb, false),
                "slot {i}: chunked flow-join diverges from flat model"
            );
            assert_eq!(
                widened.stack_slot(off).unwrap(),
                flat_flow(sa, sb, true),
                "slot {i}: chunked widening diverges from flat model"
            );
            subset_expected &= sa.is_subset_of(sb);
        }
        assert_eq!(
            a.is_subset_of(&b),
            subset_expected,
            "chunked inclusion diverges from the flat conjunction"
        );
    }
}

#[test]
fn chunked_frame_matches_flat_model_on_random_op_sequences() {
    // Randomized mirror-model test: a chunked state and a flat 64-slot
    // array absorb the same random writes, smears, and merges; after
    // every step all 64 observable slots must agree. Smear ranges are
    // drawn to straddle chunk boundaries as often as not.
    const SLOT_COUNT: usize = 64;
    let mut rng = SplitMix64::new(0xC4B7);
    for _ in 0..64 {
        let mut state = AbsState::entry();
        let mut flat = [StackSlot::Uninit; SLOT_COUNT];
        for _ in 0..48 {
            match rng.below(4) {
                0 => {
                    let i = rng.below(SLOT_COUNT as u64) as usize;
                    let (s, _) = scalar_and_member(&mut rng);
                    let slot = StackSlot::Spill(RegValue::Scalar(s));
                    state.set_stack_slot(slot_offset(i), slot);
                    flat[i] = slot;
                }
                1 => {
                    // A byte-granular smear across up to 4 chunks.
                    let start = -(rng.range(1, 512) as i64);
                    let len = rng.range(1, 256) as i64;
                    let end = (start + len).min(0);
                    state.smear_stack(start, end);
                    for (i, slot) in flat.iter_mut().enumerate() {
                        let lo = slot_offset(i);
                        if lo < end && lo + 8 > (start & !7) {
                            *slot = StackSlot::Misc;
                        }
                    }
                }
                2 => {
                    // Merge with a random partner, mirrored flatly.
                    let (partner, _) = state_and_members(&mut rng);
                    let widen = rng.coin();
                    for (i, slot) in flat.iter_mut().enumerate() {
                        let p = partner.stack_slot(slot_offset(i)).unwrap();
                        *slot = flat_flow(*slot, p, widen);
                    }
                    if widen {
                        state = state.widen(&partner);
                    } else {
                        state.flow_join(&partner, None);
                    }
                }
                _ => {
                    // Clone-and-diverge: copy-on-write must isolate the
                    // original from writes through the clone.
                    let mut fork = state.clone();
                    let i = rng.below(SLOT_COUNT as u64) as usize;
                    fork.set_stack_slot(slot_offset(i), StackSlot::Misc);
                }
            }
            for (i, &expected) in flat.iter().enumerate() {
                assert_eq!(
                    state.stack_slot(slot_offset(i)).unwrap(),
                    expected,
                    "slot {i} diverged from the flat model"
                );
            }
        }
        // The range-initialization view agrees with the flat model too.
        for _ in 0..8 {
            let start = -(rng.range(1, 512) as i64);
            let end = (start + rng.range(1, 128) as i64).min(0);
            let expect = (0..SLOT_COUNT).all(|i| {
                let lo = slot_offset(i);
                if lo < end && lo + 8 > (start & !7) {
                    flat[i].is_initialized()
                } else {
                    true
                }
            });
            assert_eq!(
                state.stack_range_initialized(start, end),
                expect,
                "range [{start}, {end}) initialization diverged"
            );
        }
    }
}
