//! Property-based tests for the verifier's scalar reduced product and
//! branch refinement at full width.

use ebpf::{AluOp, JmpOp, Width};
use proptest::prelude::*;
use tnum::Tnum;
use verifier::Scalar;

prop_compose! {
    /// A random scalar abstraction together with a member.
    fn scalar_and_member()(mask in any::<u64>(), raw in any::<u64>(), pick in any::<u64>()) -> (Scalar, u64) {
        let t = Tnum::masked(raw, mask);
        let x = t.value() | (pick & t.mask());
        (Scalar::from_tnum(t), x)
    }
}

fn concrete_alu(width: Width, op: AluOp, x: u64, y: u64) -> u64 {
    match width {
        Width::W64 => match op {
            AluOp::Add => x.wrapping_add(y),
            AluOp::Sub => x.wrapping_sub(y),
            AluOp::Mul => x.wrapping_mul(y),
            AluOp::Div => if y == 0 { 0 } else { x / y },
            AluOp::Mod => if y == 0 { x } else { x % y },
            AluOp::Or => x | y,
            AluOp::And => x & y,
            AluOp::Xor => x ^ y,
            AluOp::Lsh => x.wrapping_shl(y as u32 & 63),
            AluOp::Rsh => x.wrapping_shr(y as u32 & 63),
            AluOp::Arsh => ((x as i64).wrapping_shr(y as u32 & 63)) as u64,
            AluOp::Neg => x.wrapping_neg(),
            AluOp::Mov => y,
        },
        Width::W32 => {
            let (a, b) = (x as u32, y as u32);
            u64::from(match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::Div => if b == 0 { 0 } else { a / b },
                AluOp::Mod => if b == 0 { a } else { a % b },
                AluOp::Or => a | b,
                AluOp::And => a & b,
                AluOp::Xor => a ^ b,
                AluOp::Lsh => a.wrapping_shl(b & 31),
                AluOp::Rsh => a.wrapping_shr(b & 31),
                AluOp::Arsh => ((a as i32).wrapping_shr(b & 31)) as u32,
                AluOp::Neg => a.wrapping_neg(),
                AluOp::Mov => b,
            })
        }
    }
}

proptest! {
    #[test]
    fn scalar_alu_sound((a, x) in scalar_and_member(), (b, y) in scalar_and_member()) {
        for op in AluOp::ALL {
            for width in [Width::W64, Width::W32] {
                let r = a.alu(width, op, b);
                let z = concrete_alu(width, op, x, y);
                prop_assert!(r.contains(z), "{:?}/{:?}: {} op {} = {} not in {:?}", op, width, x, y, z, r);
            }
        }
    }

    #[test]
    fn normalize_keeps_members((a, x) in scalar_and_member()) {
        let n = a.normalize().expect("non-empty");
        prop_assert!(n.contains(x));
    }

    #[test]
    fn union_keeps_members((a, x) in scalar_and_member(), (b, y) in scalar_and_member()) {
        let j = a.union(b);
        prop_assert!(j.contains(x));
        prop_assert!(j.contains(y));
        prop_assert!(a.is_subset_of(j));
        prop_assert!(b.is_subset_of(j));
    }

    #[test]
    fn intersect_keeps_common_members((a, x) in scalar_and_member(), (b, _) in scalar_and_member()) {
        match a.intersect(b) {
            Some(m) => {
                if b.contains(x) {
                    prop_assert!(m.contains(x));
                }
            }
            None => prop_assert!(!b.contains(x) || !a.contains(x)),
        }
    }

    #[test]
    fn branch_refinement_sound((a, x) in scalar_and_member(), (b, y) in scalar_and_member()) {
        // Whatever the concrete comparison outcome, the corresponding
        // refined edge must keep the witnessing pair (and hence must not
        // be reported infeasible).
        for op in JmpOp::ALL {
            let taken = op.eval64(x, y);
            match verifier::refine_branch(op, taken, a, b) {
                Some((d, s)) => {
                    prop_assert!(d.contains(x), "{:?}/{}: lost dst {}", op, taken, x);
                    prop_assert!(s.contains(y), "{:?}/{}: lost src {}", op, taken, y);
                }
                None => prop_assert!(false, "{:?}/{}: feasible edge refined to bottom", op, taken),
            }
        }
    }

    #[test]
    fn branch_refinement_shrinks_or_keeps((a, _) in scalar_and_member(), (b, _) in scalar_and_member()) {
        // Refinement never widens either side.
        for op in JmpOp::ALL {
            for taken in [false, true] {
                if let Some((d, s)) = verifier::refine_branch(op, taken, a, b) {
                    prop_assert!(d.is_subset_of(a), "{:?}/{} widened dst", op, taken);
                    prop_assert!(s.is_subset_of(b), "{:?}/{} widened src", op, taken);
                }
            }
        }
    }

    #[test]
    fn subreg_contains_low_half((a, x) in scalar_and_member()) {
        prop_assert!(a.subreg().contains(x & 0xffff_ffff));
    }
}
