//! Randomized property tests for the verifier's scalar reduced product
//! and branch refinement at full width, driven by the workspace's
//! deterministic SplitMix64 stream.

// Explicit BPF division semantics (`x / 0 = 0`, `x % 0 = x`) throughout.
#![allow(clippy::manual_checked_ops)]
use domain::rng::SplitMix64;
use ebpf::{AluOp, JmpOp, Width};
use tnum::Tnum;
use verifier::Scalar;

const CASES: u32 = 256;

/// A random scalar abstraction together with a member.
fn scalar_and_member(rng: &mut SplitMix64) -> (Scalar, u64) {
    let t = Tnum::masked(rng.next_u64(), rng.next_u64());
    let x = t.value() | (rng.next_u64() & t.mask());
    (Scalar::from_tnum(t), x)
}

fn concrete_alu(width: Width, op: AluOp, x: u64, y: u64) -> u64 {
    match width {
        Width::W64 => match op {
            AluOp::Add => x.wrapping_add(y),
            AluOp::Sub => x.wrapping_sub(y),
            AluOp::Mul => x.wrapping_mul(y),
            AluOp::Div => {
                if y == 0 {
                    0
                } else {
                    x / y
                }
            }
            AluOp::Mod => {
                if y == 0 {
                    x
                } else {
                    x % y
                }
            }
            AluOp::Or => x | y,
            AluOp::And => x & y,
            AluOp::Xor => x ^ y,
            AluOp::Lsh => x.wrapping_shl(y as u32 & 63),
            AluOp::Rsh => x.wrapping_shr(y as u32 & 63),
            AluOp::Arsh => ((x as i64).wrapping_shr(y as u32 & 63)) as u64,
            AluOp::Neg => x.wrapping_neg(),
            AluOp::Mov => y,
        },
        Width::W32 => {
            let (a, b) = (x as u32, y as u32);
            u64::from(match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a / b
                    }
                }
                AluOp::Mod => {
                    if b == 0 {
                        a
                    } else {
                        a % b
                    }
                }
                AluOp::Or => a | b,
                AluOp::And => a & b,
                AluOp::Xor => a ^ b,
                AluOp::Lsh => a.wrapping_shl(b & 31),
                AluOp::Rsh => a.wrapping_shr(b & 31),
                AluOp::Arsh => ((a as i32).wrapping_shr(b & 31)) as u32,
                AluOp::Neg => a.wrapping_neg(),
                AluOp::Mov => b,
            })
        }
    }
}

#[test]
fn scalar_alu_sound() {
    let mut rng = SplitMix64::new(0x40);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, y) = scalar_and_member(&mut rng);
        for op in AluOp::ALL {
            for width in [Width::W64, Width::W32] {
                let r = a.alu(width, op, b);
                let z = concrete_alu(width, op, x, y);
                assert!(
                    r.contains(z),
                    "{op:?}/{width:?}: {x} op {y} = {z} not in {r:?}"
                );
            }
        }
    }
}

#[test]
fn normalize_keeps_members() {
    let mut rng = SplitMix64::new(0x41);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let n = a.normalize().expect("non-empty");
        assert!(n.contains(x));
    }
}

#[test]
fn union_keeps_members() {
    let mut rng = SplitMix64::new(0x42);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, y) = scalar_and_member(&mut rng);
        let j = a.union(b);
        assert!(j.contains(x));
        assert!(j.contains(y));
        assert!(a.is_subset_of(j));
        assert!(b.is_subset_of(j));
    }
}

#[test]
fn intersect_keeps_common_members() {
    let mut rng = SplitMix64::new(0x43);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, _) = scalar_and_member(&mut rng);
        match a.intersect(b) {
            Some(m) => {
                if b.contains(x) {
                    assert!(m.contains(x));
                }
            }
            None => assert!(!b.contains(x) || !a.contains(x)),
        }
    }
}

#[test]
fn branch_refinement_sound() {
    let mut rng = SplitMix64::new(0x44);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        let (b, y) = scalar_and_member(&mut rng);
        // Whatever the concrete comparison outcome, the corresponding
        // refined edge must keep the witnessing pair (and hence must not
        // be reported infeasible).
        for op in JmpOp::ALL {
            let taken = op.eval64(x, y);
            match verifier::refine_branch(op, taken, a, b) {
                Some((d, s)) => {
                    assert!(d.contains(x), "{op:?}/{taken}: lost dst {x}");
                    assert!(s.contains(y), "{op:?}/{taken}: lost src {y}");
                }
                None => panic!("{op:?}/{taken}: feasible edge refined to bottom"),
            }
        }
    }
}

#[test]
fn branch_refinement_shrinks_or_keeps() {
    let mut rng = SplitMix64::new(0x45);
    for _ in 0..CASES {
        let (a, _) = scalar_and_member(&mut rng);
        let (b, _) = scalar_and_member(&mut rng);
        // Refinement never widens either side.
        for op in JmpOp::ALL {
            for taken in [false, true] {
                if let Some((d, s)) = verifier::refine_branch(op, taken, a, b) {
                    assert!(d.is_subset_of(a), "{op:?}/{taken} widened dst");
                    assert!(s.is_subset_of(b), "{op:?}/{taken} widened src");
                }
            }
        }
    }
}

#[test]
fn subreg_contains_low_half() {
    let mut rng = SplitMix64::new(0x46);
    for _ in 0..CASES {
        let (a, x) = scalar_and_member(&mut rng);
        assert!(a.subreg().contains(x & 0xffff_ffff));
    }
}
