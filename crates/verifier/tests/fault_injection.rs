//! The fault-injection campaign: drives the `verifier::failpoint`
//! subsystem through the batch and parallel engines and checks the
//! containment contract from the outside —
//!
//! * a panic injected into one program's analysis faults **exactly
//!   that program**; every sibling's verdict and annotated state log
//!   stay bit-identical to a fault-free run;
//! * lock-poisoning panics at the in-lock sites (memo shard, visited
//!   stripe) are recovered by the poison-tolerant accessors and never
//!   spread;
//! * the degradation ladder turns a governance fault under the
//!   parallel strategy into the sequential strategy's verdict,
//!   reproduced exactly;
//! * deadlines are cooperative, deterministic at zero, and inert when
//!   generous.
//!
//! Every test holds the [`failpoint::install`] guard for **all** of
//! its analysis runs — including the fault-free baselines, which run
//! under an empty plan — because the plan and its hit counters are
//! process-global and `cargo test` is multi-threaded.

use std::sync::Arc;
use std::time::Duration;

use ebpf::asm::assemble;
use ebpf::Program;
use verifier::failpoint::{self, FaultPlan, FaultSite};
use verifier::{
    batch, AnalyzerOptions, BatchItem, DegradationPolicy, Strategy, TransferMemo,
    VerificationSession, VerifierError,
};

/// A bounded loop filling a stack window — loopy enough that every
/// strategy takes many visits (so mid-analysis fail points are
/// reachable) and every strategy accepts it.
fn loopy() -> Program {
    assemble(
        r"
        r1 = 0
    loop:
        r3 = r10
        r3 += -16
        r3 += r1
        *(u8 *)(r3 + 0) = 0
        r1 += 1
        if r1 < 16 goto loop
        r0 = r1
        exit
    ",
    )
    .expect("assembles")
}

/// A branch tree over ALU ops feeding one guarded store — forky enough
/// that the parallel explorer spawns real subtree jobs.
fn branchy() -> Program {
    assemble(
        r"
        r2 = *(u8 *)(r1 + 0)
        r3 = *(u8 *)(r1 + 1)
        if r2 > 3 goto a
        r3 += 1
    a:
        if r3 > 7 goto b
        r2 += 2
    b:
        if r2 s> r3 goto c
        r2 ^= r3
    c:
        r2 &= 6
        r4 = r10
        r4 += -16
        r4 += r2
        *(u8 *)(r4 + 0) = 0
        r0 = 0
        exit
    ",
    )
    .expect("assembles")
}

/// The fixture fleet every batch test verifies.
fn fleet() -> Vec<Program> {
    vec![loopy(), branchy(), loopy(), branchy(), loopy(), branchy()]
}

/// The per-visit fail-point site on `strategy`'s hot loop.
fn site_of(strategy: Strategy) -> FaultSite {
    match strategy {
        Strategy::WideningFixpoint => FaultSite::FixpointVisit,
        Strategy::PathSensitive => FaultSite::PathVisit,
        Strategy::PathParallel => FaultSite::ParshardJob,
    }
}

/// Batch items for `fleet` under one strategy, failing fast so tests
/// observe raw governance errors instead of ladder re-runs.
fn items(progs: &[Program], strategy: Strategy, options: &AnalyzerOptions) -> Vec<BatchItem> {
    progs
        .iter()
        .map(|prog| BatchItem {
            prog: prog.clone(),
            options: options.clone(),
            strategy,
            degradation: DegradationPolicy::FailFast,
        })
        .collect()
}

fn options_for(strategy: Strategy) -> AnalyzerOptions {
    AnalyzerOptions {
        // Give the parallel explorer real workers and shallow spawns so
        // subtree jobs actually land on sibling threads.
        explore_jobs: if strategy == Strategy::PathParallel {
            2
        } else {
            0
        },
        ..AnalyzerOptions::default()
    }
}

/// The annotated per-pc state log — the bit-identity witness used by
/// every comparison below.
fn annotations(
    results: &[Result<verifier::Analysis, VerifierError>],
    progs: &[Program],
) -> Vec<Option<String>> {
    results
        .iter()
        .zip(progs)
        .map(|(r, p)| r.as_ref().ok().map(|a| a.annotate(p)))
        .collect()
}

#[test]
fn injected_panic_faults_exactly_one_program_per_batch() {
    let progs = fleet();
    for strategy in Strategy::ALL {
        let options = options_for(strategy);
        let baseline = {
            let _quiet = failpoint::install(FaultPlan::new());
            batch::run(&items(&progs, strategy, &options), 1)
        };
        assert_eq!(baseline.stats.accepted, progs.len(), "{strategy:?}");
        let expected = annotations(&baseline.results, &progs);

        for jobs in [1usize, 2, 8] {
            let plan = FaultPlan::new().panic_at(site_of(strategy), 10);
            let report = {
                let _guard = failpoint::install(plan);
                batch::run(&items(&progs, strategy, &options), jobs)
            };
            let faults: Vec<usize> = report
                .results
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_err())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                faults.len(),
                1,
                "{strategy:?} jobs={jobs}: exactly one program absorbs the panic"
            );
            assert!(
                matches!(
                    &report.results[faults[0]],
                    Err(VerifierError::InternalFault { detail })
                        if detail.contains("injected panic")
                ),
                "{strategy:?} jobs={jobs}: the fault surfaces as a contained InternalFault"
            );
            assert_eq!(report.stats.internal_faults, 1, "{strategy:?} jobs={jobs}");
            assert_eq!(
                report.stats.deadline_exceeded, 0,
                "{strategy:?} jobs={jobs}"
            );
            let got = annotations(&report.results, &progs);
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                if i == faults[0] {
                    continue;
                }
                assert_eq!(
                    g, e,
                    "{strategy:?} jobs={jobs}: sibling {i} must be bit-identical"
                );
            }
        }
    }
}

#[test]
fn poisoned_memo_shard_is_recovered_and_does_not_spread() {
    let progs = fleet();
    let options = AnalyzerOptions {
        memo_cache: Some(Arc::new(TransferMemo::new())),
        ..AnalyzerOptions::default()
    };
    let baseline = {
        let _quiet = failpoint::install(FaultPlan::new());
        batch::run(&items(&progs, Strategy::WideningFixpoint, &options), 2)
    };
    assert_eq!(baseline.stats.accepted, progs.len());
    let expected = annotations(&baseline.results, &progs);

    // The poison panic unwinds while a memo shard lock is held; every
    // later insert/lookup on that shard goes through `lock_recover`.
    let plan = FaultPlan::new().poison_at(FaultSite::MemoInsert, 5);
    let report = {
        let _guard = failpoint::install(plan);
        let options = AnalyzerOptions {
            memo_cache: Some(Arc::new(TransferMemo::new())),
            ..AnalyzerOptions::default()
        };
        batch::run(&items(&progs, Strategy::WideningFixpoint, &options), 2)
    };
    let faults: Vec<usize> = report
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(faults.len(), 1, "one program absorbs the poison");
    assert_eq!(report.stats.internal_faults, 1);
    let got = annotations(&report.results, &progs);
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        if i != faults[0] {
            assert_eq!(g, e, "sibling {i} unaffected by the poisoned shard");
        }
    }
}

#[test]
fn ladder_downgrades_parallel_faults_to_the_sequential_verdict() {
    for prog in [loopy(), branchy()] {
        let sequential = {
            let _quiet = failpoint::install(FaultPlan::new());
            VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .run(&prog)
                .expect("fixture is accepted sequentially")
        };

        // Poisoning a visited-table stripe (held-lock site) and panicking
        // a job both count as governance faults; either way the ladder's
        // next rung must reproduce the sequential verdict exactly.
        for plan in [
            FaultPlan::new().panic_at(FaultSite::ParshardJob, 10),
            FaultPlan::new().poison_at(FaultSite::VisitedProbe, 5),
        ] {
            let _guard = failpoint::install(plan);
            let analysis = VerificationSession::new()
                .with_options(options_for(Strategy::PathParallel))
                .with_strategy(Strategy::PathParallel)
                .run(&prog)
                .expect("the ladder rescues the run");
            assert_eq!(analysis.strategy(), Strategy::PathSensitive);
            assert_eq!(analysis.stats().degradations, 1);
            assert_eq!(
                analysis.annotate(&prog),
                sequential.annotate(&prog),
                "ladder re-run reproduces the sequential states bit-for-bit"
            );
        }
    }
}

#[test]
fn fail_fast_reports_the_raw_governance_fault() {
    let prog = loopy();
    let _guard = failpoint::install(FaultPlan::new().panic_at(FaultSite::ParshardJob, 10));
    let err = VerificationSession::new()
        .with_options(options_for(Strategy::PathParallel))
        .with_strategy(Strategy::PathParallel)
        .with_degradation(DegradationPolicy::FailFast)
        .run(&prog)
        .expect_err("fail-fast skips the ladder");
    assert!(matches!(err, VerifierError::InternalFault { .. }), "{err}");
}

#[test]
fn zero_deadline_deterministically_rejects_every_loopy_fixture() {
    let _quiet = failpoint::install(FaultPlan::new());
    let progs = [loopy(), branchy()];
    for strategy in Strategy::ALL {
        for policy in [DegradationPolicy::FailFast, DegradationPolicy::Ladder] {
            for prog in &progs {
                let err = VerificationSession::new()
                    .with_options(AnalyzerOptions {
                        deadline: Some(Duration::ZERO),
                        ..options_for(strategy)
                    })
                    .with_strategy(strategy)
                    .with_degradation(policy)
                    .run(prog)
                    .expect_err("a zero deadline can never be met");
                assert!(
                    matches!(err, VerifierError::DeadlineExceeded { .. }),
                    "{strategy:?} {policy:?}: {err}"
                );
            }
        }
    }
}

#[test]
fn zero_deadline_batches_account_every_program() {
    let _quiet = failpoint::install(FaultPlan::new());
    let progs = fleet();
    let options = AnalyzerOptions {
        deadline: Some(Duration::ZERO),
        ..AnalyzerOptions::default()
    };
    let report = batch::run(&items(&progs, Strategy::WideningFixpoint, &options), 2);
    assert_eq!(report.stats.deadline_exceeded, progs.len());
    assert_eq!(report.stats.accepted, 0);
    // The rejected runs' partial walks still land in the visit roll-up.
    let burned: u64 = report.stats.per_worker_visits.iter().sum();
    assert!(burned > 0, "partial work of rejected runs is accounted");
}

#[test]
fn generous_deadline_changes_no_verdict() {
    let _quiet = failpoint::install(FaultPlan::new());
    let progs = fleet();
    for strategy in Strategy::ALL {
        let plain = {
            let opts = options_for(strategy);
            batch::run(&items(&progs, strategy, &opts), 2)
        };
        let governed = {
            let opts = AnalyzerOptions {
                deadline: Some(Duration::from_millis(10_000)),
                ..options_for(strategy)
            };
            batch::run(&items(&progs, strategy, &opts), 2)
        };
        assert_eq!(governed.stats.deadline_exceeded, 0, "{strategy:?}");
        assert_eq!(
            annotations(&plain.results, &progs),
            annotations(&governed.results, &progs),
            "{strategy:?}: a 10 s deadline is inert on this fleet"
        );
    }
}

#[test]
fn scattered_campaign_never_escapes_containment() {
    let progs = fleet();
    for seed in [1u64, 7, 42] {
        for jobs in [1usize, 2, 8] {
            for strategy in Strategy::ALL {
                let options = AnalyzerOptions {
                    memo_cache: Some(Arc::new(TransferMemo::new())),
                    ..options_for(strategy)
                };
                let baseline = {
                    let _quiet = failpoint::install(FaultPlan::new());
                    batch::run(&items(&progs, strategy, &options), jobs)
                };
                let expected = annotations(&baseline.results, &progs);

                let plan = FaultPlan::scattered(seed, 3, 40);
                let report = {
                    let _guard = failpoint::install(plan);
                    batch::run(&items(&progs, strategy, &options), jobs)
                };
                // The batch always completes with a verdict per program;
                // any slot either matches the fault-free run exactly or
                // reports a contained internal fault (the plan sets no
                // deadline, and delays alone change no verdict).
                assert_eq!(report.results.len(), progs.len());
                let got = annotations(&report.results, &progs);
                let mut faulted = 0usize;
                for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                    match &report.results[i] {
                        Ok(_) => assert_eq!(g, e, "seed={seed} jobs={jobs} {strategy:?} slot {i}"),
                        Err(VerifierError::InternalFault { .. }) => faulted += 1,
                        Err(other) => {
                            panic!("seed={seed} jobs={jobs} {strategy:?}: unexpected {other}")
                        }
                    }
                }
                assert!(
                    faulted <= 3,
                    "seed={seed} jobs={jobs} {strategy:?}: at most one fault per panic entry"
                );
                assert_eq!(report.stats.internal_faults, faulted);
            }
        }
    }
}
