//! A concrete interpreter for the eBPF subset.
//!
//! Implements BPF's defined arithmetic semantics exactly: wrapping ALU
//! operations, `x / 0 = 0`, `x % 0 = x`, shift amounts masked to the
//! operand width, and 32-bit operations that zero-extend into the 64-bit
//! register. Memory is a 512-byte stack frame plus a caller-supplied
//! context buffer plus the value arenas of the in-VM [`MapStore`],
//! addressed through synthetic base addresses ([`STACK_TOP`],
//! [`CTX_BASE`], [`MAP_BASE`]) so that pointer arithmetic behaves like
//! real addresses while remaining fully bounds-checked.
//!
//! The helpers of [`crate::helpers`] execute natively: `map_lookup`
//! returns a real dereferenceable [`MAP_BASE`]-region pointer (or 0),
//! `map_update`/`map_delete` mutate the store, and `get_prandom` steps a
//! deterministic generator — so differential tests can compare verifier
//! verdicts against genuine end-to-end executions.

use std::collections::{BTreeMap, HashMap};

use crate::error::VmError;
use crate::helpers::{
    map_def, map_id_of_imm, DEFAULT_MAPS, HELPER_GET_PRANDOM, HELPER_MAP_DELETE, HELPER_MAP_LOOKUP,
    HELPER_MAP_UPDATE,
};
use crate::insn::{AluOp, Insn, MemSize, Src, Width};
use crate::program::Program;
use crate::reg::Reg;

/// Size of the BPF stack frame in bytes.
pub const STACK_SIZE: u64 = 512;

/// Synthetic address of the top of the stack; `r10` holds this value and
/// valid stack slots live in `[STACK_TOP - STACK_SIZE, STACK_TOP)`.
pub const STACK_TOP: u64 = 0x7fff_ffff_f000;

/// Synthetic base address of the context buffer passed in `r1`.
pub const CTX_BASE: u64 = 0x1000_0000;

/// Synthetic base address of map value storage: the value slot `s` of
/// map `m` lives at `MAP_BASE + (m << 32) + s * value_size`.
pub const MAP_BASE: u64 = 0x4000_0000_0000;

/// A registered helper function: receives the five argument registers
/// `r1`–`r5` and produces the `r0` return value.
pub type HelperFn = Box<dyn FnMut([u64; 5]) -> u64>;

/// The in-VM map store backing the native map helpers: one instance per
/// entry of [`DEFAULT_MAPS`], each a fixed arena of value slots plus a
/// key index (a `BTreeMap`, so iteration order — and thus slot
/// allocation — is deterministic).
///
/// Value slots never move: `map_update` of an existing key overwrites
/// its slot in place, so pointers returned by earlier lookups stay
/// valid, while `map_delete` vacates the slot and any dangling pointer
/// into it faults on the next access.
pub struct MapStore {
    maps: Vec<MapInstance>,
}

struct MapInstance {
    key_size: usize,
    value_size: usize,
    max_entries: usize,
    /// `max_entries * value_size` bytes of value storage.
    values: Vec<u8>,
    occupied: Vec<bool>,
    /// key bytes -> slot index.
    index: BTreeMap<Vec<u8>, usize>,
}

impl Default for MapStore {
    fn default() -> MapStore {
        MapStore::new()
    }
}

impl MapStore {
    /// Creates an empty store with one instance per [`DEFAULT_MAPS`]
    /// entry.
    #[must_use]
    pub fn new() -> MapStore {
        MapStore {
            maps: DEFAULT_MAPS
                .iter()
                .map(|d| MapInstance {
                    key_size: d.key_size as usize,
                    value_size: d.value_size as usize,
                    max_entries: d.max_entries as usize,
                    values: vec![0; d.max_entries as usize * d.value_size as usize],
                    occupied: vec![false; d.max_entries as usize],
                    index: BTreeMap::new(),
                })
                .collect(),
        }
    }

    /// The synthetic address of the value stored under `key`, or `None`
    /// if the map id is invalid, the key has the wrong size, or no entry
    /// exists.
    #[must_use]
    pub fn lookup(&self, map: u32, key: &[u8]) -> Option<u64> {
        let m = self.maps.get(map as usize)?;
        if key.len() != m.key_size {
            return None;
        }
        let slot = *m.index.get(key)?;
        Some(MAP_BASE + (u64::from(map) << 32) + (slot * m.value_size) as u64)
    }

    /// Inserts or overwrites the entry under `key`. Returns `false` if
    /// the map id or key/value sizes are wrong, or the map is full and
    /// the key is new. Existing keys are updated in place (their slot —
    /// and thus their address — is stable).
    pub fn update(&mut self, map: u32, key: &[u8], value: &[u8]) -> bool {
        let Some(m) = self.maps.get_mut(map as usize) else {
            return false;
        };
        if key.len() != m.key_size || value.len() != m.value_size {
            return false;
        }
        let slot = match m.index.get(key) {
            Some(&s) => s,
            None => {
                let Some(free) = (0..m.max_entries).find(|&s| !m.occupied[s]) else {
                    return false;
                };
                m.index.insert(key.to_vec(), free);
                m.occupied[free] = true;
                free
            }
        };
        m.values[slot * m.value_size..(slot + 1) * m.value_size].copy_from_slice(value);
        true
    }

    /// Removes the entry under `key`, vacating its slot (subsequent
    /// accesses through a stale pointer fault). Returns `false` if no
    /// such entry existed.
    pub fn delete(&mut self, map: u32, key: &[u8]) -> bool {
        let Some(m) = self.maps.get_mut(map as usize) else {
            return false;
        };
        let Some(slot) = m.index.remove(key) else {
            return false;
        };
        m.occupied[slot] = false;
        m.values[slot * m.value_size..(slot + 1) * m.value_size].fill(0);
        true
    }

    /// The current value bytes stored under `key`, for test assertions.
    #[must_use]
    pub fn get(&self, map: u32, key: &[u8]) -> Option<&[u8]> {
        let m = self.maps.get(map as usize)?;
        let slot = *m.index.get(key)?;
        Some(&m.values[slot * m.value_size..(slot + 1) * m.value_size])
    }

    /// Resolves `addr..addr+size` to `(map, arena byte offset)` if it
    /// lies wholly inside one *occupied* value slot.
    fn locate(&self, addr: u64, size: u64) -> Option<(usize, usize)> {
        let rest = addr.checked_sub(MAP_BASE)?;
        let map = usize::try_from(rest >> 32).ok()?;
        let inner = (rest & 0xffff_ffff) as usize;
        let m = self.maps.get(map)?;
        let (slot, off) = (inner / m.value_size, inner % m.value_size);
        if slot >= m.max_entries || !m.occupied[slot] {
            return None;
        }
        if off + size as usize > m.value_size {
            return None;
        }
        Some((map, inner))
    }
}

/// Execution options for the [`Vm`].
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Maximum number of instructions to execute before aborting with
    /// [`VmError::OutOfFuel`].
    pub fuel: u64,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions { fuel: 1 << 20 }
    }
}

/// A snapshot of the machine state before executing one instruction,
/// produced by [`Vm::run_traced`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Instruction index about to execute.
    pub pc: usize,
    /// All eleven registers at that point.
    pub regs: [u64; 11],
}

/// The concrete interpreter.
///
/// # Examples
///
/// ```
/// use ebpf::{asm::assemble, Vm};
/// let prog = assemble(r"
///     r0 = *(u8 *)(r1 + 0)
///     r0 *= 3
///     exit
/// ")?;
/// let mut ctx = [14u8];
/// let ret = Vm::new().run(&prog, &mut ctx)?;
/// assert_eq!(ret, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm {
    options: VmOptions,
    helpers: HashMap<u32, HelperFn>,
    maps: MapStore,
    /// State of the deterministic `get_prandom` generator.
    prandom: u64,
}

/// Seed of the deterministic `get_prandom` stream (an arbitrary odd
/// constant; determinism is what the differential tests rely on).
const PRANDOM_SEED: u64 = 0x853c_49e6_748f_ea9b;

impl Default for Vm {
    fn default() -> Vm {
        Vm::new()
    }
}

impl Vm {
    /// Creates a VM with default options, an empty [`MapStore`], and no
    /// registered helpers.
    #[must_use]
    pub fn new() -> Vm {
        Vm::with_options(VmOptions::default())
    }

    /// Creates a VM with explicit options.
    #[must_use]
    pub fn with_options(options: VmOptions) -> Vm {
        Vm {
            options,
            helpers: HashMap::new(),
            maps: MapStore::new(),
            prandom: PRANDOM_SEED,
        }
    }

    /// Registers (or replaces) a helper callable via `call id`. A
    /// registered closure takes precedence over the native
    /// implementation of the same id (closures cannot touch VM memory,
    /// so the map helpers are normally left to the native path).
    pub fn register_helper(&mut self, id: u32, f: HelperFn) -> &mut Vm {
        self.helpers.insert(id, f);
        self
    }

    /// The in-VM map store (for inspecting end state in tests).
    #[must_use]
    pub fn maps(&self) -> &MapStore {
        &self.maps
    }

    /// Mutable access to the map store, for seeding entries before a run.
    pub fn maps_mut(&mut self) -> &mut MapStore {
        &mut self.maps
    }

    /// Runs the program to completion and returns `r0`.
    ///
    /// On entry `r1 = CTX_BASE`, `r2 = ctx.len()`, `r10 = STACK_TOP`, and
    /// all other registers are zero.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] for out-of-bounds memory accesses, unknown
    /// helpers, or fuel exhaustion.
    pub fn run(&mut self, prog: &Program, ctx: &mut [u8]) -> Result<u64, VmError> {
        self.execute(prog, ctx, None)
    }

    /// Runs the program, recording a [`Snapshot`] of the registers before
    /// every executed instruction. Used by differential tests that check
    /// concrete states against the abstract interpreter's invariants.
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_traced(
        &mut self,
        prog: &Program,
        ctx: &mut [u8],
    ) -> Result<(u64, Vec<Snapshot>), VmError> {
        let mut trace = Vec::new();
        let ret = self.execute(prog, ctx, Some(&mut trace))?;
        Ok((ret, trace))
    }

    fn execute(
        &mut self,
        prog: &Program,
        ctx: &mut [u8],
        mut trace: Option<&mut Vec<Snapshot>>,
    ) -> Result<u64, VmError> {
        let mut regs = [0u64; 11];
        regs[Reg::R1.index()] = CTX_BASE;
        regs[Reg::R2.index()] = ctx.len() as u64;
        regs[Reg::R10.index()] = STACK_TOP;
        let mut stack = [0u8; STACK_SIZE as usize];
        let mut pc = 0usize;
        let mut fuel = self.options.fuel;

        loop {
            if fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            let insn = *prog.insns().get(pc).ok_or(VmError::PcOutOfRange { pc })?;
            if let Some(t) = trace.as_deref_mut() {
                t.push(Snapshot { pc, regs });
            }
            match insn {
                Insn::Alu {
                    width,
                    op,
                    dst,
                    src,
                } => {
                    let rhs = self.operand(&regs, src);
                    let lhs = regs[dst.index()];
                    regs[dst.index()] = alu(width, op, lhs, rhs);
                    pc += 1;
                }
                Insn::LoadImm64 { dst, imm } => {
                    regs[dst.index()] = imm;
                    pc += 1;
                }
                Insn::Load {
                    size,
                    dst,
                    base,
                    off,
                } => {
                    let addr = regs[base.index()].wrapping_add(off as i64 as u64);
                    regs[dst.index()] = read_mem(&stack, ctx, &self.maps, addr, size).ok_or(
                        VmError::OutOfBounds {
                            addr,
                            size: size.bytes(),
                            pc,
                        },
                    )?;
                    pc += 1;
                }
                Insn::Store {
                    size,
                    base,
                    off,
                    src,
                } => {
                    let addr = regs[base.index()].wrapping_add(off as i64 as u64);
                    let value = self.operand(&regs, src);
                    write_mem(&mut stack, ctx, &mut self.maps, addr, size, value).ok_or(
                        VmError::OutOfBounds {
                            addr,
                            size: size.bytes(),
                            pc,
                        },
                    )?;
                    pc += 1;
                }
                Insn::Ja { off } => {
                    pc = prog
                        .jump_target(pc, off)
                        .ok_or(VmError::PcOutOfRange { pc })?;
                }
                Insn::Jmp {
                    width,
                    op,
                    dst,
                    src,
                    off,
                } => {
                    let lhs = regs[dst.index()];
                    let rhs = self.operand(&regs, src);
                    let taken = match width {
                        Width::W64 => op.eval64(lhs, rhs),
                        Width::W32 => op.eval32(lhs, rhs),
                    };
                    if taken {
                        pc = prog
                            .jump_target(pc, off)
                            .ok_or(VmError::PcOutOfRange { pc })?;
                    } else {
                        pc += 1;
                    }
                }
                Insn::Call { helper } => {
                    let args = [
                        regs[Reg::R1.index()],
                        regs[Reg::R2.index()],
                        regs[Reg::R3.index()],
                        regs[Reg::R4.index()],
                        regs[Reg::R5.index()],
                    ];
                    regs[Reg::R0.index()] = if let Some(f) = self.helpers.get_mut(&helper) {
                        f(args)
                    } else if crate::helpers::helper_sig(helper).is_some() {
                        self.native_helper(helper, args, &stack, ctx, pc)?
                    } else {
                        return Err(VmError::UnknownHelper { helper, pc });
                    };
                    // r1-r5 are caller-saved: clobber deterministically.
                    for reg in &mut regs[1..=5] {
                        *reg = 0;
                    }
                    pc += 1;
                }
                Insn::Exit => return Ok(regs[Reg::R0.index()]),
            }
        }
    }

    fn operand(&self, regs: &[u64; 11], src: Src) -> u64 {
        match src {
            Src::Reg(r) => regs[r.index()],
            // Immediates are sign-extended to 64 bits, as in the kernel.
            Src::Imm(v) => v as i64 as u64,
        }
    }

    /// Executes one registry helper natively. The map helpers read keys
    /// and values out of VM memory (faulting like a load would) and
    /// mutate the [`MapStore`]; `get_prandom` steps the deterministic
    /// generator.
    fn native_helper(
        &mut self,
        helper: u32,
        args: [u64; 5],
        stack: &[u8],
        ctx: &[u8],
        pc: usize,
    ) -> Result<u64, VmError> {
        let map = || map_id_of_imm(args[0]).ok_or(VmError::BadMapHandle { helper, pc });
        match helper {
            HELPER_GET_PRANDOM => {
                // splitmix64 step; the low 32 bits are the result.
                self.prandom = self.prandom.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.prandom;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                Ok((z ^ (z >> 31)) & 0xffff_ffff)
            }
            HELPER_MAP_LOOKUP => {
                let map = map()?;
                let def = map_def(map).ok_or(VmError::BadMapHandle { helper, pc })?;
                let key = read_bytes(stack, ctx, &self.maps, args[1], def.key_size, pc)?;
                Ok(self.maps.lookup(map, &key).unwrap_or(0))
            }
            HELPER_MAP_UPDATE => {
                let map = map()?;
                let def = map_def(map).ok_or(VmError::BadMapHandle { helper, pc })?;
                let key = read_bytes(stack, ctx, &self.maps, args[1], def.key_size, pc)?;
                let value = read_bytes(stack, ctx, &self.maps, args[2], def.value_size, pc)?;
                Ok(if self.maps.update(map, &key, &value) {
                    0
                } else {
                    (-1i64) as u64 // full map, new key
                })
            }
            HELPER_MAP_DELETE => {
                let map = map()?;
                let def = map_def(map).ok_or(VmError::BadMapHandle { helper, pc })?;
                let key = read_bytes(stack, ctx, &self.maps, args[1], def.key_size, pc)?;
                Ok(if self.maps.delete(map, &key) {
                    0
                } else {
                    (-1i64) as u64 // no such entry
                })
            }
            _ => Err(VmError::UnknownHelper { helper, pc }),
        }
    }
}

/// Reads `len` bytes of VM memory starting at `addr` (any region),
/// faulting like a load would.
fn read_bytes(
    stack: &[u8],
    ctx: &[u8],
    maps: &MapStore,
    addr: u64,
    len: u32,
    pc: usize,
) -> Result<Vec<u8>, VmError> {
    (0..u64::from(len))
        .map(|i| {
            read_mem(stack, ctx, maps, addr.wrapping_add(i), MemSize::B)
                .map(|b| b as u8)
                .ok_or(VmError::OutOfBounds {
                    addr,
                    size: u64::from(len),
                    pc,
                })
        })
        .collect()
}

/// BPF ALU semantics for both widths.
fn alu(width: Width, op: AluOp, dst: u64, src: u64) -> u64 {
    match width {
        Width::W64 => alu64(op, dst, src),
        // 32-bit ops take the low halves and zero-extend the result.
        Width::W32 => alu32(op, dst as u32, src as u32) as u64,
    }
}

fn alu64(op: AluOp, dst: u64, src: u64) -> u64 {
    match op {
        AluOp::Add => dst.wrapping_add(src),
        AluOp::Sub => dst.wrapping_sub(src),
        AluOp::Mul => dst.wrapping_mul(src),
        AluOp::Div => {
            if src == 0 {
                0
            } else {
                dst / src
            }
        }
        AluOp::Mod => {
            if src == 0 {
                dst
            } else {
                dst % src
            }
        }
        AluOp::Or => dst | src,
        AluOp::And => dst & src,
        AluOp::Xor => dst ^ src,
        AluOp::Lsh => dst.wrapping_shl(src as u32 & 63),
        AluOp::Rsh => dst.wrapping_shr(src as u32 & 63),
        AluOp::Arsh => ((dst as i64).wrapping_shr(src as u32 & 63)) as u64,
        AluOp::Neg => dst.wrapping_neg(),
        AluOp::Mov => src,
    }
}

fn alu32(op: AluOp, dst: u32, src: u32) -> u32 {
    match op {
        AluOp::Add => dst.wrapping_add(src),
        AluOp::Sub => dst.wrapping_sub(src),
        AluOp::Mul => dst.wrapping_mul(src),
        AluOp::Div => {
            if src == 0 {
                0
            } else {
                dst / src
            }
        }
        AluOp::Mod => {
            if src == 0 {
                dst
            } else {
                dst % src
            }
        }
        AluOp::Or => dst | src,
        AluOp::And => dst & src,
        AluOp::Xor => dst ^ src,
        AluOp::Lsh => dst.wrapping_shl(src & 31),
        AluOp::Rsh => dst.wrapping_shr(src & 31),
        AluOp::Arsh => ((dst as i32).wrapping_shr(src & 31)) as u32,
        AluOp::Neg => dst.wrapping_neg(),
        AluOp::Mov => src,
    }
}

/// Which mapped region an address range falls in, and the byte offset
/// within it.
fn locate(ctx_len: u64, addr: u64, size: u64) -> Option<(Region, usize)> {
    let stack_base = STACK_TOP - STACK_SIZE;
    if addr >= stack_base && addr.checked_add(size)? <= STACK_TOP {
        return Some((Region::Stack, (addr - stack_base) as usize));
    }
    if addr >= CTX_BASE && addr.checked_add(size)? <= CTX_BASE + ctx_len {
        return Some((Region::Ctx, (addr - CTX_BASE) as usize));
    }
    None
}

#[derive(Clone, Copy)]
enum Region {
    Stack,
    Ctx,
}

fn read_mem(stack: &[u8], ctx: &[u8], maps: &MapStore, addr: u64, size: MemSize) -> Option<u64> {
    let n = size.bytes() as usize;
    let bytes = match locate(ctx.len() as u64, addr, size.bytes()) {
        Some((Region::Stack, off)) => &stack[off..off + n],
        Some((Region::Ctx, off)) => &ctx[off..off + n],
        None => {
            let (map, off) = maps.locate(addr, size.bytes())?;
            &maps.maps[map].values[off..off + n]
        }
    };
    let mut buf = [0u8; 8];
    buf[..n].copy_from_slice(bytes);
    Some(u64::from_le_bytes(buf))
}

fn write_mem(
    stack: &mut [u8],
    ctx: &mut [u8],
    maps: &mut MapStore,
    addr: u64,
    size: MemSize,
    value: u64,
) -> Option<()> {
    let n = size.bytes() as usize;
    let bytes = match locate(ctx.len() as u64, addr, size.bytes()) {
        Some((Region::Stack, off)) => &mut stack[off..off + n],
        Some((Region::Ctx, off)) => &mut ctx[off..off + n],
        None => {
            let (map, off) = maps.locate(addr, size.bytes())?;
            &mut maps.maps[map].values[off..off + n]
        }
    };
    bytes.copy_from_slice(&value.to_le_bytes()[..n]);
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str, ctx: &mut [u8]) -> Result<u64, VmError> {
        Vm::new().run(&assemble(src).unwrap(), ctx)
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(run("r0 = 6\nr0 *= 7\nexit", &mut []).unwrap(), 42);
        assert_eq!(run("r0 = 1\nr0 <<= 40\nexit", &mut []).unwrap(), 1 << 40);
        assert_eq!(run("r0 = -1\nr0 >>= 63\nexit", &mut []).unwrap(), 1);
        assert_eq!(
            run("r0 = -16\nr0 s>>= 2\nexit", &mut []).unwrap(),
            (-4i64) as u64
        );
    }

    #[test]
    fn division_by_zero_semantics() {
        assert_eq!(run("r0 = 7\nr1 = 0\nr0 /= r1\nexit", &mut []).unwrap(), 0);
        assert_eq!(run("r0 = 7\nr1 = 0\nr0 %= r1\nexit", &mut []).unwrap(), 7);
    }

    #[test]
    fn shifts_mask_their_amount() {
        // 64-bit shifts use the low 6 bits of the amount.
        assert_eq!(run("r0 = 1\nr1 = 65\nr0 <<= r1\nexit", &mut []).unwrap(), 2);
        // 32-bit shifts use the low 5 bits.
        assert_eq!(run("w0 = 1\nw1 = 33\nw0 <<= w1\nexit", &mut []).unwrap(), 2);
    }

    #[test]
    fn alu32_zero_extends() {
        // w-register ops clear the high half.
        assert_eq!(
            run("r0 = 0xffffffffffffffff ll\nw0 += 1\nexit", &mut []).unwrap(),
            0
        );
        assert_eq!(
            run("r0 = 0xffffffffffffffff ll\nw0 = w0\nexit", &mut []).unwrap(),
            0xffff_ffff
        );
    }

    #[test]
    fn immediates_sign_extend() {
        assert_eq!(run("r0 = -1\nexit", &mut []).unwrap(), u64::MAX);
        // ... but 32-bit mov stays in the low half.
        assert_eq!(run("w0 = -1\nexit", &mut []).unwrap(), 0xffff_ffff);
    }

    #[test]
    fn stack_round_trip_all_sizes() {
        let src = r"
            r1 = 0x1122334455667788 ll
            *(u64 *)(r10 - 8) = r1
            r2 = *(u64 *)(r10 - 8)
            r3 = *(u32 *)(r10 - 8)
            r4 = *(u16 *)(r10 - 8)
            r5 = *(u8 *)(r10 - 8)
            r0 = r2
            r0 ^= r1       ; zero if round-trip worked
            r0 += r3
            r0 += r4
            r0 += r5
            exit
        ";
        // r3 = low word, r4 = low half, r5 = low byte (little-endian).
        let expect = 0x5566_7788u64 + 0x7788 + 0x88;
        assert_eq!(run(src, &mut []).unwrap(), expect);
    }

    #[test]
    fn ctx_access_and_length_register() {
        let src = r"
            r0 = r2              ; ctx length
            r3 = *(u8 *)(r1 + 2)
            r0 += r3
            exit
        ";
        let mut ctx = [10u8, 20, 30, 40];
        assert_eq!(run(src, &mut ctx).unwrap(), 4 + 30);
    }

    #[test]
    fn ctx_writes_are_visible_to_caller() {
        let mut ctx = [0u8; 4];
        run("*(u32 *)(r1 + 0) = 0x01020304\nr0 = 0\nexit", &mut ctx).unwrap();
        assert_eq!(ctx, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn out_of_bounds_faults() {
        // One byte past the stack.
        let e = run("r0 = *(u8 *)(r10 + 0)\nexit", &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
        // Below the frame.
        let e = run("*(u64 *)(r10 - 513) = 0\nr0 = 0\nexit", &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
        // Past the context.
        let e = run("r0 = *(u32 *)(r1 + 2)\nexit", &mut [0u8; 4]).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
        // Straddling the end of the stack from inside.
        let e = run("r0 = *(u64 *)(r10 - 4)\nexit", &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn branches_and_loops() {
        let src = r"
            r0 = 0
            r1 = 10
        loop:
            r0 += r1
            r1 -= 1
            if r1 != 0 goto loop
            exit
        ";
        assert_eq!(run(src, &mut []).unwrap(), 55);
    }

    #[test]
    fn jmp32_uses_low_half() {
        let src = r"
            r1 = 0x100000001 ll
            r0 = 0
            if w1 == 1 goto yes
            exit
        yes:
            r0 = 1
            exit
        ";
        assert_eq!(run(src, &mut []).unwrap(), 1);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let mut vm = Vm::with_options(VmOptions { fuel: 100 });
        let prog = assemble("loop:\ngoto loop\nexit").unwrap();
        assert_eq!(vm.run(&prog, &mut []), Err(VmError::OutOfFuel));
    }

    #[test]
    fn helpers_are_called_and_clobber_args() {
        let mut vm = Vm::new();
        vm.register_helper(7, Box::new(|args| args[0] + args[1]));
        let prog = assemble(
            r"
            r1 = 30
            r2 = 12
            call 7
            r0 += r1     ; r1 was clobbered to 0
            exit
        ",
        )
        .unwrap();
        assert_eq!(vm.run(&prog, &mut []).unwrap(), 42);
        // Unknown helper faults.
        let prog = assemble("call 99\nexit").unwrap();
        assert!(matches!(
            vm.run(&prog, &mut []),
            Err(VmError::UnknownHelper { helper: 99, .. })
        ));
    }

    #[test]
    fn map_lookup_miss_returns_null_and_hit_dereferences() {
        let src = r"
            r4 = 7
            *(u32 *)(r10 - 4) = r4   ; key = 7
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1                   ; map_lookup
            if r0 == 0 goto miss
            r0 = *(u64 *)(r0 + 0)
            exit
        miss:
            r0 = 99
            exit
        ";
        let prog = assemble(src).unwrap();
        // Empty store: NULL path.
        assert_eq!(Vm::new().run(&prog, &mut []).unwrap(), 99);
        // Seeded store: the returned pointer reads the stored value.
        let mut vm = Vm::new();
        assert!(vm
            .maps_mut()
            .update(0, &7u32.to_le_bytes(), &1234u64.to_le_bytes()));
        assert_eq!(vm.run(&prog, &mut []).unwrap(), 1234);
    }

    #[test]
    fn map_update_inserts_and_delete_invalidates_pointers() {
        let src = r"
            r4 = 5
            *(u32 *)(r10 - 4) = r4   ; key = 5
            r5 = 42
            *(u64 *)(r10 - 16) = r5  ; value = 42
            r1 = map 0
            r2 = r10
            r2 += -4
            r3 = r10
            r3 += -16
            r4 = 0
            call 2                   ; map_update
            exit
        ";
        let mut vm = Vm::new();
        assert_eq!(vm.run(&assemble(src).unwrap(), &mut []).unwrap(), 0);
        assert_eq!(
            vm.maps().get(0, &5u32.to_le_bytes()),
            Some(&42u64.to_le_bytes()[..])
        );
        // Delete the entry, then dereference a stale lookup pointer: faults.
        let src = r"
            r4 = 5
            *(u32 *)(r10 - 4) = r4
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1                   ; map_lookup -> ptr
            r6 = r0                  ; save the pointer across the delete
            r4 = 5
            *(u32 *)(r10 - 4) = r4
            r1 = map 0
            r2 = r10
            r2 += -4
            call 3                   ; map_delete
            r0 = *(u64 *)(r6 + 0)    ; stale pointer
            exit
        ";
        let e = vm.run(&assemble(src).unwrap(), &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn map_store_respects_capacity_and_geometry() {
        let mut s = MapStore::new();
        // Wrong key/value sizes are rejected.
        assert!(!s.update(0, &[1, 2, 3], &8u64.to_le_bytes()));
        assert!(!s.update(0, &1u32.to_le_bytes(), &[0u8; 4]));
        assert!(!s.update(9, &1u32.to_le_bytes(), &[0u8; 8]));
        // Fill map 0 to capacity (16 entries), then one more fails.
        for k in 0u32..16 {
            assert!(s.update(0, &k.to_le_bytes(), &u64::from(k).to_le_bytes()));
        }
        assert!(!s.update(0, &99u32.to_le_bytes(), &[0u8; 8]));
        // In-place update of an existing key still works and keeps the
        // address stable.
        let addr = s.lookup(0, &3u32.to_le_bytes()).unwrap();
        assert!(s.update(0, &3u32.to_le_bytes(), &777u64.to_le_bytes()));
        assert_eq!(s.lookup(0, &3u32.to_le_bytes()), Some(addr));
        // Delete frees a slot for reuse.
        assert!(s.delete(0, &3u32.to_le_bytes()));
        assert!(!s.delete(0, &3u32.to_le_bytes()));
        assert!(s.update(0, &99u32.to_le_bytes(), &[0u8; 8]));
    }

    #[test]
    fn get_prandom_is_deterministic_across_vms() {
        let prog = assemble("call 7\nr0 &= 0xffffffff\nexit").unwrap();
        let a = Vm::new().run(&prog, &mut []).unwrap();
        let b = Vm::new().run(&prog, &mut []).unwrap();
        assert_eq!(a, b);
        assert!(a <= u64::from(u32::MAX));
        // Two calls in one run differ (the stream advances).
        let prog2 = assemble("call 7\nr6 = r0\ncall 7\nr0 ^= r6\nexit").unwrap();
        assert_ne!(Vm::new().run(&prog2, &mut []).unwrap(), 0);
    }

    #[test]
    fn registered_closures_take_precedence_over_native_helpers() {
        let mut vm = Vm::new();
        vm.register_helper(7, Box::new(|_| 1111));
        let prog = assemble("call 7\nexit").unwrap();
        assert_eq!(vm.run(&prog, &mut []).unwrap(), 1111);
    }

    #[test]
    fn traced_run_records_every_step() {
        let prog = assemble("r0 = 1\nr0 += 2\nexit").unwrap();
        let (ret, trace) = Vm::new().run_traced(&prog, &mut []).unwrap();
        assert_eq!(ret, 3);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].pc, 0);
        assert_eq!(trace[1].regs[0], 1);
        assert_eq!(trace[2].regs[0], 3);
        assert_eq!(trace[2].regs[10], STACK_TOP);
    }
}
