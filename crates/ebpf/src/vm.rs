//! A concrete interpreter for the eBPF subset.
//!
//! Implements BPF's defined arithmetic semantics exactly: wrapping ALU
//! operations, `x / 0 = 0`, `x % 0 = x`, shift amounts masked to the
//! operand width, and 32-bit operations that zero-extend into the 64-bit
//! register. Memory is a 512-byte stack frame plus a caller-supplied
//! context buffer, addressed through synthetic base addresses
//! ([`STACK_TOP`], [`CTX_BASE`]) so that pointer arithmetic behaves like
//! real addresses while remaining fully bounds-checked.

use std::collections::HashMap;

use crate::error::VmError;
use crate::insn::{AluOp, Insn, MemSize, Src, Width};
use crate::program::Program;
use crate::reg::Reg;

/// Size of the BPF stack frame in bytes.
pub const STACK_SIZE: u64 = 512;

/// Synthetic address of the top of the stack; `r10` holds this value and
/// valid stack slots live in `[STACK_TOP - STACK_SIZE, STACK_TOP)`.
pub const STACK_TOP: u64 = 0x7fff_ffff_f000;

/// Synthetic base address of the context buffer passed in `r1`.
pub const CTX_BASE: u64 = 0x1000_0000;

/// A registered helper function: receives the five argument registers
/// `r1`–`r5` and produces the `r0` return value.
pub type HelperFn = Box<dyn FnMut([u64; 5]) -> u64>;

/// Execution options for the [`Vm`].
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Maximum number of instructions to execute before aborting with
    /// [`VmError::OutOfFuel`].
    pub fuel: u64,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions { fuel: 1 << 20 }
    }
}

/// A snapshot of the machine state before executing one instruction,
/// produced by [`Vm::run_traced`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Instruction index about to execute.
    pub pc: usize,
    /// All eleven registers at that point.
    pub regs: [u64; 11],
}

/// The concrete interpreter.
///
/// # Examples
///
/// ```
/// use ebpf::{asm::assemble, Vm};
/// let prog = assemble(r"
///     r0 = *(u8 *)(r1 + 0)
///     r0 *= 3
///     exit
/// ")?;
/// let mut ctx = [14u8];
/// let ret = Vm::new().run(&prog, &mut ctx)?;
/// assert_eq!(ret, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm {
    options: VmOptions,
    helpers: HashMap<u32, HelperFn>,
}

impl Default for Vm {
    fn default() -> Vm {
        Vm::new()
    }
}

impl Vm {
    /// Creates a VM with default options and no registered helpers.
    #[must_use]
    pub fn new() -> Vm {
        Vm {
            options: VmOptions::default(),
            helpers: HashMap::new(),
        }
    }

    /// Creates a VM with explicit options.
    #[must_use]
    pub fn with_options(options: VmOptions) -> Vm {
        Vm {
            options,
            helpers: HashMap::new(),
        }
    }

    /// Registers (or replaces) a helper callable via `call id`.
    pub fn register_helper(&mut self, id: u32, f: HelperFn) -> &mut Vm {
        self.helpers.insert(id, f);
        self
    }

    /// Runs the program to completion and returns `r0`.
    ///
    /// On entry `r1 = CTX_BASE`, `r2 = ctx.len()`, `r10 = STACK_TOP`, and
    /// all other registers are zero.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] for out-of-bounds memory accesses, unknown
    /// helpers, or fuel exhaustion.
    pub fn run(&mut self, prog: &Program, ctx: &mut [u8]) -> Result<u64, VmError> {
        self.execute(prog, ctx, None)
    }

    /// Runs the program, recording a [`Snapshot`] of the registers before
    /// every executed instruction. Used by differential tests that check
    /// concrete states against the abstract interpreter's invariants.
    ///
    /// # Errors
    ///
    /// As [`Vm::run`].
    pub fn run_traced(
        &mut self,
        prog: &Program,
        ctx: &mut [u8],
    ) -> Result<(u64, Vec<Snapshot>), VmError> {
        let mut trace = Vec::new();
        let ret = self.execute(prog, ctx, Some(&mut trace))?;
        Ok((ret, trace))
    }

    fn execute(
        &mut self,
        prog: &Program,
        ctx: &mut [u8],
        mut trace: Option<&mut Vec<Snapshot>>,
    ) -> Result<u64, VmError> {
        let mut regs = [0u64; 11];
        regs[Reg::R1.index()] = CTX_BASE;
        regs[Reg::R2.index()] = ctx.len() as u64;
        regs[Reg::R10.index()] = STACK_TOP;
        let mut stack = [0u8; STACK_SIZE as usize];
        let mut pc = 0usize;
        let mut fuel = self.options.fuel;

        loop {
            if fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            let insn = *prog.insns().get(pc).ok_or(VmError::PcOutOfRange { pc })?;
            if let Some(t) = trace.as_deref_mut() {
                t.push(Snapshot { pc, regs });
            }
            match insn {
                Insn::Alu {
                    width,
                    op,
                    dst,
                    src,
                } => {
                    let rhs = self.operand(&regs, src);
                    let lhs = regs[dst.index()];
                    regs[dst.index()] = alu(width, op, lhs, rhs);
                    pc += 1;
                }
                Insn::LoadImm64 { dst, imm } => {
                    regs[dst.index()] = imm;
                    pc += 1;
                }
                Insn::Load {
                    size,
                    dst,
                    base,
                    off,
                } => {
                    let addr = regs[base.index()].wrapping_add(off as i64 as u64);
                    regs[dst.index()] =
                        read_mem(&stack, ctx, addr, size).ok_or(VmError::OutOfBounds {
                            addr,
                            size: size.bytes(),
                            pc,
                        })?;
                    pc += 1;
                }
                Insn::Store {
                    size,
                    base,
                    off,
                    src,
                } => {
                    let addr = regs[base.index()].wrapping_add(off as i64 as u64);
                    let value = self.operand(&regs, src);
                    write_mem(&mut stack, ctx, addr, size, value).ok_or(VmError::OutOfBounds {
                        addr,
                        size: size.bytes(),
                        pc,
                    })?;
                    pc += 1;
                }
                Insn::Ja { off } => {
                    pc = prog
                        .jump_target(pc, off)
                        .ok_or(VmError::PcOutOfRange { pc })?;
                }
                Insn::Jmp {
                    width,
                    op,
                    dst,
                    src,
                    off,
                } => {
                    let lhs = regs[dst.index()];
                    let rhs = self.operand(&regs, src);
                    let taken = match width {
                        Width::W64 => op.eval64(lhs, rhs),
                        Width::W32 => op.eval32(lhs, rhs),
                    };
                    if taken {
                        pc = prog
                            .jump_target(pc, off)
                            .ok_or(VmError::PcOutOfRange { pc })?;
                    } else {
                        pc += 1;
                    }
                }
                Insn::Call { helper } => {
                    let args = [
                        regs[Reg::R1.index()],
                        regs[Reg::R2.index()],
                        regs[Reg::R3.index()],
                        regs[Reg::R4.index()],
                        regs[Reg::R5.index()],
                    ];
                    let f = self
                        .helpers
                        .get_mut(&helper)
                        .ok_or(VmError::UnknownHelper { helper, pc })?;
                    regs[Reg::R0.index()] = f(args);
                    // r1-r5 are caller-saved: clobber deterministically.
                    for reg in &mut regs[1..=5] {
                        *reg = 0;
                    }
                    pc += 1;
                }
                Insn::Exit => return Ok(regs[Reg::R0.index()]),
            }
        }
    }

    fn operand(&self, regs: &[u64; 11], src: Src) -> u64 {
        match src {
            Src::Reg(r) => regs[r.index()],
            // Immediates are sign-extended to 64 bits, as in the kernel.
            Src::Imm(v) => v as i64 as u64,
        }
    }
}

/// BPF ALU semantics for both widths.
fn alu(width: Width, op: AluOp, dst: u64, src: u64) -> u64 {
    match width {
        Width::W64 => alu64(op, dst, src),
        // 32-bit ops take the low halves and zero-extend the result.
        Width::W32 => alu32(op, dst as u32, src as u32) as u64,
    }
}

fn alu64(op: AluOp, dst: u64, src: u64) -> u64 {
    match op {
        AluOp::Add => dst.wrapping_add(src),
        AluOp::Sub => dst.wrapping_sub(src),
        AluOp::Mul => dst.wrapping_mul(src),
        AluOp::Div => {
            if src == 0 {
                0
            } else {
                dst / src
            }
        }
        AluOp::Mod => {
            if src == 0 {
                dst
            } else {
                dst % src
            }
        }
        AluOp::Or => dst | src,
        AluOp::And => dst & src,
        AluOp::Xor => dst ^ src,
        AluOp::Lsh => dst.wrapping_shl(src as u32 & 63),
        AluOp::Rsh => dst.wrapping_shr(src as u32 & 63),
        AluOp::Arsh => ((dst as i64).wrapping_shr(src as u32 & 63)) as u64,
        AluOp::Neg => dst.wrapping_neg(),
        AluOp::Mov => src,
    }
}

fn alu32(op: AluOp, dst: u32, src: u32) -> u32 {
    match op {
        AluOp::Add => dst.wrapping_add(src),
        AluOp::Sub => dst.wrapping_sub(src),
        AluOp::Mul => dst.wrapping_mul(src),
        AluOp::Div => {
            if src == 0 {
                0
            } else {
                dst / src
            }
        }
        AluOp::Mod => {
            if src == 0 {
                dst
            } else {
                dst % src
            }
        }
        AluOp::Or => dst | src,
        AluOp::And => dst & src,
        AluOp::Xor => dst ^ src,
        AluOp::Lsh => dst.wrapping_shl(src & 31),
        AluOp::Rsh => dst.wrapping_shr(src & 31),
        AluOp::Arsh => ((dst as i32).wrapping_shr(src & 31)) as u32,
        AluOp::Neg => dst.wrapping_neg(),
        AluOp::Mov => src,
    }
}

/// Which mapped region an address range falls in, and the byte offset
/// within it.
fn locate(ctx_len: u64, addr: u64, size: u64) -> Option<(Region, usize)> {
    let stack_base = STACK_TOP - STACK_SIZE;
    if addr >= stack_base && addr.checked_add(size)? <= STACK_TOP {
        return Some((Region::Stack, (addr - stack_base) as usize));
    }
    if addr >= CTX_BASE && addr.checked_add(size)? <= CTX_BASE + ctx_len {
        return Some((Region::Ctx, (addr - CTX_BASE) as usize));
    }
    None
}

#[derive(Clone, Copy)]
enum Region {
    Stack,
    Ctx,
}

fn read_mem(stack: &[u8], ctx: &[u8], addr: u64, size: MemSize) -> Option<u64> {
    let n = size.bytes() as usize;
    let (region, off) = locate(ctx.len() as u64, addr, size.bytes())?;
    let bytes = match region {
        Region::Stack => &stack[off..off + n],
        Region::Ctx => &ctx[off..off + n],
    };
    let mut buf = [0u8; 8];
    buf[..n].copy_from_slice(bytes);
    Some(u64::from_le_bytes(buf))
}

fn write_mem(stack: &mut [u8], ctx: &mut [u8], addr: u64, size: MemSize, value: u64) -> Option<()> {
    let n = size.bytes() as usize;
    let (region, off) = locate(ctx.len() as u64, addr, size.bytes())?;
    let bytes = match region {
        Region::Stack => &mut stack[off..off + n],
        Region::Ctx => &mut ctx[off..off + n],
    };
    bytes.copy_from_slice(&value.to_le_bytes()[..n]);
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str, ctx: &mut [u8]) -> Result<u64, VmError> {
        Vm::new().run(&assemble(src).unwrap(), ctx)
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(run("r0 = 6\nr0 *= 7\nexit", &mut []).unwrap(), 42);
        assert_eq!(run("r0 = 1\nr0 <<= 40\nexit", &mut []).unwrap(), 1 << 40);
        assert_eq!(run("r0 = -1\nr0 >>= 63\nexit", &mut []).unwrap(), 1);
        assert_eq!(
            run("r0 = -16\nr0 s>>= 2\nexit", &mut []).unwrap(),
            (-4i64) as u64
        );
    }

    #[test]
    fn division_by_zero_semantics() {
        assert_eq!(run("r0 = 7\nr1 = 0\nr0 /= r1\nexit", &mut []).unwrap(), 0);
        assert_eq!(run("r0 = 7\nr1 = 0\nr0 %= r1\nexit", &mut []).unwrap(), 7);
    }

    #[test]
    fn shifts_mask_their_amount() {
        // 64-bit shifts use the low 6 bits of the amount.
        assert_eq!(run("r0 = 1\nr1 = 65\nr0 <<= r1\nexit", &mut []).unwrap(), 2);
        // 32-bit shifts use the low 5 bits.
        assert_eq!(run("w0 = 1\nw1 = 33\nw0 <<= w1\nexit", &mut []).unwrap(), 2);
    }

    #[test]
    fn alu32_zero_extends() {
        // w-register ops clear the high half.
        assert_eq!(
            run("r0 = 0xffffffffffffffff ll\nw0 += 1\nexit", &mut []).unwrap(),
            0
        );
        assert_eq!(
            run("r0 = 0xffffffffffffffff ll\nw0 = w0\nexit", &mut []).unwrap(),
            0xffff_ffff
        );
    }

    #[test]
    fn immediates_sign_extend() {
        assert_eq!(run("r0 = -1\nexit", &mut []).unwrap(), u64::MAX);
        // ... but 32-bit mov stays in the low half.
        assert_eq!(run("w0 = -1\nexit", &mut []).unwrap(), 0xffff_ffff);
    }

    #[test]
    fn stack_round_trip_all_sizes() {
        let src = r"
            r1 = 0x1122334455667788 ll
            *(u64 *)(r10 - 8) = r1
            r2 = *(u64 *)(r10 - 8)
            r3 = *(u32 *)(r10 - 8)
            r4 = *(u16 *)(r10 - 8)
            r5 = *(u8 *)(r10 - 8)
            r0 = r2
            r0 ^= r1       ; zero if round-trip worked
            r0 += r3
            r0 += r4
            r0 += r5
            exit
        ";
        // r3 = low word, r4 = low half, r5 = low byte (little-endian).
        let expect = 0x5566_7788u64 + 0x7788 + 0x88;
        assert_eq!(run(src, &mut []).unwrap(), expect);
    }

    #[test]
    fn ctx_access_and_length_register() {
        let src = r"
            r0 = r2              ; ctx length
            r3 = *(u8 *)(r1 + 2)
            r0 += r3
            exit
        ";
        let mut ctx = [10u8, 20, 30, 40];
        assert_eq!(run(src, &mut ctx).unwrap(), 4 + 30);
    }

    #[test]
    fn ctx_writes_are_visible_to_caller() {
        let mut ctx = [0u8; 4];
        run("*(u32 *)(r1 + 0) = 0x01020304\nr0 = 0\nexit", &mut ctx).unwrap();
        assert_eq!(ctx, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn out_of_bounds_faults() {
        // One byte past the stack.
        let e = run("r0 = *(u8 *)(r10 + 0)\nexit", &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
        // Below the frame.
        let e = run("*(u64 *)(r10 - 513) = 0\nr0 = 0\nexit", &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
        // Past the context.
        let e = run("r0 = *(u32 *)(r1 + 2)\nexit", &mut [0u8; 4]).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
        // Straddling the end of the stack from inside.
        let e = run("r0 = *(u64 *)(r10 - 4)\nexit", &mut []).unwrap_err();
        assert!(matches!(e, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn branches_and_loops() {
        let src = r"
            r0 = 0
            r1 = 10
        loop:
            r0 += r1
            r1 -= 1
            if r1 != 0 goto loop
            exit
        ";
        assert_eq!(run(src, &mut []).unwrap(), 55);
    }

    #[test]
    fn jmp32_uses_low_half() {
        let src = r"
            r1 = 0x100000001 ll
            r0 = 0
            if w1 == 1 goto yes
            exit
        yes:
            r0 = 1
            exit
        ";
        assert_eq!(run(src, &mut []).unwrap(), 1);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let mut vm = Vm::with_options(VmOptions { fuel: 100 });
        let prog = assemble("loop:\ngoto loop\nexit").unwrap();
        assert_eq!(vm.run(&prog, &mut []), Err(VmError::OutOfFuel));
    }

    #[test]
    fn helpers_are_called_and_clobber_args() {
        let mut vm = Vm::new();
        vm.register_helper(7, Box::new(|args| args[0] + args[1]));
        let prog = assemble(
            r"
            r1 = 30
            r2 = 12
            call 7
            r0 += r1     ; r1 was clobbered to 0
            exit
        ",
        )
        .unwrap();
        assert_eq!(vm.run(&prog, &mut []).unwrap(), 42);
        // Unknown helper faults.
        let prog = assemble("call 99\nexit").unwrap();
        assert!(matches!(
            vm.run(&prog, &mut []),
            Err(VmError::UnknownHelper { helper: 99, .. })
        ));
    }

    #[test]
    fn traced_run_records_every_step() {
        let prog = assemble("r0 = 1\nr0 += 2\nexit").unwrap();
        let (ret, trace) = Vm::new().run_traced(&prog, &mut []).unwrap();
        assert_eq!(ret, 3);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].pc, 0);
        assert_eq!(trace[1].regs[0], 1);
        assert_eq!(trace[2].regs[0], 3);
        assert_eq!(trace[2].regs[10], STACK_TOP);
    }
}
