//! # ebpf — an eBPF-subset substrate
//!
//! The tnum paper studies the static analyzer that guards the Linux (and
//! Windows) eBPF runtime. To reproduce that context end-to-end, this crate
//! implements the substrate the analyzer operates on:
//!
//! * the **instruction set** ([`Insn`]): 64-bit and 32-bit ALU ops
//!   (`add sub mul div or and lsh rsh neg mod xor arsh mov`), conditional
//!   and unconditional jumps (`jmp`/`jmp32`), byte/half/word/double-word
//!   loads and stores, 64-bit immediate loads, helper calls, and `exit` —
//!   exactly the concrete operations for which the paper's abstract
//!   operators exist (§II-B);
//! * the **binary encoding** ([`RawInsn`]): the classic 8-byte
//!   `opcode/regs/off/imm` layout with two-slot `lddw`, round-tripping with
//!   the typed form;
//! * a **program container** ([`Program`]) that validates register use and
//!   jump targets and maps between instruction and slot indices;
//! * a line-oriented **assembler** ([`asm`]) and **disassembler**
//!   (`Display for Insn`) using the kernel documentation syntax
//!   (`r0 = 42`, `r2 += r3`, `if r1 > 8 goto drop`, `*(u32 *)(r10 - 4) = r0`);
//! * a fluent, label-aware [`builder`] for constructing programs in code;
//! * a **helper registry** ([`helpers`]): typed signatures for the
//!   concrete helpers (`map_lookup`, `map_update`, `map_delete`,
//!   `get_prandom`), the static map definitions, and the tagged `lddw`
//!   map-handle convention (`rD = map N`) — shared by the verifier's
//!   call-site type checks and the VM's native implementations;
//! * a concrete **interpreter** ([`Vm`]) with a 512-byte stack, a caller
//!   context buffer, registered helper functions, an in-VM map store
//!   ([`MapStore`]) executing the registry helpers natively, and BPF
//!   arithmetic semantics (wrapping ops, `x / 0 = 0`, `x % 0 = x`,
//!   masked shifts).
//!
//! The `verifier` crate performs abstract interpretation over [`Insn`]
//! using the tnum and interval domains; integration tests execute the same
//! programs concretely on [`Vm`] to validate the analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::manual_checked_ops)]

pub mod asm;
pub mod builder;
mod disasm;
mod encode;
mod error;
pub mod helpers;
mod insn;
mod program;
mod reg;
mod vm;

pub use encode::RawInsn;
pub use error::{AsmError, DecodeError, ProgramError, VmError};
pub use helpers::{
    helper_sig, map_def, map_handle_imm, map_id_of_imm, ArgKind, HelperSig, MapDef, RegionSize,
    RetKind, DEFAULT_MAPS, HELPERS,
};
pub use insn::{AluOp, Insn, JmpOp, MemSize, Src, Width};
pub use program::Program;
pub use reg::Reg;
pub use vm::{HelperFn, MapStore, Vm, VmOptions, CTX_BASE, MAP_BASE, STACK_SIZE, STACK_TOP};
