//! The typed eBPF-subset instruction set.

use crate::reg::Reg;

/// ALU operation selector (the high nibble of an ALU opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; BPF defines `x / 0 = 0`.
    Div,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Left shift; the amount is masked to the operand width.
    Lsh,
    /// Logical right shift; the amount is masked to the operand width.
    Rsh,
    /// Two's-complement negation (`dst = -dst`; no source operand).
    Neg,
    /// Unsigned remainder; BPF defines `x % 0 = x`.
    Mod,
    /// Bitwise XOR.
    Xor,
    /// Move (register copy or immediate load).
    Mov,
    /// Arithmetic right shift; the amount is masked to the operand width.
    Arsh,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Or,
        AluOp::And,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Neg,
        AluOp::Mod,
        AluOp::Xor,
        AluOp::Mov,
        AluOp::Arsh,
    ];
}

/// Operation width: 64-bit (`alu64`/`jmp`) or 32-bit (`alu32`/`jmp32`).
///
/// 32-bit ALU operations act on the low halves and zero-extend the result
/// into the 64-bit destination, exactly as in the kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 32-bit subregister operation.
    W32,
    /// Full 64-bit operation.
    W64,
}

/// The second operand of an ALU or conditional-jump instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Src {
    /// Register operand (`BPF_X`).
    Reg(Reg),
    /// Sign-extended 32-bit immediate (`BPF_K`).
    Imm(i32),
}

/// Memory access size.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSize {
    /// 1 byte (`u8`).
    B,
    /// 2 bytes (`u16`).
    H,
    /// 4 bytes (`u32`).
    W,
    /// 8 bytes (`u64`).
    DW,
}

impl MemSize {
    /// Access width in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            MemSize::B => 1,
            MemSize::H => 2,
            MemSize::W => 4,
            MemSize::DW => 8,
        }
    }

    /// The C-style type name used in the assembly syntax (`u8`, …, `u64`).
    #[must_use]
    pub const fn type_name(self) -> &'static str {
        match self {
            MemSize::B => "u8",
            MemSize::H => "u16",
            MemSize::W => "u32",
            MemSize::DW => "u64",
        }
    }
}

/// Conditional-jump comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// unsigned `>`
    Gt,
    /// unsigned `>=`
    Ge,
    /// unsigned `<`
    Lt,
    /// unsigned `<=`
    Le,
    /// signed `>`
    Sgt,
    /// signed `>=`
    Sge,
    /// signed `<`
    Slt,
    /// signed `<=`
    Sle,
    /// `dst & src != 0` (bit test)
    Set,
}

impl JmpOp {
    /// All comparison operators.
    pub const ALL: [JmpOp; 11] = [
        JmpOp::Eq,
        JmpOp::Ne,
        JmpOp::Gt,
        JmpOp::Ge,
        JmpOp::Lt,
        JmpOp::Le,
        JmpOp::Sgt,
        JmpOp::Sge,
        JmpOp::Slt,
        JmpOp::Sle,
        JmpOp::Set,
    ];

    /// Evaluates the comparison on concrete 64-bit values.
    #[must_use]
    pub fn eval64(self, dst: u64, src: u64) -> bool {
        match self {
            JmpOp::Eq => dst == src,
            JmpOp::Ne => dst != src,
            JmpOp::Gt => dst > src,
            JmpOp::Ge => dst >= src,
            JmpOp::Lt => dst < src,
            JmpOp::Le => dst <= src,
            JmpOp::Sgt => (dst as i64) > (src as i64),
            JmpOp::Sge => (dst as i64) >= (src as i64),
            JmpOp::Slt => (dst as i64) < (src as i64),
            JmpOp::Sle => (dst as i64) <= (src as i64),
            JmpOp::Set => dst & src != 0,
        }
    }

    /// Evaluates the comparison on the low 32 bits (`jmp32`).
    #[must_use]
    pub fn eval32(self, dst: u64, src: u64) -> bool {
        let (d, s) = (dst as u32, src as u32);
        match self {
            JmpOp::Eq => d == s,
            JmpOp::Ne => d != s,
            JmpOp::Gt => d > s,
            JmpOp::Ge => d >= s,
            JmpOp::Lt => d < s,
            JmpOp::Le => d <= s,
            JmpOp::Sgt => (d as i32) > (s as i32),
            JmpOp::Sge => (d as i32) >= (s as i32),
            JmpOp::Slt => (d as i32) < (s as i32),
            JmpOp::Sle => (d as i32) <= (s as i32),
            JmpOp::Set => d & s != 0,
        }
    }

    /// The comparison with operands swapped: `a op b == b op.swap() a`.
    #[must_use]
    pub const fn swapped(self) -> JmpOp {
        match self {
            JmpOp::Eq => JmpOp::Eq,
            JmpOp::Ne => JmpOp::Ne,
            JmpOp::Gt => JmpOp::Lt,
            JmpOp::Ge => JmpOp::Le,
            JmpOp::Lt => JmpOp::Gt,
            JmpOp::Le => JmpOp::Ge,
            JmpOp::Sgt => JmpOp::Slt,
            JmpOp::Sge => JmpOp::Sle,
            JmpOp::Slt => JmpOp::Sgt,
            JmpOp::Sle => JmpOp::Sge,
            JmpOp::Set => JmpOp::Set,
        }
    }

    /// The logical negation: `!(a op b) == a op.negated() b`.
    #[must_use]
    pub const fn negated(self) -> Option<JmpOp> {
        match self {
            JmpOp::Eq => Some(JmpOp::Ne),
            JmpOp::Ne => Some(JmpOp::Eq),
            JmpOp::Gt => Some(JmpOp::Le),
            JmpOp::Ge => Some(JmpOp::Lt),
            JmpOp::Lt => Some(JmpOp::Ge),
            JmpOp::Le => Some(JmpOp::Gt),
            JmpOp::Sgt => Some(JmpOp::Sle),
            JmpOp::Sge => Some(JmpOp::Slt),
            JmpOp::Slt => Some(JmpOp::Sge),
            JmpOp::Sle => Some(JmpOp::Sgt),
            // "no bit in common" has no single-op dual in the ISA.
            JmpOp::Set => None,
        }
    }
}

/// One typed instruction of the eBPF subset.
///
/// Jump offsets (`off`) are in *slots*, relative to the slot following the
/// jump, matching the binary format; [`Insn::slots`] reports how many
/// slots an instruction occupies (2 for [`Insn::LoadImm64`], 1 otherwise).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    /// An ALU operation: `dst = dst op src` (or `dst = src` for `Mov`,
    /// `dst = -dst` for `Neg`).
    Alu {
        /// Operation width (32-bit ops zero-extend into the destination).
        width: Width,
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source operand (ignored for `Neg`).
        src: Src,
    },
    /// `lddw`: load a full 64-bit immediate (occupies two slots).
    LoadImm64 {
        /// Destination register.
        dst: Reg,
        /// The 64-bit immediate.
        imm: u64,
    },
    /// `ldx`: `dst = *(size *)(base + off)`.
    Load {
        /// Access size.
        size: MemSize,
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset from the base.
        off: i16,
    },
    /// `st`/`stx`: `*(size *)(base + off) = src`.
    Store {
        /// Access size.
        size: MemSize,
        /// Base address register.
        base: Reg,
        /// Signed byte offset from the base.
        off: i16,
        /// Value to store (register or immediate).
        src: Src,
    },
    /// Unconditional jump by `off` slots.
    Ja {
        /// Slot offset relative to the next instruction.
        off: i16,
    },
    /// Conditional jump: `if dst op src goto +off`.
    Jmp {
        /// Comparison width (`jmp` vs `jmp32`).
        width: Width,
        /// Comparison operator.
        op: JmpOp,
        /// Left-hand register.
        dst: Reg,
        /// Right-hand operand.
        src: Src,
        /// Slot offset relative to the next instruction.
        off: i16,
    },
    /// Call a helper function by ID.
    Call {
        /// Helper function identifier.
        helper: u32,
    },
    /// Terminate the program; the return value is in `r0`.
    Exit,
}

impl Insn {
    /// Number of encoding slots this instruction occupies (2 for `lddw`).
    #[must_use]
    pub const fn slots(self) -> usize {
        match self {
            Insn::LoadImm64 { .. } => 2,
            _ => 1,
        }
    }

    /// The register written by this instruction, if any.
    #[must_use]
    pub fn def_reg(self) -> Option<Reg> {
        match self {
            Insn::Alu { dst, .. } | Insn::LoadImm64 { dst, .. } | Insn::Load { dst, .. } => {
                Some(dst)
            }
            Insn::Call { .. } => Some(Reg::R0),
            _ => None,
        }
    }

    /// The registers read by this instruction.
    #[must_use]
    pub fn use_regs(self) -> Vec<Reg> {
        fn push_src(out: &mut Vec<Reg>, src: Src) {
            if let Src::Reg(r) = src {
                out.push(r);
            }
        }
        let mut out = Vec::new();
        match self {
            Insn::Alu {
                op: AluOp::Mov,
                src,
                ..
            } => push_src(&mut out, src),
            Insn::Alu {
                op: AluOp::Neg,
                dst,
                ..
            } => out.push(dst),
            Insn::Alu { dst, src, .. } => {
                out.push(dst);
                push_src(&mut out, src);
            }
            Insn::LoadImm64 { .. } | Insn::Ja { .. } | Insn::Exit => {}
            Insn::Load { base, .. } => out.push(base),
            Insn::Store { base, src, .. } => {
                out.push(base);
                push_src(&mut out, src);
            }
            Insn::Jmp { dst, src, .. } => {
                out.push(dst);
                push_src(&mut out, src);
            }
            // Calls read the argument registers r1–r5.
            Insn::Call { .. } => out.extend([Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5]),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts() {
        assert_eq!(Insn::Exit.slots(), 1);
        assert_eq!(
            Insn::LoadImm64 {
                dst: Reg::R1,
                imm: 0
            }
            .slots(),
            2
        );
    }

    #[test]
    fn jmp_eval_agrees_with_rust_semantics() {
        let cases = [
            (5u64, 5u64),
            (3, 9),
            (u64::MAX, 0),
            (1 << 63, 1),
            (0xffff_ffff, 0x1_0000_0000),
        ];
        for (d, s) in cases {
            assert_eq!(JmpOp::Eq.eval64(d, s), d == s);
            assert_eq!(JmpOp::Lt.eval64(d, s), d < s);
            assert_eq!(JmpOp::Sgt.eval64(d, s), (d as i64) > (s as i64));
            assert_eq!(JmpOp::Set.eval64(d, s), d & s != 0);
            assert_eq!(JmpOp::Le.eval32(d, s), (d as u32) <= (s as u32));
            assert_eq!(JmpOp::Slt.eval32(d, s), (d as i32) < (s as i32));
        }
    }

    #[test]
    fn swapped_and_negated_are_involutions() {
        for op in JmpOp::ALL {
            assert_eq!(op.swapped().swapped(), op);
            if let Some(neg) = op.negated() {
                assert_eq!(neg.negated(), Some(op));
            }
        }
        // Semantic check on samples.
        for op in JmpOp::ALL {
            for (d, s) in [(3u64, 9u64), (9, 3), (7, 7), (u64::MAX, 1)] {
                assert_eq!(op.eval64(d, s), op.swapped().eval64(s, d), "{op:?}");
                if let Some(neg) = op.negated() {
                    assert_eq!(op.eval64(d, s), !neg.eval64(d, s), "{op:?}");
                }
            }
        }
    }

    #[test]
    fn def_use_sets() {
        let add = Insn::Alu {
            width: Width::W64,
            op: AluOp::Add,
            dst: Reg::R1,
            src: Src::Reg(Reg::R2),
        };
        assert_eq!(add.def_reg(), Some(Reg::R1));
        assert_eq!(add.use_regs(), vec![Reg::R1, Reg::R2]);

        let mov = Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: Reg::R1,
            src: Src::Imm(7),
        };
        assert_eq!(mov.use_regs(), Vec::<Reg>::new());

        let store = Insn::Store {
            size: MemSize::W,
            base: Reg::R10,
            off: -4,
            src: Src::Reg(Reg::R0),
        };
        assert_eq!(store.def_reg(), None);
        assert_eq!(store.use_regs(), vec![Reg::R10, Reg::R0]);

        let call = Insn::Call { helper: 1 };
        assert_eq!(call.def_reg(), Some(Reg::R0));
        assert_eq!(call.use_regs().len(), 5);
    }

    #[test]
    fn mem_size_metadata() {
        assert_eq!(MemSize::B.bytes(), 1);
        assert_eq!(MemSize::DW.bytes(), 8);
        assert_eq!(MemSize::H.type_name(), "u16");
    }
}
