//! A line-oriented assembler for the eBPF subset, using the syntax of the
//! kernel documentation (and of LLVM's BPF assembly):
//!
//! ```text
//! ; drop packets with a too-large index
//!     r6 = r1                    ; save ctx
//!     r0 = *(u8 *)(r6 + 0)       ; load a byte
//!     r0 &= 7                    ; mask to [0, 7]
//!     if r0 > 5 goto drop
//!     r0 = 1
//!     exit
//! drop:
//!     r0 = 0
//!     exit
//! ```
//!
//! Supported forms:
//!
//! * `rD = imm`, `rD = rS` (64-bit mov), `wD = …` (32-bit, zero-extending);
//! * `rD += rS|imm` and likewise `-= *= /= %= &= |= ^= <<= >>= s>>=`;
//! * `rD = -rD` (negation);
//! * `rD = imm ll` (64-bit immediate load);
//! * `rD = map N` (map-handle load: a tagged `lddw`, see
//!   [`crate::helpers::map_handle_imm`]);
//! * `rD = *(u8|u16|u32|u64 *)(rB + off)` loads;
//! * `*(u8|u16|u32|u64 *)(rB + off) = rS|imm` stores;
//! * `if rD OP rS|imm goto target` with `OP` one of
//!   `== != > >= < <= s> s>= s< s<= &`, and `wD` forms for 32-bit compares;
//! * `goto target`, `call imm`, `exit`;
//! * `target` is a label or an explicit slot offset `+N`/`-N`;
//! * comments start with `;` or `#`; labels are `name:` on their own line.

use std::collections::HashMap;

use crate::error::{AsmError, ProgramError};
use crate::insn::{AluOp, Insn, JmpOp, MemSize, Src, Width};
use crate::program::Program;
use crate::reg::Reg;

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown labels, or out-of-range operands; program-level validation
/// failures (e.g. falling off the end) are reported on the last line.
///
/// # Examples
///
/// ```
/// use ebpf::asm::assemble;
/// let prog = assemble(r"
///     r0 = 7
///     r0 <<= 2
///     exit
/// ")?;
/// assert_eq!(prog.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut insns: Vec<(usize, PendingInsn)> = Vec::new(); // (line, insn)
    let mut labels: HashMap<String, usize> = HashMap::new(); // label -> slot
    let mut slot = 0usize;
    let mut last_line = 1;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(line_no, format!("invalid label name {name:?}")));
            }
            if labels.insert(name.to_string(), slot).is_some() {
                return Err(err(line_no, format!("duplicate label {name:?}")));
            }
            continue;
        }
        let pending = parse_line(line).map_err(|m| err(line_no, m))?;
        slot += pending.slots();
        insns.push((line_no, pending));
    }

    // Resolve labels to slot-relative offsets.
    let mut resolved = Vec::with_capacity(insns.len());
    let mut cur_slot = 0usize;
    for (line_no, pending) in insns {
        let next_slot = cur_slot + pending.slots();
        let insn = pending
            .resolve(|target| match target {
                Target::Offset(off) => Ok(off),
                Target::Label(name) => {
                    let dest = *labels
                        .get(&name)
                        .ok_or_else(|| format!("unknown label {name:?}"))?;
                    i16::try_from(dest as i64 - next_slot as i64)
                        .map_err(|_| format!("label {name:?} is out of jump range"))
                }
            })
            .map_err(|m| err(line_no, m))?;
        cur_slot = next_slot;
        resolved.push(insn);
    }

    Program::new(resolved).map_err(|e: ProgramError| err(last_line, e.to_string()))
}

fn err(line: usize, message: String) -> AsmError {
    AsmError { line, message }
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A jump destination before label resolution.
enum Target {
    Offset(i16),
    Label(String),
}

/// An instruction whose jump target may still be symbolic.
enum PendingInsn {
    Ready(Insn),
    Ja(Target),
    Jmp {
        width: Width,
        op: JmpOp,
        dst: Reg,
        src: Src,
        target: Target,
    },
}

impl PendingInsn {
    fn slots(&self) -> usize {
        match self {
            PendingInsn::Ready(i) => i.slots(),
            _ => 1,
        }
    }

    fn resolve(self, mut f: impl FnMut(Target) -> Result<i16, String>) -> Result<Insn, String> {
        Ok(match self {
            PendingInsn::Ready(i) => i,
            PendingInsn::Ja(t) => Insn::Ja { off: f(t)? },
            PendingInsn::Jmp {
                width,
                op,
                dst,
                src,
                target,
            } => Insn::Jmp {
                width,
                op,
                dst,
                src,
                off: f(target)?,
            },
        })
    }
}

fn parse_line(line: &str) -> Result<PendingInsn, String> {
    if line == "exit" {
        return Ok(PendingInsn::Ready(Insn::Exit));
    }
    if let Some(rest) = line.strip_prefix("call") {
        let helper: i64 = parse_int(rest.trim())?;
        let helper = u32::try_from(helper).map_err(|_| "helper id out of range".to_string())?;
        return Ok(PendingInsn::Ready(Insn::Call { helper }));
    }
    if let Some(rest) = line.strip_prefix("goto") {
        return Ok(PendingInsn::Ja(parse_target(rest.trim())?));
    }
    if let Some(rest) = line.strip_prefix("if") {
        return parse_cond(rest.trim());
    }
    if line.starts_with("*(") {
        return parse_store(line).map(PendingInsn::Ready);
    }
    parse_assign(line).map(PendingInsn::Ready)
}

fn parse_target(s: &str) -> Result<Target, String> {
    if let Some(rest) = s.strip_prefix('+') {
        return Ok(Target::Offset(
            rest.trim()
                .parse()
                .map_err(|_| format!("bad offset {s:?}"))?,
        ));
    }
    if s.starts_with('-') {
        return Ok(Target::Offset(
            s.parse().map_err(|_| format!("bad offset {s:?}"))?,
        ));
    }
    if is_ident(s) {
        return Ok(Target::Label(s.to_string()));
    }
    Err(format!("bad jump target {s:?}"))
}

/// Parses `r0`..`r10` (64-bit) or `w0`..`w10` (32-bit view).
fn parse_reg(s: &str) -> Result<(Reg, Width), String> {
    let (width, rest) = match s.as_bytes().first() {
        Some(b'r') => (Width::W64, &s[1..]),
        Some(b'w') => (Width::W32, &s[1..]),
        _ => return Err(format!("expected register, found {s:?}")),
    };
    let index: u8 = rest.parse().map_err(|_| format!("bad register {s:?}"))?;
    let reg = Reg::new(index).ok_or_else(|| format!("register index {index} out of range"))?;
    Ok((reg, width))
}

fn parse_int(s: &str) -> Result<i64, String> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad integer {s:?}"))?
    } else {
        body.parse::<u64>()
            .map_err(|_| format!("bad integer {s:?}"))?
    };
    let signed = if neg {
        (value as i64)
            .checked_neg()
            .ok_or_else(|| format!("integer {s:?} out of range"))?
    } else {
        value as i64
    };
    Ok(signed)
}

fn parse_imm32(s: &str) -> Result<i32, String> {
    let v = parse_int(s)?;
    // Accept both signed values and unsigned 32-bit literals (e.g.
    // 0xffffffff), which BPF treats as the same bit pattern.
    i32::try_from(v)
        .or_else(|_| u32::try_from(v).map(|u| u as i32))
        .map_err(|_| format!("immediate {s:?} does not fit in 32 bits"))
}

fn parse_src(s: &str) -> Result<(Src, Option<Width>), String> {
    if s.starts_with('r') || s.starts_with('w') {
        if let Ok((reg, width)) = parse_reg(s) {
            return Ok((Src::Reg(reg), Some(width)));
        }
    }
    Ok((Src::Imm(parse_imm32(s)?), None))
}

/// Parses `(u8|u16|u32|u64 *)(rB + off)` after the leading `*`.
fn parse_mem_ref(s: &str) -> Result<(MemSize, Reg, i16), String> {
    let s = s.trim();
    let body = s
        .strip_prefix('(')
        .ok_or_else(|| format!("expected '(' in memory reference {s:?}"))?;
    let (ty, rest) = body
        .split_once('*')
        .ok_or_else(|| format!("expected 'type *' in memory reference {s:?}"))?;
    let size = match ty.trim() {
        "u8" => MemSize::B,
        "u16" => MemSize::H,
        "u32" => MemSize::W,
        "u64" => MemSize::DW,
        other => return Err(format!("unknown access type {other:?}")),
    };
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(')')
        .ok_or_else(|| format!("expected ')' after access type in {s:?}"))?;
    let rest = rest.trim_start();
    let addr = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| format!("expected '(reg + off)' in {s:?}"))?;
    // Forms: "r1", "r1 + 4", "r1 - 4" (spaces optional).
    let addr = addr.replace(' ', "");
    let (reg_str, off) = match addr.find(['+', '-']) {
        Some(pos) => {
            let (r, o) = addr.split_at(pos);
            (r, parse_int(o)?)
        }
        None => (addr.as_str(), 0),
    };
    let (base, width) = parse_reg(reg_str)?;
    if width == Width::W32 {
        return Err("memory references must use 64-bit registers (rN)".to_string());
    }
    let off = i16::try_from(off).map_err(|_| format!("offset {off} does not fit in 16 bits"))?;
    Ok((size, base, off))
}

fn parse_store(line: &str) -> Result<Insn, String> {
    let body = &line[1..]; // skip '*'
    let eq = find_top_level_eq(body).ok_or_else(|| format!("expected '=' in store {line:?}"))?;
    let (lhs, rhs) = body.split_at(eq);
    let rhs = rhs[1..].trim();
    let (size, base, off) = parse_mem_ref(lhs.trim())?;
    let (src, src_width) = parse_src(rhs)?;
    if src_width == Some(Width::W32) {
        return Err(
            "stores take 64-bit registers (rN); the access size selects the width".to_string(),
        );
    }
    Ok(Insn::Store {
        size,
        base,
        off,
        src,
    })
}

/// Finds the `=` separating lhs from rhs, skipping `==`, `!=`, `<=`, `>=`.
fn find_top_level_eq(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'=' {
            let prev = if i > 0 { b[i - 1] } else { 0 };
            let next = if i + 1 < b.len() { b[i + 1] } else { 0 };
            if prev != b'=' && prev != b'!' && prev != b'<' && prev != b'>' && next != b'=' {
                return Some(i);
            }
        }
    }
    None
}

fn parse_cond(rest: &str) -> Result<PendingInsn, String> {
    // Grammar: <reg> <op> <src> goto <target>
    let goto_pos = rest
        .find("goto")
        .ok_or_else(|| format!("expected 'goto' in conditional {rest:?}"))?;
    let (cond, target_str) = rest.split_at(goto_pos);
    let target = parse_target(target_str[4..].trim())?;
    let mut parts = cond.split_whitespace();
    let dst_str = parts.next().ok_or("missing register in condition")?;
    let op_str = parts.next().ok_or("missing comparison operator")?;
    let src_str = parts.next().ok_or("missing right-hand operand")?;
    if parts.next().is_some() {
        return Err(format!("trailing tokens in condition {cond:?}"));
    }
    let (dst, width) = parse_reg(dst_str)?;
    let op = match op_str {
        "==" => JmpOp::Eq,
        "!=" => JmpOp::Ne,
        ">" => JmpOp::Gt,
        ">=" => JmpOp::Ge,
        "<" => JmpOp::Lt,
        "<=" => JmpOp::Le,
        "s>" => JmpOp::Sgt,
        "s>=" => JmpOp::Sge,
        "s<" => JmpOp::Slt,
        "s<=" => JmpOp::Sle,
        "&" => JmpOp::Set,
        other => return Err(format!("unknown comparison operator {other:?}")),
    };
    let (src, src_width) = parse_src(src_str)?;
    if let Some(sw) = src_width {
        if sw != width {
            return Err("mixed 32/64-bit registers in comparison".to_string());
        }
    }
    Ok(PendingInsn::Jmp {
        width,
        op,
        dst,
        src,
        target,
    })
}

fn parse_assign(line: &str) -> Result<Insn, String> {
    // Compound assignments first (longest operators first).
    const COMPOUND: [(&str, AluOp); 11] = [
        ("s>>=", AluOp::Arsh),
        ("<<=", AluOp::Lsh),
        (">>=", AluOp::Rsh),
        ("+=", AluOp::Add),
        ("-=", AluOp::Sub),
        ("*=", AluOp::Mul),
        ("/=", AluOp::Div),
        ("%=", AluOp::Mod),
        ("&=", AluOp::And),
        ("|=", AluOp::Or),
        ("^=", AluOp::Xor),
    ];
    for (tok, op) in COMPOUND {
        if let Some(pos) = line.find(tok) {
            let (lhs, rhs) = (line[..pos].trim(), line[pos + tok.len()..].trim());
            let (dst, width) = parse_reg(lhs)?;
            let (src, src_width) = parse_src(rhs)?;
            if let Some(sw) = src_width {
                if sw != width {
                    return Err("mixed 32/64-bit registers in ALU op".to_string());
                }
            }
            return Ok(Insn::Alu {
                width,
                op,
                dst,
                src,
            });
        }
    }

    // Plain `dst = rhs` forms.
    let eq = find_top_level_eq(line).ok_or_else(|| format!("cannot parse {line:?}"))?;
    let (lhs, rhs) = (line[..eq].trim(), line[eq + 1..].trim());
    let (dst, width) = parse_reg(lhs)?;

    // Negation: rD = -rD.
    if let Some(neg) = rhs.strip_prefix('-') {
        if neg.starts_with('r') || neg.starts_with('w') {
            let (src_reg, src_width) = parse_reg(neg.trim())?;
            if src_reg != dst || src_width != width {
                return Err("negation must have the form rD = -rD".to_string());
            }
            return Ok(Insn::Alu {
                width,
                op: AluOp::Neg,
                dst,
                src: Src::Imm(0),
            });
        }
    }

    // Load: rD = *(size *)(rB + off).
    if let Some(mem) = rhs.strip_prefix('*') {
        if width == Width::W32 {
            return Err("loads write 64-bit registers (rN)".to_string());
        }
        let (size, base, off) = parse_mem_ref(mem)?;
        return Ok(Insn::Load {
            size,
            dst,
            base,
            off,
        });
    }

    // Map handle: rD = map N (sugar for a tagged lddw).
    if let Some(id_str) = rhs.strip_prefix("map ").map(str::trim) {
        if width == Width::W32 {
            return Err("map handles load 64-bit registers (rN)".to_string());
        }
        let id = parse_int(id_str)?;
        let id = u32::try_from(id).map_err(|_| format!("map id {id} out of range"))?;
        return Ok(Insn::LoadImm64 {
            dst,
            imm: crate::helpers::map_handle_imm(id),
        });
    }

    // 64-bit immediate: rD = imm ll.
    if let Some(imm_str) = rhs.strip_suffix("ll") {
        if width == Width::W32 {
            return Err("lddw writes 64-bit registers (rN)".to_string());
        }
        let v = parse_int_u64(imm_str.trim())?;
        return Ok(Insn::LoadImm64 { dst, imm: v });
    }

    // Register or immediate mov.
    let (src, src_width) = parse_src(rhs)?;
    if let Some(sw) = src_width {
        if sw != width {
            return Err("mixed 32/64-bit registers in mov".to_string());
        }
    }
    Ok(Insn::Alu {
        width,
        op: AluOp::Mov,
        dst,
        src,
    })
}

fn parse_int_u64(s: &str) -> Result<u64, String> {
    if let Some(rest) = s.strip_prefix('-') {
        let v: u64 = if let Some(hex) = rest.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| format!("bad integer {s:?}"))?
        } else {
            rest.parse().map_err(|_| format!("bad integer {s:?}"))?
        };
        Ok((v as i64).wrapping_neg() as u64)
    } else if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad integer {s:?}"))
    } else {
        s.parse().map_err(|_| format!("bad integer {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_every_form() {
        let prog = assemble(
            r"
            ; every supported syntactic form
            start:
                r6 = r1
                w2 = 5
                r3 = -7
                r3 += r6
                r3 -= 2
                w3 *= w2
                r3 /= 3
                r3 %= 10
                r3 &= 0xff
                r3 |= r2
                r3 ^= r3
                r3 <<= 2
                r3 >>= 1
                r3 s>>= 1
                r3 = -r3
                r4 = 0x1122334455667788 ll
                r5 = *(u16 *)(r6 + 4)
                *(u32 *)(r10 - 8) = r5
                *(u8 *)(r10 - 1) = 66
                if r5 == 0 goto out
                if w5 s< -3 goto out
                if r5 & 0x80 goto start
                goto +0
            out:
                call 7
                r0 = 0
                exit
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 26);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let prog = assemble(
            r"
            top:
                r0 = 0
                if r1 == 0 goto end
                goto top
            end:
                exit
            ",
        )
        .unwrap();
        // Instruction 1 jumps to 3 (exit); instruction 2 jumps to 0.
        assert_eq!(prog.jump_target(1, jump_off(&prog, 1)), Some(3));
        assert_eq!(prog.jump_target(2, jump_off(&prog, 2)), Some(0));
    }

    fn jump_off(prog: &Program, idx: usize) -> i16 {
        match prog.insns()[idx] {
            Insn::Ja { off } | Insn::Jmp { off, .. } => off,
            _ => panic!("not a jump"),
        }
    }

    #[test]
    fn labels_account_for_lddw_slots() {
        let prog = assemble(
            r"
                r1 = 0x100000000 ll
                if r1 == 0 goto out
                r0 = 1
                exit
            out:
                r0 = 0
                exit
            ",
        )
        .unwrap();
        // lddw occupies two slots, so the label's slot is shifted.
        assert_eq!(prog.jump_target(1, jump_off(&prog, 1)), Some(4));
    }

    #[test]
    fn rejects_bad_syntax_with_line_numbers() {
        let e = assemble("r0 = 0\nbogus line\nexit").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("r11 = 0\nexit").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("out of range"));
        let e = assemble("goto nowhere\nexit").unwrap_err();
        assert!(e.message.contains("unknown label"));
        let e = assemble("r0 = 1").unwrap_err();
        assert!(e.message.contains("fall off"));
        let e = assemble("start:\nstart:\n  exit").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn rejects_mixed_widths() {
        assert!(assemble("r0 += w1\nexit").is_err());
        assert!(assemble("if r0 == w1 goto +0\nexit").is_err());
        assert!(assemble("w0 = *(u8 *)(r1 + 0)\nexit").is_err());
    }

    #[test]
    fn unsigned_32bit_literals_accepted() {
        let prog = assemble("r0 = 0xffffffff\nexit").unwrap();
        match prog.insns()[0] {
            Insn::Alu {
                src: Src::Imm(imm), ..
            } => assert_eq!(imm, -1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn map_handle_sugar_assembles_and_round_trips() {
        let prog = assemble("r1 = map 0\nr2 = map 1\nr0 = 0\nexit").unwrap();
        match (prog.insns()[0], prog.insns()[1]) {
            (Insn::LoadImm64 { imm: a, .. }, Insn::LoadImm64 { imm: b, .. }) => {
                assert_eq!(crate::helpers::map_id_of_imm(a), Some(0));
                assert_eq!(crate::helpers::map_id_of_imm(b), Some(1));
            }
            other => panic!("expected lddw pair, got {other:?}"),
        }
        // Disassembly prints the sugar back and re-assembles identically.
        assert_eq!(assemble(&prog.disassemble()).unwrap(), prog);
        assert!(prog.disassemble().contains("r1 = map 0"));
        // w-register and junk forms are rejected.
        assert!(assemble("w1 = map 0\nexit").is_err());
        assert!(assemble("r1 = map x\nexit").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble("# leading\n\n  r0 = 1 ; trailing\n  exit # done\n").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn numeric_offsets_work() {
        let prog = assemble("if r1 != 0 goto +1\nr0 = 1\nr0 = 2\nexit").unwrap();
        assert_eq!(prog.jump_target(0, 1), Some(2));
    }

    #[test]
    fn store_offset_signs() {
        let prog = assemble("*(u64 *)(r10 - 8) = 1\n*(u64 *)(r10+8) = 2\nexit").unwrap();
        match (prog.insns()[0], prog.insns()[1]) {
            (Insn::Store { off: a, .. }, Insn::Store { off: b, .. }) => {
                assert_eq!((a, b), (-8, 8));
            }
            _ => panic!("expected stores"),
        }
    }
}
