//! The **helper-call registry**: the single shared description of every
//! helper the subset supports, consumed by both sides of the toolchain.
//!
//! The kernel verifier type-checks `call` sites against per-helper
//! `bpf_func_proto` descriptors (argument kinds like `ARG_CONST_MAP_PTR`,
//! `ARG_PTR_TO_MAP_KEY`, return kinds like `RET_PTR_TO_MAP_VALUE_OR_NULL`),
//! while the runtime dispatches the same ids to concrete implementations.
//! This module is the analogue for the subset: [`HelperSig`] describes a
//! helper's argument and return kinds, [`HELPERS`] enumerates the concrete
//! helpers (kernel ids), and the `verifier` crate and [`crate::Vm`] both
//! resolve call sites through it, so the abstract and concrete semantics
//! cannot drift apart.
//!
//! Maps are likewise a shared, static convention: [`DEFAULT_MAPS`] fixes
//! the key/value geometry of every map id, and a map handle enters a
//! program through the tagged `lddw` form `rD = map N`
//! ([`map_handle_imm`]), mirroring the kernel's `BPF_PSEUDO_MAP_FD`
//! relocation without needing a loader.

/// Kernel helper id of `bpf_map_lookup_elem`.
pub const HELPER_MAP_LOOKUP: u32 = 1;
/// Kernel helper id of `bpf_map_update_elem`.
pub const HELPER_MAP_UPDATE: u32 = 2;
/// Kernel helper id of `bpf_map_delete_elem`.
pub const HELPER_MAP_DELETE: u32 = 3;
/// Kernel helper id of `bpf_get_prandom_u32`.
pub const HELPER_GET_PRANDOM: u32 = 7;

/// How a helper may use one argument register (`r1`–`r5`), the subset's
/// `bpf_arg_type`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArgKind {
    /// Any initialized scalar value (flags, sizes, plain numbers).
    Scalar,
    /// A pointer into the program's context buffer.
    CtxPtr,
    /// A map handle produced by the tagged `lddw` form `rD = map N`.
    MapHandle,
    /// A pointer to an initialized stack region; the region's byte size
    /// comes from a sibling argument per [`RegionSize`].
    StackRegion {
        /// Whether the helper also writes the region (a read-only region
        /// must merely be initialized; a writable one is overwritten).
        writable: bool,
        /// Where the region's byte size comes from.
        size: RegionSize,
    },
}

/// Where a [`ArgKind::StackRegion`] argument's byte size comes from —
/// always another argument of the same call, the subset's analogue of
/// the kernel's `ARG_CONST_SIZE` sibling-argument sizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionSize {
    /// The key size of the map handle passed in sibling argument `arg`
    /// (0-based index into [`HelperSig::args`]).
    KeyOf {
        /// Sibling argument index holding the map handle.
        arg: usize,
    },
    /// The value size of the map handle passed in sibling argument `arg`.
    ValueOf {
        /// Sibling argument index holding the map handle.
        arg: usize,
    },
    /// A fixed byte size independent of the siblings.
    Fixed(u32),
}

/// What a helper leaves in `r0`, the subset's `bpf_return_type`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetKind {
    /// An unknown scalar (status codes, random values).
    Scalar,
    /// A pointer to a value of the map passed in argument `map_arg`, or
    /// NULL — the kernel's `RET_PTR_TO_MAP_VALUE_OR_NULL`.
    MapValueOrNull {
        /// Argument index (0-based) of the map handle the value belongs to.
        map_arg: usize,
    },
}

/// The complete signature of one helper: the contract the verifier
/// enforces at every call site and the VM implements natively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelperSig {
    /// Helper id named by `call id` (kernel numbering).
    pub id: u32,
    /// Human-readable name (for `annotate --list-helpers` and errors).
    pub name: &'static str,
    /// Argument kinds for `r1`, `r2`, … — unused trailing registers are
    /// simply not listed.
    pub args: &'static [ArgKind],
    /// What the helper returns in `r0`.
    pub ret: RetKind,
}

/// Every helper the subset supports, in id order.
pub const HELPERS: &[HelperSig] = &[
    HelperSig {
        id: HELPER_MAP_LOOKUP,
        name: "map_lookup",
        args: &[
            ArgKind::MapHandle,
            ArgKind::StackRegion {
                writable: false,
                size: RegionSize::KeyOf { arg: 0 },
            },
        ],
        ret: RetKind::MapValueOrNull { map_arg: 0 },
    },
    HelperSig {
        id: HELPER_MAP_UPDATE,
        name: "map_update",
        args: &[
            ArgKind::MapHandle,
            ArgKind::StackRegion {
                writable: false,
                size: RegionSize::KeyOf { arg: 0 },
            },
            ArgKind::StackRegion {
                writable: false,
                size: RegionSize::ValueOf { arg: 0 },
            },
            ArgKind::Scalar,
        ],
        ret: RetKind::Scalar,
    },
    HelperSig {
        id: HELPER_MAP_DELETE,
        name: "map_delete",
        args: &[
            ArgKind::MapHandle,
            ArgKind::StackRegion {
                writable: false,
                size: RegionSize::KeyOf { arg: 0 },
            },
        ],
        ret: RetKind::Scalar,
    },
    HelperSig {
        id: HELPER_GET_PRANDOM,
        name: "get_prandom",
        args: &[],
        ret: RetKind::Scalar,
    },
];

/// Looks up the signature of helper `id`, if it is a known helper.
#[must_use]
pub fn helper_sig(id: u32) -> Option<&'static HelperSig> {
    HELPERS.iter().find(|h| h.id == id)
}

/// The static geometry of one map: fixed key and value sizes and a
/// capacity, as in the kernel's `bpf_map_def`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapDef {
    /// Exact key size in bytes.
    pub key_size: u32,
    /// Exact value size in bytes.
    pub value_size: u32,
    /// Maximum number of entries the map holds.
    pub max_entries: u32,
}

/// The maps every program may reference, indexed by map id. Fixing the
/// set statically keeps the verifier and the VM in agreement without a
/// loader: `rD = map N` is valid iff `N` indexes this table.
pub const DEFAULT_MAPS: &[MapDef] = &[
    MapDef {
        key_size: 4,
        value_size: 8,
        max_entries: 16,
    },
    MapDef {
        key_size: 8,
        value_size: 32,
        max_entries: 8,
    },
];

/// The definition of map `map`, if the id is valid.
#[must_use]
pub fn map_def(map: u32) -> Option<&'static MapDef> {
    DEFAULT_MAPS.get(map as usize)
}

/// Tag in the upper 32 bits of an `lddw` immediate marking it as a map
/// handle (`"maph"` in ASCII), the subset's `BPF_PSEUDO_MAP_FD`.
pub const MAP_HANDLE_TAG: u64 = 0x6d61_7068;

/// The `lddw` immediate encoding a handle to map `map`
/// (`rD = map N` assembles to `lddw rD, map_handle_imm(N)`).
#[must_use]
pub fn map_handle_imm(map: u32) -> u64 {
    (MAP_HANDLE_TAG << 32) | u64::from(map)
}

/// Decodes a map id back out of a tagged `lddw` immediate; `None` for
/// plain 64-bit constants.
#[must_use]
pub fn map_id_of_imm(imm: u64) -> Option<u32> {
    (imm >> 32 == MAP_HANDLE_TAG).then_some(imm as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_listed_helper() {
        for sig in HELPERS {
            assert_eq!(helper_sig(sig.id), Some(sig));
            assert!(sig.args.len() <= 5, "{} takes at most r1-r5", sig.name);
        }
        assert_eq!(helper_sig(99), None);
        assert_eq!(helper_sig(0), None);
    }

    #[test]
    fn map_handle_imm_round_trips() {
        for map in [0u32, 1, 7, u32::MAX] {
            assert_eq!(map_id_of_imm(map_handle_imm(map)), Some(map));
        }
        assert_eq!(map_id_of_imm(0), None);
        assert_eq!(map_id_of_imm(0x1122_3344_5566_7788), None);
    }

    #[test]
    fn region_sizes_resolve_against_default_maps() {
        let lookup = helper_sig(HELPER_MAP_LOOKUP).unwrap();
        assert_eq!(lookup.ret, RetKind::MapValueOrNull { map_arg: 0 });
        let ArgKind::StackRegion { writable, size } = lookup.args[1] else {
            panic!("map_lookup key is a stack region");
        };
        assert!(!writable);
        assert_eq!(size, RegionSize::KeyOf { arg: 0 });
        assert_eq!(map_def(0).unwrap().key_size, 4);
        assert_eq!(map_def(1).unwrap().value_size, 32);
        assert_eq!(map_def(2), None);
    }
}
