//! BPF registers.

use core::fmt;

/// One of the eleven BPF registers `r0`–`r10`.
///
/// Calling convention (as in the kernel):
///
/// * `r0` — return value of the program and of helper calls;
/// * `r1`–`r5` — helper-call arguments (clobbered by calls);
/// * `r6`–`r9` — callee-saved;
/// * `r10` — read-only frame pointer to the top of the 512-byte stack.
///
/// # Examples
///
/// ```
/// use ebpf::Reg;
/// let r = Reg::new(3).unwrap();
/// assert_eq!(r.to_string(), "r3");
/// assert_eq!(Reg::new(11), None);
/// assert!(Reg::R10.is_frame_pointer());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// `r0` — return value.
    pub const R0: Reg = Reg(0);
    /// `r1` — first argument / context pointer on entry.
    pub const R1: Reg = Reg(1);
    /// `r2` — second argument.
    pub const R2: Reg = Reg(2);
    /// `r3` — third argument.
    pub const R3: Reg = Reg(3);
    /// `r4` — fourth argument.
    pub const R4: Reg = Reg(4);
    /// `r5` — fifth argument.
    pub const R5: Reg = Reg(5);
    /// `r6` — callee-saved.
    pub const R6: Reg = Reg(6);
    /// `r7` — callee-saved.
    pub const R7: Reg = Reg(7);
    /// `r8` — callee-saved.
    pub const R8: Reg = Reg(8);
    /// `r9` — callee-saved.
    pub const R9: Reg = Reg(9);
    /// `r10` — frame pointer (read-only).
    pub const R10: Reg = Reg(10);

    /// All registers in index order.
    pub const ALL: [Reg; 11] = [
        Reg(0),
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(9),
        Reg(10),
    ];

    /// Creates a register from its index; `None` if `index > 10`.
    #[must_use]
    pub const fn new(index: u8) -> Option<Reg> {
        if index <= 10 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register index, `0..=10`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is `r10`, the read-only frame pointer.
    #[must_use]
    pub const fn is_frame_pointer(self) -> bool {
        self.0 == 10
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert_eq!(Reg::new(0), Some(Reg::R0));
        assert_eq!(Reg::new(10), Some(Reg::R10));
        assert_eq!(Reg::new(11), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn all_is_complete_and_ordered() {
        assert_eq!(Reg::ALL.len(), 11);
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R7.to_string(), "r7");
    }

    #[test]
    fn frame_pointer() {
        assert!(Reg::R10.is_frame_pointer());
        assert!(!Reg::R9.is_frame_pointer());
    }
}
