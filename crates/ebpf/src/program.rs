//! Validated program container with slot/instruction index mapping.

use crate::encode::RawInsn;
use crate::error::{DecodeError, ProgramError};
use crate::insn::Insn;

/// A validated sequence of instructions.
///
/// Jump offsets in the binary format count *slots* (an
/// [`Insn::LoadImm64`] occupies two); this container maintains the
/// slot ↔ instruction-index mapping and validates that:
///
/// * the program is non-empty and cannot fall off the end,
/// * every jump lands on an instruction boundary inside the program,
/// * no instruction writes the read-only frame pointer `r10`.
///
/// # Examples
///
/// ```
/// use ebpf::{asm, Program};
/// let prog = asm::assemble(r"
///     r0 = 0
///     exit
/// ")?;
/// assert_eq!(prog.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    insns: Vec<Insn>,
    /// Starting slot of each instruction.
    slot_of: Vec<usize>,
    /// Total number of slots.
    slots: usize,
}

impl Program {
    /// Validates and wraps a sequence of typed instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] when the program is empty, may fall off
    /// the end, contains a jump to a non-instruction slot, or writes `r10`.
    pub fn new(insns: Vec<Insn>) -> Result<Program, ProgramError> {
        if insns.is_empty() {
            return Err(ProgramError::Empty);
        }
        let mut slot_of = Vec::with_capacity(insns.len());
        let mut slot = 0usize;
        for insn in &insns {
            slot_of.push(slot);
            slot += insn.slots();
        }
        let prog = Program {
            insns,
            slot_of,
            slots: slot,
        };

        for (i, insn) in prog.insns.iter().enumerate() {
            if let Some(dst) = insn.def_reg() {
                if dst.is_frame_pointer() {
                    return Err(ProgramError::WritesFramePointer { index: i });
                }
            }
            match *insn {
                Insn::Ja { off } | Insn::Jmp { off, .. } if prog.jump_target(i, off).is_none() => {
                    return Err(ProgramError::BadJumpTarget { from: i, off });
                }
                _ => {}
            }
        }
        // The last instruction must be exit or an unconditional jump;
        // conditional jumps fall through past the end.
        match prog.insns[prog.insns.len() - 1] {
            Insn::Exit | Insn::Ja { .. } => {}
            _ => return Err(ProgramError::FallsThrough),
        }
        Ok(prog)
    }

    /// The instructions, in order.
    #[must_use]
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of instructions (not slots).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Number of encoding slots (instructions + one extra per `lddw`).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// The starting slot of instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn slot_of(&self, index: usize) -> usize {
        self.slot_of[index]
    }

    /// Resolves a jump at instruction `from` with slot-relative offset
    /// `off` to the target *instruction index*, or `None` if it lands
    /// outside the program or inside an `lddw`.
    #[must_use]
    pub fn jump_target(&self, from: usize, off: i16) -> Option<usize> {
        let next_slot = self.slot_of[from] + self.insns[from].slots();
        let target_slot = next_slot as i64 + off as i64;
        if target_slot < 0 {
            return None;
        }
        let target_slot = target_slot as usize;
        self.slot_of.binary_search(&target_slot).ok()
    }

    /// The slot-relative offset that jumps from instruction `from` to
    /// instruction `to` — the inverse of [`Program::jump_target`].
    ///
    /// Returns `None` if the offset does not fit in `i16`.
    #[must_use]
    pub fn offset_between(&self, from: usize, to: usize) -> Option<i16> {
        let next_slot = (self.slot_of[from] + self.insns[from].slots()) as i64;
        let off = self.slot_of[to] as i64 - next_slot;
        i16::try_from(off).ok()
    }

    /// Encodes to raw slots.
    #[must_use]
    pub fn to_raw(&self) -> Vec<RawInsn> {
        self.insns
            .iter()
            .flat_map(|&i| RawInsn::encode(i))
            .collect()
    }

    /// Encodes to the little-endian byte stream.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_raw().iter().flat_map(|r| r.to_bytes()).collect()
    }

    /// Decodes and validates a program from raw slots.
    ///
    /// # Errors
    ///
    /// Returns a decode error for malformed slots, then a validation error
    /// for structurally invalid programs.
    pub fn from_raw(slots: &[RawInsn]) -> Result<Program, ProgramFromRawError> {
        let insns = RawInsn::decode_stream(slots)?;
        Ok(Program::new(insns)?)
    }

    /// Decodes and validates a program from its byte stream.
    ///
    /// # Errors
    ///
    /// As [`Program::from_raw`], plus a decode error when the length is not
    /// a multiple of 8.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, ProgramFromRawError> {
        if bytes.len() % 8 != 0 {
            return Err(DecodeError::MisalignedStream { len: bytes.len() }.into());
        }
        let slots: Vec<RawInsn> = bytes
            .chunks_exact(8)
            .map(|c| RawInsn::from_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Program::from_raw(&slots)
    }
}

/// Error from [`Program::from_raw`]/[`Program::from_bytes`]: either the
/// stream failed to decode or the decoded program failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramFromRawError {
    /// Raw slots could not be decoded.
    Decode(DecodeError),
    /// Decoded instructions failed program validation.
    Validate(ProgramError),
}

impl core::fmt::Display for ProgramFromRawError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProgramFromRawError::Decode(e) => write!(f, "decode error: {e}"),
            ProgramFromRawError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for ProgramFromRawError {}

impl From<DecodeError> for ProgramFromRawError {
    fn from(e: DecodeError) -> Self {
        ProgramFromRawError::Decode(e)
    }
}

impl From<ProgramError> for ProgramFromRawError {
    fn from(e: ProgramError) -> Self {
        ProgramFromRawError::Validate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, JmpOp, Src, Width};
    use crate::reg::Reg;

    fn mov0() -> Insn {
        Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: Reg::R0,
            src: Src::Imm(0),
        }
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Program::new(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn fallthrough_rejected() {
        assert_eq!(Program::new(vec![mov0()]), Err(ProgramError::FallsThrough));
        assert!(Program::new(vec![mov0(), Insn::Exit]).is_ok());
    }

    #[test]
    fn writes_to_r10_rejected() {
        let bad = Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: Reg::R10,
            src: Src::Imm(0),
        };
        assert_eq!(
            Program::new(vec![bad, Insn::Exit]),
            Err(ProgramError::WritesFramePointer { index: 0 })
        );
    }

    #[test]
    fn jump_validation_and_resolution() {
        // jmp +1 over one insn, landing on exit.
        let prog = Program::new(vec![Insn::Ja { off: 1 }, mov0(), Insn::Exit]).unwrap();
        assert_eq!(prog.jump_target(0, 1), Some(2));
        assert_eq!(prog.offset_between(0, 2), Some(1));

        // Jump out of range.
        assert_eq!(
            Program::new(vec![Insn::Ja { off: 5 }, Insn::Exit]),
            Err(ProgramError::BadJumpTarget { from: 0, off: 5 })
        );
        // Backward jumps are fine structurally (the verifier will reject
        // the loop, but the container accepts it).
        let back = Program::new(vec![mov0(), Insn::Ja { off: -2 }]).unwrap();
        assert_eq!(back.jump_target(1, -2), Some(0));
        assert_eq!(back.jump_target(1, -1), Some(1), "self-loop");
    }

    #[test]
    fn jump_into_lddw_middle_rejected() {
        // lddw occupies slots 0-1; a jump with off 0 from it targets slot 2.
        // A jump from instruction 0 with off -1 targets slot 1 = middle.
        let insns = vec![
            Insn::Ja { off: 2 }, // slot 0, next 1, target slot 3 -> exit? slots: ja=0, lddw=1-2, exit=3
            Insn::LoadImm64 {
                dst: Reg::R1,
                imm: 9,
            },
            Insn::Exit,
        ];
        let prog = Program::new(insns).unwrap();
        assert_eq!(prog.slot_count(), 4);
        assert_eq!(prog.jump_target(0, 2), Some(2)); // exit
        assert_eq!(prog.jump_target(0, 0), Some(1)); // lddw start
        assert_eq!(prog.jump_target(0, 1), None); // lddw middle

        let bad = Program::new(vec![
            Insn::Ja { off: 1 },
            Insn::LoadImm64 {
                dst: Reg::R1,
                imm: 9,
            },
            Insn::Exit,
        ]);
        assert_eq!(bad, Err(ProgramError::BadJumpTarget { from: 0, off: 1 }));
    }

    #[test]
    fn byte_round_trip() {
        let prog = Program::new(vec![
            Insn::LoadImm64 {
                dst: Reg::R2,
                imm: u64::MAX - 1,
            },
            Insn::Jmp {
                width: Width::W64,
                op: JmpOp::Eq,
                dst: Reg::R2,
                src: Src::Imm(-2),
                off: 0,
            },
            mov0(),
            Insn::Exit,
        ])
        .unwrap();
        let bytes = prog.to_bytes();
        assert_eq!(bytes.len(), prog.slot_count() * 8);
        let back = Program::from_bytes(&bytes).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn misaligned_bytes_rejected() {
        assert!(matches!(
            Program::from_bytes(&[0u8; 9]),
            Err(ProgramFromRawError::Decode(DecodeError::MisalignedStream {
                len: 9
            }))
        ));
    }
}
