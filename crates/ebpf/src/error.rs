//! Error types for assembling, decoding, validating, and executing
//! programs.

use core::fmt;

/// Error produced by the assembler ([`crate::asm::assemble`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the error.
    pub line: usize,
    /// Explanation of what failed to parse.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Error produced when decoding raw instruction slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// An opcode byte does not correspond to a supported instruction.
    UnknownOpcode {
        /// The offending opcode byte.
        opcode: u8,
        /// Slot index of the instruction.
        slot: usize,
    },
    /// A register field holds an index greater than 10.
    BadRegister {
        /// The offending register index.
        index: u8,
        /// Slot index of the instruction.
        slot: usize,
    },
    /// An `lddw` instruction is missing its second slot, or the second
    /// slot is malformed.
    TruncatedLoadImm64 {
        /// Slot index of the first half.
        slot: usize,
    },
    /// The byte stream length is not a multiple of 8.
    MisalignedStream {
        /// Total length in bytes.
        len: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { opcode, slot } => {
                write!(f, "unknown opcode {opcode:#04x} at slot {slot}")
            }
            DecodeError::BadRegister { index, slot } => {
                write!(f, "invalid register r{index} at slot {slot}")
            }
            DecodeError::TruncatedLoadImm64 { slot } => {
                write!(f, "lddw at slot {slot} is missing its second slot")
            }
            DecodeError::MisalignedStream { len } => {
                write!(f, "byte stream length {len} is not a multiple of 8")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced by [`crate::Program`] validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A jump lands outside the program or into the middle of an `lddw`.
    BadJumpTarget {
        /// Instruction index of the jump.
        from: usize,
        /// The (slot-relative) offset that was taken.
        off: i16,
    },
    /// The program can fall off the end (the last instruction is not an
    /// unconditional control transfer).
    FallsThrough,
    /// An instruction writes the read-only frame pointer `r10`.
    WritesFramePointer {
        /// Instruction index.
        index: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program is empty"),
            ProgramError::BadJumpTarget { from, off } => {
                write!(
                    f,
                    "jump at instruction {from} with offset {off} has no valid target"
                )
            }
            ProgramError::FallsThrough => {
                write!(f, "control can fall off the end of the program")
            }
            ProgramError::WritesFramePointer { index } => {
                write!(
                    f,
                    "instruction {index} writes the read-only frame pointer r10"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Runtime error raised by the concrete interpreter ([`crate::Vm`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// A load or store touched memory outside every mapped region.
    OutOfBounds {
        /// The faulting virtual address.
        addr: u64,
        /// The access size in bytes.
        size: u64,
        /// Program counter (instruction index) of the access.
        pc: usize,
    },
    /// A call named an unregistered helper.
    UnknownHelper {
        /// The helper identifier.
        helper: u32,
        /// Program counter of the call.
        pc: usize,
    },
    /// A map helper was called with an `r1` that is not a valid tagged
    /// map handle (see [`crate::helpers::map_handle_imm`]).
    BadMapHandle {
        /// The helper identifier.
        helper: u32,
        /// Program counter of the call.
        pc: usize,
    },
    /// The step budget was exhausted (runaway program).
    OutOfFuel,
    /// Execution ran past the end of the program without `exit`
    /// (unreachable for validated programs).
    PcOutOfRange {
        /// The faulting instruction index.
        pc: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { addr, size, pc } => {
                write!(
                    f,
                    "out-of-bounds access of {size} bytes at {addr:#x} (pc {pc})"
                )
            }
            VmError::UnknownHelper { helper, pc } => {
                write!(f, "call to unknown helper {helper} (pc {pc})")
            }
            VmError::BadMapHandle { helper, pc } => {
                write!(
                    f,
                    "helper {helper} called without a valid map handle (pc {pc})"
                )
            }
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AsmError {
            line: 3,
            message: "bad register".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(DecodeError::UnknownOpcode {
            opcode: 0xff,
            slot: 2
        }
        .to_string()
        .contains("0xff"));
        assert!(ProgramError::BadJumpTarget { from: 1, off: -9 }
            .to_string()
            .contains("-9"));
        assert!(VmError::OutOfBounds {
            addr: 0x10,
            size: 4,
            pc: 7
        }
        .to_string()
        .contains("0x10"));
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AsmError>();
        assert_err::<DecodeError>();
        assert_err::<ProgramError>();
        assert_err::<VmError>();
    }
}
