//! Disassembly: rendering instructions back to the assembly syntax.

use core::fmt;

use crate::insn::{AluOp, Insn, JmpOp, Src, Width};
use crate::program::Program;
use crate::reg::Reg;

fn reg_name(width: Width, reg: Reg) -> String {
    match width {
        Width::W64 => format!("r{}", reg.index()),
        Width::W32 => format!("w{}", reg.index()),
    }
}

fn src_name(width: Width, src: Src) -> String {
    match src {
        Src::Reg(r) => reg_name(width, r),
        Src::Imm(v) => v.to_string(),
    }
}

/// Renders the instruction in the assembler's input syntax, with jump
/// targets as numeric slot offsets (`goto +3`).
///
/// # Examples
///
/// ```
/// use ebpf::{AluOp, Insn, Reg, Src, Width};
/// let insn = Insn::Alu { width: Width::W64, op: AluOp::Add, dst: Reg::R1, src: Src::Imm(4) };
/// assert_eq!(insn.to_string(), "r1 += 4");
/// ```
impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Alu {
                width,
                op,
                dst,
                src,
            } => {
                let d = reg_name(width, dst);
                let s = src_name(width, src);
                match op {
                    AluOp::Mov => write!(f, "{d} = {s}"),
                    AluOp::Neg => write!(f, "{d} = -{d}"),
                    AluOp::Add => write!(f, "{d} += {s}"),
                    AluOp::Sub => write!(f, "{d} -= {s}"),
                    AluOp::Mul => write!(f, "{d} *= {s}"),
                    AluOp::Div => write!(f, "{d} /= {s}"),
                    AluOp::Mod => write!(f, "{d} %= {s}"),
                    AluOp::And => write!(f, "{d} &= {s}"),
                    AluOp::Or => write!(f, "{d} |= {s}"),
                    AluOp::Xor => write!(f, "{d} ^= {s}"),
                    AluOp::Lsh => write!(f, "{d} <<= {s}"),
                    AluOp::Rsh => write!(f, "{d} >>= {s}"),
                    AluOp::Arsh => write!(f, "{d} s>>= {s}"),
                }
            }
            Insn::LoadImm64 { dst, imm } => match crate::helpers::map_id_of_imm(imm) {
                Some(map) => write!(f, "r{} = map {map}", dst.index()),
                None => write!(f, "r{} = {:#x} ll", dst.index(), imm),
            },
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => write!(
                f,
                "r{} = *({} *)(r{} {} {})",
                dst.index(),
                size.type_name(),
                base.index(),
                if off < 0 { '-' } else { '+' },
                off.unsigned_abs(),
            ),
            Insn::Store {
                size,
                base,
                off,
                src,
            } => write!(
                f,
                "*({} *)(r{} {} {}) = {}",
                size.type_name(),
                base.index(),
                if off < 0 { '-' } else { '+' },
                off.unsigned_abs(),
                src_name(Width::W64, src),
            ),
            Insn::Ja { off } => write!(f, "goto {off:+}"),
            Insn::Jmp {
                width,
                op,
                dst,
                src,
                off,
            } => {
                let opstr = match op {
                    JmpOp::Eq => "==",
                    JmpOp::Ne => "!=",
                    JmpOp::Gt => ">",
                    JmpOp::Ge => ">=",
                    JmpOp::Lt => "<",
                    JmpOp::Le => "<=",
                    JmpOp::Sgt => "s>",
                    JmpOp::Sge => "s>=",
                    JmpOp::Slt => "s<",
                    JmpOp::Sle => "s<=",
                    JmpOp::Set => "&",
                };
                write!(
                    f,
                    "if {} {} {} goto {:+}",
                    reg_name(width, dst),
                    opstr,
                    src_name(width, src),
                    off
                )
            }
            Insn::Call { helper } => write!(f, "call {helper}"),
            Insn::Exit => write!(f, "exit"),
        }
    }
}

impl Program {
    /// Renders the whole program, one instruction per line, in a form
    /// accepted by [`crate::asm::assemble`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ebpf::asm::assemble;
    /// let prog = assemble("r0 = 1\nif r0 > 2 goto +1\nr0 = 0\nexit")?;
    /// let text = prog.disassemble();
    /// assert_eq!(assemble(&text)?, prog); // round trip
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for insn in self.insns() {
            out.push_str(&insn.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::insn::MemSize;

    #[test]
    fn display_forms() {
        let samples: Vec<(Insn, &str)> = vec![
            (
                Insn::Alu {
                    width: Width::W32,
                    op: AluOp::Mov,
                    dst: Reg::R2,
                    src: Src::Imm(-3),
                },
                "w2 = -3",
            ),
            (
                Insn::Alu {
                    width: Width::W64,
                    op: AluOp::Arsh,
                    dst: Reg::R1,
                    src: Src::Reg(Reg::R2),
                },
                "r1 s>>= r2",
            ),
            (
                Insn::Alu {
                    width: Width::W64,
                    op: AluOp::Neg,
                    dst: Reg::R4,
                    src: Src::Imm(0),
                },
                "r4 = -r4",
            ),
            (
                Insn::LoadImm64 {
                    dst: Reg::R3,
                    imm: 0xff,
                },
                "r3 = 0xff ll",
            ),
            (
                Insn::Load {
                    size: MemSize::W,
                    dst: Reg::R0,
                    base: Reg::R1,
                    off: -4,
                },
                "r0 = *(u32 *)(r1 - 4)",
            ),
            (
                Insn::Store {
                    size: MemSize::DW,
                    base: Reg::R10,
                    off: 8,
                    src: Src::Imm(7),
                },
                "*(u64 *)(r10 + 8) = 7",
            ),
            (Insn::Ja { off: -2 }, "goto -2"),
            (
                Insn::Jmp {
                    width: Width::W32,
                    op: JmpOp::Sle,
                    dst: Reg::R5,
                    src: Src::Imm(0),
                    off: 3,
                },
                "if w5 s<= 0 goto +3",
            ),
            (Insn::Call { helper: 12 }, "call 12"),
            (Insn::Exit, "exit"),
        ];
        for (insn, expect) in samples {
            assert_eq!(insn.to_string(), expect);
        }
    }

    #[test]
    fn full_round_trip_through_text() {
        let source = r"
            r6 = r1
            r0 = *(u8 *)(r6 + 0)
            r0 &= 7
            w0 *= w0
            r2 = 0xdeadbeefcafef00d ll
            if r0 s> 40 goto +2
            if r0 & 1 goto +1
            r0 = 0
            *(u64 *)(r10 - 8) = r0
            exit
        ";
        let prog = assemble(source).unwrap();
        let round = assemble(&prog.disassemble()).unwrap();
        assert_eq!(round, prog);
    }
}
